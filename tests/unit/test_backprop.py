"""Unit tests for the hand-derived BPTT against the autograd reference.

The chain of trust: tests/unit/test_autograd.py validates the engine
against finite differences on smooth graphs; here the engine (with the
same Heaviside-forward / surrogate-backward semantics) validates the
manual adjoint recursions of repro.core.backprop.
"""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    add,
    cross_entropy_with_logits,
    run_adaptive_reference,
    run_hard_reset_reference,
    scale,
    van_rossum_loss,
)
from repro.common.errors import ShapeError
from repro.common.rng import RandomState
from repro.core import (
    CrossEntropyRateLoss,
    SpikingNetwork,
    VanRossumLoss,
    backward,
)


def _active_network(sizes, kind="adaptive", seed=2, boost=8.0):
    net = SpikingNetwork(sizes, neuron_kind=kind, rng=seed)
    for layer in net.layers:
        layer.weight *= boost     # ensure spiking activity
    return net


def _spikes(shape, rate, seed):
    rng = RandomState(seed)
    return (rng.random(shape) < rate).astype(np.float64)


def _ad_weights(net):
    return [Tensor(l.weight.T.copy(), requires_grad=True) for l in net.layers]


def _count_logits(outputs, count_scale):
    counts = None
    for out in outputs:
        counts = out if counts is None else add(counts, out)
    return scale(counts, count_scale)


class TestAdaptiveGradients:
    def test_forward_matches_reference(self):
        net = _active_network((8, 6, 5))
        x = _spikes((3, 14, 8), 0.35, 1)
        out, _ = net.run(x, record=True)
        ad_out = run_adaptive_reference(_ad_weights(net), x)
        stacked = np.stack([o.data for o in ad_out[-1]], axis=1)
        np.testing.assert_array_equal(out, stacked)

    def test_crossentropy_gradients_match(self):
        net = _active_network((8, 6, 5))
        x = _spikes((4, 12, 8), 0.35, 2)
        labels = np.array([0, 1, 2, 4])
        out, record = net.run(x, record=True)
        assert out.sum() > 0, "test needs spiking activity"
        loss = CrossEntropyRateLoss()
        value, grad_out = loss.value_and_grad(out, labels)
        result = backward(net, record, grad_out, mode="exact")

        weights = _ad_weights(net)
        ad_out = run_adaptive_reference(weights, x)
        logits = _count_logits(ad_out[-1], 10.0 / 12)
        ad_loss = cross_entropy_with_logits(logits, labels)
        assert float(ad_loss.data) == pytest.approx(value, abs=1e-12)
        ad_loss.backward()
        for manual, tensor in zip(result.weight_grads, weights):
            np.testing.assert_allclose(manual, tensor.grad.T, atol=1e-12)

    def test_vanrossum_gradients_match(self):
        net = _active_network((6, 5, 3))
        x = _spikes((2, 16, 6), 0.4, 3)
        targets = _spikes((2, 16, 3), 0.2, 4)
        out, record = net.run(x, record=True)
        loss = VanRossumLoss()
        value, grad_out = loss.value_and_grad(out, targets)
        result = backward(net, record, grad_out, mode="exact")

        weights = _ad_weights(net)
        ad_out = run_adaptive_reference(weights, x)
        ad_loss = van_rossum_loss(ad_out[-1], targets)
        assert float(ad_loss.data) == pytest.approx(value, rel=1e-12)
        ad_loss.backward()
        for manual, tensor in zip(result.weight_grads, weights):
            np.testing.assert_allclose(manual, tensor.grad.T, atol=1e-10)

    def test_input_gradient_matches(self):
        net = _active_network((5, 4, 3))
        x = _spikes((2, 10, 5), 0.4, 5)
        labels = np.array([0, 2])
        out, record = net.run(x, record=True)
        loss = CrossEntropyRateLoss()
        _, grad_out = loss.value_and_grad(out, labels)
        result = backward(net, record, grad_out)

        weights = _ad_weights(net)
        x_tensor = Tensor(x.copy(), requires_grad=True)
        # Feed the input through as a leaf tensor: emulate by treating the
        # first layer's input as x_tensor slices.
        ad_out = run_adaptive_reference(weights, x)
        # Reference path doesn't expose input grads; check finiteness and
        # shape of the manual input gradient instead.
        assert result.input_grad.shape == x.shape
        assert np.all(np.isfinite(result.input_grad))


class TestHardResetGradients:
    def test_gradients_match(self):
        net = _active_network((7, 5, 4), kind="hard_reset")
        x = _spikes((3, 13, 7), 0.4, 6)
        labels = np.array([1, 0, 3])
        out, record = net.run(x, record=True)
        loss = CrossEntropyRateLoss()
        value, grad_out = loss.value_and_grad(out, labels)
        result = backward(net, record, grad_out)

        weights = _ad_weights(net)
        ad_out = run_hard_reset_reference(weights, x)
        stacked = np.stack([o.data for o in ad_out[-1]], axis=1)
        np.testing.assert_array_equal(out, stacked)
        logits = _count_logits(ad_out[-1], 10.0 / 13)
        ad_loss = cross_entropy_with_logits(logits, labels)
        assert float(ad_loss.data) == pytest.approx(value, abs=1e-12)
        ad_loss.backward()
        for manual, tensor in zip(result.weight_grads, weights):
            np.testing.assert_allclose(manual, tensor.grad.T, atol=1e-12)


class TestTruncatedMode:
    def test_truncated_differs_from_exact(self):
        """The paper's eq. 13 drops the filter-state adjoints; on a net
        with real temporal credit assignment the two gradients differ."""
        net = _active_network((6, 5, 4))
        x = _spikes((2, 18, 6), 0.4, 7)
        labels = np.array([0, 3])
        out, record = net.run(x, record=True)
        loss = CrossEntropyRateLoss()
        _, grad_out = loss.value_and_grad(out, labels)
        exact = backward(net, record, grad_out, mode="exact")
        truncated = backward(net, record, grad_out, mode="truncated")
        diffs = [np.max(np.abs(a - b)) for a, b in
                 zip(exact.weight_grads, truncated.weight_grads)]
        assert max(diffs) > 0.0

    def test_same_sign_correlation(self):
        """Truncation biases magnitude but the descent directions should
        correlate strongly (else the paper couldn't have trained with it)."""
        net = _active_network((6, 5, 4))
        x = _spikes((4, 18, 6), 0.4, 8)
        labels = np.array([0, 3, 1, 2])
        out, record = net.run(x, record=True)
        loss = CrossEntropyRateLoss()
        _, grad_out = loss.value_and_grad(out, labels)
        exact = backward(net, record, grad_out, mode="exact")
        truncated = backward(net, record, grad_out, mode="truncated")
        for a, b in zip(exact.weight_grads, truncated.weight_grads):
            av, bv = a.ravel(), b.ravel()
            denom = np.linalg.norm(av) * np.linalg.norm(bv)
            if denom > 0:
                assert np.dot(av, bv) / denom > 0.5

    def test_unknown_mode(self):
        net = _active_network((4, 3))
        x = _spikes((1, 5, 4), 0.5, 9)
        out, record = net.run(x, record=True)
        with pytest.raises(ValueError):
            backward(net, record, np.zeros_like(out), mode="rtrl")


class TestValidation:
    def test_grad_shape_mismatch(self):
        net = _active_network((4, 3))
        x = _spikes((1, 5, 4), 0.5, 10)
        out, record = net.run(x, record=True)
        with pytest.raises(ShapeError):
            backward(net, record, np.zeros((1, 5, 2)))
