"""Documentation checker: links must resolve, module references must import.

Walks README.md and docs/*.md and fails if

* any relative markdown link targets a missing file (web URLs and pure
  anchors are ignored), or
* any dotted ``repro.*`` reference in the prose does not resolve to an
  importable module (plus, optionally, an attribute chain on it — e.g.
  ``repro.serve.server.ModelServer.poll``).  Docs drift silently when a
  module is renamed; imports do not.
* any catalog table drifted from the code it documents (via the
  linter's phase-1 project facts, see ``docs/static_analysis.md``):
  the ``docs/observability.md`` instrument/event tables must name only
  instruments the code actually emits, the ``docs/robustness.md`` site
  table must match ``repro.common.faults.KNOWN_SITES`` exactly, and
  the ``docs/experiments.md`` column reference must match the fixed
  run-table schema in both directions.

This is the `make docs` target and runs in CI — it keeps the README's
promise that every paper artifact is reachable from it, and that every
module path the docs name still exists.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")
MODULE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
BACKTICK = re.compile(r"`([^`]+)`")
COLUMN_TOKEN = re.compile(r"^[a-z][a-z0-9_]*$")

REPO = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tools"))

from lint_smoke import load_lint  # noqa: E402  (needs tools/ on path)


def check_links(markdown: Path) -> list[str]:
    errors = []
    text = markdown.read_text(encoding="utf-8")
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (markdown.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{markdown.relative_to(REPO)}: broken link {target}")
    return errors


def _reference_resolves(ref: str, cache: dict[str, bool]) -> bool:
    """Whether ``ref`` names an importable module / attribute chain.

    Tries the longest importable module prefix, then walks the remaining
    components as attributes (classes, functions, methods, constants).
    """
    if ref in cache:
        return cache[ref]
    parts = ref.split(".")
    resolved = False
    for split in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        resolved = True
        for attr in parts[split:]:
            if not hasattr(obj, attr):
                resolved = False
                break
            obj = getattr(obj, attr)
        break
    cache[ref] = resolved
    return resolved


def check_module_refs(markdown: Path, cache: dict[str, bool]) -> list[str]:
    text = markdown.read_text(encoding="utf-8")
    return [
        f"{markdown.relative_to(REPO)}: unresolvable module reference {ref}"
        for ref in sorted(set(MODULE.findall(text)))
        if not _reference_resolves(ref, cache)
    ]


def _table_first_cells(text: str, header: str) -> list[str]:
    """First-cell contents of every row of tables whose header's first
    cell is exactly ``header``."""
    cells: list[str] = []
    active = False
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped.startswith("|"):
            active = False
            continue
        first = stripped.strip("|").split("|", 1)[0].strip()
        if set(first) <= {"-", ":", " "}:
            continue  # |---| separator
        if not active:
            active = first == header
            continue
        cells.append(first)
    return cells


def _backtick_tokens(cells: list[str], pattern: re.Pattern) -> set[str]:
    return {token for cell in cells
            for token in BACKTICK.findall(cell)
            if pattern.match(token)}


def check_catalogs() -> list[str]:
    """Validate the docs' catalog tables against the code's live
    catalogs, through the linter's phase-1 facts."""
    lint = load_lint()
    facts = lint.build_facts(root=REPO)
    errors: list[str] = []

    # docs/observability.md: every documented exact instrument/event
    # name must still be emitted somewhere under src/repro.  (The code
    # side — every emission is documented — is lint rule `instruments`.)
    emitted: set[str] = set()
    prefixes: set[str] = set()
    for mod in facts.src_modules():
        emitted |= mod.site_literals
        for inst in mod.instruments:
            (prefixes if inst.prefix else emitted).add(inst.name)
    catalog = facts.instrument_catalog
    for name in sorted(catalog.exact):
        if name in emitted or any(name.startswith(p) for p in prefixes):
            continue
        errors.append(f"docs/observability.md: catalogued instrument "
                      f"`{name}` is not emitted anywhere in src/repro")
    for prefix in sorted(catalog.wildcard_prefixes):
        if not any(n.startswith(prefix) for n in emitted | prefixes):
            errors.append(f"docs/observability.md: wildcard entry "
                          f"`{prefix}*` matches no emitted instrument")

    # docs/robustness.md: the site table is KNOWN_SITES, exactly.
    site_pattern = lint.facts.SITE_RE
    robustness = (REPO / "docs" / "robustness.md").read_text("utf-8")
    documented_sites = _backtick_tokens(
        _table_first_cells(robustness, "site"), site_pattern)
    known = set(facts.known_sites)
    for site in sorted(documented_sites - known):
        errors.append(f"docs/robustness.md: documented fault site "
                      f"`{site}` is not in KNOWN_SITES")
    for site in sorted(known - documented_sites):
        errors.append(f"docs/robustness.md: KNOWN_SITES entry `{site}` "
                      f"is missing from the site table")

    # Column-reference tables (docs/experiments.md is the authoritative
    # one, checked both ways; any other doc's `column` table must be a
    # subset of the schema).
    schema = set(facts.run_table_columns)
    for doc in sorted((REPO / "docs").glob("*.md")):
        documented = _backtick_tokens(
            _table_first_cells(doc.read_text("utf-8"), "column"),
            COLUMN_TOKEN)
        rel = doc.relative_to(REPO)
        for column in sorted(documented - schema):
            errors.append(f"{rel}: documented column `{column}` is not "
                          f"in the run-table schema")
        if doc.name == "experiments.md":
            for column in sorted(schema - documented):
                errors.append(f"{rel}: run-table column `{column}` is "
                              f"missing from the column reference")
    return errors


def main() -> int:
    sources = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    missing = [str(s.relative_to(REPO)) for s in sources if not s.exists()]
    if missing:
        print("missing documentation files:", ", ".join(missing))
        return 1
    cache: dict[str, bool] = {}
    errors = [
        error
        for source in sources
        for error in (*check_links(source),
                      *check_module_refs(source, cache))
    ]
    errors.extend(check_catalogs())
    for error in errors:
        print(error)
    checked = len(sources)
    refs = len(cache)
    if errors:
        print(f"FAIL: {len(errors)} problem(s) across {checked} files")
        return 1
    print(f"OK: all local links resolve, all {refs} repro.* references "
          f"import, and all catalog tables match the code across "
          f"{checked} documentation files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
