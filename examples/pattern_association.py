"""Spatial-temporal pattern association (paper Section V-B, Fig. 5).

The network hears a spoken digit (a synthetic-SHD sample on 700 input
trains) and must *draw* the matching handwritten digit as a precisely
timed output spike raster — pixel (x, y) of the glyph becomes a spike in
output train y at time x.  Training uses the van Rossum kernel loss of
eqs. 15-16, demonstrating that the algorithm learns exact spike timings,
not just rates.

Run:  python examples/pattern_association.py           (reduced scale)
      REPRO_PROFILE=full python examples/pattern_association.py
"""

import os

import numpy as np

from repro import SpikingNetwork, Trainer, TrainerConfig, VanRossumLoss
from repro.analysis import trace_correlation
from repro.common.asciiplot import raster_plot
from repro.core.calibration import calibrate_firing
from repro.data import AssociationConfig, generate_association
from repro.data.association import paper_association_config


def main():
    full = os.environ.get("REPRO_PROFILE", "ci").lower() == "full"
    if full:
        data_cfg = paper_association_config()
        hidden = (500, 500)
        epochs, lr = 60, 1e-3
    else:
        data_cfg = AssociationConfig(n_samples=120, steps=100,
                                     target_trains=96, glyph_size=64)
        hidden = (128, 128)
        epochs, lr = 40, 3e-3

    print(f"generating {data_cfg.n_samples} (spoken digit -> glyph) pairs...")
    dataset = generate_association(data_cfg, rng=0)

    network = SpikingNetwork(
        (data_cfg.input_channels, *hidden, data_cfg.target_trains), rng=2)
    calibrate_firing(network, dataset.inputs[:32], target_rate=0.08)

    loss = VanRossumLoss(tau_m=4.0, tau_s=1.0)      # Table I kernel
    trainer = Trainer(network, loss, TrainerConfig(
        epochs=epochs, batch_size=64, learning_rate=lr, optimizer="adamw"),
        rng=3)

    before = trainer.evaluate(dataset.inputs, dataset.targets)["van_rossum"]
    trainer.fit(dataset.inputs, dataset.targets, verbose=True)
    after = trainer.evaluate(dataset.inputs, dataset.targets)["van_rossum"]

    sample = 0
    digit = dataset.metadata["digit_labels"][sample]
    outputs, _ = network.run(dataset.inputs[sample:sample + 1])
    print(f"\n=== sample 0: spoken digit {digit} ===")
    print(raster_plot(dataset.inputs[sample].T, height=12, width=70,
                      title="input: cochlea spike raster"))
    print(raster_plot(dataset.targets[sample].T, height=14, width=70,
                      title=f"target: handwritten '{digit}' as spikes"))
    print(raster_plot(outputs[0].T, height=14, width=70,
                      title="network output after training"))

    own = np.mean([
        trace_correlation(network.run(dataset.inputs[i:i + 1])[0][0],
                          dataset.targets[i])
        for i in range(12)
    ])
    print(f"\nvan Rossum distance: before {before:.2f} -> after {after:.2f}")
    print(f"mean trace correlation with own target: {own:.3f}")


if __name__ == "__main__":
    main()
