"""Fig. 8 recovery — hardware-aware training closes the codesign loop.

The post-hoc story (bench_fig8_variation) measures what mapping costs; this
bench measures what putting the crossbar model *inside* the training loop
buys back.  Asserted shape: at the trained operating point (4-bit, 10 %
variation) the hardware-aware model maps at least as well as the ideal
model does post-hoc, and the recovery is non-trivial on average across the
variation sweep.
"""

from conftest import bench_experiment


def test_fig8_aware_recovery(benchmark):
    result = bench_experiment(benchmark, "fig8-aware")
    summary = result.summary

    # The aware model is still a competent classifier in software.
    assert summary["aware_software"] > 0.5 * summary["baseline"]

    # At the trained operating point, hardware-aware mapping recovers
    # accuracy over post-hoc mapping (same programming seeds).
    assert summary["recovery_at_point"] >= 0.0

    # And the recovery does not come at a catastrophic cost elsewhere in
    # the sweep.
    assert summary["recovery_mean"] > -0.05
