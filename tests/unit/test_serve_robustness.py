"""Degradation-ladder tests for the serving layer (docs/robustness.md).

Each rung is pinned under the seeded fault plane
(:mod:`repro.common.faults`): request-TTL shedding, idle-session
reaping, per-request error isolation, whole-tick retry, the
hardware→ideal weight fallback, and the shadow circuit breaker.  The
load-bearing invariant throughout: a failed or shed chunk never
advances its session's stream state, and every recovered chunk's
outputs are bitwise-identical to a fault-free server's.
"""

import numpy as np
import pytest

from repro.common import faults
from repro.common.errors import StateError
from repro.common.faults import FaultPlan, FaultRule
from repro.core import SpikingNetwork
from repro.serve import ModelServer

SIZES = (24, 20, 12)


def make_net(seed=1):
    net = SpikingNetwork(SIZES, rng=seed)
    for layer in net.layers:
        layer.weight *= 5.0
    return net


def make_chunk(steps=6, seed=0, density=0.15):
    rng = np.random.default_rng(seed)
    return (rng.random((steps, SIZES[0])) < density).astype(np.float64)


def make_mapped(net, variation=0.2, seed=3):
    from repro.hardware import HardwareMappedNetwork, RRAMDeviceConfig

    device = RRAMDeviceConfig(levels=16, variation=variation)
    return HardwareMappedNetwork(net, device, rng=seed)


def make_server(net=None, **kwargs):
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_wait_ms", 1.0)
    kwargs.setdefault("queue_limit", 16)
    return ModelServer(net if net is not None else make_net(), **kwargs)


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


class TestRequestTtl:
    def test_expired_request_is_shed_not_served(self):
        server = make_server(max_wait_ms=10_000.0, request_ttl_ms=50.0)
        sid = server.open_session(now=0.0)
        ticket = server.submit(sid, make_chunk(), now=0.0)
        assert ticket.deadline == pytest.approx(0.05)
        assert server.poll(now=0.2) == 0
        assert ticket.done and ticket.expired and not ticket.ok
        assert server.stats["expired"] == 1
        assert server.stats["completed"] == 0

    def test_shedding_leaves_session_state_untouched(self):
        chunk = make_chunk()
        server = make_server(max_wait_ms=10_000.0, request_ttl_ms=50.0)
        sid = server.open_session(now=0.0)
        server.submit(sid, chunk, now=0.0)
        server.poll(now=0.2)   # sheds the queued chunk unserved
        outputs = server.infer(sid, chunk, now=0.2)
        clean = make_server()
        expected = clean.infer(clean.open_session(now=0.0), chunk, now=0.0)
        assert np.array_equal(outputs, expected)

    def test_ttl_validation(self):
        with pytest.raises(ValueError, match="request_ttl_ms"):
            make_server(request_ttl_ms=0.0)
        with pytest.raises(ValueError, match="session_ttl_s"):
            make_server(session_ttl_s=-1.0)


class TestSessionReaping:
    def test_poll_reaps_idle_sessions(self):
        server = make_server(session_ttl_s=10.0)
        sid = server.open_session(now=0.0)
        server.poll(now=5.0)
        assert server.sessions == 1   # not idle long enough yet
        server.poll(now=20.0)
        assert server.sessions == 0
        assert server.stats["reaped_sessions"] == 1
        with pytest.raises(StateError, match="unknown or closed"):
            server.submit(sid, make_chunk(), now=20.0)

    def test_submit_to_expired_session_raises_lazily(self):
        server = make_server(session_ttl_s=10.0)
        sid = server.open_session(now=0.0)
        with pytest.raises(StateError, match="expired after 10s idle"):
            server.submit(sid, make_chunk(), now=25.0)
        assert server.stats["reaped_sessions"] == 1
        assert server.sessions == 0

    def test_session_with_queued_work_is_not_reaped(self):
        server = make_server(max_wait_ms=10_000.0, session_ttl_s=10.0)
        sid = server.open_session(now=0.0)
        server.submit(sid, make_chunk(), now=0.0)
        server.poll(now=20.0)
        assert server.sessions == 1
        assert server.stats["reaped_sessions"] == 0


class TestRequestIsolation:
    def test_poisoned_request_fails_alone_and_neighbours_complete(self):
        chunks = [make_chunk(seed=i) for i in range(3)]
        server = make_server(max_batch=3)
        sids = [server.open_session(now=0.0) for _ in range(3)]
        tickets = [server.submit(sid, chunk, now=0.0)
                   for sid, chunk in zip(sids, chunks)]
        # The second per-request draw fires: exactly request 1 poisoned.
        plan = FaultPlan((FaultRule("serve.request.raise", nth=(2,)),),
                         seed=0)
        with faults.active(plan):
            server.flush(now=0.0)

        assert tickets[0].ok and tickets[0].retried
        assert tickets[2].ok and tickets[2].retried
        assert tickets[1].done and not tickets[1].ok
        assert "serve.request.raise" in tickets[1].error
        assert server.stats["failed"] == 1
        assert server.stats["retried"] == 2

        # The survivors are bitwise what a fault-free solo serve produces.
        for i in (0, 2):
            clean = make_server()
            expected = clean.infer(clean.open_session(now=0.0), chunks[i],
                                   now=0.0)
            assert np.array_equal(tickets[i].outputs, expected)

    def test_poisoned_session_resumes_from_where_it_stood(self):
        chunk = make_chunk(seed=1)
        server = make_server()
        sid = server.open_session(now=0.0)
        ticket = server.submit(sid, chunk, now=0.0)
        plan = FaultPlan((FaultRule("serve.request.raise", nth=(1,)),),
                         seed=0)
        with faults.active(plan):
            server.flush(now=0.0)
        assert not ticket.ok and server.stats["failed"] == 1

        # The failed chunk never advanced the stream: resubmitting it
        # serves the session's true next chunk, bitwise.
        outputs = server.infer(sid, chunk, now=0.0)
        clean = make_server()
        expected = clean.infer(clean.open_session(now=0.0), chunk, now=0.0)
        assert np.array_equal(outputs, expected)


class TestTickRetry:
    def test_failed_tick_retries_every_chunk_bitwise(self):
        chunks = [make_chunk(seed=i) for i in range(2)]
        server = make_server(max_batch=2)
        sids = [server.open_session(now=0.0) for _ in range(2)]
        tickets = [server.submit(sid, chunk, now=0.0)
                   for sid, chunk in zip(sids, chunks)]
        plan = FaultPlan((FaultRule("serve.tick.raise", nth=(1,)),), seed=0)
        with faults.active(plan):
            server.flush(now=0.0)

        assert all(t.ok and t.retried for t in tickets)
        assert server.stats["retried"] == 2
        assert server.stats["failed"] == 0
        for ticket, chunk in zip(tickets, chunks):
            clean = make_server()
            expected = clean.infer(clean.open_session(now=0.0), chunk,
                                   now=0.0)
            assert np.array_equal(ticket.outputs, expected)


class TestWeightFallback:
    def test_stale_hardware_weights_degrade_to_ideal(self):
        net = make_net()
        chunk = make_chunk()
        server = make_server(net, hardware=make_mapped(net))
        sid = server.open_session(now=0.0)
        plan = FaultPlan((FaultRule("hw.weights.stale", nth=(1,)),), seed=0)
        with faults.active(plan):
            ticket = server.submit(sid, chunk, now=0.0)
            server.flush(now=0.0)
            assert ticket.ok and ticket.degraded
            assert server.stats["weight_fallbacks"] == 1
            assert server.stats["degraded_chunks"] == 1
            # Degraded chunks are served through the ideal weights.
            ideal = make_server(make_net())
            expected = ideal.infer(ideal.open_session(now=0.0), chunk,
                                   now=0.0)
            assert np.array_equal(ticket.outputs, expected)
            # The next tick's weight read succeeds: back to hardware.
            second = server.submit(sid, make_chunk(seed=9), now=0.0)
            server.flush(now=0.0)
        assert second.ok and not second.degraded
        assert server.stats["weight_fallbacks"] == 1


class TestShadowBreaker:
    def test_breaker_trips_after_threshold_and_primary_survives(self):
        net = make_net()
        server = make_server(net, hardware=make_mapped(net), shadow=True)
        assert server.shadow_threshold == 3
        sid = server.open_session(now=0.0)
        chunks = [make_chunk(seed=i) for i in range(4)]
        plan = FaultPlan((FaultRule("serve.shadow.raise", nth=(1, 2, 3)),),
                         seed=0)
        tickets = []
        with faults.active(plan):
            for chunk in chunks:
                ticket = server.submit(sid, chunk, now=0.0)
                server.flush(now=0.0)
                tickets.append(ticket)

        assert all(t.ok for t in tickets)
        assert server.stats["shadow_failures"] == 3
        assert server.shadow_disabled
        # Tripped before any shadow pass ran — and the 4th tick, whose
        # fault schedule is exhausted, must not re-enable the canary.
        assert server.stats["shadow_chunks"] == 0
        assert all(t.divergence is None for t in tickets)

        # The primary stream is untouched by the canary dying: the full
        # 4-chunk session equals an ideal server's, bitwise.
        clean = make_server(make_net())
        csid = clean.open_session(now=0.0)
        for ticket, chunk in zip(tickets, chunks):
            expected = clean.infer(csid, chunk, now=0.0)
            assert np.array_equal(ticket.outputs, expected)

    def test_shadow_survives_below_threshold(self):
        net = make_net()
        server = make_server(net, hardware=make_mapped(net), shadow=True,
                             shadow_threshold=2)
        sid = server.open_session(now=0.0)
        plan = FaultPlan((FaultRule("serve.shadow.raise", nth=(1,)),), seed=0)
        with faults.active(plan):
            first = server.submit(sid, make_chunk(seed=0), now=0.0)
            server.flush(now=0.0)
            second = server.submit(sid, make_chunk(seed=1), now=0.0)
            server.flush(now=0.0)
        assert first.ok and first.divergence is None
        assert second.ok and second.divergence is not None
        assert server.stats["shadow_failures"] == 1
        assert not server.shadow_disabled
        assert server.stats["shadow_chunks"] == 1


class TestFleetReplicaKill:
    """The fleet rung of the degradation ladder (docs/fleet.md): losing
    a replica mid-load degrades availability bounded, never silently —
    its sessions fail with a reconnect hint, re-routed sessions land on
    survivors, and the fleet-wide books stay conserved."""

    def _fleet(self, **kwargs):
        from repro.serve import Fleet

        kwargs.setdefault("engine", "step")
        kwargs.setdefault("max_batch", 8)
        kwargs.setdefault("max_wait_ms", 0.5)
        kwargs.setdefault("queue_limit", 64)
        return Fleet(make_net(), replicas=2, seed=9, **kwargs)

    def test_kill_mid_load_holds_the_availability_floor(self):
        from repro.serve.loadgen import TenantLoad, open_loop_fleet

        plan = FaultPlan(
            (FaultRule("fleet.replica.down", probability=1.0,
                       where={"replica": 0}, times=1),),
            seed=7)
        fleet = self._fleet()
        try:
            with faults.active(plan):
                # open_loop_fleet reconnects StateError'd sessions via
                # the router and runs fleet.check_invariants() at
                # drain: a lost ticket raises out of this call.
                report = open_loop_fleet(
                    fleet, tenants=(TenantLoad("t0", sessions=6),),
                    requests=200, rate_rps=500.0, chunk_steps=6, rng=9)
            stats = fleet.stats
        finally:
            fleet.close()
        assert report.replicas_down == 1
        assert report.live_replicas == 1
        assert stats["lost_sessions"] >= 1          # re-routed sessions
        aggregate = report.aggregate
        assert aggregate.availability >= 0.95
        assert aggregate.completed > 0              # survivor kept serving
        resolved = (aggregate.completed + aggregate.rejected
                    + aggregate.requests_failed
                    + aggregate.requests_expired)
        assert resolved == aggregate.submitted      # no lost tickets

    def test_whole_fleet_down_fails_cleanly(self):
        plan = FaultPlan(
            (FaultRule("fleet.replica.down", probability=1.0),),
            seed=7)
        fleet = self._fleet()
        try:
            sid = fleet.open_session("t0", now=0.0)
            fleet.submit(sid, make_chunk(), now=0.0)
            with faults.active(plan):
                fleet.poll(now=0.1)    # housekeeping kills both replicas
            assert fleet.live_replicas == 0
            with pytest.raises(StateError, match="no live replica"):
                fleet.open_session("t0", now=0.2)
            fleet.check_invariants()   # books survive total loss
        finally:
            fleet.close()
