"""Project-aware static analysis for this repository.

The linter enforces, at parse time, the invariants the rest of the repo
only checks at run time: seeded determinism (``RandomState.child``
streams and injectable timers are the only sanctioned sources of
nondeterminism), the fixed fault-site catalog
(``repro.common.faults.KNOWN_SITES``), the ``repro.obs`` instrument
namespace (catalogued in ``docs/observability.md``), the layer DAG
(``common <- obs <- core <- {autograd, data, hardware, analysis} <-
runtime <- serve <- experiments``), disciplined concurrency patterns,
and the fixed run-table schema (``repro.common.runtable``).

Two phases (see :mod:`repro.analysis.lint.facts`):

1. **facts** — every file is parsed once into cross-file *project
   facts*: the import graph, every fault-site string, every instrument
   registration and trace-event emission, every RNG / wall-clock call
   site, lock-usage patterns, run-table column references, and the
   catalogs those facts are checked against.
2. **rules** — each rule (:mod:`repro.analysis.lint.rules`) is a pure
   function over the facts; it never re-reads source.

The engine is **self-hosting** (it lints itself — this package is
scanned like any other), **zero-dependency** (stdlib only; it must not
import numpy so it can run before the scientific stack exists), and
deterministic (stable finding order, no timestamps).

Entry points: ``python -m repro.analysis`` (CLI), ``make lint`` /
``make lint-baseline``, ``tools/lint_smoke.py`` (the CI gate), and
:func:`repro.analysis.lint.engine.run_lint` for programmatic use.
Workflow documentation lives in ``docs/static_analysis.md``.
"""

from .engine import (
    LintResult,
    load_baseline,
    run_lint,
    write_baseline,
)
from .facts import LintConfig, ProjectFacts, build_facts
from .rules import RULES, Finding, Rule

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "ProjectFacts",
    "RULES",
    "Rule",
    "build_facts",
    "load_baseline",
    "run_lint",
    "write_baseline",
]
