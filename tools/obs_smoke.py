#!/usr/bin/env python
"""Observability gates: trace schema, exporter parsing, overhead budget.

``make obs-smoke`` (and the ``obs-smoke`` CI job) proves the telemetry
plane (:mod:`repro.obs`, docs/observability.md) holds its contract:

1. **Artifact gate** — the smoke preset run with telemetry on exports
   one ``.trace.jsonl`` + one ``.prom`` per run into ``--trace-dir``;
   every trace must pass the JSONL schema validator, every snapshot the
   Prometheus text parser, and every serving row must fill the
   ``queue_wait_p95_ms`` / ``tick_compute_p95_ms`` table columns.
2. **Chaos trace gate** — the chaos preset's traces must be
   self-explaining: exactly one ``fault.injected`` event per fault the
   run table counted, and every ticket lifecycle reconstructed by
   ``tools/trace_view.py`` must reach a terminal state.
3. **Pool trace gate** — a seeded worker crash must surface as a
   ``pool.respawn`` event carrying the worker id and new generation,
   with the pool's registry counting the dispatch and the respawn.
4. **Overhead gate** — telemetry-on wall time over the smoke preset
   must stay within ``OVERHEAD_BUDGET`` of telemetry-off (interleaved
   best-of-``--repeats`` each); ``--bench-json`` pins the measured
   ratio into ``BENCH_serving.json``'s ``observability`` section.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import obs  # noqa: E402
from repro.common import faults  # noqa: E402
from repro.common.benchcfg import bench_inputs, bench_network  # noqa: E402

#: Telemetry-on / telemetry-off wall-time ratio ceiling (the pinned
#: acceptance number: <= 5% measured overhead).
OVERHEAD_BUDGET = 1.05


def artifact_gate(trace_dir: str) -> list[str]:
    """Smoke preset with telemetry on: every export must validate."""
    from repro.experiments.harness import run_scenarios, smoke_scenarios

    table = run_scenarios(smoke_scenarios(), trace_dir=trace_dir)
    errors = []
    traces = sorted(Path(trace_dir).glob("*.trace.jsonl"))
    proms = sorted(Path(trace_dir).glob("*.prom"))
    if len(traces) != len(table):
        errors.append(f"expected one trace per run ({len(table)}), "
                      f"found {len(traces)} in {trace_dir}")
    if len(proms) != len(table):
        errors.append(f"expected one .prom per run ({len(table)}), "
                      f"found {len(proms)} in {trace_dir}")
    for path in traces:
        try:
            records = obs.parse_jsonl(path.read_text(encoding="utf-8"))
        except ValueError as error:
            errors.append(f"{path.name}: invalid trace — {error}")
            continue
        if not records:
            errors.append(f"{path.name}: trace is empty")
    for path in proms:
        try:
            samples = obs.parse_prometheus(
                path.read_text(encoding="utf-8"))
        except ValueError as error:
            errors.append(f"{path.name}: invalid snapshot — {error}")
            continue
        if not samples:
            errors.append(f"{path.name}: snapshot is empty")
    for row in table.by_kind("serving"):
        for column in ("queue_wait_p95_ms", "tick_compute_p95_ms"):
            if row[column] is None:
                errors.append(f"{row['run_id']}: {column} is empty")
    print(f"artifact gate: {len(traces)} traces + {len(proms)} snapshots "
          f"validated {'ok' if not errors else 'FAIL'}")
    return errors


def chaos_trace_gate(trace_dir: str) -> list[str]:
    """Chaos traces: one event per injected fault, no lost lifecycles."""
    sys.path.insert(0, os.path.dirname(__file__))
    from trace_view import _TERMINAL, load_trace, ticket_lifecycles

    from repro.experiments.harness import chaos_scenarios, run_scenarios

    table = run_scenarios(chaos_scenarios(), trace_dir=trace_dir)
    errors = []
    for row in table.by_kind("chaos"):
        slug = row["run_id"].replace("/", "__")
        path = Path(trace_dir) / f"{slug}.trace.jsonl"
        if not path.exists():
            errors.append(f"{row['run_id']}: no trace exported")
            continue
        records = load_trace(path)
        fired = sum(1 for r in records
                    if r["type"] == "event" and r["name"] == "fault.injected")
        injected = row["faults_injected"] or 0
        if fired != injected:
            errors.append(
                f"{row['run_id']}: trace has {fired} fault.injected "
                f"events but the run table counted {injected}")
        lifecycles = ticket_lifecycles(records)
        if len(lifecycles) != row["requests"]:
            errors.append(
                f"{row['run_id']}: trace reconstructs {len(lifecycles)} "
                f"ticket lifecycles, expected {row['requests']}")
        unresolved = [
            request for request, events in lifecycles.items()
            if not any(e["name"] in _TERMINAL for e in events)
        ]
        if unresolved:
            errors.append(
                f"{row['run_id']}: {len(unresolved)} tickets never "
                f"reached a terminal state (e.g. #{unresolved[0]})")
    print(f"chaos trace gate: {len(table)} runs "
          f"{'ok' if not errors else 'FAIL'}")
    return errors


def pool_trace_gate() -> list[str]:
    """A seeded crash must emit a pool.respawn event + registry counts."""
    from repro.runtime.pool import WorkerPool

    net = bench_network(sizes=(64, 32, 10), seed=0)
    x = bench_inputs(8, n_in=64)
    plan = faults.FaultPlan(
        (faults.FaultRule("pool.worker.crash", nth=(1,),
                          where={"worker": 0, "generation": 0}),),
        seed=7)
    telemetry = obs.Telemetry()
    with obs.active(telemetry), faults.active(plan):
        pool = WorkerPool(net, workers=2)
        try:
            pool.run_sharded(x, batch_size=4)
            stats = pool.stats
        finally:
            pool.close()
    errors = []
    respawns = [r for r in telemetry.tracer.records
                if r["type"] == "event" and r["name"] == "pool.respawn"]
    if not respawns:
        errors.append("no pool.respawn event after an injected crash")
    for event in respawns:
        if "worker" not in event["attrs"] \
                or "generation" not in event["attrs"]:
            errors.append(f"pool.respawn event missing worker/generation "
                          f"attrs: {event['attrs']}")
    if stats["restarts"] < 1 or stats["respawns"].get(0, 0) < 1:
        errors.append(f"pool registry missed the respawn: {stats}")
    if stats["dispatches"] < 1:
        errors.append(f"pool registry missed the dispatch: {stats}")
    print(f"pool trace gate: {len(respawns)} respawn event(s), "
          f"stats={stats} {'ok' if not errors else 'FAIL'}")
    return errors


def _measure_overhead(repeats: int) -> tuple[float, float]:
    """Interleaved best-of-``repeats`` wall time per mode: (off, on).

    Scheduler/GC noise only ever *inflates* a sample, so the per-mode
    minimum converges to the true run time from above; alternating the
    mode order each repetition keeps slow machine drift from biasing
    one mode; collection is forced before (and disabled during) each
    sample so telemetry's allocations don't charge a GC cycle to the
    telemetry-on runs.
    """
    import gc

    from repro.experiments.harness import run_scenarios, smoke_scenarios

    def run_once(trace_dir) -> float:
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            run_scenarios(smoke_scenarios(), trace_dir=trace_dir)
            return time.perf_counter() - start
        finally:
            gc.enable()

    run_once(None)  # warm caches (imports, workload synthesis)
    off_s, on_s = [], []
    # The throwaway traces go to tmpfs when one exists: the gate
    # measures telemetry cost, not disk write latency.
    shm = "/dev/shm"
    tmp_base = shm if os.path.isdir(shm) and os.access(shm, os.W_OK) \
        else None
    with tempfile.TemporaryDirectory(dir=tmp_base) as tmp:
        for index in range(repeats):
            on_dir = os.path.join(tmp, str(index))
            if index % 2:
                on_s.append(run_once(on_dir))
                off_s.append(run_once(None))
            else:
                off_s.append(run_once(None))
                on_s.append(run_once(on_dir))
    return min(off_s), min(on_s)


def overhead_gate(repeats: int, bench_json: str | None) -> list[str]:
    """Telemetry-on / telemetry-off wall-time ratio on the smoke preset."""
    # Noise only ever inflates a wall-time sample, so the global
    # per-mode minimum converges to the true run time from above —
    # accumulate it across bounded retry attempts instead of trusting
    # any single measurement window on a noisy machine.
    off = on = float("inf")
    total = 0
    for attempt_repeats in (repeats, repeats, 2 * repeats):
        attempt_off, attempt_on = _measure_overhead(attempt_repeats)
        off = min(off, attempt_off)
        on = min(on, attempt_on)
        total += attempt_repeats
        if on / off <= OVERHEAD_BUDGET:
            break
        print(f"overhead gate: ratio {on / off:.4f} over budget after "
              f"{total} repeats/mode; re-measuring")
    ratio = on / off
    print(f"overhead gate: off={off:.3f}s on={on:.3f}s "
          f"ratio={ratio:.4f} (budget {OVERHEAD_BUDGET}, "
          f"{total} repeats/mode)")
    errors = []
    if ratio > OVERHEAD_BUDGET:
        errors.append(f"telemetry overhead ratio {ratio:.4f} exceeds "
                      f"{OVERHEAD_BUDGET}")
    if bench_json:
        path = Path(bench_json)
        report = json.loads(path.read_text(encoding="utf-8")) \
            if path.exists() else {}
        report["observability"] = {
            "overhead_ratio": round(ratio, 4),
            "budget": OVERHEAD_BUDGET,
            "telemetry_off_s": round(off, 3),
            "telemetry_on_s": round(on, 3),
            "repeats": total,
        }
        path.write_text(json.dumps(report, indent=2, sort_keys=False)
                        + "\n", encoding="utf-8")
        print(f"pinned observability section into {bench_json}")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace-dir", default="traces",
                        help="directory for the exported smoke/chaos "
                             "telemetry artifacts (CI uploads it)")
    parser.add_argument("--repeats", type=int, default=11,
                        help="overhead measurement repetitions per mode")
    parser.add_argument("--bench-json", default=None,
                        help="BENCH_serving.json path to pin the measured "
                             "overhead into (omit to skip)")
    args = parser.parse_args(argv)
    smoke_dir = os.path.join(args.trace_dir, "smoke")
    chaos_dir = os.path.join(args.trace_dir, "chaos")
    errors = artifact_gate(smoke_dir)
    errors += chaos_trace_gate(chaos_dir)
    errors += pool_trace_gate()
    errors += overhead_gate(args.repeats, args.bench_json)
    if errors:
        print(f"\nobs-smoke: {len(errors)} gate failure(s)")
        for error in errors:
            print(f"  FAIL {error}")
        return 1
    print("\nobs-smoke: all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
