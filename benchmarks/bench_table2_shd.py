"""Table II, SHD rows — the paper's headline ablation.

Paper: 85.69 % adaptive vs 26.36 % hard reset — a catastrophic collapse
on the timing-rich dataset, versus only ~3 pts on N-MNIST.  Shape
asserted here: the adaptive model learns the 20-class task far above
chance; the hard-reset swap does not help and the drop (in relative error
terms) exceeds the N-MNIST drop; the forward-Euler reading collapses to
near chance (the regime of the paper's 26.36 %).
"""

from conftest import bench_experiment, run_once


def test_table2_shd(benchmark):
    result = bench_experiment(benchmark, "table2-shd")
    summary = result.summary
    chance = summary["chance"]               # 5 % for 20 classes

    # Adaptive model: far above chance (paper: 85.69 %).
    assert summary["accuracy"] > 8 * chance

    # Hard reset must not outperform the dynamics it was trained with.
    assert summary["accuracy_hr"] <= summary["accuracy"] + 0.03

    # Forward-Euler reading: collapse toward chance (paper's 26.36 % is in
    # this regime — between our two readings).
    assert summary["accuracy_hr_euler"] < 5 * chance
    assert summary["accuracy_hr_euler"] <= summary["accuracy_hr"]


def test_timing_rich_data_hurt_more_than_spatial(benchmark):
    """The cross-dataset shape of Table II: the hard-reset penalty on SHD
    (timing-rich) exceeds the penalty on N-MNIST (spatially separable),
    in relative-error terms."""
    shd = run_once("table2-shd").summary
    nmnist = run_once("table2-nmnist").summary

    def relative_error_increase(summary):
        base_error = 1.0 - summary["accuracy"]
        hr_error = 1.0 - summary["accuracy_hr"]
        return (hr_error + 1e-9) / (base_error + 1e-9)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    shd_drop = shd["accuracy"] - shd["accuracy_hr"]
    nmnist_drop = nmnist["accuracy"] - nmnist["accuracy_hr"]
    print(f"\nHR drop on SHD: {100 * shd_drop:.2f} pts, "
          f"on N-MNIST: {100 * nmnist_drop:.2f} pts")
    # Direction: SHD suffers at least as much as N-MNIST (paper: 59 pts
    # vs 3 pts).  Allow a small tolerance for CI-scale noise.
    assert shd_drop >= nmnist_drop - 0.02
