"""Unit tests for repro.core.layers."""

import numpy as np
import pytest

from repro.common.errors import ShapeError, StateError
from repro.core.layers import SpikingLinear
from repro.core.neurons import NeuronParameters


class TestConstruction:
    def test_weight_shape(self):
        layer = SpikingLinear(10, 4, rng=0)
        assert layer.weight.shape == (4, 10)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            SpikingLinear(0, 4)
        with pytest.raises(ValueError):
            SpikingLinear(4, -1)

    def test_deterministic_init(self):
        a = SpikingLinear(8, 3, rng=7)
        b = SpikingLinear(8, 3, rng=7)
        np.testing.assert_array_equal(a.weight, b.weight)

    def test_different_seeds_differ(self):
        a = SpikingLinear(8, 3, rng=7)
        b = SpikingLinear(8, 3, rng=8)
        assert not np.array_equal(a.weight, b.weight)


class TestForward:
    def test_step_before_reset_raises(self):
        layer = SpikingLinear(5, 2, rng=0)
        with pytest.raises(StateError):
            layer.step(np.zeros((1, 5)))

    def test_step_wrong_width_raises(self):
        layer = SpikingLinear(5, 2, rng=0)
        layer.reset_state(1)
        with pytest.raises(ShapeError):
            layer.step(np.zeros((1, 6)))

    def test_adaptive_psp_is_filtered_weighted_input(self):
        """g = W k with k the exponential filter of the input spikes."""
        layer = SpikingLinear(3, 2, params=NeuronParameters(v_th=1e9), rng=0)
        layer.reset_state(1)
        rng = np.random.default_rng(0)
        carry = np.zeros((1, 3))
        for _ in range(10):
            x = (rng.random((1, 3)) < 0.5).astype(float)
            _, v = layer.step(x)
            carry = layer.alpha * carry + x
            np.testing.assert_allclose(v, carry @ layer.weight.T, rtol=1e-12)

    def test_run_shapes_and_reset(self):
        layer = SpikingLinear(6, 4, rng=1)
        xs = np.zeros((2, 12, 6))
        out, record = layer.run(xs, record=True)
        assert out.shape == (2, 12, 4)
        assert record.k.shape == (2, 12, 6)
        assert record.v.shape == (2, 12, 4)

    def test_run_resets_state_each_call(self):
        layer = SpikingLinear(4, 2, rng=2)
        layer.weight = np.abs(layer.weight) * 10
        xs = (np.random.default_rng(0).random((1, 10, 4)) < 0.5).astype(float)
        out1, _ = layer.run(xs)
        out2, _ = layer.run(xs)
        np.testing.assert_array_equal(out1, out2)

    def test_hard_reset_layer_has_no_k_record(self):
        layer = SpikingLinear(4, 2, neuron_kind="hard_reset", rng=0)
        xs = np.zeros((1, 5, 4))
        _, record = layer.run(xs, record=True)
        assert record.k is None

    def test_run_rejects_bad_rank(self):
        layer = SpikingLinear(4, 2, rng=0)
        with pytest.raises(ShapeError):
            layer.run(np.zeros((5, 4)))


class TestNeuronSwap:
    def test_copy_with_neuron_shares_weights(self):
        layer = SpikingLinear(5, 3, rng=0)
        clone = layer.copy_with_neuron("hard_reset")
        assert clone.weight is layer.weight
        assert clone.neuron_kind == "hard_reset"

    def test_swap_preserves_subthreshold_dynamics(self):
        """With an unreachable threshold, adaptive PSP == hard-reset
        membrane (the Section II equivalence that justifies the swap)."""
        params = NeuronParameters(v_th=1e9)
        layer = SpikingLinear(4, 3, params=params, rng=3)
        hr = layer.copy_with_neuron("hard_reset")
        xs = (np.random.default_rng(1).random((2, 20, 4)) < 0.4).astype(float)
        _, rec_a = layer.run(xs, record=True)
        _, rec_h = hr.run(xs, record=True)
        np.testing.assert_allclose(rec_a.v, rec_h.v, rtol=1e-10)
