"""Unit tests for repro.core.trainer and calibration."""

import numpy as np
import pytest

from repro.common.errors import ConfigError, ShapeError
from repro.core import (
    CrossEntropyRateLoss,
    SpikingNetwork,
    Trainer,
    TrainerConfig,
    VanRossumLoss,
)
from repro.core.calibration import calibrate_firing, layer_firing_rates
from repro.core.trainer import run_in_batches


def rate_task(n=40, steps=12, channels=8, seed=0):
    """Trivially separable task: class decides which half of the channels
    is active."""
    rng = np.random.default_rng(seed)
    x = np.zeros((n, steps, channels))
    y = np.zeros(n, dtype=int)
    for i in range(n):
        cls = i % 2
        y[i] = cls
        lo, hi = (0, channels // 2) if cls == 0 else (channels // 2, channels)
        x[i, :, lo:hi] = (rng.random((steps, hi - lo)) < 0.5)
    return x, y


@pytest.fixture
def trained_setup():
    x, y = rate_task()
    net = SpikingNetwork((8, 12, 2), rng=0)
    calibrate_firing(net, x[:16], target_rate=0.15)
    config = TrainerConfig(epochs=15, batch_size=16, learning_rate=1e-2,
                           optimizer="adamw")
    trainer = Trainer(net, CrossEntropyRateLoss(), config, rng=1)
    return trainer, x, y


class TestTrainerConfig:
    def test_defaults_valid(self):
        TrainerConfig()

    def test_validation(self):
        with pytest.raises(ConfigError):
            TrainerConfig(epochs=0)
        with pytest.raises(ConfigError):
            TrainerConfig(learning_rate=-1.0)
        with pytest.raises(ConfigError):
            TrainerConfig(gradient_mode="forward")
        with pytest.raises(ConfigError):
            TrainerConfig(optimizer="lion")

    def test_roundtrip(self):
        config = TrainerConfig(epochs=3, grad_clip=1.0)
        assert TrainerConfig.from_dict(config.to_dict()) == config


class TestTraining:
    def test_loss_decreases(self, trained_setup):
        trainer, x, y = trained_setup
        history = trainer.fit(x, y)
        assert history[-1].train_loss < history[0].train_loss

    def test_learns_separable_task(self, trained_setup):
        trainer, x, y = trained_setup
        trainer.fit(x, y)
        metrics = trainer.evaluate(x, y)
        assert metrics["accuracy"] >= 0.9

    def test_history_records_epochs(self, trained_setup):
        trainer, x, y = trained_setup
        history = trainer.fit(x, y, x, y)
        assert len(history) == trainer.config.epochs
        assert all("accuracy" in h.test_metrics for h in history)
        assert all(h.seconds >= 0 for h in history)

    def test_mismatched_targets_raise(self, trained_setup):
        trainer, x, y = trained_setup
        with pytest.raises(ShapeError):
            trainer.train_epoch(x, y[:-3])

    def test_train_batch_returns_finite_loss(self, trained_setup):
        trainer, x, y = trained_setup
        loss = trainer.train_batch(x[:8], y[:8])
        assert np.isfinite(loss)

    def test_evaluate_with_swapped_network(self, trained_setup):
        trainer, x, y = trained_setup
        trainer.fit(x, y)
        hr = trainer.network.with_neuron_kind("hard_reset")
        metrics = trainer.evaluate(x, y, network=hr)
        assert 0.0 <= metrics["accuracy"] <= 1.0

    def test_association_training_reduces_distance(self):
        rng = np.random.default_rng(2)
        x = (rng.random((20, 15, 6)) < 0.3).astype(float)
        targets = np.zeros((20, 15, 3))
        targets[:, 5, 0] = 1.0            # all samples want one early spike
        net = SpikingNetwork((6, 10, 3), rng=3)
        calibrate_firing(net, x, target_rate=0.15)
        loss = VanRossumLoss()
        trainer = Trainer(net, loss, TrainerConfig(
            epochs=10, batch_size=10, learning_rate=5e-3), rng=4)
        before = trainer.evaluate(x, targets)["van_rossum"]
        trainer.fit(x, targets)
        after = trainer.evaluate(x, targets)["van_rossum"]
        assert after < before

    def test_grad_clip_path(self):
        x, y = rate_task(n=16)
        net = SpikingNetwork((8, 6, 2), rng=5)
        calibrate_firing(net, x, target_rate=0.15)
        trainer = Trainer(net, CrossEntropyRateLoss(), TrainerConfig(
            epochs=1, batch_size=8, learning_rate=1e-3, grad_clip=0.1),
            rng=6)
        assert np.isfinite(trainer.train_epoch(x, y))

    def test_truncated_gradient_mode_trains(self):
        x, y = rate_task(n=24)
        net = SpikingNetwork((8, 6, 2), rng=7)
        calibrate_firing(net, x, target_rate=0.15)
        trainer = Trainer(net, CrossEntropyRateLoss(), TrainerConfig(
            epochs=4, batch_size=8, learning_rate=5e-3,
            gradient_mode="truncated"), rng=8)
        history = trainer.fit(x, y)
        assert history[-1].train_loss < history[0].train_loss


class TestRunInBatches:
    def test_matches_single_run(self):
        net = SpikingNetwork((5, 4, 3), rng=0)
        rng = np.random.default_rng(1)
        x = (rng.random((10, 8, 5)) < 0.4).astype(float)
        full, _ = net.run(x)
        batched = run_in_batches(net, x, batch_size=3)
        np.testing.assert_array_equal(full, batched)


class TestCalibration:
    def test_rates_hit_target(self):
        rng = np.random.default_rng(2)
        x = (rng.random((12, 20, 10)) < 0.3).astype(float)
        net = SpikingNetwork((10, 16, 4), rng=9)
        calibrate_firing(net, x, target_rate=0.1, tolerance=0.03)
        rates = layer_firing_rates(net, x)
        for rate in rates:
            assert rate == pytest.approx(0.1, abs=0.05)

    def test_returns_scales(self):
        rng = np.random.default_rng(3)
        x = (rng.random((8, 15, 6)) < 0.3).astype(float)
        net = SpikingNetwork((6, 5, 3), rng=10)
        scales = calibrate_firing(net, x, target_rate=0.1)
        assert len(scales) == 2
        assert all(s > 0 for s in scales)

    def test_input_validation(self):
        net = SpikingNetwork((6, 5), rng=0)
        with pytest.raises(ShapeError):
            calibrate_firing(net, np.zeros((5, 6)))
        with pytest.raises(ValueError):
            calibrate_firing(net, np.zeros((2, 5, 6)), target_rate=1.5)


class TestEvalTrain:
    def test_train_metrics_skipped_by_default(self, trained_setup):
        trainer, x, y = trained_setup
        history = trainer.fit(x, y, x, y)
        assert all(h.train_metrics == {} for h in history)
        assert all("accuracy" in h.test_metrics for h in history)

    def test_eval_train_true_populates_train_metrics(self):
        x, y = rate_task(n=16)
        net = SpikingNetwork((8, 6, 2), rng=11)
        calibrate_firing(net, x, target_rate=0.15)
        trainer = Trainer(net, CrossEntropyRateLoss(), TrainerConfig(
            epochs=2, batch_size=8, learning_rate=1e-3, eval_train=True),
            rng=12)
        history = trainer.fit(x, y)
        assert all("accuracy" in h.train_metrics for h in history)

    def test_summary_renders_without_train_metrics(self):
        x, y = rate_task(n=16)
        net = SpikingNetwork((8, 6, 2), rng=13)
        calibrate_firing(net, x, target_rate=0.15)
        trainer = Trainer(net, CrossEntropyRateLoss(), TrainerConfig(
            epochs=1, batch_size=8, learning_rate=1e-3), rng=14)
        history = trainer.fit(x, y)
        assert "loss" in history[0].summary()
