"""Unit tests for repro.core.network."""

import numpy as np
import pytest

from repro.common.errors import ShapeError
from repro.core.network import SpikingNetwork


@pytest.fixture
def net():
    return SpikingNetwork((6, 5, 4), rng=0)


class TestConstruction:
    def test_layer_sizes(self, net):
        assert [l.n_in for l in net.layers] == [6, 5]
        assert [l.n_out for l in net.layers] == [5, 4]

    def test_too_few_sizes(self):
        with pytest.raises(ValueError):
            SpikingNetwork((10,))

    def test_count_parameters(self, net):
        assert net.count_parameters() == 6 * 5 + 5 * 4

    def test_deterministic(self):
        a = SpikingNetwork((6, 5, 4), rng=3)
        b = SpikingNetwork((6, 5, 4), rng=3)
        for wa, wb in zip(a.weights, b.weights):
            np.testing.assert_array_equal(wa, wb)


class TestRun:
    def test_output_shape(self, net):
        x = np.zeros((3, 11, 6))
        out, record = net.run(x)
        assert out.shape == (3, 11, 4)
        assert record is None

    def test_record_contents(self, net):
        x = np.zeros((2, 7, 6))
        out, record = net.run(x, record=True)
        assert record.inputs.shape == (2, 7, 6)
        assert len(record.layers) == 2
        assert record.outputs is record.layers[-1].spikes
        np.testing.assert_array_equal(record.layer_input(0), record.inputs)
        np.testing.assert_array_equal(record.layer_input(1),
                                      record.layers[0].spikes)

    def test_wrong_channel_count(self, net):
        with pytest.raises(ShapeError):
            net.run(np.zeros((1, 5, 7)))

    def test_wrong_rank(self, net):
        with pytest.raises(ShapeError):
            net.run(np.zeros((5, 6)))

    def test_deterministic_forward(self, net):
        rng = np.random.default_rng(0)
        x = (rng.random((2, 15, 6)) < 0.4).astype(float)
        out1, _ = net.run(x)
        out2, _ = net.run(x)
        np.testing.assert_array_equal(out1, out2)

    def test_step_equals_run(self, net):
        """Stepping manually must match the vectorised run."""
        rng = np.random.default_rng(1)
        x = (rng.random((1, 9, 6)) < 0.5).astype(float)
        out_run, _ = net.run(x)
        net.reset_state(1)
        stepped = np.stack(
            [net.step(x[:, t, :]) for t in range(9)], axis=1)
        np.testing.assert_array_equal(out_run, stepped)


class TestParameters:
    def test_state_dict_roundtrip(self, net):
        state = net.state_dict()
        clone = SpikingNetwork((6, 5, 4), rng=99)
        clone.load_state_dict(state)
        for wa, wb in zip(net.weights, clone.weights):
            np.testing.assert_array_equal(wa, wb)

    def test_load_missing_key_raises(self, net):
        with pytest.raises(ShapeError):
            net.load_state_dict({})

    def test_set_weights_validates_shapes(self, net):
        with pytest.raises(ShapeError):
            net.set_weights([np.zeros((5, 6)), np.zeros((4, 4))])
        with pytest.raises(ShapeError):
            net.set_weights([np.zeros((5, 6))])

    def test_with_neuron_kind_shares_weights(self, net):
        hr = net.with_neuron_kind("hard_reset")
        assert hr.layers[0].weight is net.layers[0].weight
        assert hr.neuron_kind == "hard_reset"
        # Mutating the original is visible in the clone (shared memory).
        net.layers[0].weight[0, 0] = 123.0
        assert hr.layers[0].weight[0, 0] == 123.0
