"""Canonical benchmark shapes — one definition for every throughput bench.

``benchmarks/bench_throughput.py`` (the pytest-benchmark suite) and
``tools/bench_to_json.py`` (the ``make bench-json`` trajectory writer)
must measure the *same* workload for their numbers to be comparable with
each other and with the tables in ``docs/performance.md``.  Both import
their network/input construction from here instead of duplicating the
magic constants.

The workload is the paper-scale MLP at the repo's standard bench point:
700-128-128-20 adaptive network, T = 100, ~3 % input spike density,
weights boosted so the stack actually fires.
"""

from __future__ import annotations

import numpy as np

from .rng import RandomState

__all__ = [
    "BENCH_SIZES",
    "BENCH_STEPS",
    "BENCH_FORWARD_BATCH",
    "BENCH_TRAIN_BATCH",
    "BENCH_SPIKE_DENSITY",
    "BENCH_WEIGHT_BOOST",
    "bench_network",
    "bench_inputs",
]

BENCH_SIZES = (700, 128, 128, 20)
BENCH_STEPS = 100
BENCH_FORWARD_BATCH = 32
BENCH_TRAIN_BATCH = 64
BENCH_SPIKE_DENSITY = 0.03
BENCH_WEIGHT_BOOST = 6.0


def bench_network(sizes: tuple = BENCH_SIZES, seed: int = 0):
    """The standard benchmark network (boosted weights, adaptive kind)."""
    from ..core.network import SpikingNetwork

    network = SpikingNetwork(sizes, rng=seed)
    for layer in network.layers:
        layer.weight *= BENCH_WEIGHT_BOOST
    return network


def bench_inputs(batch: int, seed: int = 1, n_in: int = BENCH_SIZES[0],
                 steps: int = BENCH_STEPS) -> np.ndarray:
    """A ``(batch, steps, n_in)`` spike batch at the standard density."""
    rng = RandomState(seed)
    return (rng.random((batch, steps, n_in))
            < BENCH_SPIKE_DENSITY).astype(np.float64)
