"""Documentation checker: every local markdown link must resolve.

Walks README.md and docs/*.md, extracts relative links (ignoring web
URLs and pure anchors) and fails if any target file is missing. This is
the `make docs` target — it keeps the README's promise that every paper
artifact is reachable from it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")

REPO = Path(__file__).resolve().parent.parent


def check(markdown: Path) -> list[str]:
    errors = []
    text = markdown.read_text(encoding="utf-8")
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (markdown.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{markdown.relative_to(REPO)}: broken link {target}")
    return errors


def main() -> int:
    sources = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    missing = [str(s.relative_to(REPO)) for s in sources if not s.exists()]
    if missing:
        print("missing documentation files:", ", ".join(missing))
        return 1
    errors = [e for source in sources for e in check(source)]
    for error in errors:
        print(error)
    checked = len(sources)
    if errors:
        print(f"FAIL: {len(errors)} broken link(s) across {checked} files")
        return 1
    print(f"OK: all local links resolve across {checked} documentation files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
