"""Telemetry through the serving stack: lifecycle events, stats views,
invariants, deterministic harness traces.

The contracts pinned here (see ``docs/observability.md``):

* **Ticket lifecycle** — every served chunk leaves a ``ticket.submitted``
  -> ``ticket.batched`` -> terminal (``completed``/``expired``/
  ``failed``) event chain in the installed tracer, and the ``serve.tick``
  span carries the gather/compute/scatter phase breakdown as attrs.
* **Compat views** — ``ModelServer.stats`` / ``WorkerPool.stats`` keep
  their pre-registry dict shapes while the numbers live in registry
  instruments.
* **Accounting invariant** — ``check_invariants`` balances submissions
  against terminal states + in-flight tickets, and raises on drift.
* **Deterministic traces** — the harness run twice with the same fake
  timer and seeds exports byte-identical trace JSONL.
* **Fault tagging** — every injected fault is exactly one
  ``fault.injected`` event.
"""

import numpy as np
import pytest

from repro import obs
from repro.common import faults
from repro.common.errors import StateError
from repro.core import SpikingNetwork
from repro.core import engine as engine_mod
from repro.experiments.harness import run_scenarios
from repro.experiments.scenario import LoadSpec, Scenario
from repro.serve import ModelServer
from repro.serve.loadgen import open_loop

needs_scipy = pytest.mark.skipif(
    engine_mod._sparse is None,
    reason="serving ticks stream through the CSR fused path")

SIZES = (24, 20, 12)


class FakeClock:
    """Deterministic monotonic clock: every call advances 1 ms."""

    def __init__(self, dt=1e-3):
        self.now = 0.0
        self.dt = dt

    def __call__(self):
        self.now += self.dt
        return self.now


def make_net(seed=1):
    net = SpikingNetwork(SIZES, rng=seed)
    for layer in net.layers:
        layer.weight *= 5.0
    return net


def make_chunk(steps=6, seed=0, density=0.15):
    rng = np.random.default_rng(seed)
    return (rng.random((steps, SIZES[0])) < density).astype(np.float64)


def serve_some(telemetry, requests=3, **server_kwargs):
    """Open sessions, submit ``requests`` chunks, run the due ticks."""
    server = ModelServer(make_net(), max_batch=4, max_wait_ms=0.0,
                         telemetry=telemetry, **server_kwargs)
    sids = [server.open_session(now=0.0) for _ in range(requests)]
    tickets = [server.submit(sid, make_chunk(seed=i), now=float(i))
               for i, sid in enumerate(sids)]
    server.poll(now=10.0)
    return server, tickets


@needs_scipy
class TestServerLifecycleEvents:
    def test_ticket_chain_and_tick_span(self):
        telemetry = obs.Telemetry(clock=FakeClock())
        server, tickets = serve_some(telemetry, requests=3)
        assert all(t.ok for t in tickets)
        records = telemetry.tracer.records
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        for name in ("ticket.submitted", "ticket.batched",
                     "ticket.completed"):
            assert len(by_name[name]) == 3, name
        completed = by_name["ticket.completed"][0]
        assert completed["attrs"]["request"] == 0
        assert completed["attrs"]["session"] == "s000001"
        assert completed["attrs"]["degraded"] is False
        (tick,) = by_name["serve.tick"]
        assert tick["type"] == "span" and tick["attrs"]["batch"] == 3
        # Phase breakdown rides on the tick span, not on child spans —
        # three clock reads instead of three span objects per tick.
        for phase in ("gather_ms", "compute_ms", "scatter_ms"):
            assert tick["attrs"][phase] >= 0.0
        # Lifecycle events inside the tick parent to it.
        assert by_name["ticket.batched"][0]["parent"] is None
        assert completed["parent"] == tick["span"]

    def test_no_telemetry_means_no_hooks(self):
        server, tickets = serve_some(None)
        assert all(t.ok for t in tickets)
        assert server.telemetry is None
        assert server._span("x") is obs.NULL_SPAN
        assert server._event("x") is None

    def test_stats_compat_view(self):
        server, _ = serve_some(obs.Telemetry(clock=FakeClock()))
        stats = server.stats
        assert stats["submitted"] == stats["completed"] == 3
        assert stats["ticks"] == 1 and stats["max_tick_batch"] == 3
        for key in ("rejected", "expired", "failed", "retried",
                    "degraded_chunks", "weight_fallbacks"):
            assert stats[key] == 0
        assert all(isinstance(stats[k], int) for k in stats
                   if k != "divergence_sum")
        # The numbers are registry instruments, not a parallel dict.
        assert server.metrics.value("serve.completed") == 3

    def test_check_invariants_balances_and_trips(self):
        server, _ = serve_some(obs.Telemetry(clock=FakeClock()))
        books = server.check_invariants()
        assert books["submitted"] == 3 and books["in_flight"] == 0
        server._counters["submitted"].inc()  # simulate a lost ticket
        with pytest.raises(StateError, match="accounting drift"):
            server.check_invariants()

    def test_queue_wait_histogram_is_virtual_time(self):
        telemetry = obs.Telemetry(clock=FakeClock())
        server, _ = serve_some(telemetry)
        waits = telemetry.metrics.histogram("serve.queue_wait_ms").samples
        # Submitted at t=0,1,2 (virtual), all batched at now=10.0.
        assert sorted(waits) == [pytest.approx((10.0 - t) * 1e3)
                                 for t in (2.0, 1.0, 0.0)]


@needs_scipy
class TestLoadgenReport:
    def test_report_carries_profiling_percentiles(self):
        telemetry = obs.Telemetry(clock=FakeClock())
        with obs.active(telemetry):
            server = ModelServer(make_net(), max_batch=4, max_wait_ms=2.0)
            report = open_loop(server, sessions=3, requests=12,
                               chunk_steps=4, rate_rps=500.0, rng=0)
        assert report.completed == 12
        assert report.queue_wait_p95_ms is not None
        assert report.queue_wait_p95_ms >= 0.0
        assert report.tick_compute_p95_ms is not None
        assert report.tick_compute_p95_ms > 0.0

    def test_fault_injections_become_tagged_events(self):
        telemetry = obs.Telemetry(clock=FakeClock())
        plan = faults.FaultPlan(
            (faults.FaultRule("serve.request.raise", probability=0.25),),
            seed=3)
        with obs.active(telemetry), faults.active(plan) as active_plan:
            server = ModelServer(make_net(), max_batch=4, max_wait_ms=2.0)
            open_loop(server, sessions=3, requests=16, chunk_steps=4,
                      rate_rps=500.0, rng=0)
            injected = sum(active_plan.injected.values())
        events = [r for r in telemetry.tracer.records
                  if r["name"] == "fault.injected"]
        assert injected > 0
        assert len(events) == injected
        assert all(e["attrs"]["site"] == "serve.request.raise"
                   for e in events)
        failed = [r for r in telemetry.tracer.records
                  if r["name"] == "ticket.failed"]
        assert len(failed) == injected
        server.check_invariants()


@needs_scipy
class TestHarnessTraceDeterminism:
    @staticmethod
    def scenario(seed=0):
        return [Scenario(name="t-serving", kind="serving",
                         loads=(LoadSpec("smoke", 400.0, 10),),
                         sizes=SIZES, sessions=3, chunk_steps=4,
                         repetitions=1, seed=seed)]

    def test_same_seed_same_timer_byte_identical_trace(self, tmp_path):
        exports = []
        for run in ("a", "b"):
            out = tmp_path / run
            run_scenarios(self.scenario(), timer=FakeClock(),
                          trace_dir=out)
            (trace,) = sorted(out.glob("*.trace.jsonl"))
            (prom,) = sorted(out.glob("*.prom"))
            exports.append((trace.read_bytes(), prom.read_bytes()))
        assert exports[0] == exports[1]
        records = obs.parse_jsonl(exports[0][0].decode("utf-8"))
        assert records, "trace export is empty"
        assert obs.parse_prometheus(exports[0][1].decode("utf-8"))


class TestPoolStats:
    def test_pool_dispatch_counters_and_span(self):
        from repro.runtime.pool import WorkerPool

        telemetry = obs.Telemetry()
        net = SpikingNetwork((16, 12, 8), rng=0)
        x = (np.random.default_rng(0).random((4, 5, 16)) < 0.2) \
            .astype(np.float64)
        with obs.active(telemetry):
            pool = WorkerPool(net, workers=1)
            try:
                pool.run_sharded(x, batch_size=2)
                stats = pool.stats
            finally:
                pool.close()
        assert stats["dispatches"] >= 1
        assert stats["timeouts"] == 0 and stats["restarts"] == 0
        assert stats["respawns"] == {}
        spans = [r for r in telemetry.tracer.records
                 if r["name"] == "pool.dispatch"]
        assert spans and spans[0]["attrs"]["commands"] >= 1
