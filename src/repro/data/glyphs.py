"""Procedural handwritten-digit glyph renderer.

The paper's datasets are built from MNIST digits (N-MNIST: DVS recordings
of displayed digits; pattern association: digit images converted to spike
rasters).  MNIST itself is not available offline, so this module renders
digits 0-9 *procedurally* from stroke skeletons — polylines, circular arcs
and quadratic Beziers in a unit box — with per-sample handwriting
variability: random affine jitter (translation, scale, rotation, slant),
stroke-thickness variation and endpoint noise.

The output is a grayscale image in [0, 1].  Downstream consumers:

* :mod:`repro.data.nmnist` displays the image to the simulated DVS camera;
* :mod:`repro.data.association` thresholds the image into the paper's
  "pixel (x, y) -> spike in train y at time x" raster (Section V-B).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..common.errors import DatasetError
from ..common.rng import RandomState, as_random_state

__all__ = ["DIGIT_STROKES", "render_digit", "render_digit_batch"]


def _line(p0, p1):
    return ("line", np.asarray(p0, float), np.asarray(p1, float))


def _arc(center, radius, start_deg, end_deg):
    return ("arc", np.asarray(center, float), float(radius),
            float(start_deg), float(end_deg))


def _quad(p0, p1, p2):
    """Quadratic Bezier from p0 to p2 with control point p1."""
    return ("quad", np.asarray(p0, float), np.asarray(p1, float),
            np.asarray(p2, float))


# Stroke skeletons in a unit box, origin bottom-left, y up.
DIGIT_STROKES: dict[int, list] = {
    0: [_arc((0.5, 0.5), 0.33, 0.0, 360.0)],
    1: [_line((0.38, 0.72), (0.55, 0.90)),
        _line((0.55, 0.90), (0.55, 0.10))],
    2: [_arc((0.5, 0.66), 0.24, 170.0, -20.0),
        _quad((0.72, 0.58), (0.55, 0.30), (0.25, 0.10)),
        _line((0.25, 0.10), (0.78, 0.10))],
    3: [_arc((0.48, 0.68), 0.22, 150.0, -80.0),
        _arc((0.48, 0.30), 0.25, 80.0, -150.0)],
    4: [_line((0.62, 0.90), (0.22, 0.38)),
        _line((0.22, 0.38), (0.80, 0.38)),
        _line((0.62, 0.90), (0.62, 0.10))],
    5: [_line((0.74, 0.90), (0.30, 0.90)),
        _line((0.30, 0.90), (0.28, 0.55)),
        _arc((0.47, 0.32), 0.26, 100.0, -160.0)],
    6: [_quad((0.64, 0.90), (0.34, 0.70), (0.28, 0.38)),
        _arc((0.50, 0.32), 0.23, 0.0, 360.0)],
    7: [_line((0.22, 0.90), (0.78, 0.90)),
        _quad((0.78, 0.90), (0.55, 0.50), (0.40, 0.10))],
    8: [_arc((0.50, 0.69), 0.20, 0.0, 360.0),
        _arc((0.50, 0.29), 0.24, 0.0, 360.0)],
    9: [_arc((0.50, 0.66), 0.22, 0.0, 360.0),
        _quad((0.72, 0.62), (0.68, 0.30), (0.55, 0.10))],
}


def _sample_stroke(stroke, points_per_unit: float = 120.0) -> np.ndarray:
    """Sample a stroke densely; returns (n, 2) points in unit coordinates."""
    kind = stroke[0]
    if kind == "line":
        _, p0, p1 = stroke
        length = float(np.linalg.norm(p1 - p0))
        n = max(2, int(length * points_per_unit))
        t = np.linspace(0.0, 1.0, n)[:, None]
        return p0[None, :] * (1 - t) + p1[None, :] * t
    if kind == "arc":
        _, center, radius, a0, a1 = stroke
        sweep = np.radians(abs(a1 - a0))
        n = max(3, int(radius * sweep * points_per_unit))
        angles = np.radians(np.linspace(a0, a1, n))
        return center[None, :] + radius * np.stack(
            [np.cos(angles), np.sin(angles)], axis=1
        )
    if kind == "quad":
        _, p0, p1, p2 = stroke
        chord = (np.linalg.norm(p1 - p0) + np.linalg.norm(p2 - p1))
        n = max(3, int(chord * points_per_unit))
        t = np.linspace(0.0, 1.0, n)[:, None]
        return ((1 - t) ** 2) * p0 + 2 * (1 - t) * t * p1 + (t ** 2) * p2
    raise DatasetError(f"unknown stroke kind {kind!r}")


def render_digit(digit: int, size: int = 28,
                 rng: RandomState | int | None = None,
                 jitter: bool = True,
                 thickness: float | None = None,
                 blur: float = 0.7) -> np.ndarray:
    """Render one digit as a ``(size, size)`` grayscale image in [0, 1].

    Parameters
    ----------
    digit:
        0-9.
    size:
        Output image side length in pixels.
    rng:
        Randomness source for the handwriting jitter.
    jitter:
        Apply per-sample affine + stroke variability; with ``False`` the
        canonical skeleton is rendered (deterministic).
    thickness:
        Stroke half-width in unit coordinates; default draws ~2 px strokes
        with small random variation when jittering.
    blur:
        Gaussian blur sigma (pixels) applied to soften the binary strokes
        into MNIST-like grayscale.

    Returns
    -------
    ndarray
        Image with row 0 at the *top* (image convention), values in [0, 1].
    """
    if digit not in DIGIT_STROKES:
        raise DatasetError(f"digit must be 0-9, got {digit}")
    generator = as_random_state(rng)

    if thickness is None:
        thickness = 0.045
        if jitter:
            thickness *= float(generator.uniform(0.8, 1.35))

    # Per-sample affine: rotation, slant (shear), anisotropic scale, shift.
    if jitter:
        angle = np.radians(generator.uniform(-9.0, 9.0))
        shear = generator.uniform(-0.15, 0.15)
        scale_x = generator.uniform(0.85, 1.1)
        scale_y = generator.uniform(0.85, 1.1)
        shift = generator.uniform(-0.05, 0.05, 2)
    else:
        angle, shear, scale_x, scale_y = 0.0, 0.0, 1.0, 1.0
        shift = np.zeros(2)
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    affine = np.array([[cos_a * scale_x, -sin_a + shear],
                       [sin_a, cos_a * scale_y]])

    points = []
    for stroke in DIGIT_STROKES[digit]:
        sampled = _sample_stroke(stroke)
        if jitter:
            # Smooth wobble along the stroke (handwriting tremor).
            wobble = generator.normal(0.0, 0.008, sampled.shape)
            wobble = ndimage.gaussian_filter1d(wobble, sigma=5, axis=0)
            sampled = sampled + wobble
        centred = sampled - 0.5
        transformed = centred @ affine.T + 0.5 + shift
        points.append(transformed)
    all_points = np.concatenate(points, axis=0)

    # Paint: mark every pixel within `thickness` of a sampled point.
    image = np.zeros((size, size), dtype=np.float64)
    pixel_radius = max(1, int(round(thickness * size)))
    xs = np.clip((all_points[:, 0] * (size - 1)).round().astype(int), 0, size - 1)
    ys = np.clip((all_points[:, 1] * (size - 1)).round().astype(int), 0, size - 1)
    image[ys, xs] = 1.0
    if pixel_radius > 0:
        structure = _disk(pixel_radius)
        image = ndimage.grey_dilation(image, footprint=structure)
    if blur > 0:
        image = ndimage.gaussian_filter(image, sigma=blur)
        peak = image.max()
        if peak > 0:
            image = image / peak
    # Convert from y-up math coordinates to image row order (row 0 = top).
    return image[::-1].copy()


def render_digit_batch(digits, size: int = 28,
                       rng: RandomState | int | None = None,
                       jitter: bool = True) -> np.ndarray:
    """Render many digits; returns (n, size, size) with independent jitter."""
    generator = as_random_state(rng)
    digits = list(digits)
    batch = np.zeros((len(digits), size, size), dtype=np.float64)
    for index, digit in enumerate(digits):
        batch[index] = render_digit(
            int(digit), size=size, rng=generator.child(f"glyph{index}"),
            jitter=jitter,
        )
    return batch


def _disk(radius: int) -> np.ndarray:
    """Boolean disk footprint for grey dilation."""
    grid = np.arange(-radius, radius + 1)
    xx, yy = np.meshgrid(grid, grid)
    return (xx ** 2 + yy ** 2) <= radius ** 2
