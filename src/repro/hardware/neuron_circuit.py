"""The paper's neurosynaptic circuit (Fig. 6) and its transient experiment
(Fig. 7).

Topology (one synapse, one neuron — exactly the configuration the paper
simulates in Cadence)::

    spike in --[R_syn]--+-- k(t)         (synapse RC filter, word-line)
                        |
                      [C_syn]
                        |
                       gnd
    k(t) --[R_mem (RRAM cell)]--+-- g(t) (bit-line PSP)
                                |
                             [R_sense]
                                |
                               gnd
    comparator:  + input = g(t),  - input = threshold
    comparator out --[R_fb]--+-- h(t)    (feedback RC filter)
                             |
                           [C_fb]
                             |
                            gnd
    bias amp: threshold = h(t) + V_bias  (the adaptive threshold)
    comparator out -> inverter -> inverter -> output spike

Component values follow Section V-C: ``R = 4.56 kOhm``, ``C = 10.14 pF``
(RC = 46.2 ns, i.e. tau = 4 steps of 10 ns — silicon matches the Table I
software tau), 10 ns input spikes, 550 mV threshold bias, 1 V supply
(TSMC 1V-65 nm).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.config import BaseConfig
from ..common.units import KILO, NANO, PICO
from .spice import (
    Capacitor,
    Circuit,
    Resistor,
    VoltageSource,
    comparator,
    count_pulses,
    inverter,
    pulse_train,
    summing_amp,
)

__all__ = ["NeuronCircuitConfig", "build_neuron_circuit", "simulate_neuron",
           "NeuronCircuitResult"]


@dataclasses.dataclass(frozen=True)
class NeuronCircuitConfig(BaseConfig):
    """Component values for the Fig. 6 circuit (paper Section V-C defaults).

    Attributes
    ----------
    r_filter:
        Synapse / feedback filter resistance (paper: 4.56 kOhm).
    c_filter:
        Filter capacitance (paper: 10.14 pF) — RC = 46.2 ns.
    step_ns:
        Physical step = input spike width (paper: 10 ns).
    v_dd:
        Supply voltage (paper: 1 V).
    v_bias:
        Threshold bias at the comparator's negative input (paper: 550 mV).
    r_memristor:
        RRAM cell resistance on the bit-line (mid-window default).
    r_sense:
        Bit-line sense resistance converting current to the PSP voltage.
    spike_amplitude:
        Input spike level; the paper level-shifts input spikes above VDD
        so the filtered PSP stays in the amplifier operating range.
    comparator_gain, comparator_tau_ns:
        Behavioral comparator open-loop gain and output time constant
        (the non-ideal edge visible in Fig. 7(b)'s yellow trace).
    """

    r_filter: float = 4.56 * KILO
    c_filter: float = 10.14 * PICO
    step_ns: float = 10.0
    v_dd: float = 1.0
    v_bias: float = 0.55
    r_memristor: float = 20.0 * KILO
    r_sense: float = 40.0 * KILO
    spike_amplitude: float = 2.5
    comparator_gain: float = 400.0
    comparator_tau_ns: float = 2.0

    def validate(self) -> None:
        for field in ("r_filter", "c_filter", "step_ns", "v_dd",
                      "r_memristor", "r_sense", "spike_amplitude",
                      "comparator_gain", "comparator_tau_ns"):
            self.require_positive(field)
        self.require(0 < self.v_bias < self.spike_amplitude,
                     "v_bias must lie inside the signal range")

    @property
    def tau_seconds(self) -> float:
        """Filter time constant RC (paper: 46.2 ns ~= 4 steps of 10 ns)."""
        return self.r_filter * self.c_filter

    @property
    def tau_steps(self) -> float:
        """RC expressed in algorithm steps (the software tau of Table I)."""
        return self.tau_seconds / (self.step_ns * NANO)


class NeuronCircuitResult:
    """Traces and measurements from a neuron-circuit transient run.

    Attributes mirror the panels of Fig. 7: the filtered input ``k``, the
    bit-line PSP ``g``, the adaptive ``threshold``, the raw ``comparator``
    output, the filtered ``feedback`` (h), and the buffered output
    ``spike`` waveform.
    """

    def __init__(self, time: np.ndarray, traces: dict[str, np.ndarray],
                 config: NeuronCircuitConfig):
        self.time = time
        self.traces = traces
        self.config = config

    def __getitem__(self, name: str) -> np.ndarray:
        return self.traces[name]

    def output_spike_count(self) -> int:
        """Output spikes = rising crossings of VDD/2 on the buffered out."""
        return count_pulses(self.time, self.traces["spike"],
                            self.config.v_dd / 2.0)

    def summary(self) -> dict:
        """Key Fig. 7 observables."""
        return {
            "output_spikes": self.output_spike_count(),
            "psp_peak": float(self.traces["g"].max()),
            "threshold_base": float(self.traces["threshold"][0]),
            "threshold_peak": float(self.traces["threshold"].max()),
            "feedback_peak": float(self.traces["feedback"].max()),
        }


def build_neuron_circuit(config: NeuronCircuitConfig,
                         spike_times_ns: list[float]) -> Circuit:
    """Assemble the Fig. 6 netlist for a given input spike train."""
    cfg = config
    circuit = Circuit("fang2021-neuron")
    width = cfg.step_ns * NANO
    wave = pulse_train([t * NANO for t in spike_times_ns], width=width,
                       amplitude=cfg.spike_amplitude)
    circuit.add(VoltageSource("vin", "in", "0", wave))
    # Synapse RC filter -> k(t) at the word-line.
    circuit.add(Resistor("r_syn", "in", "k", cfg.r_filter))
    circuit.add(Capacitor("c_syn", "k", "0", cfg.c_filter))
    # RRAM cell + sense resistor -> PSP voltage g(t) at the bit-line foot.
    circuit.add(Resistor("r_mem", "k", "g", cfg.r_memristor))
    circuit.add(Resistor("r_sense", "g", "0", cfg.r_sense))
    # Comparator with adaptive threshold at its negative input.
    circuit.add(comparator(
        "cmp", "g", "threshold", "cmp_out",
        gain=cfg.comparator_gain, vdd=cfg.v_dd,
        tau=cfg.comparator_tau_ns * NANO,
    ))
    # Feedback RC filter -> h(t).
    circuit.add(Resistor("r_fb", "cmp_out", "feedback", cfg.r_filter))
    circuit.add(Capacitor("c_fb", "feedback", "0", cfg.c_filter))
    # Bias op-amp: threshold = feedback + v_bias (rails allow v_dd + bias).
    bias = summing_amp("bias", "feedback", "threshold",
                       offset=cfg.v_bias, vdd=cfg.v_dd + cfg.v_bias)
    circuit.add(bias)
    # Threshold node needs a DC path; the summing amp drives it directly,
    # but add a light load so the node is never floating.
    circuit.add(Resistor("r_thresh_load", "threshold", "0", 1e6))
    circuit.add(Resistor("r_cmp_load", "cmp_out", "0", 1e6))
    # Two inverters restore ideal rail-to-rail output spikes.  The first
    # sees a low comparator at t=0 (output high); the second therefore
    # starts low.
    circuit.add(inverter("inv1", "cmp_out", "n_inv", vdd=cfg.v_dd))
    circuit.add(inverter("inv2", "n_inv", "spike", vdd=cfg.v_dd,
                         initial=0.0))
    circuit.add(Resistor("r_out_load", "spike", "0", 1e6))
    return circuit


def simulate_neuron(spike_times_ns: list[float],
                    config: NeuronCircuitConfig | None = None,
                    duration_ns: float | None = None,
                    dt_ns: float = 0.5) -> NeuronCircuitResult:
    """Run the Fig. 7 transient experiment.

    Parameters
    ----------
    spike_times_ns:
        Input spike start times in nanoseconds.
    config:
        Circuit values (paper defaults when omitted).
    duration_ns:
        Simulation span; default runs 10 filter time constants past the
        last spike.
    dt_ns:
        Solver step (must resolve the comparator lag).

    Returns
    -------
    NeuronCircuitResult
        With traces ``k`` (filtered input), ``g`` (PSP), ``threshold``,
        ``comparator``, ``feedback`` (h) and ``spike`` (buffered output).
    """
    config = config or NeuronCircuitConfig()
    if not spike_times_ns:
        raise ValueError("need at least one input spike")
    if duration_ns is None:
        duration_ns = max(spike_times_ns) + config.step_ns \
            + 10.0 * config.tau_seconds / NANO
    circuit = build_neuron_circuit(config, spike_times_ns)
    result = circuit.transient(
        t_stop=duration_ns * NANO, dt=dt_ns * NANO,
        record_nodes=["in", "k", "g", "threshold", "cmp_out", "feedback",
                      "n_inv", "spike"],
    )
    traces = {
        "input": result.voltage("in"),
        "k": result.voltage("k"),
        "g": result.voltage("g"),
        "threshold": result.voltage("threshold"),
        "comparator": result.voltage("cmp_out"),
        "feedback": result.voltage("feedback"),
        "spike": result.voltage("spike"),
    }
    return NeuronCircuitResult(result.time, traces, config)
