"""Equivalence and regression tests for the fused simulation engine.

The fused engine (``repro.core.engine``) must be a drop-in replacement for
the step-wise reference path: identical spikes, membrane traces and
synapse-filter traces on the forward pass, and gradients matching the
reference BPTT to tolerance — for both neuron models, both gradient modes
and both precisions.  A recorded fused run must also keep feeding the
analysis/calibration code unchanged.
"""

import numpy as np
import pytest

from repro.analysis import firing_rate, raster_summary, trace_correlation
from repro.common.errors import ShapeError
from repro.core import (
    CrossEntropyRateLoss,
    SpikingLinear,
    SpikingNetwork,
    Trainer,
    TrainerConfig,
    backward,
    exp_scan,
    exp_scan_reverse,
    resolve_precision,
)
from repro.core.calibration import layer_firing_rates
from repro.core.engine import spike_matmul, spike_outer
from repro.core.filters import exponential_filter, exponential_filter_adjoint
from repro.common.rng import RandomState

KINDS = ("adaptive", "hard_reset", "hard_reset_euler")


def make_net_and_input(kind, sizes=(50, 40, 10), batch=8, steps=30, seed=0):
    net = SpikingNetwork(sizes, rng=seed, neuron_kind=kind)
    boost = 30.0 if kind == "hard_reset_euler" else 6.0
    for layer in net.layers:
        layer.weight *= boost
    rng = RandomState(seed + 1)
    x = (rng.random((batch, steps, sizes[0])) < 0.05).astype(np.float64)
    return net, x


# -- scan kernels -----------------------------------------------------------

def test_exp_scan_matches_exponential_filter():
    rng = RandomState(0)
    xs = rng.normal(0, 1, (4, 25, 7))
    got = exp_scan(xs.copy(), 0.6)
    want = exponential_filter(xs, 0.6, time_axis=1)
    np.testing.assert_allclose(got, want, rtol=1e-12)


def test_exp_scan_in_place_aliasing():
    rng = RandomState(1)
    xs = rng.normal(0, 1, (3, 17, 5))
    want = exp_scan(xs.copy(), 0.8)
    buf = xs.copy()
    out = exp_scan(buf, 0.8, out=buf)
    assert out is buf
    np.testing.assert_allclose(out, want, rtol=1e-12)


def test_exp_scan_reverse_matches_filter_adjoint():
    rng = RandomState(2)
    xs = rng.normal(0, 1, (4, 25, 7))
    got = exp_scan_reverse(xs.copy(), 0.6)
    want = exponential_filter_adjoint(xs, 0.6, time_axis=1)
    np.testing.assert_allclose(got, want, rtol=1e-12)
    buf = xs.copy()
    out = exp_scan_reverse(buf, 0.6, out=buf)
    assert out is buf
    np.testing.assert_allclose(out, want, rtol=1e-12)


# -- sparse kernels ---------------------------------------------------------

def test_spike_matmul_matches_dense():
    rng = RandomState(3)
    # Large enough to trigger the sparse path; includes event counts > 1.
    x = (rng.random((300, 80)) < 0.04).astype(np.float64)
    x[0, 0] = 3.0
    w_t = rng.normal(0, 1, (80, 16))
    np.testing.assert_allclose(spike_matmul(x, w_t), x @ w_t, rtol=1e-12)


def test_spike_outer_matches_dense():
    rng = RandomState(4)
    x = (rng.random((300, 80)) < 0.04).astype(np.float64)
    dv = rng.normal(0, 1, (300, 16))
    np.testing.assert_allclose(spike_outer(dv, x), dv.T @ x, rtol=1e-12)


# -- forward equivalence ----------------------------------------------------

@pytest.mark.parametrize("kind", KINDS)
def test_forward_equivalence(kind):
    net, x = make_net_and_input(kind)
    out_step, rec_step = net.run(x, record=True, engine="step")
    out_fused, rec_fused = net.run(x, record=True, engine="fused")
    np.testing.assert_array_equal(out_step, out_fused)
    for ls, lf in zip(rec_step.layers, rec_fused.layers):
        np.testing.assert_array_equal(ls.spikes, lf.spikes)
        np.testing.assert_allclose(ls.v, lf.v, rtol=1e-9, atol=1e-12)
        assert (ls.k is None) == (lf.k is None)
        if ls.k is not None:
            np.testing.assert_allclose(ls.k, lf.k, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("kind", ("adaptive", "hard_reset"))
def test_forward_final_state_parity(kind):
    """After a run, incremental layer/neuron state matches the step path."""
    net, x = make_net_and_input(kind)
    net.run(x, engine="step")
    step_k = [layer.k.copy() for layer in net.layers]
    step_neuron = []
    for layer in net.layers:
        if kind == "adaptive":
            step_neuron.append((layer.neuron.h.copy(),
                                layer.neuron.last_output.copy()))
        else:
            step_neuron.append((layer.neuron.v.copy(),))
    for record in (False, True):
        net.run(x, record=record, engine="fused")
        for i, layer in enumerate(net.layers):
            np.testing.assert_allclose(layer.k, step_k[i],
                                       rtol=1e-9, atol=1e-12)
            if kind == "adaptive":
                np.testing.assert_allclose(layer.neuron.h, step_neuron[i][0],
                                           rtol=1e-9, atol=1e-12)
                np.testing.assert_array_equal(layer.neuron.last_output,
                                              step_neuron[i][1])
            else:
                np.testing.assert_allclose(layer.neuron.v, step_neuron[i][0],
                                           rtol=1e-9, atol=1e-12)


def test_layer_run_equivalence():
    layer = SpikingLinear(30, 12, rng=0)
    layer.weight *= 6.0
    rng = RandomState(5)
    x = (rng.random((4, 20, 30)) < 0.08).astype(np.float64)
    out_step, rec_step = layer.run(x, record=True, engine="step")
    out_fused, rec_fused = layer.run(x, record=True, engine="fused")
    np.testing.assert_array_equal(out_step, out_fused)
    np.testing.assert_allclose(rec_step.v, rec_fused.v, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(rec_step.k, rec_fused.k, rtol=1e-9, atol=1e-12)


# -- backward equivalence ---------------------------------------------------

@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("mode", ("exact", "truncated"))
def test_backward_equivalence(kind, mode):
    net, x = make_net_and_input(kind)
    out, record = net.run(x, record=True, engine="fused")
    loss = CrossEntropyRateLoss()
    labels = np.arange(x.shape[0]) % net.sizes[-1]
    _, grad_out = loss.value_and_grad(out, labels)
    ref = backward(net, record, grad_out, mode=mode, engine="reference")
    fused = backward(net, record, grad_out, mode=mode, engine="fused")
    for a, b in zip(ref.weight_grads, fused.weight_grads):
        np.testing.assert_allclose(a, b, rtol=1e-8, atol=1e-12)
    # input_grad is lazy in the fused result; reading it here exercises
    # the deferred matmul.
    np.testing.assert_allclose(ref.input_grad, fused.input_grad,
                               rtol=1e-8, atol=1e-12)


@pytest.mark.parametrize("mode", ("exact", "truncated"))
def test_backward_on_step_record(mode):
    """The fused backward accepts a record produced by the step engine."""
    net, x = make_net_and_input("adaptive")
    out, record = net.run(x, record=True, engine="step")
    loss = CrossEntropyRateLoss()
    labels = np.arange(x.shape[0]) % net.sizes[-1]
    _, grad_out = loss.value_and_grad(out, labels)
    ref = backward(net, record, grad_out, mode=mode, engine="reference")
    fused = backward(net, record, grad_out, mode=mode, engine="fused")
    for a, b in zip(ref.weight_grads, fused.weight_grads):
        np.testing.assert_allclose(a, b, rtol=1e-8, atol=1e-12)
    np.testing.assert_allclose(ref.input_grad, fused.input_grad,
                               rtol=1e-8, atol=1e-12)


@pytest.mark.parametrize("kind", ("adaptive", "hard_reset"))
def test_lazy_input_grad_unaffected_by_weight_updates(kind):
    """Reading input_grad after an in-place optimizer step must return the
    gradient for the weights the forward/backward pass actually used."""
    net, x = make_net_and_input(kind)
    out, record = net.run(x, record=True)
    loss = CrossEntropyRateLoss()
    labels = np.arange(x.shape[0]) % net.sizes[-1]
    _, grad_out = loss.value_and_grad(out, labels)
    ref = backward(net, record, grad_out, engine="reference")
    fused = backward(net, record, grad_out)
    for w in net.weights:
        w -= 0.05 * np.sign(w)   # in-place update, as every optimizer does
    np.testing.assert_allclose(fused.input_grad, ref.input_grad,
                               rtol=1e-8, atol=1e-12)


# -- precision --------------------------------------------------------------

def test_resolve_precision():
    assert resolve_precision(None) is None
    assert resolve_precision("float32") == np.float32
    assert resolve_precision("float64") == np.float64
    with pytest.raises(ValueError):
        resolve_precision("float16")


@pytest.mark.parametrize("kind", ("adaptive", "hard_reset"))
def test_float32_forward_matches_float64(kind):
    net, x = make_net_and_input(kind)
    out64, _ = net.run(x, precision="float64")
    out32, rec32 = net.run(x, record=True, precision="float32")
    assert out32.dtype == np.float32
    assert rec32.layers[0].v.dtype == np.float32
    # Spike decisions are robust to float32 rounding for this seeded data.
    np.testing.assert_array_equal(out64, out32.astype(np.float64))


@pytest.mark.parametrize("kind", ("adaptive", "hard_reset"))
@pytest.mark.parametrize("mode", ("exact", "truncated"))
def test_float32_gradients_close_to_float64(kind, mode):
    net, x = make_net_and_input(kind)
    out, rec64 = net.run(x, record=True, precision="float64")
    _, rec32 = net.run(x, record=True, precision="float32")
    loss = CrossEntropyRateLoss()
    labels = np.arange(x.shape[0]) % net.sizes[-1]
    _, grad_out = loss.value_and_grad(out, labels)
    g64 = backward(net, rec64, grad_out, mode=mode)
    g32 = backward(net, rec32, grad_out.astype(np.float32), mode=mode)
    for a, b in zip(g64.weight_grads, g32.weight_grads):
        assert b.dtype == np.float32
        np.testing.assert_allclose(a, b, rtol=2e-3, atol=1e-5)


def test_step_engine_honours_precision():
    net, x = make_net_and_input("adaptive")
    out, record = net.run(x, record=True, engine="step", precision="float32")
    assert out.dtype == np.float32
    assert record.layers[0].k.dtype == np.float32


# -- validation -------------------------------------------------------------

def test_invalid_engine_rejected():
    net, x = make_net_and_input("adaptive")
    with pytest.raises(ValueError):
        net.run(x, engine="warp")
    out, record = net.run(x, record=True)
    loss = CrossEntropyRateLoss()
    _, grad_out = loss.value_and_grad(out, np.arange(8) % 10)
    with pytest.raises(ValueError):
        backward(net, record, grad_out, engine="warp")
    with pytest.raises(ValueError):
        net.layers[0].run(x[:, :, :50], engine="warp")


def test_fused_shape_errors():
    net, x = make_net_and_input("adaptive")
    with pytest.raises(ShapeError):
        net.run(x[:, :, :-1])
    with pytest.raises(ShapeError):
        net.run(x[0])


# -- record regression: analysis and calibration stay unchanged -------------

def test_run_record_feeds_analysis_unchanged():
    net, x = make_net_and_input("adaptive")
    _, rec_step = net.run(x, record=True, engine="step")
    _, rec_fused = net.run(x, record=True, engine="fused")

    for rec in (rec_step, rec_fused):
        assert rec.outputs.shape == (8, 30, 10)
        assert rec.layer_input(0) is rec.inputs
        assert rec.layer_input(1) is rec.layers[0].spikes

    # The same analysis calls produce identical numbers from either record.
    assert firing_rate(rec_step.outputs) == firing_rate(rec_fused.outputs)
    s_step = raster_summary(rec_step.layers[0].spikes[0])
    s_fused = raster_summary(rec_fused.layers[0].spikes[0])
    assert s_step == s_fused
    corr = trace_correlation(rec_step.outputs[0], rec_fused.outputs[0])
    assert corr == pytest.approx(1.0)


def test_layer_firing_rates_uses_default_engine():
    net, x = make_net_and_input("adaptive")
    rates = layer_firing_rates(net, x)
    assert len(rates) == len(net.layers)
    assert all(0.0 <= r <= 1.0 for r in rates)


# -- trainer plumbing -------------------------------------------------------

def test_trainer_engines_agree_after_one_epoch():
    def build():
        net = SpikingNetwork((20, 16, 2), rng=7)
        for layer in net.layers:
            layer.weight *= 6.0
        return net

    rng = RandomState(8)
    x = (rng.random((16, 25, 20)) < 0.08).astype(np.float64)
    y = np.arange(16) % 2

    results = {}
    for engine in ("fused", "step"):
        net = build()
        config = TrainerConfig(epochs=1, batch_size=8, learning_rate=1e-3,
                               shuffle=False, engine=engine)
        trainer = Trainer(net, CrossEntropyRateLoss(), config, rng=9)
        trainer.fit(x, y)
        results[engine] = [w.copy() for w in net.weights]
    for a, b in zip(results["fused"], results["step"]):
        np.testing.assert_allclose(a, b, rtol=1e-7, atol=1e-10)


def test_trainer_float32_precision_trains():
    net = SpikingNetwork((20, 16, 2), rng=7)
    for layer in net.layers:
        layer.weight *= 6.0
    rng = RandomState(8)
    x = (rng.random((16, 25, 20)) < 0.08).astype(np.float64)
    y = np.arange(16) % 2
    config = TrainerConfig(epochs=1, batch_size=8, learning_rate=1e-3,
                           precision="float32")
    trainer = Trainer(net, CrossEntropyRateLoss(), config, rng=9)
    history = trainer.fit(x, y)
    assert np.isfinite(history[0].train_loss)
    assert all(np.all(np.isfinite(w)) for w in net.weights)


def test_trainer_config_validation():
    with pytest.raises(Exception):
        TrainerConfig(engine="warp").validate()
    with pytest.raises(Exception):
        TrainerConfig(precision="float16").validate()
