"""Streaming equivalence: chunked ``run_stream`` == one-shot ``run``.

The load-bearing guarantee of the serving layer: a T-step sequence fed in
chunks of any sizes — through either engine, at either precision —
produces *bitwise-identical* output spikes to the one-shot run, and a
padded heterogeneous batch leaves every stream exactly where its own data
ended.

For the fused engine the guarantee rests on the CSR spike product
computing output rows independently (dense GEMM does not: BLAS picks
different summation splits for different row counts).  The streaming path
forces CSR; the one-shot probe picks it when the input is large and
sparse enough — the equivalence shapes here sit above that threshold and
``test_shapes_exercise_the_sparse_path`` pins the fact.
"""

import numpy as np
import pytest

from repro.common.errors import ShapeError
from repro.core import SpikingNetwork, StreamState, exp_scan
from repro.core import engine as engine_mod

needs_scipy = pytest.mark.skipif(
    engine_mod._sparse is None,
    reason="fused bitwise streaming guarantee requires scipy's CSR product")

#: Above the one-shot sparse-probe threshold at every layer:
#: 8*48*48 = 18432 and 8*48*44 = 16896, both >= _SPARSE_MIN_SIZE.
SIZES = (48, 44, 40)
BATCH, STEPS = 8, 48
DENSITY = 0.08


def make_net(kind="adaptive", seed=1):
    net = SpikingNetwork(SIZES, neuron_kind=kind, rng=seed)
    for layer in net.layers:
        layer.weight *= 5.0
    return net


def make_inputs(batch=BATCH, steps=STEPS, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((batch, steps, SIZES[0])) < DENSITY).astype(np.float64)


def stream_in_chunks(net, x, chunk, engine, precision):
    state = None
    outs = []
    for start in range(0, x.shape[1], chunk):
        out, state = net.run_stream(x[:, start:start + chunk], state,
                                    engine=engine, precision=precision)
        outs.append(out)
    return np.concatenate(outs, axis=1), state


class TestChunkedEquivalence:
    @needs_scipy
    def test_shapes_exercise_the_sparse_path(self):
        """The one-shot fused probe must pick CSR at every layer for the
        bitwise guarantee to be a theorem rather than luck."""
        net = make_net()
        x = make_inputs()
        _, record = net.run(x, record=True)
        layer_inputs = [x] + [rec.spikes for rec in record.layers[:-1]]
        for index, arr in enumerate(layer_inputs):
            flat = arr.reshape(-1, arr.shape[2])
            assert flat.size >= engine_mod._SPARSE_MIN_SIZE, index
            density = np.count_nonzero(flat) / flat.size
            assert 0 < density <= engine_mod.SPARSE_DENSITY_THRESHOLD, (
                index, density)

    @needs_scipy
    @pytest.mark.parametrize("kind", ["adaptive", "hard_reset"])
    @pytest.mark.parametrize("engine", ["fused", "step"])
    @pytest.mark.parametrize("precision", ["float64", "float32"])
    @pytest.mark.parametrize("chunk", [1, 7, STEPS])
    def test_chunked_equals_one_shot(self, kind, engine, precision, chunk):
        net = make_net(kind)
        x = make_inputs()
        full, _ = net.run(x, engine=engine, precision=precision)
        got, state = stream_in_chunks(net, x, chunk, engine, precision)
        assert got.dtype == full.dtype
        assert np.array_equal(full, got)
        assert state.steps.tolist() == [STEPS] * BATCH

    @needs_scipy
    @pytest.mark.parametrize("engine", ["fused", "step"])
    def test_irregular_chunk_boundaries(self, engine):
        net = make_net()
        x = make_inputs()
        full, _ = net.run(x, engine=engine)
        state = None
        outs = []
        bounds = [0, 1, 6, 7, 20, 43, STEPS]
        for a, b in zip(bounds[:-1], bounds[1:]):
            out, state = net.run_stream(x[:, a:b], state, engine=engine)
            outs.append(out)
        assert np.array_equal(full, np.concatenate(outs, axis=1))

    def test_empty_chunk_is_a_noop(self):
        net = make_net()
        x = make_inputs()
        state = None
        out, state = net.run_stream(x[:, :7], state)
        before = state.clone()
        empty, state = net.run_stream(x[:, :0], state)
        assert empty.shape == (BATCH, 0, SIZES[-1])
        for a, b in zip(state.layers, before.layers):
            for key in a:
                assert np.array_equal(a[key], b[key])
        assert state.steps.tolist() == before.steps.tolist()

    def test_step_engine_streaming_needs_no_scipy(self):
        """The step-engine guarantee is pure per-step arithmetic identity
        (same matmul shapes either way) — scipy irrelevant."""
        net = make_net()
        x = make_inputs(batch=3, steps=12)
        full, _ = net.run(x, engine="step")
        got, _ = stream_in_chunks(net, x, 5, "step", None)
        assert np.array_equal(full, got)


class TestPaddedHeterogeneousBatch:
    """The micro-batcher primitive: gathered rows + per-row lengths."""

    @needs_scipy
    def test_padded_batch_matches_solo_streams(self):
        net = make_net()
        rng = np.random.default_rng(3)
        lengths = np.array([5, 17, STEPS, 1, 29])
        count = len(lengths)
        data = [(rng.random((1, STEPS, SIZES[0])) < DENSITY)
                .astype(np.float64) for _ in range(count)]
        xs = np.zeros((count, STEPS, SIZES[0]))
        for i, length in enumerate(lengths):
            xs[i, :length] = data[i][0, :length]
        batched = StreamState.for_network(net, count)
        out, _ = net.run_stream(xs, batched, lengths=lengths)
        follow = (rng.random((1, 6, SIZES[0])) < DENSITY).astype(np.float64)
        for i, length in enumerate(lengths):
            solo_out, solo_state = net.run_stream(data[i][:, :length])
            assert np.array_equal(solo_out[0], out[i, :length])
            # captured state must continue identically to the solo stream
            cont_ref, _ = net.run_stream(follow, solo_state)
            scattered = StreamState.for_network(net, 1)
            scattered.copy_row(0, batched, i)
            cont_got, _ = net.run_stream(follow, scattered)
            assert np.array_equal(cont_ref, cont_got)
        assert batched.steps.tolist() == lengths.tolist()

    def test_length_validation(self):
        net = make_net()
        x = make_inputs(batch=3, steps=10)
        state = StreamState.for_network(net, 3)
        with pytest.raises(ShapeError):
            net.run_stream(x, state, lengths=np.array([1, 2]))
        with pytest.raises(ShapeError):
            net.run_stream(x, state, lengths=np.array([0, 5, 5]))
        with pytest.raises(ShapeError):
            net.run_stream(x, state, lengths=np.array([1, 5, 11]))


class TestStateContract:
    def test_engine_and_precision_are_sticky(self):
        net = make_net()
        x = make_inputs(batch=2, steps=4)
        _, state = net.run_stream(x, engine="fused", precision="float32")
        with pytest.raises(ValueError):
            net.run_stream(x, state, engine="step")
        with pytest.raises(ValueError):
            net.run_stream(x, state, precision="float64")
        # matching values pass
        net.run_stream(x, state, engine="fused", precision="float32")

    def test_batch_and_architecture_mismatch(self):
        net = make_net()
        x = make_inputs(batch=2, steps=4)
        _, state = net.run_stream(x)
        with pytest.raises(ShapeError):
            net.run_stream(make_inputs(batch=3, steps=4), state)
        other = SpikingNetwork((48, 30, 40), rng=0)
        with pytest.raises(ShapeError):
            other.run_stream(x, state)
        swapped = make_net("hard_reset")
        with pytest.raises(ShapeError):
            swapped.run_stream(x, state)

    def test_copy_row_rejects_foreign_states(self):
        net = make_net()
        fused = StreamState.for_network(net, 1, engine="fused")
        step = StreamState.for_network(net, 1, engine="step")
        with pytest.raises(ValueError):
            fused.copy_row(0, step, 0)

    def test_clone_is_independent(self):
        net = make_net()
        x = make_inputs(batch=2, steps=6)
        _, state = net.run_stream(x)
        twin = state.clone()
        net.run_stream(x, state)
        assert state.steps.tolist() == [12, 12]
        assert twin.steps.tolist() == [6, 6]

    def test_fused_streaming_leaves_network_scratch_alone(self):
        net = make_net()
        x = make_inputs()
        net.run(x)  # deposits per-run scratch on layers/neurons
        k_before = [layer.k.copy() for layer in net.layers]
        h_before = [layer.neuron.h.copy() for layer in net.layers]
        net.run_stream(x[:, :9])
        for layer, k, h in zip(net.layers, k_before, h_before):
            assert np.array_equal(layer.k, k)
            assert np.array_equal(layer.neuron.h, h)


class TestExpScanCarry:
    def test_carry_matches_continuous_scan(self):
        rng = np.random.default_rng(0)
        xs = rng.standard_normal((3, 20, 5))
        full = exp_scan(xs.copy(), 0.7, out=xs.copy())
        a = exp_scan(xs[:, :8].copy(), 0.7, out=xs[:, :8].copy())
        b = exp_scan(xs[:, 8:].copy(), 0.7, out=xs[:, 8:].copy(),
                     carry=a[:, -1].copy())
        assert np.array_equal(full, np.concatenate([a, b], axis=1))

    def test_carry_non_aliased_output(self):
        rng = np.random.default_rng(1)
        xs = rng.standard_normal((2, 10, 4))
        full = exp_scan(xs, 0.5)
        b = exp_scan(xs[:, 4:], 0.5, carry=full[:, 3])
        assert np.array_equal(full[:, 4:], b)
