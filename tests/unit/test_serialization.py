"""Unit tests for repro.common.serialization and asciiplot."""

import numpy as np
import pytest

from repro.common.asciiplot import line_plot, raster_plot, sparkline
from repro.common.errors import SerializationError
from repro.common.serialization import (
    load_arrays,
    load_checkpoint,
    load_json,
    save_arrays,
    save_checkpoint,
    save_json,
)


class TestArrayArtifacts:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "model")
        arrays = {"w0": np.arange(6).reshape(2, 3),
                  "w1": np.ones(4, dtype=np.float32)}
        save_arrays(path, arrays, metadata={"epochs": 5})
        loaded, metadata = load_arrays(path)
        np.testing.assert_array_equal(loaded["w0"], arrays["w0"])
        assert loaded["w1"].dtype == np.float32
        assert metadata["epochs"] == 5

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_arrays(str(tmp_path / "nope"))

    def test_empty_artifact_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            save_arrays(str(tmp_path / "x"), {})

    def test_bad_names_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            save_arrays(str(tmp_path / "x"), {"": np.ones(1)})

    def test_no_sidecar_gives_empty_metadata(self, tmp_path):
        path = str(tmp_path / "bare")
        save_arrays(path, {"a": np.ones(2)})
        import os
        sidecar = path + ".json"
        if os.path.exists(sidecar):
            os.remove(sidecar)
        _, metadata = load_arrays(path)
        assert metadata == {}


class TestCheckpoints:
    def _net(self, kind="adaptive"):
        from repro.core import NeuronParameters, SpikingNetwork

        params = NeuronParameters(tau=3.0, tau_r=5.0, v_th=0.8, theta=1.2)
        return SpikingNetwork((6, 5, 3), params=params, neuron_kind=kind,
                              rng=7)

    def test_roundtrip_restores_architecture_and_weights(self, tmp_path):
        network = self._net()
        path = save_checkpoint(str(tmp_path / "ckpt"), network,
                               meta={"accuracy": 0.9})
        assert path.endswith(".npz")
        restored, meta = load_checkpoint(path)
        assert meta["accuracy"] == 0.9
        assert restored.sizes == network.sizes
        assert restored.neuron_kind == network.neuron_kind
        assert restored.params == network.params
        for ours, theirs in zip(network.weights, restored.weights):
            np.testing.assert_array_equal(ours, theirs)

    def test_roundtrip_preserves_behavior_bitwise(self, tmp_path):
        network = self._net("hard_reset")
        for layer in network.layers:
            layer.weight *= 6.0
        restored, _ = load_checkpoint(
            save_checkpoint(str(tmp_path / "hr"), network))
        x = (np.random.default_rng(0).random((3, 8, 6)) < 0.3).astype(float)
        expect, _ = network.run(x)
        got, _ = restored.run(x)
        np.testing.assert_array_equal(expect, got)

    def test_non_checkpoint_artifact_rejected(self, tmp_path):
        path = str(tmp_path / "plain")
        save_arrays(path, {"w": np.ones(3)}, metadata={"not": "a checkpoint"})
        with pytest.raises(SerializationError):
            load_checkpoint(path)


class TestJson:
    def test_roundtrip_with_numpy_scalars(self, tmp_path):
        path = str(tmp_path / "meta.json")
        save_json(path, {"a": np.float64(1.5), "b": np.int64(3),
                         "c": np.bool_(True), "d": np.arange(3)})
        loaded = load_json(path)
        assert loaded == {"a": 1.5, "b": 3, "c": True, "d": [0, 1, 2]}

    def test_unserialisable_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            save_json(str(tmp_path / "bad.json"), {"f": lambda: 1})

    def test_missing_json(self, tmp_path):
        with pytest.raises(SerializationError):
            load_json(str(tmp_path / "missing.json"))


class TestAsciiPlots:
    def test_sparkline_length(self):
        assert len(sparkline(np.sin(np.linspace(0, 6, 200)), width=40)) == 40

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_line_plot_contains_legend(self):
        text = line_plot({"a": [0, 1, 2], "b": [2, 1, 0]}, height=5, width=20)
        assert "a" in text and "b" in text
        assert "*" in text and "o" in text

    def test_line_plot_constant_series(self):
        text = line_plot({"flat": [1.0] * 10}, height=4, width=10)
        assert "flat" in text

    def test_raster_plot_counts_spikes(self):
        spikes = np.zeros((8, 30))
        spikes[2, 5] = 1
        spikes[7, 29] = 1
        text = raster_plot(spikes)
        assert "spikes=2" in text
        assert "#" in text

    def test_raster_plot_requires_2d(self):
        with pytest.raises(ValueError):
            raster_plot(np.zeros(10))
