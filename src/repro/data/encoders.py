"""Generic spike encoders: rate (Poisson), latency, and delta modulation.

These are utilities for building additional workloads on top of the core
library (the examples use them); the paper's own datasets use the
dedicated DVS and cochlea encoders.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import DatasetError
from ..common.rng import RandomState, as_random_state

__all__ = ["poisson_encode", "latency_encode", "delta_encode"]


def poisson_encode(intensities: np.ndarray, steps: int,
                   max_rate: float = 0.5,
                   rng: RandomState | int | None = None) -> np.ndarray:
    """Rate coding: spike probability per step proportional to intensity.

    Parameters
    ----------
    intensities:
        Array in [0, 1] of shape (...,); output prepends a time axis.
    steps:
        Number of time steps.
    max_rate:
        Spike probability for intensity 1.0.

    Returns
    -------
    ndarray
        Binary array of shape (steps, \\*intensities.shape).
    """
    intensities = np.asarray(intensities, dtype=np.float64)
    if intensities.min() < 0 or intensities.max() > 1:
        raise DatasetError("intensities must lie in [0, 1]")
    if not 0 < max_rate <= 1:
        raise DatasetError(f"max_rate must be in (0, 1], got {max_rate}")
    if steps <= 0:
        raise DatasetError(f"steps must be positive, got {steps}")
    generator = as_random_state(rng)
    probabilities = intensities * max_rate
    draws = generator.random((steps, *intensities.shape))
    return (draws < probabilities[None, ...]).astype(np.float32)


def latency_encode(intensities: np.ndarray, steps: int) -> np.ndarray:
    """Latency coding: brighter inputs spike earlier, exactly once.

    Intensity 1.0 spikes at step 0; intensity just above 0 spikes at the
    last step; intensity 0 never spikes.  Deterministic.
    """
    intensities = np.asarray(intensities, dtype=np.float64)
    if intensities.min() < 0 or intensities.max() > 1:
        raise DatasetError("intensities must lie in [0, 1]")
    if steps <= 0:
        raise DatasetError(f"steps must be positive, got {steps}")
    out = np.zeros((steps, *intensities.shape), dtype=np.float32)
    active = intensities > 0
    times = np.round((1.0 - intensities) * (steps - 1)).astype(int)
    indices = np.nonzero(active)
    out[(times[indices], *indices)] = 1.0
    return out


def delta_encode(signal: np.ndarray, threshold: float = 0.1) -> np.ndarray:
    """Delta modulation: ON/OFF spikes on signal changes beyond a threshold.

    Parameters
    ----------
    signal:
        Array of shape (steps, channels).
    threshold:
        Change magnitude per emitted spike (send-on-delta reference update).

    Returns
    -------
    ndarray
        (steps, channels, 2) spike counts: [..., 0] = ON, [..., 1] = OFF.
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 2:
        raise DatasetError(f"signal must be (steps, channels), got {signal.shape}")
    if threshold <= 0:
        raise DatasetError(f"threshold must be positive, got {threshold}")
    steps, channels = signal.shape
    out = np.zeros((steps, channels, 2), dtype=np.float32)
    reference = signal[0].copy()
    for t in range(1, steps):
        delta = signal[t] - reference
        on = np.floor(np.maximum(delta, 0.0) / threshold)
        off = np.floor(np.maximum(-delta, 0.0) / threshold)
        out[t, :, 0] = on
        out[t, :, 1] = off
        reference += threshold * (on - off)
    return out
