"""Property-based tests for the exponential filters (paper eq. 5).

The filters are the paper's core modelling primitive; these properties
(linearity, boundedness, adjointness, decay) must hold for *any* input,
not just the cases unit tests picked.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.filters import (
    DoubleExponentialKernel,
    decay_from_tau,
    exponential_filter,
    exponential_filter_adjoint,
)

taus = st.floats(min_value=0.5, max_value=50.0, allow_nan=False)
signals = hnp.arrays(
    dtype=np.float64, shape=st.integers(min_value=1, max_value=60),
    elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False,
                       allow_infinity=False),
)


@given(signal=signals, tau=taus)
@settings(max_examples=60, deadline=None)
def test_linearity_superposition(signal, tau):
    """filter(a + b) == filter(a) + filter(b) — the LTI property the SRM
    derivation (Section II) rests on."""
    alpha = decay_from_tau(tau)
    rng = np.random.default_rng(0)
    other = rng.normal(size=signal.shape)
    combined = exponential_filter(signal + other, alpha)
    separate = exponential_filter(signal, alpha) + exponential_filter(other, alpha)
    np.testing.assert_allclose(combined, separate, atol=1e-9)


@given(signal=signals, tau=taus, scale=st.floats(min_value=-3.0, max_value=3.0,
                                                 allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_homogeneity(signal, tau, scale):
    alpha = decay_from_tau(tau)
    np.testing.assert_allclose(
        exponential_filter(scale * signal, alpha),
        scale * exponential_filter(signal, alpha),
        atol=1e-9,
    )


@given(signal=signals, tau=taus)
@settings(max_examples=60, deadline=None)
def test_bounded_by_dc_gain(signal, tau):
    """|y[t]| <= max|x| / (1 - alpha) for any input."""
    alpha = decay_from_tau(tau)
    out = exponential_filter(signal, alpha)
    bound = np.max(np.abs(signal)) / (1.0 - alpha) + 1e-9
    assert np.all(np.abs(out) <= bound)


@given(tau=taus, length=st.integers(min_value=2, max_value=80))
@settings(max_examples=40, deadline=None)
def test_impulse_response_decays_monotonically(tau, length):
    alpha = decay_from_tau(tau)
    impulse = np.zeros(length)
    impulse[0] = 1.0
    out = exponential_filter(impulse, alpha)
    assert np.all(np.diff(out) <= 0)
    assert out[0] == 1.0


@given(tau=taus, length=st.integers(min_value=1, max_value=50))
@settings(max_examples=40, deadline=None)
def test_adjoint_identity_random(tau, length):
    """<F x, y> == <x, F* y> for random vectors (exact adjointness,
    required for the BPTT filter adjoints to be exact gradients)."""
    alpha = decay_from_tau(tau)
    rng = np.random.default_rng(length)
    x = rng.normal(size=length)
    y = rng.normal(size=length)
    lhs = np.dot(exponential_filter(x, alpha), y)
    rhs = np.dot(x, exponential_filter_adjoint(y, alpha))
    np.testing.assert_allclose(lhs, rhs, rtol=1e-10, atol=1e-10)


@given(
    tau_m=st.floats(min_value=2.0, max_value=20.0),
    tau_ratio=st.floats(min_value=0.05, max_value=0.8),
    length=st.integers(min_value=2, max_value=60),
)
@settings(max_examples=40, deadline=None)
def test_double_exp_kernel_nonnegative_and_peaked(tau_m, tau_ratio, length):
    kernel = DoubleExponentialKernel(tau_m=tau_m, tau_s=tau_m * tau_ratio)
    values = kernel.kernel(length)
    assert values[0] == 0.0
    assert np.all(values >= 0.0)


@given(signal=signals)
@settings(max_examples=40, deadline=None)
def test_double_exp_convolve_linearity(signal):
    kernel = DoubleExponentialKernel()
    rng = np.random.default_rng(1)
    other = rng.normal(size=signal.shape)
    np.testing.assert_allclose(
        kernel.convolve(signal + other),
        kernel.convolve(signal) + kernel.convolve(other),
        atol=1e-9,
    )
