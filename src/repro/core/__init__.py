"""The paper's algorithmic contribution: filter-based adaptive-threshold
LIF neurons, surrogate-gradient BPTT, and the two task losses."""

from .backprop import GradientResult, backward
from .engine import (
    PRECISIONS,
    StreamState,
    exp_scan,
    exp_scan_reverse,
    fused_backward,
    fused_layer_forward,
    fused_run,
    resolve_precision,
    run_streaming,
)
from .filters import (
    DoubleExponentialKernel,
    ExponentialFilter,
    decay_from_tau,
    exponential_filter,
    exponential_filter_adjoint,
    tau_from_decay,
)
from .layers import SpikingLinear
from .loss import CrossEntropyRateLoss, VanRossumLoss, softmax
from .model_zoo import association_net, nmnist_mlp, shd_mlp
from .network import RunRecord, SpikingNetwork
from .neurons import AdaptiveLIFNeuron, HardResetLIFNeuron, NeuronParameters, make_neuron
from .optim import SGD, Adam, AdamW, clip_grad_norm, make_optimizer
from .schedules import (
    ConstantSchedule,
    CosineSchedule,
    ScheduledTrainer,
    StepSchedule,
    WarmupSchedule,
)
from .surrogate import (
    PAPER_SIGMA,
    ErfcSurrogate,
    RectangularSurrogate,
    SigmoidSurrogate,
    SurrogateGradient,
    TriangleSurrogate,
    get_surrogate,
)
from .trainer import EpochStats, Trainer, TrainerConfig, run_in_batches

__all__ = [
    "GradientResult",
    "backward",
    "PRECISIONS",
    "StreamState",
    "run_streaming",
    "exp_scan",
    "exp_scan_reverse",
    "fused_backward",
    "fused_layer_forward",
    "fused_run",
    "resolve_precision",
    "DoubleExponentialKernel",
    "ExponentialFilter",
    "decay_from_tau",
    "exponential_filter",
    "exponential_filter_adjoint",
    "tau_from_decay",
    "SpikingLinear",
    "CrossEntropyRateLoss",
    "VanRossumLoss",
    "softmax",
    "association_net",
    "nmnist_mlp",
    "shd_mlp",
    "RunRecord",
    "SpikingNetwork",
    "AdaptiveLIFNeuron",
    "HardResetLIFNeuron",
    "NeuronParameters",
    "make_neuron",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "make_optimizer",
    "ConstantSchedule",
    "CosineSchedule",
    "ScheduledTrainer",
    "StepSchedule",
    "WarmupSchedule",
    "PAPER_SIGMA",
    "ErfcSurrogate",
    "RectangularSurrogate",
    "SigmoidSurrogate",
    "SurrogateGradient",
    "TriangleSurrogate",
    "get_surrogate",
    "EpochStats",
    "Trainer",
    "TrainerConfig",
    "run_in_batches",
]
