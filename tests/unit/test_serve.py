"""Tests for the serving layer: scheduler properties, server ticks,
registry round-trips, load generation.

The scheduler guarantees pinned here (see ``repro/serve/batcher.py``):
FIFO fairness (the oldest queued chunk is always in the next tick — no
starvation), at most ``max_batch`` chunks and at most one chunk per
session per tick, bounded queue with explicit rejection.  The server
guarantee: a session's outputs are bitwise-identical to streaming alone,
no matter how its chunks were coalesced with other sessions.
"""

import numpy as np
import pytest

from repro.common.errors import CapacityError, SerializationError, StateError
from repro.core import SpikingNetwork
from repro.core import engine as engine_mod
from repro.core.trainer import run_in_batches
from repro.serve import (
    MicroBatcher,
    ModelRegistry,
    ModelServer,
    StreamRequest,
    Ticket,
)
from repro.serve.loadgen import open_loop

needs_scipy = pytest.mark.skipif(
    engine_mod._sparse is None,
    reason="bitwise batching transparency requires scipy's CSR product")

SIZES = (24, 20, 12)


def make_net(seed=1):
    net = SpikingNetwork(SIZES, rng=seed)
    for layer in net.layers:
        layer.weight *= 5.0
    return net


def make_chunk(steps=6, seed=0, density=0.15):
    rng = np.random.default_rng(seed)
    return (rng.random((steps, SIZES[0])) < density).astype(np.float64)


class _FakeSession:
    def __init__(self, session_id):
        self.session_id = session_id


def _request(seq, session, arrival, steps=3):
    ticket = Ticket(session.session_id, arrival)
    return StreamRequest(seq, session, np.zeros((steps, 4)), ticket)


class TestMicroBatcher:
    def test_fifo_and_one_per_session(self):
        batcher = MicroBatcher(max_batch=3, max_wait_ms=10, queue_limit=10)
        a, b = _FakeSession("a"), _FakeSession("b")
        for seq, session in enumerate([a, a, b, a, b]):
            batcher.submit(_request(seq, session, float(seq)))
        tick = batcher.collect()
        assert [r.seq for r in tick] == [0, 2]  # a's second chunk skipped
        tick = batcher.collect()
        assert [r.seq for r in tick] == [1, 4]  # skipped kept its place
        assert [r.seq for r in batcher.collect()] == [3]
        assert batcher.pending == 0

    def test_ready_full_batch_or_deadline(self):
        batcher = MicroBatcher(max_batch=2, max_wait_ms=5, queue_limit=10)
        a, b = _FakeSession("a"), _FakeSession("b")
        batcher.submit(_request(0, a, 1.0))
        assert not batcher.ready(1.004)
        assert batcher.ready(1.005)         # max_wait elapsed
        batcher.submit(_request(1, a, 1.001))
        assert not batcher.ready(1.002)     # same session: not a full batch
        batcher.submit(_request(2, b, 1.002))
        assert batcher.ready(1.002)         # two distinct sessions == max_batch
        assert batcher.next_deadline() == pytest.approx(1.005)

    def test_queue_limit_rejects(self):
        batcher = MicroBatcher(max_batch=2, max_wait_ms=5, queue_limit=2)
        a = _FakeSession("a")
        batcher.submit(_request(0, a, 0.0))
        batcher.submit(_request(1, a, 0.0))
        with pytest.raises(CapacityError):
            batcher.submit(_request(2, a, 0.0))
        assert batcher.pending == 2

    def test_never_starves_and_never_exceeds_max_batch(self):
        """Property fuzz: random sessions and tick interleaving.  Every
        tick is FIFO over eligible chunks, the globally oldest chunk is
        always served in the very next tick, per-session order is
        preserved, and no tick exceeds max_batch."""
        rng = np.random.default_rng(0)
        for trial in range(20):
            max_batch = int(rng.integers(1, 5))
            batcher = MicroBatcher(max_batch=max_batch, max_wait_ms=0,
                                   queue_limit=10_000)
            sessions = [_FakeSession(f"s{i}")
                        for i in range(int(rng.integers(1, 6)))]
            seq = 0
            served: list[int] = []
            session_of = {}
            pending_total = 0
            for _ in range(int(rng.integers(5, 30))):
                for _ in range(int(rng.integers(0, 6))):
                    session = sessions[int(rng.integers(len(sessions)))]
                    batcher.submit(_request(seq, session, float(seq)))
                    session_of[seq] = session.session_id
                    seq += 1
                    pending_total += 1
                if rng.random() < 0.7 and pending_total:
                    oldest = batcher._queue[0].seq
                    tick = batcher.collect()
                    assert 1 <= len(tick) <= max_batch
                    assert tick[0].seq == oldest          # no starvation
                    ids = [r.session.session_id for r in tick]
                    assert len(set(ids)) == len(ids)      # one per session
                    served.extend(r.seq for r in tick)
                    pending_total -= len(tick)
            while pending_total:
                tick = batcher.collect()
                assert 1 <= len(tick) <= max_batch
                served.extend(r.seq for r in tick)
                pending_total -= len(tick)
            assert sorted(served) == list(range(seq))     # everything served
            for sid in {s.session_id for s in sessions}:  # per-session FIFO
                mine = [q for q in served if session_of[q] == sid]
                assert mine == sorted(mine)


class TestModelServer:
    @needs_scipy
    def test_coalesced_sessions_match_solo_streams(self):
        net = make_net()
        server = ModelServer(net, max_batch=4, max_wait_ms=1.0)
        data = [make_chunk(steps=18, seed=i) for i in range(5)]
        sids = [server.open_session() for _ in range(5)]
        got = {sid: [] for sid in sids}
        bounds = [0, 4, 11, 18]
        for a, b in zip(bounds[:-1], bounds[1:]):
            tickets = [server.submit(sid, chunk[a:b])
                       for sid, chunk in zip(sids, data)]
            server.flush()
            for sid, ticket in zip(sids, tickets):
                assert ticket.done
                got[sid].append(ticket.outputs)
        for sid, chunk in zip(sids, data):
            solo, _ = net.run_stream(chunk[None])
            assert np.array_equal(solo[0], np.concatenate(got[sid], axis=0))
        assert server.stats["completed"] == 15
        assert server.stats["max_tick_batch"] <= 4

    @needs_scipy
    def test_heterogeneous_chunk_lengths_in_one_tick(self):
        net = make_net()
        server = ModelServer(net, max_batch=8, max_wait_ms=1e6)
        lengths = [1, 9, 4, 13]
        data = [make_chunk(steps=length, seed=10 + i)
                for i, length in enumerate(lengths)]
        sids = [server.open_session() for _ in range(len(lengths))]
        tickets = [server.submit(sid, chunk)
                   for sid, chunk in zip(sids, data)]
        assert server.flush() == len(lengths)
        assert server.stats["ticks"] == 1    # all coalesced into one tick
        for sid, chunk, ticket in zip(sids, data, tickets):
            solo, _ = net.run_stream(chunk[None])
            assert ticket.outputs.shape == (chunk.shape[0], SIZES[-1])
            assert np.array_equal(solo[0], ticket.outputs)
            assert server.session(sid).steps == chunk.shape[0]

    def test_infer_and_session_bookkeeping(self):
        server = ModelServer(make_net(), max_batch=2, max_wait_ms=0.0)
        sid = server.open_session()
        out = server.infer(sid, make_chunk(steps=5))
        assert out.shape == (5, SIZES[-1])
        session = server.session(sid)
        assert session.steps == 5 and session.chunks == 1
        server.close_session(sid)
        with pytest.raises(StateError):
            server.session(sid)
        with pytest.raises(StateError):
            server.submit(sid, make_chunk())

    def test_submit_validation_and_backpressure(self):
        server = ModelServer(make_net(), max_batch=2, max_wait_ms=1e6,
                             queue_limit=2)
        sid = server.open_session()
        from repro.common.errors import ShapeError

        with pytest.raises(ShapeError):
            server.submit(sid, np.zeros((4, SIZES[0] + 1)))
        with pytest.raises(ShapeError):
            server.submit(sid, np.zeros((0, SIZES[0])))
        server.submit(sid, make_chunk())
        server.submit(sid, make_chunk())
        with pytest.raises(CapacityError):
            server.submit(sid, make_chunk())
        assert server.stats["rejected"] == 1
        assert server.pending == 2

    def test_max_wait_controls_readiness(self):
        server = ModelServer(make_net(), max_batch=4, max_wait_ms=50.0)
        sid = server.open_session(now=0.0)
        server.submit(sid, make_chunk(), now=0.0)
        assert server.poll(now=0.01) == 0      # not due yet
        assert server.poll(now=0.051) == 1     # max_wait elapsed
        assert server.stats["ticks"] == 1

    def test_run_batch_matches_run_in_batches(self):
        net = make_net()
        server = ModelServer(net)
        rng = np.random.default_rng(5)
        inputs = (rng.random((10, 7, SIZES[0])) < 0.15).astype(np.float64)
        expect = run_in_batches(net, inputs, 4)
        assert np.array_equal(expect, server.run_batch(inputs, 4))

    def test_run_batch_pool_sharded(self):
        net = make_net()
        server = ModelServer(net)
        rng = np.random.default_rng(6)
        inputs = (rng.random((8, 6, SIZES[0])) < 0.15).astype(np.float64)
        expect = server.run_batch(inputs, 4)
        got = server.run_batch(inputs, 4, workers=1)
        assert np.array_equal(expect, got)

    def test_step_engine_server(self):
        net = make_net()
        server = ModelServer(net, engine="step")
        sid = server.open_session()
        chunk = make_chunk(steps=8, seed=3)
        out = server.infer(sid, chunk)
        solo, _ = net.run_stream(chunk[None], engine="step")
        assert np.array_equal(solo[0], out)


class TestHardwareServing:
    """The hardware-in-the-loop serving path: ticks through the mapped
    realization, shadow divergence, and the Fig. 8 sweep as a serving
    workload."""

    @staticmethod
    def make_mapped(net, variation=0.2, seed=3):
        from repro.hardware import HardwareMappedNetwork, RRAMDeviceConfig

        device = RRAMDeviceConfig(levels=16, variation=variation)
        return HardwareMappedNetwork(net, device, rng=seed)

    @needs_scipy
    def test_hardware_ticks_match_solo_hardware_streams(self):
        net = make_net()
        mapped = self.make_mapped(net)
        server = ModelServer(net, hardware=mapped, max_batch=4,
                             max_wait_ms=1.0)
        data = [make_chunk(steps=14, seed=i) for i in range(4)]
        sids = [server.open_session() for _ in range(4)]
        got = {sid: [] for sid in sids}
        for a, b in zip([0, 5, 14][:-1], [5, 14]):
            tickets = [server.submit(sid, chunk[a:b])
                       for sid, chunk in zip(sids, data)]
            server.flush()
            for sid, ticket in zip(sids, tickets):
                got[sid].append(ticket.outputs)
        for sid, chunk in zip(sids, data):
            solo, _ = mapped.run_stream(chunk[None])
            assert np.array_equal(solo[0],
                                  np.concatenate(got[sid], axis=0))

    @needs_scipy
    def test_shadow_serves_ideal_and_reports_divergence(self):
        net = make_net()
        mapped = self.make_mapped(net, variation=0.4)
        server = ModelServer(net, hardware=mapped, shadow=True,
                             max_batch=4, max_wait_ms=1.0)
        sid = server.open_session()
        chunk = make_chunk(steps=16, seed=9)
        ticket = server.submit(sid, chunk)
        server.flush()
        ideal, _ = net.run_stream(chunk[None])
        hardware, _ = mapped.run_stream(chunk[None])
        assert np.array_equal(ideal[0], ticket.outputs)  # primary = ideal
        expected = float(np.mean(ideal[0] != hardware[0]))
        assert ticket.divergence == pytest.approx(expected)
        assert server.mean_divergence() == pytest.approx(expected)
        assert server.stats["shadow_chunks"] == 1
        assert server.session(sid).divergence_sum == pytest.approx(expected)

    @needs_scipy
    def test_shadow_stream_carries_across_chunks(self):
        """The shadow state is a real stream: chunked shadow outputs must
        equal the solo hardware stream, chunk after chunk."""
        net = make_net()
        mapped = self.make_mapped(net, variation=0.4)
        server = ModelServer(net, hardware=mapped, max_batch=2,
                             max_wait_ms=1.0, shadow=True)
        sid = server.open_session()
        chunk = make_chunk(steps=12, seed=4)
        divs = []
        for a, b in [(0, 5), (5, 12)]:
            ticket = server.submit(sid, chunk[a:b])
            server.flush()
            divs.append(ticket.divergence)
        ideal, _ = net.run_stream(chunk[None])
        hardware, _ = mapped.run_stream(chunk[None])
        assert divs[0] == pytest.approx(
            float(np.mean(ideal[0, :5] != hardware[0, :5])))
        assert divs[1] == pytest.approx(
            float(np.mean(ideal[0, 5:] != hardware[0, 5:])))

    def test_mode_validation(self):
        net = make_net()
        with pytest.raises(ValueError):
            ModelServer(net, shadow=True)                 # no hardware
        mapped = self.make_mapped(net)
        with pytest.raises(ValueError):
            ModelServer(net, hardware=mapped, engine="step")
        other = make_net(seed=9)
        with pytest.raises(ValueError):
            ModelServer(other, hardware=mapped)           # foreign mapping
        assert "hardware" in repr(ModelServer(net, hardware=mapped))

    def test_run_batch_serves_the_hardware_realization(self):
        net = make_net()
        mapped = self.make_mapped(net)
        server = ModelServer(net, hardware=mapped)
        rng = np.random.default_rng(8)
        inputs = (rng.random((6, 5, SIZES[0])) < 0.15).astype(np.float64)
        expect = run_in_batches(mapped.hardware_network, inputs, 4)
        assert np.array_equal(expect, server.run_batch(inputs, 4))

    def test_evaluate_variation_matches_direct_sweep(self):
        from repro.hardware import accuracy_under_variation

        net = make_net()
        mapped = self.make_mapped(net)
        server = ModelServer(net, hardware=mapped)
        rng = np.random.default_rng(7)
        inputs = (rng.random((10, 5, SIZES[0])) < 0.15).astype(np.float64)
        labels = np.arange(10) % SIZES[-1]
        rows = server.evaluate_variation(inputs, labels, bits=4,
                                         variations=[0.0, 0.3], n_seeds=2,
                                         rng=11)
        assert [r["variation"] for r in rows] == [0.0, 0.3]
        for row in rows:
            mean, std = accuracy_under_variation(
                net, inputs, labels, bits=4, variation=row["variation"],
                n_seeds=2, rng=11, precision=server.dtype,
                device=mapped.device)
            assert row["mean_accuracy"] == mean
            assert row["std_accuracy"] == std

    def test_evaluate_variation_pooled_matches_serial(self):
        net = make_net()
        server = ModelServer(net)
        rng = np.random.default_rng(12)
        inputs = (rng.random((8, 5, SIZES[0])) < 0.15).astype(np.float64)
        labels = np.arange(8) % SIZES[-1]
        serial = server.evaluate_variation(inputs, labels, bits=4,
                                           variations=[0.2], n_seeds=2)
        pooled = server.evaluate_variation(inputs, labels, bits=4,
                                           variations=[0.2], n_seeds=2,
                                           workers=1)
        assert serial == pooled

    def test_loadgen_reports_shadow_divergence(self):
        net = make_net()
        server = ModelServer(net, hardware=self.make_mapped(net),
                             shadow=True, max_batch=4, max_wait_ms=1.0)
        report = open_loop(server, sessions=4, requests=20, chunk_steps=4,
                           rate_rps=2000.0, rng=0)
        assert report.divergence is not None
        assert 0.0 <= report.divergence <= 1.0
        plain = ModelServer(make_net(), max_batch=4, max_wait_ms=1.0)
        assert open_loop(plain, sessions=2, requests=10, chunk_steps=4,
                         rate_rps=2000.0, rng=0).divergence is None


class TestModelRegistry:
    def test_save_load_list_roundtrip(self, tmp_path):
        registry = ModelRegistry(str(tmp_path / "registry"))
        assert registry.models() == []
        assert registry.latest("demo") is None
        net = make_net()
        v1 = registry.save("demo", net, meta={"note": "first"})
        v2 = registry.save("demo", net)
        assert (v1, v2) == ("v0001", "v0002")
        assert registry.versions("demo") == ["v0001", "v0002"]
        assert registry.latest("demo") == "v0002"
        loaded, meta = registry.load("demo", "v0001")
        assert meta["note"] == "first"
        assert loaded.sizes == net.sizes
        assert loaded.neuron_kind == net.neuron_kind
        for a, b in zip(loaded.weights, net.weights):
            assert np.array_equal(a, b)
        entries = registry.list("demo")
        assert [e["version"] for e in entries] == ["v0001", "v0002"]
        assert entries[0]["network"]["sizes"] == list(SIZES)

    def test_invalid_names_and_missing_models(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        with pytest.raises(SerializationError):
            registry.save("../escape", make_net())
        with pytest.raises(SerializationError):
            registry.path("ok", "1")
        with pytest.raises(SerializationError):
            registry.load("absent")

    def test_from_registry_boots_a_server(self, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        net = make_net()
        registry.save("m", net, meta={"k": 1})
        server = ModelServer.from_registry(registry, "m", max_batch=2)
        assert (server.model_name, server.model_version) == ("m", "v0001")
        assert server.model_meta["k"] == 1
        sid = server.open_session()
        chunk = make_chunk(steps=4)
        solo, _ = net.run_stream(chunk[None])
        assert np.array_equal(solo[0], server.infer(sid, chunk))

    def test_hardware_profile_roundtrip(self, tmp_path):
        from repro.hardware import HardwareProfile

        registry = ModelRegistry(str(tmp_path))
        assert registry.profiles("m") == []
        assert registry.latest_profile("m") is None
        profile = HardwareProfile.create(bits=4, variation=0.2, seed=3)
        p1 = registry.save_profile("m", profile, meta={"note": "fig8"})
        p2 = registry.save_profile("m", HardwareProfile.create(bits=5))
        assert (p1, p2) == ("hw0001", "hw0002")
        assert registry.profiles("m") == ["hw0001", "hw0002"]
        assert registry.latest_profile("m") == "hw0002"
        loaded, meta = registry.load_profile("m", "hw0001")
        assert loaded == profile
        assert meta["note"] == "fig8"
        latest, _ = registry.load_profile("m")
        assert latest.bits == 5
        entries = registry.list_profiles("m")
        assert [e["profile"] for e in entries] == ["hw0001", "hw0002"]
        assert entries[0]["config"]["quantization"]["bits"] == 4
        with pytest.raises(SerializationError):
            registry.profile_path("m", "v0001")
        with pytest.raises(SerializationError):
            registry.load_profile("absent")

    def test_profiles_do_not_leak_into_checkpoint_listing(self, tmp_path):
        from repro.hardware import HardwareProfile

        registry = ModelRegistry(str(tmp_path))
        registry.save("m", make_net())
        registry.save_profile("m", HardwareProfile.create(bits=4))
        assert registry.versions("m") == ["v0001"]
        assert [e["version"] for e in registry.list("m")] == ["v0001"]

    @needs_scipy
    def test_from_registry_with_hardware_profile(self, tmp_path):
        from repro.hardware import HardwareProfile

        registry = ModelRegistry(str(tmp_path))
        net = make_net()
        registry.save("m", net)
        profile = HardwareProfile.create(bits=4, variation=0.3, seed=5)
        registry.save_profile("m", profile)
        server = ModelServer.from_registry(registry, "m",
                                           hardware_profile=True,
                                           max_batch=2)
        assert server.model_profile == "hw0001"
        assert server.hardware is not None
        sid = server.open_session()
        chunk = make_chunk(steps=6, seed=2)
        # the served realization == building the profile by hand on the
        # loaded checkpoint (weights equal the original network's)
        reference = profile.build(server.network)
        solo, _ = reference.run_stream(chunk[None])
        assert np.array_equal(solo[0], server.infer(sid, chunk))


class TestLoadgen:
    def test_open_loop_accounting(self):
        server = ModelServer(make_net(), max_batch=4, max_wait_ms=1.0,
                             queue_limit=16)
        report = open_loop(server, sessions=4, requests=40, chunk_steps=4,
                           rate_rps=2000.0, rng=0)
        assert report.completed + report.rejected == 40
        assert report.completed == server.stats["completed"]
        assert report.throughput_rps > 0
        lat = report.latency_ms
        assert 0 <= lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        payload = report.to_dict()
        assert set(payload["latency_ms"]) == {"p50", "p95", "p99", "mean",
                                              "max"}
        assert isinstance(report.render(), str)

    def test_render_survives_total_rejection(self):
        """from_run deliberately emits None latencies when nothing
        completed; render() must stay printable on that report."""
        from repro.serve.loadgen import ServingReport

        report = ServingReport.from_run(100.0, 1.0, [], rejected=5,
                                        ticks=0, steps=0)
        assert report.latency_ms["p50"] is None
        assert "n/a" in report.render()

    def test_overload_rejects_but_serves_at_capacity(self):
        server = ModelServer(make_net(), max_batch=2, max_wait_ms=0.1,
                             queue_limit=4)
        report = open_loop(server, sessions=8, requests=120, chunk_steps=2,
                           rate_rps=1e6, rng=1)
        assert report.rejected > 0                 # backpressure engaged
        assert report.completed + report.rejected == 120
        assert server.pending == 0                 # queue fully drained
