"""Quickstart: train the paper's adaptive-threshold SNN on a purely
temporal task.

The task is deliberately chosen so *only spike timing* separates the
classes: every sample activates every channel exactly once, but class 0
sweeps the channels in ascending order and class 1 in descending order.
A rate code sees the two classes as identical — learning this task is
direct evidence that the model and the surrogate-gradient BPTT exploit
temporal structure (the paper's central claim).

The trained model is persisted end-to-end: a checkpoint (weights +
architecture) is written with ``save_checkpoint``, reloaded with
``load_checkpoint``, and the restored network is verified to score
identically — the same artifact a ``repro.serve.ModelRegistry`` serves.

Run:  python examples/quickstart.py
"""

import os

import numpy as np

from repro import (
    CrossEntropyRateLoss,
    RandomState,
    SpikingNetwork,
    Trainer,
    TrainerConfig,
)
from repro.common.asciiplot import raster_plot
from repro.common.serialization import load_checkpoint, save_checkpoint
from repro.core.calibration import calibrate_firing


def make_temporal_order_task(n_samples: int, steps: int = 40,
                             channels: int = 20, rng_seed: int = 0):
    """Class = the direction of a spike wavefront across channels."""
    rng = RandomState(rng_seed)
    inputs = np.zeros((n_samples, steps, channels), dtype=np.float64)
    labels = np.zeros(n_samples, dtype=np.int64)
    for i in range(n_samples):
        label = i % 2
        labels[i] = label
        order = np.arange(channels) if label == 0 else np.arange(channels)[::-1]
        start = int(rng.integers(0, steps - channels))
        for delay, channel in enumerate(order):
            inputs[i, start + delay, channel] = 1.0
        noise = rng.random((steps, channels)) < 0.02
        inputs[i][noise] = 1.0
    return inputs, labels


def main():
    print(__doc__)
    train_x, train_y = make_temporal_order_task(160, rng_seed=0)
    test_x, test_y = make_temporal_order_task(60, rng_seed=1)

    print(raster_plot(train_x[0].T, height=10, width=60,
                      title="class 0 sample (ascending wavefront)"))
    print(raster_plot(train_x[1].T, height=10, width=60,
                      title="class 1 sample (descending wavefront)"))

    # Paper model: adaptive-threshold LIF, erfc surrogate, AdamW (Table I).
    network = SpikingNetwork((20, 32, 2), rng=2)
    calibrate_firing(network, train_x[:32], target_rate=0.1)

    trainer = Trainer(
        network, CrossEntropyRateLoss(),
        TrainerConfig(epochs=30, batch_size=32, learning_rate=2e-3,
                      optimizer="adamw"),
        rng=3,
    )
    trainer.fit(train_x, train_y, test_x, test_y, verbose=True)

    final = trainer.evaluate(test_x, test_y)
    print(f"\nfinal test accuracy: {100 * final['accuracy']:.1f} % "
          f"(chance: 50 %)")

    # The paper's Table II ablation in miniature: same weights, hard reset.
    hard_reset = network.with_neuron_kind("hard_reset")
    hr = trainer.evaluate(test_x, test_y, network=hard_reset)
    print(f"same weights, hard-reset neurons: {100 * hr['accuracy']:.1f} % "
          f"(temporal state destroyed on every output spike)")

    # Persist the trained model end-to-end: checkpoint -> disk -> restore.
    path = save_checkpoint(
        os.path.join("artifacts", "quickstart_model"), network,
        meta={"task": "temporal-order", "test_accuracy": final["accuracy"]},
    )
    restored, meta = load_checkpoint(path)
    again = trainer.evaluate(test_x, test_y, network=restored)
    assert again["accuracy"] == final["accuracy"], "checkpoint drifted"
    print(f"\ncheckpoint round-trip: {path} "
          f"(saved test_accuracy={meta['test_accuracy']:.3f}, restored model "
          f"scores identically)")


if __name__ == "__main__":
    main()
