"""Synthetic open-loop load generation and serving metrics.

:func:`open_loop` drives a :class:`~repro.serve.server.ModelServer` the
way a fleet of independent clients would: request arrival times are drawn
from a Poisson process at a configured offered rate and do **not** wait
for earlier responses (open loop — the honest way to measure a server,
cf. closed-loop generators that self-throttle and hide queueing).

Time is hybrid: arrivals advance a virtual clock along the precomputed
schedule, while each tick advances it by the tick's *measured* wall-clock
compute.  Latency therefore contains everything a real client would see —
queueing delay, the coalescing wait, and compute — while the schedule
stays exactly reproducible for a given seed.  On an otherwise idle
machine the numbers match a realtime run; the virtual clock just removes
sleep time and scheduler jitter from the measurement.

The resulting :class:`ServingReport` carries the acceptance metrics of
the serving layer: ``throughput_rps`` and p50/p95/p99 latency
(``make bench-serving`` -> ``BENCH_serving.json``).

:func:`open_loop_fleet` is the multi-tenant variant: one Poisson
arrival process whose requests are split across named tenants
(:class:`TenantLoad` shares), driving a
:class:`~repro.serve.fleet.Fleet` through its per-tenant admission
control.  The :class:`FleetReport` carries the aggregate
:class:`ServingReport` plus one per tenant — the per-tenant SLO rows
the ``fleet`` scenario kind lands in ``run_table.csv``.
"""

from __future__ import annotations

import dataclasses
import math
import time
from pathlib import Path

import numpy as np

from ..common import faults as _faults
from ..common.errors import CapacityError, ShapeError, StateError
from ..common.rng import RandomState, as_random_state

__all__ = ["FleetReport", "ServingReport", "TenantLoad", "open_loop",
           "open_loop_fleet"]


@dataclasses.dataclass
class ServingReport:
    """Aggregate metrics of one open-loop serving run."""

    offered_rps: float
    duration_s: float
    submitted: int
    completed: int
    rejected: int
    ticks: int
    throughput_rps: float
    mean_batch: float
    steps_per_s: float
    latency_ms: dict  # p50 / p95 / p99 / mean / max
    #: Mean per-chunk ideal-vs-hardware output divergence (shadow-mode
    #: servers only; ``None`` otherwise).
    divergence: float | None = None
    #: Robustness metrics — the zero/1.0 defaults describe a clean run,
    #: so every serving report carries the same shape whether or not a
    #: fault plan was active (see docs/robustness.md).
    faults_injected: int = 0
    requests_retried: int = 0
    requests_expired: int = 0
    requests_failed: int = 0
    #: p99 arrival-to-answer latency of the *retried* requests only —
    #: what recovery costs the requests that needed it.  ``None`` when
    #: nothing was retried.
    recovery_p99_ms: float | None = None
    #: completed / (completed + failed + expired).  Queue-full
    #: rejections are back-pressure, not unavailability, and are
    #: excluded (reported separately as ``rejected``).
    availability: float = 1.0
    #: p95 of per-chunk queue wait (submit to serving tick, virtual
    #: clock, ms) — from the server's ``serve.queue_wait_ms`` histogram,
    #: windowed to this run.  ``None`` when nothing was batched.
    queue_wait_p95_ms: float | None = None
    #: p95 of measured per-tick compute (the load generator's ``timer``,
    #: ms).  ``None`` when no tick completed anything.
    tick_compute_p95_ms: float | None = None
    #: ``WorkerPool.stats`` snapshot of the deployment's pool (restarts,
    #: retries, dispatches, timeouts, per-worker respawns); ``None``
    #: when the served path ran without one.
    pool_stats: dict | None = None

    @classmethod
    def from_run(cls, offered_rps: float, duration_s: float,
                 latencies_s: list[float], rejected: int,
                 ticks: int, steps: int,
                 divergence: float | None = None,
                 expired: int = 0, failed: int = 0,
                 retried_latencies_s: list[float] | None = None,
                 faults_injected: int = 0,
                 queue_wait_p95_ms: float | None = None,
                 tick_compute_p95_ms: float | None = None,
                 pool_stats: dict | None = None) -> "ServingReport":
        completed = len(latencies_s)
        # The virtual clock runs on numpy scalars (np.cumsum arrivals);
        # coerce to builtin floats so downstream renderers (the run
        # table's repr-based CSV cells) never see np.float64.
        duration_s = float(duration_s)
        duration = max(duration_s, 1e-12)
        if completed:
            ms = 1e3 * np.asarray(latencies_s)
            latency = {
                "p50": round(float(np.percentile(ms, 50)), 3),
                "p95": round(float(np.percentile(ms, 95)), 3),
                "p99": round(float(np.percentile(ms, 99)), 3),
                "mean": round(float(ms.mean()), 3),
                "max": round(float(ms.max()), 3),
            }
        else:
            # Nothing completed (total rejection): JSON null, not a fake
            # 0 ms that would read as instant service in the trajectory.
            latency = {key: None for key in ("p50", "p95", "p99", "mean",
                                             "max")}
        retried = list(retried_latencies_s or [])
        recovery_p99 = None
        if retried:
            recovery_p99 = round(float(np.percentile(
                1e3 * np.asarray(retried), 99)), 3)
        resolved = completed + int(failed) + int(expired)
        return cls(
            offered_rps=round(float(offered_rps), 3),
            duration_s=round(duration_s, 6),
            submitted=completed + rejected + int(failed) + int(expired),
            completed=completed,
            rejected=rejected,
            ticks=ticks,
            throughput_rps=round(completed / duration, 3),
            mean_batch=round(completed / ticks, 3) if ticks else 0.0,
            steps_per_s=round(float(steps) / duration, 1),
            latency_ms=latency,
            divergence=(None if divergence is None
                        else round(float(divergence), 6)),
            faults_injected=int(faults_injected),
            requests_retried=len(retried),
            requests_expired=int(expired),
            requests_failed=int(failed),
            recovery_p99_ms=recovery_p99,
            availability=(round(completed / resolved, 6) if resolved
                          else 1.0),
            queue_wait_p95_ms=(None if queue_wait_p95_ms is None
                               else round(float(queue_wait_p95_ms), 3)),
            tick_compute_p95_ms=(None if tick_compute_p95_ms is None
                                 else round(float(tick_compute_p95_ms), 3)),
            pool_stats=pool_stats,
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        lat = self.latency_ms

        def ms(key: str) -> str:
            # Total-rejection reports carry None latencies by design.
            return "    n/a" if lat[key] is None else f"{lat[key]:7.2f}"

        return (
            f"offered {self.offered_rps:8.1f} rps | served "
            f"{self.throughput_rps:8.1f} rps | rejected {self.rejected:4d} | "
            f"batch {self.mean_batch:5.2f} | latency ms "
            f"p50 {ms('p50')}  p95 {ms('p95')}  p99 {ms('p99')}"
        )


def open_loop(server, *, sessions: int = 16, requests: int = 200,
              chunk_steps: int = 10, rate_rps: float = 200.0,
              spike_density: float = 0.03,
              rng: RandomState | int | None = 0,
              workload=None,
              timer=time.perf_counter, pool=None,
              export_dir=None) -> ServingReport:
    """Drive ``server`` with a Poisson open-loop arrival process.

    Parameters
    ----------
    server:
        A :class:`~repro.serve.server.ModelServer` (fresh stats are not
        required; the report uses only this run's tickets).
    sessions:
        Concurrent client streams; arrivals are assigned round-robin so
        every session receives an in-order subsequence of chunks.
    requests:
        Total chunks offered (pregenerated outside the timed loop).
    chunk_steps:
        Time steps per chunk.
    rate_rps:
        Offered arrival rate (chunks/second) of the Poisson process.
    spike_density:
        Bernoulli spike probability of the synthetic chunks (ignored
        when ``workload`` is given).
    workload:
        What the request streams carry: ``None`` keeps the legacy
        synthetic Bernoulli chunks; otherwise a
        :class:`~repro.serve.workloads.Workload` instance or name
        (``"speech"``, ``"dvs"``, ``"glyph"``, ``"speech+synthetic"``,
        ...) whose channel width must match the served network's input
        layer.
    timer:
        Clock used to measure per-tick compute (seconds, monotonic).
        The default is real wall time; the scenario harness injects a
        deterministic fake in its reproducibility tests.  Each completed
        tick's measurement is also observed into the server's
        ``serve.tick_compute_ms`` histogram, and the run's p95 lands in
        the report.
    pool:
        Optional :class:`~repro.runtime.pool.WorkerPool` backing the
        deployment; its ``stats`` snapshot is attached to the report
        (``pool_stats``) after the run.
    export_dir:
        Optional directory to export telemetry artifacts into after the
        run: ``serving.prom`` (the server registry's Prometheus text
        snapshot) always, plus ``serving.trace.jsonl`` when the server
        carries a telemetry bundle (see :mod:`repro.obs`).
    """
    rng = as_random_state(rng)
    n_in = server.network.sizes[0]
    if workload is not None:
        from .workloads import make_workload

        workload = make_workload(workload, channels=None)
        if workload.channels != n_in:
            raise ShapeError(
                f"workload {workload.name!r} emits {workload.channels} "
                f"channels but the served network expects {n_in}")
    session_ids = [server.open_session(now=0.0) for _ in range(sessions)]
    gaps = -np.log(np.clip(rng.random(requests), 1e-12, None)) / rate_rps
    arrivals = np.cumsum(gaps)
    if workload is None:
        chunks = [
            (rng.random((chunk_steps, n_in))
             < spike_density).astype(np.float64)
            for _ in range(requests)
        ]
    else:
        chunks = [workload.sample(chunk_steps, rng)
                  for _ in range(requests)]

    outstanding: list = []
    latencies: list[float] = []
    retried_latencies: list[float] = []
    rejected = 0
    expired = 0
    failed = 0
    ticks = 0
    steps_served = 0
    now = 0.0
    index = 0
    plan = _faults.active_plan()
    injected_before = sum(plan.injected.values()) if plan else 0
    # Window the shared histograms to this run: the server instruments
    # outlive a single open_loop call (and a PoolCache'd server may host
    # several), so percentiles read only the samples added from here on.
    queue_wait = server.metrics.histogram("serve.queue_wait_ms")
    tick_compute = server.metrics.histogram(
        "serve.tick_compute_ms",
        help="measured wall-clock compute per completed tick (ms)")
    queue_wait_start = queue_wait.count
    tick_compute_start = tick_compute.count

    def settle(after: float, completed: int) -> None:
        """Resolve finished tickets against the post-compute time."""
        nonlocal steps_served, expired, failed
        still = []
        for ticket in outstanding:
            if not ticket.done:
                still.append(ticket)
            elif ticket.ok:
                if completed:
                    # Re-stamp completion at the post-compute virtual
                    # time (the server stamped the pre-compute instant).
                    ticket.completed_at = after
                latencies.append(ticket.latency)
                if ticket.retried:
                    retried_latencies.append(ticket.latency)
                steps_served += ticket.outputs.shape[0]
            elif ticket.expired:
                expired += 1
            else:
                failed += 1
        outstanding[:] = still

    def run_tick(at: float) -> float:
        """Run one due tick; advance the virtual clock by measured cost."""
        nonlocal ticks
        start = timer()
        completed = server.poll(now=at)
        elapsed = timer() - start
        after = at + elapsed
        if completed:
            ticks += 1
            tick_compute.observe(elapsed * 1e3)
        # Scan even on completed == 0: a poll may resolve tickets only
        # by shedding expired requests or failing poisoned ones.
        settle(after, completed)
        return after

    def admit(position: int) -> None:
        nonlocal rejected
        arrival = float(arrivals[position])
        slot = position % sessions
        try:
            outstanding.append(
                server.submit(session_ids[slot], chunks[position],
                              now=arrival))
        except CapacityError:
            rejected += 1
        except StateError:
            # The session was reaped while this client was idle: a real
            # client reconnects — open a fresh stream and resubmit.
            session_ids[slot] = server.open_session(now=arrival)
            try:
                outstanding.append(
                    server.submit(session_ids[slot], chunks[position],
                                  now=arrival))
            except CapacityError:
                rejected += 1

    while index < requests or outstanding:
        # Admit everything that has arrived by ``now`` — arrivals land in
        # the queue while the server computes, stamped with their *true*
        # arrival time, and are rejected at that moment if the queue is
        # full.  Only then may the next tick run.
        while index < requests and arrivals[index] <= now:
            admit(index)
            index += 1
        if server.ready(now=now):
            now = run_tick(now)
            continue
        next_arrival = arrivals[index] if index < requests else math.inf
        deadline = server.next_deadline()
        deadline = math.inf if deadline is None else deadline
        event = min(next_arrival, deadline)
        if math.isinf(event):
            # Nothing schedulable — but queued-only requests may still
            # hold tickets that a TTL poll would expire; resolve them
            # instead of spinning forever.
            if outstanding:
                now = run_tick(now)
                if outstanding:
                    break  # genuinely unresolvable (no TTL configured)
                continue
            break
        now = max(now, event)

    duration = max(now, float(arrivals[-1]) if requests else 0.0)
    divergence = (server.mean_divergence()
                  if getattr(server, "shadow", False) else None)
    injected = (sum(plan.injected.values()) - injected_before if plan
                else 0)
    # Drain-time accounting tripwire: every submission this run made (and
    # any the server saw before) must be booked exactly once.
    server.check_invariants()
    if export_dir is not None:
        export_dir = Path(export_dir)
        export_dir.mkdir(parents=True, exist_ok=True)
        (export_dir / "serving.prom").write_text(
            server.metrics.render_prometheus(), encoding="utf-8")
        if server.telemetry is not None:
            server.telemetry.tracer.write_jsonl(
                export_dir / "serving.trace.jsonl")
    return ServingReport.from_run(
        rate_rps, duration, latencies, rejected, ticks, steps_served,
        divergence=divergence, expired=expired, failed=failed,
        retried_latencies_s=retried_latencies, faults_injected=injected,
        queue_wait_p95_ms=queue_wait.percentile(95,
                                                start=queue_wait_start),
        tick_compute_p95_ms=tick_compute.percentile(
            95, start=tick_compute_start),
        pool_stats=None if pool is None else pool.stats)


@dataclasses.dataclass(frozen=True)
class TenantLoad:
    """One tenant's slice of a fleet load mix.

    ``share`` weights the per-request tenant draw (shares are
    normalized, so ``(3, 1)`` means a 75/25 split); ``sessions`` is the
    tenant's concurrent stream count; ``quota`` (a
    :class:`~repro.serve.fleet.TenantQuota`) is installed on the fleet
    before the run when given.
    """

    tenant: str
    share: float = 1.0
    sessions: int = 4
    quota: object = None  # a repro.serve.fleet.TenantQuota, or None

    def __post_init__(self):
        if self.share <= 0:
            raise ValueError(
                f"tenant {self.tenant!r} share must be > 0, "
                f"got {self.share}")
        if self.sessions < 1:
            raise ValueError(
                f"tenant {self.tenant!r} needs >= 1 session, "
                f"got {self.sessions}")


@dataclasses.dataclass
class FleetReport:
    """One multi-tenant open-loop run: fleet-wide plus per-tenant books."""

    aggregate: ServingReport
    #: Per-tenant :class:`ServingReport` (offered rate = the tenant's
    #: share of the mix; ``ticks`` is fleet-wide, so ``mean_batch`` is
    #: the tenant's share of each tick).
    tenants: dict
    replicas: int
    live_replicas: int
    replicas_down: int
    misroutes: int
    canary_weight: float
    #: Fraction of completed chunks served by the canary generation
    #: (``None`` when no canary was in flight).
    canary_share: float | None
    #: Per-tenant admission-control rejections (token bucket +
    #: in-flight bound) — the quota slice of each tenant's ``rejected``.
    quota_rejected: dict

    def to_dict(self) -> dict:
        view = dataclasses.asdict(self)
        view["aggregate"] = self.aggregate.to_dict()
        view["tenants"] = {name: report.to_dict()
                           for name, report in self.tenants.items()}
        return view

    def render(self) -> str:
        lines = [f"fleet    {self.aggregate.render()}"]
        for name in sorted(self.tenants):
            lines.append(f"{name:8s} {self.tenants[name].render()}")
        return "\n".join(lines)


def open_loop_fleet(fleet, *, tenants=None, requests: int = 400,
                    chunk_steps: int = 8, rate_rps: float = 300.0,
                    spike_density: float = 0.03,
                    rng: RandomState | int | None = 0,
                    workload=None, timer=time.perf_counter,
                    export_dir=None) -> FleetReport:
    """Drive a :class:`~repro.serve.fleet.Fleet` with a mixed
    multi-tenant Poisson arrival process.

    One open-loop schedule at ``rate_rps`` is drawn exactly as in
    :func:`open_loop`; each arrival is then assigned a tenant by a
    seeded draw weighted by the :class:`TenantLoad` shares and
    round-robined over that tenant's sessions.  Tenant quotas (when a
    ``TenantLoad.quota`` is given) are installed before any traffic, so
    the run measures the fleet's admission control, not just its
    queues: a tenant's ``CapacityError``\\ s count against *that
    tenant's* report only.

    A session that dies with its replica (``StateError`` on submit)
    reconnects through :meth:`~repro.serve.fleet.Fleet.open_session` —
    landing on a live replica — and resubmits once; if the whole fleet
    is down the chunk counts as rejected.  At drain the fleet-wide
    accounting tripwire :meth:`~repro.serve.fleet.Fleet.check_invariants`
    runs, like :func:`open_loop` does for a bare server.

    ``export_dir`` writes ``fleet.prom`` (the fleet registry snapshot)
    and, when a telemetry bundle is attached, ``fleet.trace.jsonl``.
    """
    rng = as_random_state(rng)
    if tenants is None:
        tenants = (TenantLoad("t0"),)
    tenants = tuple(tenants)
    if not tenants:
        raise ValueError("open_loop_fleet needs at least one TenantLoad")
    names = [t.tenant for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant ids in load mix: {names}")
    for load in tenants:
        if load.quota is not None:
            fleet.set_quota(load.tenant, load.quota)
    n_in = fleet.network.sizes[0]
    if workload is not None:
        from .workloads import make_workload

        workload = make_workload(workload, channels=None)
        if workload.channels != n_in:
            raise ShapeError(
                f"workload {workload.name!r} emits {workload.channels} "
                f"channels but the served network expects {n_in}")
    session_ids = {
        load.tenant: [fleet.open_session(load.tenant, now=0.0)
                      for _ in range(load.sessions)]
        for load in tenants
    }
    gaps = -np.log(np.clip(rng.random(requests), 1e-12, None)) / rate_rps
    arrivals = np.cumsum(gaps)
    shares = np.asarray([load.share for load in tenants], dtype=np.float64)
    edges = np.cumsum(shares / shares.sum())
    owners = np.searchsorted(edges, rng.random(requests), side="right")
    owners = np.minimum(owners, len(tenants) - 1)
    if workload is None:
        chunks = [
            (rng.random((chunk_steps, n_in))
             < spike_density).astype(np.float64)
            for _ in range(requests)
        ]
    else:
        chunks = [workload.sample(chunk_steps, rng)
                  for _ in range(requests)]

    class _Books:
        __slots__ = ("outstanding", "latencies", "retried", "rejected",
                     "expired", "failed", "steps", "cursor")

        def __init__(self):
            self.outstanding: list = []
            self.latencies: list[float] = []
            self.retried: list[float] = []
            self.rejected = 0
            self.expired = 0
            self.failed = 0
            self.steps = 0
            self.cursor = 0

    books = {load.tenant: _Books() for load in tenants}
    ticks = 0
    now = 0.0
    index = 0
    plan = _faults.active_plan()
    injected_before = sum(plan.injected.values()) if plan else 0
    quota_before = {name: tenant["rejected_quota"]
                    for name, tenant in fleet.stats["per_tenant"].items()}
    canary_before = {name: tenant["completed_canary"]
                     for name, tenant in fleet.stats["per_tenant"].items()}
    canary_active = fleet.canary_generation is not None
    # Window the per-replica queue-wait histograms (and a fleet-level
    # tick-compute histogram) to this run, as open_loop does for one
    # server's.
    queue_window = fleet._queue_wait_window()
    tick_compute = fleet.metrics.histogram(
        "serve.tick_compute_ms",
        help="measured wall-clock compute per completed tick (ms)")
    tick_compute_start = tick_compute.count

    def settle(after: float, completed: int) -> None:
        for book in books.values():
            still = []
            for ticket in book.outstanding:
                if not ticket.done:
                    still.append(ticket)
                elif ticket.ok:
                    if completed:
                        ticket.completed_at = after
                    book.latencies.append(ticket.latency)
                    if ticket.retried:
                        book.retried.append(ticket.latency)
                    book.steps += ticket.outputs.shape[0]
                elif ticket.expired:
                    book.expired += 1
                else:
                    book.failed += 1
            book.outstanding[:] = still

    def run_tick(at: float) -> float:
        nonlocal ticks
        start = timer()
        completed = fleet.poll(now=at)
        elapsed = timer() - start
        after = at + elapsed
        if completed:
            ticks += 1
            tick_compute.observe(elapsed * 1e3)
        settle(after, completed)
        return after

    def admit(position: int) -> None:
        arrival = float(arrivals[position])
        load = tenants[int(owners[position])]
        book = books[load.tenant]
        ids = session_ids[load.tenant]
        slot = book.cursor % len(ids)
        book.cursor += 1
        try:
            book.outstanding.append(
                fleet.submit(ids[slot], chunks[position], now=arrival))
        except CapacityError:
            book.rejected += 1
        except StateError:
            # The session's replica died (or the stream was reaped): a
            # real client reconnects, landing on a live replica — the
            # fleet's re-route path.
            try:
                ids[slot] = fleet.open_session(load.tenant, now=arrival)
            except StateError:
                # No live replica at all: the connect itself is refused.
                book.rejected += 1
                return
            try:
                book.outstanding.append(
                    fleet.submit(ids[slot], chunks[position], now=arrival))
            except CapacityError:
                book.rejected += 1

    def draining() -> bool:
        return any(book.outstanding for book in books.values())

    while index < requests or draining():
        while index < requests and arrivals[index] <= now:
            admit(index)
            index += 1
        if fleet.ready(now=now):
            now = run_tick(now)
            continue
        next_arrival = arrivals[index] if index < requests else math.inf
        deadline = fleet.next_deadline()
        deadline = math.inf if deadline is None else deadline
        event = min(next_arrival, deadline)
        if math.isinf(event):
            if draining():
                now = run_tick(now)
                if draining():
                    break
                continue
            break
        now = max(now, event)

    duration = max(now, float(arrivals[-1]) if requests else 0.0)
    divergence = fleet.mean_divergence() if fleet.shadow else None
    injected = (sum(plan.injected.values()) - injected_before if plan
                else 0)
    fleet.check_invariants()
    if export_dir is not None:
        export_dir = Path(export_dir)
        export_dir.mkdir(parents=True, exist_ok=True)
        (export_dir / "fleet.prom").write_text(
            fleet.metrics.render_prometheus(), encoding="utf-8")
        if fleet.telemetry is not None:
            fleet.telemetry.tracer.write_jsonl(
                export_dir / "fleet.trace.jsonl")

    queue_samples = [sample for histogram, start in queue_window
                     for sample in histogram.samples[start:]]
    queue_wait_p95 = (float(np.percentile(np.asarray(queue_samples), 95))
                      if queue_samples else None)
    tick_compute_p95 = tick_compute.percentile(95, start=tick_compute_start)
    share_total = float(shares.sum())
    per_tenant = {}
    for load in tenants:
        book = books[load.tenant]
        per_tenant[load.tenant] = ServingReport.from_run(
            rate_rps * load.share / share_total, duration,
            book.latencies, book.rejected, ticks, book.steps,
            expired=book.expired, failed=book.failed,
            retried_latencies_s=book.retried)
    aggregate = ServingReport.from_run(
        rate_rps, duration,
        [lat for book in books.values() for lat in book.latencies],
        sum(book.rejected for book in books.values()), ticks,
        sum(book.steps for book in books.values()),
        divergence=divergence,
        expired=sum(book.expired for book in books.values()),
        failed=sum(book.failed for book in books.values()),
        retried_latencies_s=[lat for book in books.values()
                             for lat in book.retried],
        faults_injected=injected,
        queue_wait_p95_ms=queue_wait_p95,
        tick_compute_p95_ms=tick_compute_p95)
    after_tenants = fleet.stats["per_tenant"]
    quota_rejected = {
        name: after_tenants[name]["rejected_quota"]
        - quota_before.get(name, 0)
        for name in after_tenants
    }
    canary_completed = sum(
        after_tenants[name]["completed_canary"]
        - canary_before.get(name, 0)
        for name in after_tenants)
    canary_share = None
    if canary_active and aggregate.completed:
        canary_share = round(canary_completed / aggregate.completed, 6)
    return FleetReport(
        aggregate=aggregate,
        tenants=per_tenant,
        replicas=fleet.replicas,
        live_replicas=fleet.live_replicas,
        replicas_down=int(fleet.stats["replicas_down"]),
        misroutes=int(fleet.stats["misroutes"]),
        canary_weight=float(fleet.canary_weight),
        canary_share=canary_share,
        quota_rejected=quota_rejected,
    )
