"""Data-driven weight-scale calibration ("don't start silent, don't start
saturated").

Surrogate-gradient BPTT only learns when membrane values visit the
neighbourhood of the threshold: a layer that never spikes passes no error
to the layers above it (its PSPs are zero), and a layer that spikes every
step carries no information.  The paper does not state its initialisation;
any working reproduction needs the hidden layers to start at a moderate
firing rate.

:func:`calibrate_firing` fixes this generically: layer by layer, it scales
the weight matrix (a single scalar per layer, found by bisection on the
log-scale) until the layer's mean firing rate on a calibration batch hits a
target.  This is the spiking analogue of LSUV initialisation and is
deterministic given the batch.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError
from .network import SpikingNetwork

__all__ = ["calibrate_firing", "layer_firing_rates"]


def layer_firing_rates(network: SpikingNetwork, inputs: np.ndarray) -> list[float]:
    """Mean spike probability per layer on ``inputs`` (batch, T, n_in)."""
    _, record = network.run(inputs, record=True)
    return [float(np.mean(layer.spikes)) for layer in record.layers]


def calibrate_firing(network: SpikingNetwork, inputs: np.ndarray,
                     target_rate: float = 0.08, tolerance: float = 0.02,
                     max_iterations: int = 24,
                     scale_bounds: tuple[float, float] = (1e-3, 1e4)) -> list[float]:
    """Scale each layer's weights so its mean firing rate ≈ ``target_rate``.

    Layers are calibrated front to back (each layer sees the spikes of the
    already-calibrated layers below it).  The search is bisection on
    ``log(scale)``: firing rate is monotone non-decreasing in the weight
    scale for non-negative-mean drive, and in practice monotone enough for
    bisection even with signed weights.

    Parameters
    ----------
    network:
        Modified in place (weights multiplied by the found scales).
    inputs:
        Calibration batch, shape (batch, T, n_input).  A few dozen samples
        suffice.
    target_rate:
        Desired mean spike probability per neuron per step.
    tolerance:
        Stop early when ``|rate - target| <= tolerance``.
    max_iterations:
        Bisection steps per layer.
    scale_bounds:
        Search interval for the multiplicative scale.

    Returns
    -------
    list[float]
        The applied per-layer scales.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    if inputs.ndim != 3:
        raise ShapeError(f"calibration inputs must be (batch, T, n), "
                         f"got {inputs.shape}")
    if not 0.0 < target_rate < 1.0:
        raise ValueError(f"target_rate must be in (0, 1), got {target_rate}")

    scales: list[float] = []
    layer_input = inputs
    for layer in network.layers:
        base_weight = layer.weight.copy()

        def rate_at(scale: float) -> float:
            layer.weight = base_weight * scale
            spikes, _ = layer.run(layer_input)
            return float(np.mean(spikes))

        lo, hi = scale_bounds
        # Ensure the bracket actually straddles the target.
        rate_lo, rate_hi = rate_at(lo), rate_at(hi)
        if rate_hi <= target_rate:
            chosen = hi
        elif rate_lo >= target_rate:
            chosen = lo
        else:
            chosen = 1.0
            for _ in range(max_iterations):
                mid = float(np.sqrt(lo * hi))  # bisection in log-space
                rate_mid = rate_at(mid)
                chosen = mid
                if abs(rate_mid - target_rate) <= tolerance:
                    break
                if rate_mid < target_rate:
                    lo = mid
                else:
                    hi = mid
        layer.weight = base_weight * chosen
        scales.append(float(chosen))
        layer_input, _ = layer.run(layer_input)
    return scales
