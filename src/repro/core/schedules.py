"""Learning-rate schedules.

The paper trains with a fixed AdamW learning rate (Table I); schedules
are provided as a standard extension for the `full`-profile runs, where
long training benefits from warmup + decay.  A schedule maps the 1-based
epoch index to a learning-rate *multiplier*; :class:`ScheduledTrainer`
applies it on top of any optimizer's base rate.
"""

from __future__ import annotations

import numpy as np

from .trainer import Trainer

__all__ = [
    "ConstantSchedule",
    "StepSchedule",
    "CosineSchedule",
    "WarmupSchedule",
    "ScheduledTrainer",
]


class ConstantSchedule:
    """Multiplier 1 forever (the paper's setting)."""

    def __call__(self, epoch: int) -> float:
        if epoch < 1:
            raise ValueError(f"epoch is 1-based, got {epoch}")
        return 1.0


class StepSchedule:
    """Multiply by ``gamma`` every ``step_size`` epochs.

    Parameters
    ----------
    step_size:
        Epochs between decays.
    gamma:
        Decay factor per step, in (0, 1].
    """

    def __init__(self, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def __call__(self, epoch: int) -> float:
        if epoch < 1:
            raise ValueError(f"epoch is 1-based, got {epoch}")
        return self.gamma ** ((epoch - 1) // self.step_size)


class CosineSchedule:
    """Cosine annealing from 1 down to ``floor`` over ``total_epochs``."""

    def __init__(self, total_epochs: int, floor: float = 0.0):
        if total_epochs <= 0:
            raise ValueError(
                f"total_epochs must be positive, got {total_epochs}")
        if not 0.0 <= floor < 1.0:
            raise ValueError(f"floor must be in [0, 1), got {floor}")
        self.total_epochs = int(total_epochs)
        self.floor = float(floor)

    def __call__(self, epoch: int) -> float:
        if epoch < 1:
            raise ValueError(f"epoch is 1-based, got {epoch}")
        progress = min((epoch - 1) / max(self.total_epochs - 1, 1), 1.0)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.floor + (1.0 - self.floor) * cosine


class WarmupSchedule:
    """Linear ramp over ``warmup_epochs``, then delegate to ``after``."""

    def __init__(self, warmup_epochs: int, after=None):
        if warmup_epochs < 0:
            raise ValueError(
                f"warmup_epochs must be >= 0, got {warmup_epochs}")
        self.warmup_epochs = int(warmup_epochs)
        self.after = after or ConstantSchedule()

    def __call__(self, epoch: int) -> float:
        if epoch < 1:
            raise ValueError(f"epoch is 1-based, got {epoch}")
        if epoch <= self.warmup_epochs:
            return epoch / (self.warmup_epochs + 1)
        return self.after(epoch - self.warmup_epochs)


class ScheduledTrainer(Trainer):
    """A :class:`~repro.core.trainer.Trainer` with a learning-rate schedule.

    The schedule multiplies the configured base learning rate at the start
    of every epoch (1-based); everything else is inherited.
    """

    def __init__(self, network, loss, config, schedule=None, rng=None):
        super().__init__(network, loss, config, rng=rng)
        self.schedule = schedule or ConstantSchedule()
        self._base_lr = self.optimizer.lr
        self._epoch_counter = 0

    def train_epoch(self, inputs, targets) -> float:
        self._epoch_counter += 1
        self.optimizer.lr = self._base_lr * float(
            self.schedule(self._epoch_counter))
        return super().train_epoch(inputs, targets)

    @property
    def current_lr(self) -> float:
        """The learning rate used by the most recent epoch."""
        return self.optimizer.lr
