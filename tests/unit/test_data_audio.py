"""Unit tests for the speech synthesizer and cochlea encoder."""

import numpy as np
import pytest

from repro.common.errors import DatasetError
from repro.data.cochlea import Cochlea, CochleaConfig, mel_frequencies
from repro.data.speech import LANGUAGES, WORDS, segment_table, synthesize_digit


class TestSpeech:
    def test_inventory_complete(self):
        assert len(WORDS) == 20
        for language in LANGUAGES:
            for digit in range(10):
                assert (language, digit) in WORDS

    def test_waveform_basic_properties(self):
        wave = synthesize_digit("english", 3, rng=0)
        assert wave.ndim == 1
        assert len(wave) > 1000
        assert np.max(np.abs(wave)) <= 1.0
        assert np.max(np.abs(wave)) > 0.5      # normalised near 0.9

    def test_deterministic(self):
        a = synthesize_digit("german", 7, rng=4)
        b = synthesize_digit("german", 7, rng=4)
        np.testing.assert_array_equal(a, b)

    def test_speaker_variability(self):
        a = synthesize_digit("english", 1, rng=1)
        b = synthesize_digit("english", 1, rng=2)
        assert len(a) != len(b) or not np.allclose(a, b)

    def test_unknown_word(self):
        with pytest.raises(DatasetError):
            synthesize_digit("french", 1)
        with pytest.raises(DatasetError):
            segment_table("english", 11)

    def test_fade_in_out(self):
        wave = synthesize_digit("english", 8, rng=0)
        assert abs(wave[0]) < 0.05
        assert abs(wave[-1]) < 0.05

    def test_words_are_acoustically_distinct(self):
        """Spectral envelopes of different digits should differ."""
        def spectrum(wave):
            mag = np.abs(np.fft.rfft(wave, n=4096))
            return mag / (np.linalg.norm(mag) + 1e-12)

        s2 = spectrum(synthesize_digit("english", 2, rng=0))
        s6 = spectrum(synthesize_digit("english", 6, rng=0))
        assert np.dot(s2, s6) < 0.98


class TestMelFrequencies:
    def test_monotone_and_in_range(self):
        freqs = mel_frequencies(700, 60.0, 3800.0)
        assert len(freqs) == 700
        assert np.all(np.diff(freqs) > 0)
        assert freqs[0] == pytest.approx(60.0, rel=1e-6)
        assert freqs[-1] == pytest.approx(3800.0, rel=1e-6)

    def test_mel_spacing_denser_at_low_freqs(self):
        freqs = mel_frequencies(100, 60.0, 3800.0)
        assert (freqs[1] - freqs[0]) < (freqs[-1] - freqs[-2])

    def test_validation(self):
        with pytest.raises(DatasetError):
            mel_frequencies(0, 60, 3800)
        with pytest.raises(DatasetError):
            mel_frequencies(10, 500, 100)


class TestCochlea:
    def test_config_validation(self):
        with pytest.raises(Exception):
            CochleaConfig(f_max=5000.0, sample_rate=8000)  # above Nyquist
        with pytest.raises(Exception):
            CochleaConfig(compression="gamma")
        with pytest.raises(Exception):
            CochleaConfig(hop_length=512, frame_length=256)

    def test_cochleagram_shape(self):
        cochlea = Cochlea(CochleaConfig(n_channels=64))
        wave = synthesize_digit("english", 0, rng=0)
        gram = cochlea.cochleagram(wave)
        assert gram.shape[1] == 64
        assert gram.shape[0] > 10
        assert np.all(gram >= 0)

    def test_tone_activates_matching_channels(self):
        """A pure tone should concentrate energy near its frequency."""
        config = CochleaConfig(n_channels=64)
        cochlea = Cochlea(config)
        t = np.arange(4000) / config.sample_rate
        tone = np.sin(2 * np.pi * 1000.0 * t)
        gram = cochlea.cochleagram(tone)
        profile = gram.mean(axis=0)
        peak_channel = int(np.argmax(profile))
        peak_freq = cochlea.centres[peak_channel]
        assert 800.0 < peak_freq < 1250.0

    def test_encode_shape_and_sparsity(self):
        cochlea = Cochlea(CochleaConfig(n_channels=128))
        wave = synthesize_digit("german", 4, rng=0)
        spikes = cochlea.encode(wave, steps=100, rng=0)
        assert spikes.shape == (100, 128)
        density = spikes.mean()
        assert 0.001 < density < 0.3        # sparse but not silent

    def test_encode_max_spikes_respected(self):
        config = CochleaConfig(n_channels=32, max_spikes=1)
        cochlea = Cochlea(config)
        wave = synthesize_digit("english", 5, rng=0)
        spikes = cochlea.encode(wave, steps=80, rng=0)
        assert spikes.max() <= 1.0

    def test_silence_produces_no_spikes(self):
        cochlea = Cochlea(CochleaConfig(n_channels=32))
        spikes = cochlea.encode(np.zeros(4000), steps=50, rng=0)
        assert spikes.sum() == 0

    def test_encode_deterministic_without_jitter(self):
        cochlea = Cochlea(CochleaConfig(n_channels=32))
        wave = synthesize_digit("english", 9, rng=0)
        a = cochlea.encode(wave, steps=60, gain_jitter=0.0)
        b = cochlea.encode(wave, steps=60, gain_jitter=0.0)
        np.testing.assert_array_equal(a, b)

    def test_invalid_inputs(self):
        cochlea = Cochlea(CochleaConfig(n_channels=16))
        with pytest.raises(DatasetError):
            cochlea.encode(np.zeros((10, 2)), steps=5)
        with pytest.raises(DatasetError):
            cochlea.encode(np.zeros(100), steps=0)

    def test_onset_emphasis(self):
        """With adaptation on, a sustained tone fires mostly at onset."""
        config = CochleaConfig(n_channels=64, adaptation=0.85)
        cochlea = Cochlea(config)
        t = np.arange(8000) / config.sample_rate
        tone = np.sin(2 * np.pi * 800.0 * t)
        spikes = cochlea.encode(tone, steps=200, rng=0, gain_jitter=0.0)
        first_half = spikes[:100].sum()
        second_half = spikes[100:].sum()
        assert first_half > 2 * second_half
