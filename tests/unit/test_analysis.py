"""Unit tests for repro.analysis (metrics, distances, rasters)."""

import numpy as np
import pytest

from repro.analysis import (
    accuracy,
    active_fraction,
    coincidence_factor,
    confusion_matrix,
    dense_to_events,
    events_to_dense,
    firing_rate,
    flatten_dvs,
    pairwise_van_rossum,
    per_class_accuracy,
    raster_summary,
    spike_count_histogram,
    trace_correlation,
    unflatten_dvs,
    van_rossum_distance,
    victor_purpura_distance,
)
from repro.common.errors import ShapeError


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == \
            pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([1]), np.array([1, 2]))
        with pytest.raises(ShapeError):
            accuracy(np.array([]), np.array([]))

    def test_confusion_matrix(self):
        predictions = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(predictions, labels, n_classes=3)
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_per_class_accuracy(self):
        predictions = np.array([0, 1, 0, 2])
        labels = np.array([0, 1, 1, 2])
        per_class = per_class_accuracy(predictions, labels, n_classes=4)
        assert per_class[0] == 1.0
        assert per_class[1] == 0.5
        assert per_class[2] == 1.0
        assert np.isnan(per_class[3])      # class absent

    def test_firing_rate_and_active_fraction(self):
        spikes = np.zeros((2, 10, 4))
        spikes[0, :, 0] = 1.0
        assert firing_rate(spikes) == pytest.approx(10 / 80)
        assert active_fraction(spikes) == pytest.approx(1 / 8)

    def test_spike_count_histogram(self):
        spikes = np.zeros((1, 5, 3))
        spikes[0, :, 1] = 1.0
        counts, edges = spike_count_histogram(spikes, bins=5)
        assert counts.sum() == 3
        assert len(edges) == 6


class TestVanRossumDistance:
    def test_identity(self):
        rng = np.random.default_rng(0)
        a = (rng.random((30, 3)) < 0.2).astype(float)
        assert van_rossum_distance(a, a) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a = (rng.random((25,)) < 0.2).astype(float)
        b = (rng.random((25,)) < 0.2).astype(float)
        assert van_rossum_distance(a, b) == pytest.approx(
            van_rossum_distance(b, a))

    def test_monotone_in_offset(self):
        base = np.zeros(50)
        base[10] = 1.0
        distances = []
        for offset in (2, 5, 10, 20):
            other = np.zeros(50)
            other[10 + offset] = 1.0
            distances.append(van_rossum_distance(base, other))
        assert distances == sorted(distances)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            van_rossum_distance(np.zeros(10), np.zeros(12))

    def test_pairwise_matrix(self):
        rng = np.random.default_rng(2)
        rasters = (rng.random((4, 20, 2)) < 0.2).astype(float)
        matrix = pairwise_van_rossum(rasters)
        assert matrix.shape == (4, 4)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)
        # Off-diagonal entries match the scalar function.
        expected = van_rossum_distance(rasters[0].reshape(20, 2),
                                       rasters[1].reshape(20, 2))
        assert matrix[0, 1] == pytest.approx(expected * 1.0, rel=1e-9)


class TestVictorPurpura:
    def test_identical_is_zero(self):
        train = np.zeros(20)
        train[[3, 8, 15]] = 1.0
        assert victor_purpura_distance(train, train) == 0.0

    def test_insert_delete_cost(self):
        a = np.zeros(20)
        a[5] = 1.0
        b = np.zeros(20)
        assert victor_purpura_distance(a, b) == 1.0     # delete one spike

    def test_shift_cheaper_than_delete_insert(self):
        a = np.zeros(20)
        a[5] = 1.0
        b = np.zeros(20)
        b[6] = 1.0
        # Shift by 1 costs 0.5*1 < 2 (delete + insert).
        assert victor_purpura_distance(a, b, cost=0.5) == pytest.approx(0.5)

    def test_far_shift_capped_by_two(self):
        a = np.zeros(50)
        a[2] = 1.0
        b = np.zeros(50)
        b[48] = 1.0
        assert victor_purpura_distance(a, b, cost=0.5) == pytest.approx(2.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            victor_purpura_distance(np.zeros(5), np.zeros(5), cost=-1.0)


class TestCoincidenceFactor:
    def test_identical_trains(self):
        train = np.zeros(40)
        train[[5, 15, 30]] = 1.0
        assert coincidence_factor(train, train) == pytest.approx(1.0, abs=0.3)

    def test_empty_pair(self):
        assert coincidence_factor(np.zeros(10), np.zeros(10)) == 1.0

    def test_one_empty(self):
        a = np.zeros(10)
        a[3] = 1.0
        assert coincidence_factor(a, np.zeros(10)) == 0.0

    def test_uncorrelated_near_zero(self):
        rng = np.random.default_rng(3)
        gammas = []
        for _ in range(30):
            a = (rng.random(200) < 0.1).astype(float)
            b = (rng.random(200) < 0.1).astype(float)
            gammas.append(coincidence_factor(a, b))
        assert abs(np.mean(gammas)) < 0.2


class TestTraceCorrelation:
    def test_perfect_correlation(self):
        rng = np.random.default_rng(4)
        a = (rng.random((30, 2)) < 0.3).astype(float)
        assert trace_correlation(a, a) == pytest.approx(1.0)

    def test_silent_trace_returns_zero(self):
        a = np.zeros((20, 2))
        b = np.ones((20, 2))
        assert trace_correlation(a, b) == 0.0


class TestRasterConversions:
    def test_events_dense_roundtrip(self):
        events = np.array([[0, 1], [3, 2], [3, 2], [9, 0]])
        dense = events_to_dense(events, steps=10, channels=3)
        assert dense[3, 2] == 2.0
        back = dense_to_events(dense)
        np.testing.assert_array_equal(np.sort(back, axis=0),
                                      np.sort(events, axis=0))

    def test_events_bounds_checked(self):
        with pytest.raises(ShapeError):
            events_to_dense(np.array([[10, 0]]), steps=10, channels=3)
        with pytest.raises(ShapeError):
            events_to_dense(np.array([[0, 5]]), steps=10, channels=3)

    def test_empty_events(self):
        dense = events_to_dense(np.zeros((0, 2)), steps=5, channels=2)
        assert dense.sum() == 0

    def test_raster_summary(self):
        raster = np.zeros((10, 4))
        raster[2, 1] = 1.0
        raster[7, 1] = 1.0
        summary = raster_summary(raster)
        assert summary["total_spikes"] == 2
        assert summary["active_channels"] == 1
        assert summary["first_spike_step"] == 2

    def test_dvs_flatten_roundtrip(self):
        rng = np.random.default_rng(5)
        events = (rng.random((6, 34, 34, 2)) < 0.05).astype(float)
        flat = flatten_dvs(events)
        assert flat.shape == (6, 2312)
        np.testing.assert_array_equal(unflatten_dvs(flat), events)

    def test_dvs_flatten_validates(self):
        with pytest.raises(ShapeError):
            flatten_dvs(np.zeros((6, 20, 34, 2)))
        with pytest.raises(ShapeError):
            unflatten_dvs(np.zeros((6, 100)))
