"""Shared infrastructure: RNG, configs, units, tables, fault injection."""

from .config import BaseConfig
from .errors import (
    CapacityError,
    CircuitError,
    ConfigError,
    DatasetError,
    ExperimentError,
    ReproError,
    SerializationError,
    ShapeError,
    StateError,
    check_shape,
)
from .faults import FaultError, FaultPlan, FaultRule
from .rng import RandomState, as_random_state
from .tables import Table, format_table
from .units import FEMTO, GIGA, KILO, MEGA, MICRO, MILLI, NANO, PICO, si_format

__all__ = [
    "BaseConfig",
    "CapacityError",
    "CircuitError",
    "ConfigError",
    "DatasetError",
    "ExperimentError",
    "ReproError",
    "SerializationError",
    "ShapeError",
    "StateError",
    "check_shape",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "RandomState",
    "as_random_state",
    "Table",
    "format_table",
    "FEMTO",
    "PICO",
    "NANO",
    "MICRO",
    "MILLI",
    "KILO",
    "MEGA",
    "GIGA",
    "si_format",
]
