"""Experiment runners — one per table/figure of the paper.

Each runner regenerates the data behind one artifact of the paper's
evaluation (Section V) and returns an :class:`ExperimentResult` holding
the measured rows/series, a rendered text report (paper value next to
measured value), and the raw arrays for further analysis.  The benchmark
suite calls these runners and asserts the *shape* of each result; the CLI
(``python -m repro.experiments``) prints the reports.

Scale profiles: ``profile="ci"`` (default) uses reduced datasets/widths
that run in seconds-to-minutes on a laptop CPU; ``profile="full"``
approaches the paper's scale.  ``resolve_profile`` reads the
``REPRO_PROFILE`` environment variable so the whole bench suite can be
switched without touching code.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np

from ..analysis import raster_summary, trace_correlation
from ..common.asciiplot import line_plot, raster_plot
from ..common.rng import RandomState
from ..common.tables import Table
from ..core import (
    CrossEntropyRateLoss,
    ErfcSurrogate,
    NeuronParameters,
    SpikingNetwork,
    Trainer,
    TrainerConfig,
    VanRossumLoss,
    get_surrogate,
)
from ..core.calibration import calibrate_firing
from ..core.filters import ExponentialFilter
from ..core.model_zoo import association_net, nmnist_mlp, shd_mlp
from ..core.neurons import AdaptiveLIFNeuron
from ..data import (
    AssociationConfig,
    SyntheticNMNISTConfig,
    SyntheticSHDConfig,
    generate_association,
    generate_nmnist,
    generate_shd,
)
from ..hardware import (
    PAPER_POWER_REPORT,
    HardwareProfile,
    NeuronCircuitConfig,
    accuracy_under_variation,
    estimate_area,
    estimate_power,
    simulate_neuron,
)
from ..runtime import parallel_map, resolve_workers
from .paperconfig import PAPER_CONFIG, table1

__all__ = [
    "ExperimentResult",
    "resolve_profile",
    "run_table1",
    "run_table2_nmnist",
    "run_table2_shd",
    "run_fig1",
    "run_fig4",
    "run_fig5",
    "run_fig7",
    "run_fig8",
    "run_fig8_aware",
    "run_power_area",
    "run_ablation_surrogate",
    "run_ablation_gradient",
]


@dataclasses.dataclass
class ExperimentResult:
    """Outcome of one experiment runner.

    Attributes
    ----------
    name:
        Experiment id (``table2-shd``, ``fig7``, ...).
    summary:
        Scalar observables (used by bench assertions).
    text:
        Human-readable report with paper-vs-measured rows.
    data:
        Raw arrays / series for plotting or further analysis.
    """

    name: str
    summary: dict
    text: str
    data: dict = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        return self.text


def resolve_profile(profile: str | None = None) -> str:
    """``profile`` argument > ``REPRO_PROFILE`` env var > ``"ci"``."""
    if profile is not None:
        if profile not in ("ci", "full"):
            raise ValueError(f"profile must be 'ci' or 'full', got {profile!r}")
        return profile
    env = os.environ.get("REPRO_PROFILE", "ci").lower()
    return "full" if env == "full" else "ci"


# ---------------------------------------------------------------------------
# Shared training helper (with a per-process cache so fig8 can reuse the
# table2 N-MNIST model instead of retraining).
# ---------------------------------------------------------------------------
_CACHE: dict = {}


def _train_classifier(key: str, dataset, network: SpikingNetwork,
                      epochs: int, learning_rate: float,
                      rng_seed: int = 3):
    """Train (or fetch from cache) a classifier on ``dataset``."""
    if key in _CACHE:
        return _CACHE[key]
    train, test = dataset.split(0.8, rng=1)
    calibrate_firing(network, train.inputs[:48], target_rate=0.08)
    config = TrainerConfig(
        epochs=epochs, batch_size=PAPER_CONFIG.batch_size,
        learning_rate=learning_rate, optimizer=PAPER_CONFIG.optimizer,
    )
    trainer = Trainer(network, CrossEntropyRateLoss(), config, rng=rng_seed)
    history = trainer.fit(train.inputs, train.targets,
                          test.inputs, test.targets)
    bundle = {
        "trainer": trainer, "network": network, "history": history,
        "train": train, "test": test,
    }
    _CACHE[key] = bundle
    return bundle


def _classification_report(name: str, title: str, bundle,
                           literature_rows: list[tuple[str, float]],
                           paper_acc: float, paper_hr_acc: float
                           ) -> ExperimentResult:
    """Evaluate the adaptive model and both hard-reset swaps; render."""
    trainer = bundle["trainer"]
    network = bundle["network"]
    test = bundle["test"]
    acc = bundle["history"][-1].test_metrics["accuracy"]
    acc_hr = trainer.evaluate(
        test.inputs, test.targets,
        network=network.with_neuron_kind("hard_reset"))["accuracy"]
    acc_euler = trainer.evaluate(
        test.inputs, test.targets,
        network=network.with_neuron_kind("hard_reset_euler"))["accuracy"]
    chance = 1.0 / test.n_classes

    table = Table(["Model", "Paper %", "Measured %"], title=title)
    table.add_row(["This work (adaptive threshold)",
                   f"{paper_acc:.2f}", f"{100 * acc:.2f}"])
    table.add_row(["This work (HR, impulse discretization)",
                   f"{paper_hr_acc:.2f}", f"{100 * acc_hr:.2f}"])
    table.add_row(["This work (HR, forward-Euler discretization)",
                   f"{paper_hr_acc:.2f}", f"{100 * acc_euler:.2f}"])
    table.add_separator()
    for label, value in literature_rows:
        table.add_row([label + " (literature, not rerun)",
                       f"{value:.2f}", "-"])
    notes = (
        "\nNotes: trained on the synthetic offline substitute dataset at "
        f"profile scale; chance = {100 * chance:.1f} %.\n"
        "The paper defines HR by ODE eq. (1); its discrete reading is "
        "ambiguous, so both variants are reported: 'impulse' preserves "
        "charge (isolates pure reset damage), 'forward-Euler' has unit DC "
        "gain (severely under-drives a network trained with SRM filters). "
        "The paper's HR number falls between the two."
    )
    summary = {
        "accuracy": acc, "accuracy_hr": acc_hr,
        "accuracy_hr_euler": acc_euler, "chance": chance,
        "drop_hr": acc - acc_hr, "drop_euler": acc - acc_euler,
    }
    return ExperimentResult(name=name, summary=summary,
                            text=table.render() + notes)


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------
def run_table1(profile: str | None = None) -> ExperimentResult:
    """Render Table I (hyper-parameters) from the frozen paper config."""
    table = table1()
    return ExperimentResult(
        name="table1",
        summary={"tau": PAPER_CONFIG.tau, "tau_r": PAPER_CONFIG.tau_r,
                 "batch_size": PAPER_CONFIG.batch_size,
                 "sigma": PAPER_CONFIG.sigma},
        text=table.render(),
    )


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------
def run_table2_nmnist(profile: str | None = None) -> ExperimentResult:
    """Table II, N-MNIST column: adaptive vs hard-reset accuracy."""
    profile = resolve_profile(profile)
    if profile == "full":
        data_cfg = SyntheticNMNISTConfig(n_per_class=300, steps=99)
        network = nmnist_mlp(profile="paper", rng=2)
        epochs, lr = 30, PAPER_CONFIG.lr_classification
    else:
        data_cfg = SyntheticNMNISTConfig(n_per_class=40, steps=50)
        network = nmnist_mlp(profile="reduced", rng=2)
        epochs, lr = 10, 1e-3
    dataset = generate_nmnist(data_cfg, rng=0)
    bundle = _train_classifier(f"nmnist-{profile}", dataset, network,
                               epochs, lr)
    literature = [("Spiking MLP [7]", 98.66), ("Phased LSTM [12]", 97.28),
                  ("Spiking CNN [11]", 95.72), ("Graph CNN [1]", 98.5),
                  ("Spiking CNN [15]", 98.32)]
    return _classification_report(
        "table2-nmnist", "Table II (N-MNIST)", bundle, literature,
        paper_acc=98.40, paper_hr_acc=95.31,
    )


def run_table2_shd(profile: str | None = None) -> ExperimentResult:
    """Table II, SHD column: adaptive vs hard-reset accuracy."""
    profile = resolve_profile(profile)
    if profile == "full":
        data_cfg = SyntheticSHDConfig(n_per_class=200, steps=150)
        network = shd_mlp(profile="paper", rng=2)
        epochs, lr = 40, PAPER_CONFIG.lr_classification
    else:
        data_cfg = SyntheticSHDConfig(n_per_class=30, steps=100)
        network = shd_mlp(profile="reduced", rng=2)
        epochs, lr = 20, PAPER_CONFIG.lr_association
    dataset = generate_shd(data_cfg, rng=0)
    bundle = _train_classifier(f"shd-{profile}", dataset, network,
                               epochs, lr)
    literature = [("Spiking MLP [3]", 47.5), ("R-SNN [3]", 83.2),
                  ("LSTM [3]", 89.0), ("R-SNN [20]", 82.0),
                  ("SRNN [18]", 84.4)]
    return _classification_report(
        "table2-shd", "Table II (SHD)", bundle, literature,
        paper_acc=85.69, paper_hr_acc=26.36,
    )


# ---------------------------------------------------------------------------
# Fig. 1 — synapse and adaptive threshold dynamics
# ---------------------------------------------------------------------------
def run_fig1(profile: str | None = None) -> ExperimentResult:
    """Regenerate the Fig. 1 traces: two synapse PSPs, their weighted sum,
    and the adaptive threshold reacting to output spikes."""
    params = NeuronParameters(tau=PAPER_CONFIG.tau, tau_r=PAPER_CONFIG.tau_r)
    steps = 80
    spikes_1 = np.zeros(steps)
    spikes_2 = np.zeros(steps)
    spikes_1[[5, 9, 13, 30, 55]] = 1.0
    spikes_2[[7, 11, 15, 33, 58]] = 1.0
    weights = np.array([0.9, 0.7])

    synapse_1 = ExponentialFilter(params.tau, shape=(1,))
    synapse_2 = ExponentialFilter(params.tau, shape=(1,))
    neuron = AdaptiveLIFNeuron(1, params)
    neuron.reset_state(1)

    psp_1 = np.zeros(steps)
    psp_2 = np.zeros(steps)
    summed = np.zeros(steps)
    threshold = np.zeros(steps)
    outputs = np.zeros(steps)
    for t in range(steps):
        k1 = synapse_1.step(np.array([spikes_1[t]]))
        k2 = synapse_2.step(np.array([spikes_2[t]]))
        psp_1[t] = weights[0] * k1[0]
        psp_2[t] = weights[1] * k2[0]
        g = np.array([[psp_1[t] + psp_2[t]]])
        out, _ = neuron.step(g)
        outputs[t] = out[0, 0]
        summed[t] = g[0, 0]
        threshold[t] = neuron.adaptive_threshold()[0, 0]

    plot = line_plot(
        {"sum PSP": summed, "threshold": threshold,
         "out spikes": outputs * summed.max()},
        height=12, width=76,
        title="Fig. 1: PSP summation vs adaptive threshold",
    )
    spike_steps = np.flatnonzero(outputs).tolist()
    jumps = [threshold[t + 1] - threshold[t]
             for t in spike_steps if t + 1 < steps]
    summary = {
        "output_spikes": int(outputs.sum()),
        "threshold_base": float(threshold.min()),
        "threshold_peak": float(threshold.max()),
        "mean_jump_after_spike": float(np.mean(jumps)) if jumps else 0.0,
    }
    return ExperimentResult(
        name="fig1", summary=summary, text=plot,
        data={"psp_1": psp_1, "psp_2": psp_2, "sum": summed,
              "threshold": threshold, "outputs": outputs},
    )


# ---------------------------------------------------------------------------
# Fig. 4 — dataset samples
# ---------------------------------------------------------------------------
def run_fig4(profile: str | None = None) -> ExperimentResult:
    """Regenerate Fig. 4: one raster sample from each dataset + statistics."""
    nmnist = generate_nmnist(
        SyntheticNMNISTConfig(n_per_class=1, steps=60), rng=0)
    shd = generate_shd(SyntheticSHDConfig(n_per_class=1, steps=100), rng=0)
    nm_x, nm_y = nmnist[0]
    shd_idx = 3
    shd_x, shd_y = shd[shd_idx]

    nm_summary = raster_summary(nm_x)
    shd_summary = raster_summary(shd_x)
    text = "\n".join([
        raster_plot(nm_x.T, height=16, width=72,
                    title=f"Fig. 4(a) synthetic N-MNIST sample "
                          f"(digit {nm_y})"),
        f"  stats: {nm_summary}",
        "",
        raster_plot(shd_x.T, height=16, width=72,
                    title=f"Fig. 4(b) synthetic SHD sample "
                          f"(class {shd.class_names[int(shd_y)]})"),
        f"  stats: {shd_summary}",
    ])
    summary = {
        "nmnist_total_spikes": nm_summary["total_spikes"],
        "nmnist_mean_rate": nm_summary["mean_rate"],
        "shd_total_spikes": shd_summary["total_spikes"],
        "shd_mean_rate": shd_summary["mean_rate"],
    }
    return ExperimentResult(name="fig4", summary=summary, text=text,
                            data={"nmnist": nm_x, "shd": shd_x})


# ---------------------------------------------------------------------------
# Fig. 5 — pattern association
# ---------------------------------------------------------------------------
def run_fig5(profile: str | None = None) -> ExperimentResult:
    """The Section V-B association task: train the network to draw the
    handwritten digit matching a spoken digit."""
    profile = resolve_profile(profile)
    if profile == "full":
        data_cfg = AssociationConfig(n_samples=1000, steps=300,
                                     target_trains=300, glyph_size=280)
        epochs = 60
        hidden_profile = "paper"
    else:
        data_cfg = AssociationConfig(n_samples=120, steps=100,
                                     target_trains=96, glyph_size=64)
        epochs = 40
        hidden_profile = "reduced"
    dataset = generate_association(data_cfg, rng=0)

    network = SpikingNetwork(
        (data_cfg.input_channels, *(
            (500, 500) if hidden_profile == "paper" else (128, 128)
        ), data_cfg.target_trains),
        params=NeuronParameters(), neuron_kind="adaptive",
        surrogate=ErfcSurrogate(), rng=2,
    )
    calibrate_firing(network, dataset.inputs[:32], target_rate=0.08)
    loss = VanRossumLoss(tau_m=PAPER_CONFIG.tau_m, tau_s=PAPER_CONFIG.tau_s)

    untrained_outputs, _ = network.run(dataset.inputs[:32])
    distance_before = loss.distance(untrained_outputs, dataset.targets[:32])

    # The paper's lr (1e-3) is tuned for 1000 samples x 300 steps; the
    # reduced CI task needs a slightly larger step to converge in its
    # shorter budget.
    learning_rate = (PAPER_CONFIG.lr_association if profile == "full"
                     else 3e-3)
    trainer = Trainer(network, loss, TrainerConfig(
        epochs=epochs, batch_size=PAPER_CONFIG.batch_size,
        learning_rate=learning_rate,
        optimizer=PAPER_CONFIG.optimizer,
    ), rng=3)
    trainer.fit(dataset.inputs, dataset.targets)

    outputs, _ = network.run(dataset.inputs[:32])
    distance_after = loss.distance(outputs, dataset.targets[:32])

    # Identity check: does each output match its own target better than the
    # mean over other samples' targets?
    own = np.array([
        trace_correlation(outputs[i], dataset.targets[i])
        for i in range(16)
    ])
    cross = np.array([
        trace_correlation(outputs[i], dataset.targets[(i + 7) % 32])
        for i in range(16)
    ])

    sample = 0
    digit = dataset.metadata["digit_labels"][sample]
    text = "\n".join([
        f"Fig. 5: pattern association (sample digit {digit})",
        raster_plot(dataset.inputs[sample].T, height=12, width=72,
                    title="input (spoken digit, cochlea channels)"),
        raster_plot(dataset.targets[sample].T, height=12, width=72,
                    title="target (handwritten digit raster)"),
        raster_plot(outputs[sample].T, height=12, width=72,
                    title="network output after training"),
        f"van Rossum distance (32 samples): before={distance_before:.2f} "
        f"after={distance_after:.2f}",
        f"trace correlation with own target {own.mean():.3f} vs "
        f"shuffled targets {cross.mean():.3f}",
    ])
    summary = {
        "distance_before": distance_before,
        "distance_after": distance_after,
        "correlation_own": float(own.mean()),
        "correlation_cross": float(cross.mean()),
    }
    return ExperimentResult(
        name="fig5", summary=summary, text=text,
        data={"outputs": outputs[:4], "targets": dataset.targets[:4],
              "inputs": dataset.inputs[:4]},
    )


# ---------------------------------------------------------------------------
# Fig. 7 — circuit transient
# ---------------------------------------------------------------------------
def run_fig7(profile: str | None = None) -> ExperimentResult:
    """Reproduce the Fig. 7 circuit simulation: a spike burst triggers one
    output spike, the threshold rises and suppresses the next input."""
    config = NeuronCircuitConfig()
    result = simulate_neuron([50, 70, 90, 250, 450], config=config,
                             duration_ns=700)
    stats = result.summary()
    decimate = slice(None, None, 10)
    plot = "\n".join([
        line_plot(
            {"g (PSP)": result["g"][decimate],
             "threshold": result["threshold"][decimate],
             "k (filtered in)": result["k"][decimate]},
            height=13, width=80,
            title="Fig. 7(a): bit-line PSP vs adaptive threshold",
        ),
        line_plot(
            {"comparator": result["comparator"][decimate],
             "feedback h": result["feedback"][decimate],
             "buffered spike": result["spike"][decimate]},
            height=10, width=80,
            title="Fig. 7(b): comparator output and feedback",
        ),
        f"  measurements: {stats}",
        f"  RC time constant = {config.tau_seconds * 1e9:.1f} ns "
        f"({config.tau_steps:.2f} algorithm steps of {config.step_ns} ns); "
        f"bias = {config.v_bias * 1e3:.0f} mV",
    ])
    return ExperimentResult(
        name="fig7", summary=stats, text=plot,
        data={k: result[k] for k in
              ("input", "k", "g", "threshold", "comparator", "feedback",
               "spike")} | {"time": result.time},
    )


# ---------------------------------------------------------------------------
# Fig. 8 — quantization and process variation
# ---------------------------------------------------------------------------
def run_fig8(profile: str | None = None,
             workers: int | None = None) -> ExperimentResult:
    """Accuracy of the hardware-mapped N-MNIST model under 4/5-bit weights
    and RRAM process variation 0 - 0.5 (paper Fig. 8).

    With ``workers >= 1`` (argument or ``REPRO_WORKERS``) one persistent
    worker pool serves every grid point, evaluating the independent
    device-noise seeds concurrently — each seed's rng stream depends only
    on the fixed root seed, so the numbers are identical to the serial
    sweep's.
    """
    profile = resolve_profile(profile)
    workers = resolve_workers(workers)
    nmnist_result_bundle = _ensure_nmnist_model(profile)
    network = nmnist_result_bundle["network"]
    test = nmnist_result_bundle["test"]
    trainer = nmnist_result_bundle["trainer"]
    baseline = trainer.evaluate(test.inputs, test.targets)["accuracy"]

    variations = ([0.0, 0.1, 0.2, 0.3, 0.4, 0.5] if profile == "ci"
                  else [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4,
                        0.45, 0.5])
    n_seeds = 2 if profile == "ci" else 5
    pool = None
    if workers >= 1:
        from ..runtime.pool import WorkerPool

        pool = WorkerPool(network, workers=min(workers, n_seeds))
    try:
        series: dict[str, list[float]] = {}
        for bits in (4, 5):
            accs = []
            for variation in variations:
                mean_acc, _ = accuracy_under_variation(
                    network, test.inputs, test.targets, bits=bits,
                    variation=variation, n_seeds=n_seeds, rng=11, pool=pool,
                )
                accs.append(mean_acc)
            series[f"{bits}bit"] = accs
    finally:
        if pool is not None:
            pool.close()

    table = Table(["Process variation", "4-bit acc %", "5-bit acc %"],
                  title="Fig. 8: accuracy vs quantization & variation "
                        f"(float baseline {100 * baseline:.2f} %)")
    for i, variation in enumerate(variations):
        table.add_row([f"{variation:.2f}",
                       f"{100 * series['4bit'][i]:.2f}",
                       f"{100 * series['5bit'][i]:.2f}"])
    text = table.render() + (
        "\nPaper reference: 4-bit, 0.2 deviation -> 97.97 % "
        "(from a 98.40 % float baseline, i.e. a ~0.4 pt drop)."
    )
    summary = {
        "baseline": baseline,
        "acc_4bit_novar": series["4bit"][0],
        "acc_5bit_novar": series["5bit"][0],
        "acc_4bit_maxvar": series["4bit"][-1],
        "acc_5bit_maxvar": series["5bit"][-1],
        "acc_4bit_02": series["4bit"][variations.index(0.2)],
        "mean_gap_5bit_minus_4bit": float(
            np.mean(np.array(series["5bit"]) - np.array(series["4bit"]))),
    }
    return ExperimentResult(
        name="fig8", summary=summary, text=text,
        data={"variations": variations, **series},
    )


def _ensure_nmnist_model(profile: str):
    """Train (or reuse) the N-MNIST classifier used by fig8."""
    key = f"nmnist-{profile}"
    if key not in _CACHE:
        run_table2_nmnist(profile)
    return _CACHE[key]


# ---------------------------------------------------------------------------
# Fig. 8 recovery — hardware-aware training closes the codesign loop
# ---------------------------------------------------------------------------
#: The Fig. 8 operating point hardware-aware training targets: 4-bit
#: devices with 10 % lognormal resistance variation.
FIG8_AWARE_PROFILE = HardwareProfile.create(bits=4, variation=0.1, seed=13)


def _ensure_aware_nmnist_model(profile: str):
    """Train (or reuse) the hardware-aware twin of the fig8 classifier.

    Standard quantization-aware practice: warm-start from the converged
    ideal model and fine-tune with the crossbar model inside the loop
    (``TrainerConfig(hardware=FIG8_AWARE_PROFILE)``) — training
    hardware-aware from scratch converges much more slowly under per-step
    programming noise.  The ideal weights are *copied* (``set_weights``),
    so the cached fig8 baseline model is untouched.
    """
    key = f"nmnist-aware-{profile}"
    if key in _CACHE:
        return _CACHE[key]
    bundle = _ensure_nmnist_model(profile)
    source = bundle["network"]
    network = SpikingNetwork(source.sizes, params=source.params,
                            neuron_kind=source.neuron_kind,
                            surrogate=source.layers[0].surrogate, rng=0)
    network.set_weights(source.weights)
    epochs = 5 if profile == "ci" else 10
    config = TrainerConfig(
        epochs=epochs, batch_size=PAPER_CONFIG.batch_size,
        learning_rate=3e-4, optimizer=PAPER_CONFIG.optimizer,
        hardware=FIG8_AWARE_PROFILE,
    )
    trainer = Trainer(network, CrossEntropyRateLoss(), config, rng=3)
    trainer.fit(bundle["train"].inputs, bundle["train"].targets)
    _CACHE[key] = {"trainer": trainer, "network": network}
    return _CACHE[key]


def run_fig8_aware(profile: str | None = None,
                   workers: int | None = None) -> ExperimentResult:
    """Fig. 8 *recovery*: hardware-aware training vs post-hoc mapping.

    Fig. 8 measures how much accuracy post-hoc mapping loses to k-bit
    quantization and process variation.  This runner closes the loop the
    paper's codesign implies: the same N-MNIST classifier is fine-tuned
    with the crossbar model *inside* the training loop
    (``TrainerConfig(hardware=...)`` — straight-through-estimator
    quantization plus per-step programming-noise draws at the Fig. 8
    operating point, 4-bit / 10 % variation), and both models are mapped
    under identical device-noise seeds.  Reported per variation level:
    post-hoc mapped accuracy vs hardware-aware mapped accuracy; the
    summary carries the recovery at the trained operating point.

    With ``workers >= 1`` (argument or ``REPRO_WORKERS``) each model's
    device-noise seeds are evaluated concurrently over one persistent
    :class:`~repro.runtime.pool.WorkerPool`; seeds are keyed by the fixed
    root rng only, so the numbers equal the serial sweep's.
    """
    profile = resolve_profile(profile)
    workers = resolve_workers(workers)
    hw = FIG8_AWARE_PROFILE
    ideal_bundle = _ensure_nmnist_model(profile)
    aware_bundle = _ensure_aware_nmnist_model(profile)
    test = ideal_bundle["test"]
    baseline = ideal_bundle["trainer"].evaluate(
        test.inputs, test.targets)["accuracy"]
    aware_software = aware_bundle["trainer"].evaluate(
        test.inputs, test.targets)["accuracy"]

    variations = ([0.0, 0.1, 0.2] if profile == "ci"
                  else [0.0, 0.05, 0.1, 0.15, 0.2])
    n_seeds = 2 if profile == "ci" else 5

    def mapped_accuracies(network):
        """Mean mapped accuracy per variation level (shared seeds)."""
        pool = None
        if workers >= 1:
            from ..runtime.pool import WorkerPool

            pool = WorkerPool(network, workers=min(workers, n_seeds))
        try:
            return [
                accuracy_under_variation(
                    network, test.inputs, test.targets, bits=hw.bits,
                    variation=variation, n_seeds=n_seeds, rng=11,
                    pool=pool, device=hw.device)[0]
                for variation in variations
            ]
        finally:
            if pool is not None:
                pool.close()

    posthoc = mapped_accuracies(ideal_bundle["network"])
    aware = mapped_accuracies(aware_bundle["network"])

    point = variations.index(hw.device.variation)
    table = Table(
        ["Process variation", "Post-hoc mapped %", "HW-aware mapped %",
         "Recovery (pts)"],
        title=f"Fig. 8 recovery: {hw.bits}-bit mapping, ideal vs "
              f"hardware-aware training "
              f"(ideal float baseline {100 * baseline:.2f} %)")
    for i, variation in enumerate(variations):
        table.add_row([
            f"{variation:.2f}", f"{100 * posthoc[i]:.2f}",
            f"{100 * aware[i]:.2f}",
            f"{100 * (aware[i] - posthoc[i]):+.2f}",
        ])
    text = table.render() + (
        f"\nHardware-aware software accuracy (master weights, ideal "
        f"dynamics): {100 * aware_software:.2f} %.\n"
        f"Trained operating point: {hw.bits}-bit, variation "
        f"{hw.device.variation:.2f} -> recovery "
        f"{100 * (aware[point] - posthoc[point]):+.2f} pts over post-hoc "
        f"mapping (same programming seeds).\n"
        "Both models map through the identical quantization grid and "
        "device noise model the trainer saw (repro.hardware.quantization)."
    )
    summary = {
        "baseline": baseline,
        "aware_software": aware_software,
        "posthoc_at_point": posthoc[point],
        "aware_at_point": aware[point],
        "recovery_at_point": aware[point] - posthoc[point],
        "recovery_mean": float(np.mean(np.array(aware) - np.array(posthoc))),
        "bits": hw.bits,
        "variation_point": hw.device.variation,
    }
    return ExperimentResult(
        name="fig8-aware", summary=summary, text=text,
        data={"variations": variations, "posthoc": posthoc, "aware": aware},
    )


# ---------------------------------------------------------------------------
# Section V-C — power / energy / area
# ---------------------------------------------------------------------------
def run_power_area(profile: str | None = None) -> ExperimentResult:
    """The Section V-C estimate: 300 steps x 10 ns, 14 input spikes."""
    rng = RandomState(0)
    steps = np.sort(rng.choice(np.arange(5, 295), size=14, replace=False))
    spike_times = [float(s) * 10.0 for s in steps]
    config = NeuronCircuitConfig()
    result = simulate_neuron(spike_times, config=config, duration_ns=3000,
                             dt_ns=0.5)
    report = estimate_power(result)
    area = estimate_area(config)

    table = Table(["Quantity", "Paper", "Measured"],
                  title="Section V-C: power / energy / area "
                        "(300 steps, 14 input spikes)")
    for row in report.table_rows():
        table.add_row(list(row))
    table.add_row(["area", f"{PAPER_POWER_REPORT['area_mm2']:.4f} mm^2",
                   f"{area['total_mm2']:.4f} mm^2"])
    text = table.render() + (
        "\nArea breakdown (um^2): "
        + ", ".join(f"{k.replace('_um2', '')}={v:.0f}"
                    for k, v in area.items() if k.endswith("_um2"))
    )
    summary = {
        "min_power_w": report.min_power_w,
        "max_power_w": report.max_power_w,
        "avg_power_w": report.avg_power_w,
        "energy_j": report.energy_j,
        "area_mm2": area["total_mm2"],
        "output_spikes": result.output_spike_count(),
    }
    return ExperimentResult(name="power-area", summary=summary, text=text,
                            data={"power_trace": report.power_trace_w})


# ---------------------------------------------------------------------------
# Ablations (design-choice benches called out in DESIGN.md)
# ---------------------------------------------------------------------------
def _ablation_shd_split(n_per_class: int, steps: int = 80):
    """The reduced-SHD train/test split, cached per process.

    The ablation condition functions run either serially (all in this
    process — one generation total, like the pre-parallel code) or one per
    pool worker (each process generates its own copy once).  Fixed seeds
    make every copy identical, so results do not depend on where a
    condition ran.
    """
    key = ("shd-ablation", n_per_class, steps)
    if key not in _CACHE:
        dataset = generate_shd(
            SyntheticSHDConfig(n_per_class=n_per_class, steps=steps), rng=0)
        _CACHE[key] = dataset.split(0.8, rng=1)
    return _CACHE[key]


def _ablation_surrogate_condition(task: tuple[str, str]) -> float:
    """Train the reduced SHD task with one surrogate; returns test accuracy.

    Module-level (picklable) so :func:`repro.runtime.parallel_map` can run
    the grid points in worker processes.
    """
    name, profile = task
    n_per_class = 10 if profile == "ci" else 40
    epochs = 10 if profile == "ci" else 30
    train, test = _ablation_shd_split(n_per_class)
    network = SpikingNetwork((700, 64, 20), surrogate=get_surrogate(name),
                             rng=2)
    calibrate_firing(network, train.inputs[:32], target_rate=0.08)
    trainer = Trainer(network, CrossEntropyRateLoss(), TrainerConfig(
        epochs=epochs, batch_size=32, learning_rate=1e-3,
        optimizer="adamw"), rng=3)
    history = trainer.fit(train.inputs, train.targets,
                          test.inputs, test.targets)
    return history[-1].test_metrics["accuracy"]


def run_ablation_surrogate(profile: str | None = None,
                           workers: int | None = None) -> ExperimentResult:
    """Train the reduced SHD task with four surrogate gradients.

    The four conditions are independent training runs; ``workers >= 1``
    (argument or ``REPRO_WORKERS``) trains them concurrently.
    """
    profile = resolve_profile(profile)
    names = ("erfc", "sigmoid", "triangle", "rectangular")
    results = parallel_map(_ablation_surrogate_condition,
                           [(name, profile) for name in names],
                           workers=workers)
    accs = dict(zip(names, results))
    table = Table(["Surrogate", "Test acc %"],
                  title="Ablation: surrogate gradient (reduced SHD)")
    for name in names:
        table.add_row([name, f"{100 * accs[name]:.2f}"])
    return ExperimentResult(
        name="ablation-surrogate",
        summary={f"acc_{k}": v for k, v in accs.items()},
        text=table.render(),
    )


def run_ablation_timing(profile: str | None = None) -> ExperimentResult:
    """Quantify the timing information in the synthetic SHD substitute.

    Trains identical networks on the original dataset and on a
    time-shuffled control (per-channel spike counts preserved, all
    temporal structure destroyed).  The accuracy gap *is* the timing
    information — the dataset property the paper's Table II SHD argument
    relies on (its ref. [3] claims "spike timing is essential" for SHD).
    """
    from ..analysis import shuffle_time

    profile = resolve_profile(profile)
    n_per_class = 15 if profile == "ci" else 60
    epochs = 14 if profile == "ci" else 40
    dataset = generate_shd(
        SyntheticSHDConfig(n_per_class=n_per_class, steps=100), rng=0)
    train, test = dataset.split(0.8, rng=1)

    accs = {}
    for condition in ("original", "time-shuffled"):
        if condition == "original":
            train_x, test_x = train.inputs, test.inputs
        else:
            train_x = shuffle_time(train.inputs, rng=5)
            test_x = shuffle_time(test.inputs, rng=6)
        network = SpikingNetwork((700, 96, 20), rng=2)
        calibrate_firing(network, train_x[:32], target_rate=0.08)
        trainer = Trainer(network, CrossEntropyRateLoss(), TrainerConfig(
            epochs=epochs, batch_size=64, learning_rate=1e-3,
            optimizer="adamw"), rng=3)
        history = trainer.fit(train_x, train.targets, test_x, test.targets)
        accs[condition] = history[-1].test_metrics["accuracy"]

    table = Table(["Condition", "Test acc %"],
                  title="Ablation: timing information in synthetic SHD")
    table.add_row(["original (timing intact)",
                   f"{100 * accs['original']:.2f}"])
    table.add_row(["time-shuffled (counts preserved, timing destroyed)",
                   f"{100 * accs['time-shuffled']:.2f}"])
    text = table.render() + (
        "\nThe gap is class information carried by spike timing alone — "
        "the property that makes the hard-reset swap costly on SHD."
    )
    return ExperimentResult(
        name="ablation-timing",
        summary={"acc_original": accs["original"],
                 "acc_shuffled": accs["time-shuffled"]},
        text=text,
    )


def _ablation_gradient_condition(task: tuple[str, str]) -> float:
    """Train the reduced SHD task with one gradient mode (picklable unit
    of work for the parallel sweep)."""
    mode, profile = task
    n_per_class = 10 if profile == "ci" else 40
    epochs = 10 if profile == "ci" else 30
    train, test = _ablation_shd_split(n_per_class)
    network = SpikingNetwork((700, 64, 20), rng=2)
    calibrate_firing(network, train.inputs[:32], target_rate=0.08)
    trainer = Trainer(network, CrossEntropyRateLoss(), TrainerConfig(
        epochs=epochs, batch_size=32, learning_rate=1e-3,
        optimizer="adamw", gradient_mode=mode), rng=3)
    history = trainer.fit(train.inputs, train.targets,
                          test.inputs, test.targets)
    return history[-1].test_metrics["accuracy"]


def run_ablation_gradient(profile: str | None = None,
                          workers: int | None = None) -> ExperimentResult:
    """Exact filter-adjoint BPTT vs the paper's truncated eq. (13).

    Two independent training runs; ``workers >= 1`` trains them
    concurrently via :func:`repro.runtime.parallel_map`.
    """
    profile = resolve_profile(profile)
    modes = ("exact", "truncated")
    results = parallel_map(_ablation_gradient_condition,
                           [(mode, profile) for mode in modes],
                           workers=workers)
    accs = dict(zip(modes, results))
    table = Table(["Gradient mode", "Test acc %"],
                  title="Ablation: exact adjoints vs truncated eq. (13)")
    table.add_row(["exact (full filter adjoints)",
                   f"{100 * accs['exact']:.2f}"])
    table.add_row(["truncated (paper eq. 13 two-term form)",
                   f"{100 * accs['truncated']:.2f}"])
    return ExperimentResult(
        name="ablation-gradient",
        summary={"acc_exact": accs["exact"],
                 "acc_truncated": accs["truncated"]},
        text=table.render(),
    )
