"""Mini-batch training loop tying the forward run, BPTT and optimizer together.

The :class:`Trainer` reproduces the paper's training setup (Table I):
AdamW, batch size 64, learning rate 1e-4 (classification) or 1e-3 (pattern
association).  It operates on in-memory arrays — every dataset in
:mod:`repro.data` materialises to ``(inputs, targets)`` pairs — and records
a per-epoch history of loss and task metrics.

Two runtime knobs scale it beyond a single-core loop:

* ``TrainerConfig(workers=N)`` trains **data-parallel**: each mini-batch is
  split into ``N`` contiguous shards, a persistent
  :class:`~repro.runtime.pool.WorkerPool` (weights in shared memory) runs
  fused forward+BPTT on each shard concurrently, and the shard gradients
  are reduced in fixed order before the single optimizer step.  Evaluation
  passes shard the same way.  ``workers=0`` (default) is the serial
  in-process path, unchanged.
* The serial path itself recycles the engine's ``(batch, T, n)`` buffers
  through a per-trainer :class:`~repro.runtime.workspace.Workspace`, so
  steady-state training performs no large per-batch allocations.

Both knobs preserve results: the workspace is bitwise-transparent, and the
parallel reduction is bitwise-reproducible and pinned against the serial
execution of the same shard split in ``tests/unit/test_runtime.py``.

A third knob closes the paper's codesign loop:
``TrainerConfig(hardware=HardwareProfile(...))`` trains **hardware-aware**
— every forward/backward pass runs through the k-bit quantized (and
optionally variation-noisy) weights the profile's crossbars would realise,
via the fused engine's weight-override hook, while the optimizer updates
full-precision master weights (straight-through estimator).  Train-time
and map-time share one quantization grid by construction
(:mod:`repro.hardware.quantization`), and the pooled data-parallel path
stages the override through shared memory, staying bitwise-equal to the
serial path.  See ``docs/training.md``.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from ..common.config import BaseConfig
from ..common.errors import ShapeError
from ..common.rng import RandomState, as_random_state
from .engine import resolve_precision
from .network import SpikingNetwork
from .optim import clip_grad_norm, make_optimizer

__all__ = ["TrainerConfig", "Trainer", "EpochStats"]


@dataclasses.dataclass(frozen=True)
class TrainerConfig(BaseConfig):
    """Training hyper-parameters (paper Table I defaults).

    Attributes
    ----------
    epochs:
        Number of passes over the training set.
    batch_size:
        Mini-batch size (paper: 64).
    learning_rate:
        Step size (paper: 1e-4 classification, 1e-3 association).
    optimizer:
        ``"adamw"`` (paper), ``"adam"`` or ``"sgd"``.
    weight_decay:
        Decoupled decay for AdamW.
    grad_clip:
        Global-norm gradient clip; 0 disables.
    gradient_mode:
        ``"exact"`` or ``"truncated"`` BPTT (see :mod:`repro.core.backprop`).
    shuffle:
        Reshuffle the training set every epoch.
    engine:
        ``"fused"`` (default, :mod:`repro.core.engine`) or ``"step"`` —
        which simulation engine drives the forward and backward passes.
    precision:
        ``"float64"`` (default) or ``"float32"`` array precision for the
        forward run, recorded traces and gradients.  With
        ``engine="step"`` it applies to the forward pass only — the
        reference backward always computes gradients in float64.
    workers:
        ``0`` (default): serial in-process training.  ``N >= 1``: a
        persistent ``N``-process :class:`~repro.runtime.pool.WorkerPool`
        runs each mini-batch as ``N`` data-parallel shards (shared-memory
        weights, fixed-order gradient reduction).  ``workers=1`` computes
        exactly the serial full-batch gradients, just in another process.
    eval_train:
        Whether :meth:`Trainer.fit` re-runs the *entire training set*
        forward after every epoch for ``train_metrics``.  Off by default —
        it roughly doubles epoch cost on large sets; the running
        ``train_loss`` is recorded either way.
    hardware:
        ``None`` (default): ideal training.  A
        :class:`~repro.hardware.mapped_network.HardwareProfile` switches
        on **hardware-aware training** — the codesign loop closed: every
        forward (and backward) pass runs through the weights the
        profile's crossbar would actually realise, via the engines'
        weight-override hook, while the optimizer keeps updating the
        full-precision master weights (a straight-through estimator —
        the quantizer is treated as the identity on the backward pass).
        With every device noise source off (``variation``,
        ``stuck_at_rate``, ``read_noise`` all 0) the override is the pure
        :func:`~repro.hardware.quantization.fake_quantize` grid (the
        map-time grid, bitwise); with any of them configured each
        optimizer step samples one fresh programming-and-read draw
        (:func:`~repro.hardware.quantization.sample_programmed_weights`,
        seeded from ``profile.seed`` and the step counter), so the
        learned solution is robust to the distribution of crossbars it
        may be mapped onto.  Requires ``engine="fused"``.  Evaluation
        (:meth:`Trainer.evaluate`) still reports the ideal model — map
        the trained network under the same profile to measure deployed
        accuracy (see ``docs/training.md``).
    """

    epochs: int = 10
    batch_size: int = 64
    learning_rate: float = 1e-4
    optimizer: str = "adamw"
    weight_decay: float = 0.0
    grad_clip: float = 0.0
    gradient_mode: str = "exact"
    shuffle: bool = True
    engine: str = "fused"
    precision: str = "float64"
    workers: int = 0
    eval_train: bool = False
    hardware: object | None = None

    def validate(self) -> None:
        self.require_positive("epochs")
        self.require_positive("batch_size")
        self.require_positive("learning_rate")
        self.require_non_negative("weight_decay")
        self.require_non_negative("grad_clip")
        self.require_non_negative("workers")
        self.require(self.gradient_mode in ("exact", "truncated"),
                     f"gradient_mode must be exact|truncated, "
                     f"got {self.gradient_mode!r}")
        self.require(self.optimizer in ("sgd", "adam", "adamw"),
                     f"optimizer must be sgd|adam|adamw, got {self.optimizer!r}")
        self.require(self.engine in ("fused", "step"),
                     f"engine must be fused|step, got {self.engine!r}")
        self.require(self.precision in ("float32", "float64"),
                     f"precision must be float32|float64, "
                     f"got {self.precision!r}")
        if self.hardware is not None:
            # Duck-typed (a HardwareProfile) to keep core import-free of
            # the hardware package at module load.
            self.require(
                hasattr(self.hardware, "device")
                and hasattr(self.hardware, "quantization")
                and hasattr(self.hardware, "seed"),
                f"hardware must be a HardwareProfile, "
                f"got {type(self.hardware).__name__}")
            self.require(self.engine == "fused",
                         "hardware-aware training rides the fused "
                         "engine's weight override; engine='step' "
                         "cannot host it")


@dataclasses.dataclass
class EpochStats:
    """Metrics for one epoch (train loss plus loss-specific metrics)."""

    epoch: int
    train_loss: float
    train_metrics: dict
    test_metrics: dict
    seconds: float

    def summary(self) -> str:
        parts = [f"epoch {self.epoch:3d}", f"loss {self.train_loss:.4f}"]
        parts += [f"train_{k} {v:.4f}" for k, v in self.train_metrics.items()]
        parts += [f"test_{k} {v:.4f}" for k, v in self.test_metrics.items()]
        parts.append(f"[{self.seconds:.1f}s]")
        return "  ".join(parts)


class Trainer:
    """Trains a :class:`~repro.core.network.SpikingNetwork` with BPTT.

    Parameters
    ----------
    network:
        The model to train (its weight arrays are updated in place).
    loss:
        A loss object exposing ``value_and_grad`` and ``metrics``
        (:class:`~repro.core.loss.CrossEntropyRateLoss` or
        :class:`~repro.core.loss.VanRossumLoss`).
    config:
        :class:`TrainerConfig`.
    rng:
        Seed / RandomState used only for epoch shuffling.
    """

    def __init__(self, network: SpikingNetwork, loss, config: TrainerConfig,
                 rng: RandomState | int | None = None):
        self.network = network
        self.loss = loss
        self.config = config
        self.rng = as_random_state(rng)
        extra = {}
        if config.optimizer == "adamw":
            extra["weight_decay"] = config.weight_decay
        self.optimizer = make_optimizer(
            config.optimizer, network.weights, lr=config.learning_rate, **extra
        )
        self.history: list[EpochStats] = []
        # core must not pull the runtime layer at import time (the pool
        # workers themselves import core); runtime pieces load on use.
        from ..runtime.workspace import Workspace

        self._workspace = Workspace()
        self._pool = None
        # Hardware-aware training: the per-step programming-noise stream
        # is keyed by (profile seed, step counter), so a run is exactly
        # reproducible and independent of batch contents.
        self._hw_root = (RandomState(config.hardware.seed)
                         if config.hardware is not None else None)
        self._hw_step = 0

    # -- hardware-aware training --------------------------------------------
    def hardware_weights(self) -> list[np.ndarray] | None:
        """The weight override of the *next* hardware-aware step, or
        ``None`` for ideal training.

        With every device noise source off this is the deterministic
        :func:`~repro.hardware.quantization.fake_quantize` of the current
        master weights — bitwise the map-time grid.  With variation,
        stuck-at faults or read noise configured, each call consumes one
        step of the profile-seeded noise stream and returns a fresh
        simulated programming-and-read
        (:func:`~repro.hardware.quantization.sample_programmed_weights`).
        """
        profile = self.config.hardware
        if profile is None:
            return None
        # Local import: core.trainer is imported by hardware.mapped_network,
        # so a module-level hardware import would be circular.
        from ..hardware.quantization import (
            fake_quantize,
            sample_programmed_weights,
        )

        device = profile.device
        if (device.variation > 0 or device.stuck_at_rate > 0
                or device.read_noise > 0):
            draw = self._hw_root.child(f"train-step{self._hw_step}")
            self._hw_step += 1
            return [
                sample_programmed_weights(layer.weight, device,
                                          rng=draw.child(f"layer{i}"))
                for i, layer in enumerate(self.network.layers)
            ]
        return [fake_quantize(layer.weight, device)
                for layer in self.network.layers]

    # -- parallel runtime ---------------------------------------------------
    def _ensure_pool(self):
        """The trainer's persistent worker pool (created on first use)."""
        if self._pool is None:
            from ..runtime.pool import WorkerPool

            self._pool = WorkerPool(self.network, workers=self.config.workers,
                                    loss=self.loss)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool and drop pooled buffers (idempotent).

        Training can resume afterwards — the pool and workspace are
        re-created on demand."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._workspace.reclaim()

    def __enter__(self) -> "Trainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- single steps ------------------------------------------------------
    def train_batch(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One forward/backward/update on a batch; returns the batch loss.

        With ``config.workers >= 1`` the batch is computed as data-parallel
        shards on the worker pool (one shard per worker, gradients reduced
        in shard order); serially in-process otherwise.  With
        ``config.hardware`` the forward/backward run through that step's
        quantized(+noisy) weight realization (see :meth:`hardware_weights`)
        while the optimizer updates the master weights — the
        straight-through estimator.
        """
        from ..runtime.parallel import data_parallel_grads, shard_grads

        cfg = self.config
        override = self.hardware_weights()
        if cfg.workers >= 1:
            pool = self._ensure_pool()
            loss_value, grads = data_parallel_grads(
                self.network, self.loss, inputs, targets,
                n_shards=cfg.workers, mode=cfg.gradient_mode,
                engine=cfg.engine, precision=cfg.precision, pool=pool,
                weights=override,
            )
        else:
            # One shard == the whole batch; shard_grads is the exact unit
            # of work the pool workers execute, so serial and pooled
            # training share every arithmetic operation by construction.
            loss_value, _, grads = shard_grads(
                self.network, self.loss, inputs, targets,
                mode=cfg.gradient_mode, engine=cfg.engine,
                precision=cfg.precision, ws=self._workspace,
                weights=override,
            )
        if self.config.grad_clip > 0:
            clip_grad_norm(grads, self.config.grad_clip)
        self.optimizer.step(grads)
        return loss_value

    def train_epoch(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One pass over the data; returns the mean batch loss."""
        n = inputs.shape[0]
        if targets.shape[0] != n:
            raise ShapeError(
                f"{n} inputs but {targets.shape[0]} targets"
            )
        order = np.arange(n)
        if self.config.shuffle:
            self.rng.shuffle(order)
        losses = []
        bs = self.config.batch_size
        for start in range(0, n, bs):
            index = order[start:start + bs]
            losses.append(self.train_batch(inputs[index], targets[index]))
        return float(np.mean(losses))

    # -- evaluation ---------------------------------------------------------
    def _pool_neuron_kind(self, model: SpikingNetwork) -> str | None:
        """The ``neuron_kind`` to evaluate ``model`` under on the pool, or
        ``None`` when the pool (built for ``self.network``) cannot serve it.

        The pool replicas share this trainer's weights, so they can serve
        the trained model itself and any ``with_neuron_kind`` swap (same
        weight arrays, different dynamics) — the paper's Table II 'HR'
        evaluation.  Anything else falls back to the serial path.
        """
        if model is self.network:
            return self.network.neuron_kind
        same_weights = (
            model.sizes == self.network.sizes
            and model.params == self.network.params
            and all(a is b for a, b in zip(model.weights,
                                           self.network.weights))
        )
        return model.neuron_kind if same_weights else None

    def evaluate(self, inputs: np.ndarray, targets: np.ndarray,
                 network: SpikingNetwork | None = None) -> dict:
        """Loss metrics on held-out data (no gradient, batched).

        ``network`` overrides the trained model — used for the paper's
        hard-reset swap evaluation.  With ``config.workers >= 1`` the
        forward pass is sharded over the worker pool (same chunks as the
        serial path, so the outputs are identical).
        """
        model = network if network is not None else self.network
        if self.config.workers >= 1:
            kind = self._pool_neuron_kind(model)
            if kind is not None:
                pool = self._ensure_pool()
                outputs = pool.run_sharded(
                    inputs, self.config.batch_size,
                    engine=self.config.engine,
                    precision=self.config.precision, neuron_kind=kind,
                )
                return self.loss.metrics(outputs, targets)
        outputs = run_in_batches(model, inputs, self.config.batch_size,
                                 engine=self.config.engine,
                                 precision=self.config.precision,
                                 workspace=self._workspace)
        return self.loss.metrics(outputs, targets)

    # -- full loop ----------------------------------------------------------
    def fit(self, train_inputs: np.ndarray, train_targets: np.ndarray,
            test_inputs: np.ndarray | None = None,
            test_targets: np.ndarray | None = None,
            verbose: bool = False,
            timer=time.perf_counter) -> list[EpochStats]:
        """Run the configured number of epochs; returns per-epoch stats.

        ``train_metrics`` are populated only when ``config.eval_train`` is
        set — the extra full-train-set forward pass roughly doubles epoch
        cost on large sets; ``train_loss`` (the running mean of the batch
        losses) is always recorded.  ``timer`` stamps ``seconds`` on each
        epoch and is injectable for deterministic tests.
        """
        for epoch in range(1, self.config.epochs + 1):
            start = timer()
            train_loss = self.train_epoch(train_inputs, train_targets)
            train_metrics = {}
            if self.config.eval_train:
                train_metrics = self.evaluate(train_inputs, train_targets)
            test_metrics = {}
            if test_inputs is not None and test_targets is not None:
                test_metrics = self.evaluate(test_inputs, test_targets)
            stats = EpochStats(
                epoch=epoch, train_loss=train_loss,
                train_metrics=train_metrics, test_metrics=test_metrics,
                seconds=timer() - start,
            )
            self.history.append(stats)
            if verbose:
                print(stats.summary())
        return self.history


def run_in_batches(network: SpikingNetwork, inputs: np.ndarray,
                   batch_size: int, dtype=None, engine: str = "fused",
                   precision: str | None = None, workers: int = 0,
                   pool=None, workspace=None) -> np.ndarray:
    """Forward-only run over a large array, batched to bound memory.

    Parameters
    ----------
    network, inputs, batch_size:
        Model and ``(n, T, n_in)`` spike array; chunks of ``batch_size``
        samples bound peak memory.
    precision:
        ``"float32"`` / ``"float64"`` (or a dtype-like); the single
        precision switch for the run.  Default float64.
    dtype:
        Legacy alias for ``precision`` kept for backwards compatibility;
        ``precision`` wins when both are given.
    workers, pool:
        ``workers >= 1`` distributes the chunks over a
        :class:`~repro.runtime.pool.WorkerPool` — ``pool`` reuses an
        existing one (its network must be ``network``), otherwise a
        transient pool is created for this call.  The chunk boundaries are
        identical to the serial path, so the outputs are bitwise equal.
    workspace:
        Optional :class:`~repro.runtime.workspace.Workspace` for the
        serial path; chunk buffers are recycled after concatenation.
    """
    resolved = resolve_precision(precision if precision is not None else dtype)
    if resolved is None:
        resolved = np.dtype(np.float64)
    if pool is not None:
        if pool.network is not network:
            raise ValueError(
                "pool was built for a different network object; build the "
                "pool from this network (or pass workers= for a transient "
                "one) so the shared-memory replicas match")
        return pool.run_sharded(inputs, batch_size, engine=engine,
                                precision=resolved)
    if workers >= 1:
        from ..runtime.pool import WorkerPool

        with WorkerPool(network, workers=workers) as transient:
            return transient.run_sharded(inputs, batch_size, engine=engine,
                                         precision=resolved)
    chunks = []
    for start in range(0, inputs.shape[0], batch_size):
        outputs, _ = network.run(inputs[start:start + batch_size],
                                 precision=resolved, engine=engine,
                                 workspace=workspace)
        chunks.append(outputs)
    result = np.concatenate(chunks, axis=0)
    if workspace is not None:
        workspace.release(*chunks)
    return result
