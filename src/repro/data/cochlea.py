"""Artificial inner-ear model: waveform -> 700 spike trains.

The SHD dataset converts audio through Cramer et al.'s artificial inner
ear (basilar-membrane filterbank, hair-cell transduction, bushy-cell
spiking).  This module implements an offline equivalent with the same
stages:

1. **Basilar membrane** — a short-time Fourier transform followed by a
   bank of strongly overlapping triangular filters on a mel-spaced axis
   (place coding: each of the 700 channels responds to a narrow frequency
   band, low channels = low frequencies).
2. **Hair cells** — half-wave rectified energy with power-law compression
   (log option), modelling the saturating mechano-electrical transduction.
3. **Spike generation** — one integrate-and-fire unit per channel: the
   compressed energy accumulates and each threshold crossing emits a
   spike, so louder channels fire earlier and more often while onset
   timing is preserved — the property the paper's temporal experiments
   depend on.

The output raster is (steps, n_channels) with at most ``max_spikes`` per
cell, padded with silence to a fixed length.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.config import BaseConfig
from ..common.errors import DatasetError
from ..common.rng import RandomState, as_random_state

__all__ = ["CochleaConfig", "Cochlea", "mel_frequencies"]


def mel_frequencies(n_channels: int, f_min: float, f_max: float) -> np.ndarray:
    """Mel-spaced centre frequencies (Hz), one per channel."""
    if n_channels <= 0:
        raise DatasetError(f"n_channels must be positive, got {n_channels}")
    if not 0 < f_min < f_max:
        raise DatasetError(f"need 0 < f_min < f_max, got {f_min}, {f_max}")

    def to_mel(f):
        return 2595.0 * np.log10(1.0 + np.asarray(f) / 700.0)

    def from_mel(m):
        return 700.0 * (10.0 ** (np.asarray(m) / 2595.0) - 1.0)

    mels = np.linspace(to_mel(f_min), to_mel(f_max), n_channels)
    return from_mel(mels)


@dataclasses.dataclass(frozen=True)
class CochleaConfig(BaseConfig):
    """Inner-ear encoder parameters.

    Attributes
    ----------
    n_channels:
        Output spike trains (SHD: 700).
    f_min, f_max:
        Frequency range covered by the channel array (Hz).
    sample_rate:
        Expected waveform rate.
    frame_length, hop_length:
        STFT analysis window and hop (samples).
    compression:
        ``"log"`` or ``"power"`` hair-cell compression.
    power_exponent:
        Exponent for ``"power"`` compression.
    spike_gain:
        Integrator gain: larger -> more spikes per unit energy.
    activity_floor:
        Normalised energy below this drives no spikes at all — models the
        hair-cell firing threshold and keeps the raster sparse (only the
        formant tracks fire, like real SHD).
    adaptation:
        Strength of hair-cell firing-rate adaptation: the drive is reduced
        by ``adaptation * running_average(energy)``, emphasising onsets
        (real auditory-nerve fibres respond strongly to stimulus onsets
        and adapt during sustained sound).  Values near 1 make the raster
        onset-dominated and timing-critical — the SHD property the paper's
        hard-reset ablation depends on.  0 disables.
    adaptation_tau:
        Time constant (frames) of the adaptation running average.
    max_spikes:
        Per-cell spike cap per frame (refractoriness).
    """

    n_channels: int = 700
    f_min: float = 60.0
    f_max: float = 3800.0
    sample_rate: int = 8000
    frame_length: int = 256
    hop_length: int = 32
    compression: str = "log"
    power_exponent: float = 0.3
    spike_gain: float = 1.2
    activity_floor: float = 0.25
    adaptation: float = 0.85
    adaptation_tau: float = 8.0
    max_spikes: int = 1

    def validate(self) -> None:
        self.require_positive("n_channels")
        self.require_positive("sample_rate")
        self.require_positive("frame_length")
        self.require_positive("hop_length")
        self.require(self.hop_length <= self.frame_length,
                     "hop must not exceed frame length")
        self.require(self.compression in ("log", "power"),
                     f"compression must be log|power, got {self.compression!r}")
        self.require_positive("spike_gain")
        self.require_in_range("activity_floor", 0.0, 1.0)
        self.require_non_negative("adaptation")
        self.require_positive("adaptation_tau")
        self.require(self.max_spikes >= 1, "max_spikes must be >= 1")
        self.require(self.f_max <= self.sample_rate / 2.0,
                     "f_max exceeds Nyquist")


class Cochlea:
    """Waveform-to-spikes encoder (see module docstring)."""

    def __init__(self, config: CochleaConfig | None = None):
        self.config = config or CochleaConfig()
        self.centres = mel_frequencies(
            self.config.n_channels, self.config.f_min, self.config.f_max
        )
        self._filterbank = self._build_filterbank()

    def _build_filterbank(self) -> np.ndarray:
        """Triangular filters (n_channels, n_bins) on the STFT bin axis."""
        cfg = self.config
        n_bins = cfg.frame_length // 2 + 1
        bin_freqs = np.linspace(0.0, cfg.sample_rate / 2.0, n_bins)
        # Triangle half-width follows channel spacing (constant-Q-ish
        # overlap; at 700 channels neighbouring filters overlap heavily,
        # like real basilar-membrane tuning curves).
        spacing = np.gradient(self.centres)
        half_width = np.maximum(spacing * 4.0, 40.0)
        lower = self.centres - half_width
        upper = self.centres + half_width
        rising = (bin_freqs[None, :] - lower[:, None]) / (
            self.centres[:, None] - lower[:, None]
        )
        falling = (upper[:, None] - bin_freqs[None, :]) / (
            upper[:, None] - self.centres[:, None]
        )
        bank = np.clip(np.minimum(rising, falling), 0.0, None)
        norms = bank.sum(axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return bank / norms

    # -- stages ---------------------------------------------------------------
    def cochleagram(self, waveform: np.ndarray) -> np.ndarray:
        """Compressed channel-energy matrix, shape (frames, n_channels)."""
        cfg = self.config
        waveform = np.asarray(waveform, dtype=np.float64)
        if waveform.ndim != 1:
            raise DatasetError(f"waveform must be 1-D, got {waveform.shape}")
        if len(waveform) < cfg.frame_length:
            waveform = np.pad(waveform, (0, cfg.frame_length - len(waveform)))
        n_frames = 1 + (len(waveform) - cfg.frame_length) // cfg.hop_length
        window = np.hanning(cfg.frame_length)
        indices = (np.arange(cfg.frame_length)[None, :]
                   + cfg.hop_length * np.arange(n_frames)[:, None])
        frames = waveform[indices] * window[None, :]
        spectrum = np.abs(np.fft.rfft(frames, axis=1))
        energy = spectrum @ self._filterbank.T          # (frames, channels)
        if cfg.compression == "log":
            return np.log1p(30.0 * energy)
        return energy ** cfg.power_exponent

    def encode(self, waveform: np.ndarray, steps: int,
               rng: RandomState | int | None = None,
               gain_jitter: float = 0.05) -> np.ndarray:
        """Full pipeline: waveform -> (steps, n_channels) spike raster.

        The cochleagram is truncated or silence-padded to ``steps`` frames;
        each channel's compressed energy drives an integrate-and-fire unit
        (threshold 1, subtractive reset) whose crossings are the spikes.

        Parameters
        ----------
        gain_jitter:
            Multiplicative per-channel gain noise (models hair-cell
            variability); 0 disables.
        """
        cfg = self.config
        if steps <= 0:
            raise DatasetError(f"steps must be positive, got {steps}")
        energy = self.cochleagram(waveform)
        if energy.shape[0] >= steps:
            energy = energy[:steps]
        else:
            energy = np.pad(energy, ((0, steps - energy.shape[0]), (0, 0)))

        # Per-sample loudness normalisation, then the hair-cell firing
        # floor: only energy well above the sample's background drives
        # spikes, which keeps the raster sparse along the formant tracks.
        reference = float(np.percentile(energy, 98.0))
        if reference > 0:
            energy = energy / reference
        if cfg.adaptation > 0:
            # Firing-rate adaptation: subtract a leaky running average so
            # sustained energy fades and onsets dominate.
            decay = float(np.exp(-1.0 / cfg.adaptation_tau))
            average = np.zeros(cfg.n_channels)
            adapted = np.empty_like(energy)
            for t in range(energy.shape[0]):
                adapted[t] = energy[t] - cfg.adaptation * average
                average = decay * average + (1.0 - decay) * energy[t]
            energy = np.maximum(adapted, 0.0)
        energy = np.maximum(energy - cfg.activity_floor, 0.0)

        gains = np.full(cfg.n_channels, cfg.spike_gain)
        if gain_jitter > 0:
            generator = as_random_state(rng)
            gains = gains * (
                1.0 + gain_jitter * generator.normal(0.0, 1.0, cfg.n_channels)
            )
        drive = energy * np.maximum(gains, 0.0)[None, :]

        spikes = np.zeros((steps, cfg.n_channels), dtype=np.float32)
        potential = np.zeros(cfg.n_channels)
        for t in range(steps):
            potential += drive[t]
            count = np.floor(potential)
            count = np.minimum(count, cfg.max_spikes)
            mask = count > 0
            potential[mask] -= count[mask]
            # Saturation: a hair cell cannot bank unbounded charge while
            # refractory-capped; clamp the carry-over.
            np.clip(potential, 0.0, float(cfg.max_spikes), out=potential)
            spikes[t] = count
        return spikes
