"""Differentiable operations for the autograd engine.

Each op builds a child :class:`~repro.autograd.tensor.Tensor` whose
``backward_fn`` scatters the output gradient to the inputs.  The op set is
exactly what the paper's model and losses need — elementwise arithmetic,
matmul, reductions, exp/log — plus :func:`spike` : a Heaviside forward with
a pluggable surrogate backward, which makes the engine compute the *same*
pseudo-gradients as the hand-written BPTT so the two can be compared
bitwise.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "add", "sub", "mul", "neg", "matmul", "scale",
    "tsum", "tmean", "exp", "log", "square", "sigmoid",
    "spike", "smooth_spike",
]


def _make(data, parents, backward_fn):
    requires = any(p.requires_grad for p in parents)
    return Tensor(data, requires_grad=requires,
                  parents=[p for p in parents if p.requires_grad],
                  backward_fn=backward_fn if requires else None)


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad)
        if b.requires_grad:
            b._accumulate(grad)

    return _make(a.data + b.data, (a, b), backward)


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad)
        if b.requires_grad:
            b._accumulate(-grad)

    return _make(a.data - b.data, (a, b), backward)


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * b.data)
        if b.requires_grad:
            b._accumulate(grad * a.data)

    return _make(a.data * b.data, (a, b), backward)


def neg(a) -> Tensor:
    a = as_tensor(a)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(-grad)

    return _make(-a.data, (a,), backward)


def scale(a, factor: float) -> Tensor:
    """Multiply by a python scalar (no graph node for the scalar)."""
    a = as_tensor(a)
    factor = float(factor)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * factor)

    return _make(a.data * factor, (a,), backward)


def matmul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad @ b.data.T)
        if b.requires_grad:
            b._accumulate(a.data.T @ grad)

    return _make(a.data @ b.data, (a, b), backward)


def tsum(a, axis=None) -> Tensor:
    a = as_tensor(a)

    def backward(grad):
        if not a.requires_grad:
            return
        if axis is None:
            a._accumulate(np.broadcast_to(grad, a.data.shape))
        else:
            a._accumulate(np.broadcast_to(
                np.expand_dims(grad, axis), a.data.shape))

    return _make(a.data.sum(axis=axis), (a,), backward)


def tmean(a, axis=None) -> Tensor:
    a = as_tensor(a)
    count = a.data.size if axis is None else a.data.shape[axis]

    def backward(grad):
        if not a.requires_grad:
            return
        if axis is None:
            a._accumulate(np.broadcast_to(grad / count, a.data.shape))
        else:
            a._accumulate(np.broadcast_to(
                np.expand_dims(grad / count, axis), a.data.shape))

    return _make(a.data.mean(axis=axis), (a,), backward)


def exp(a) -> Tensor:
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * out_data)

    return _make(out_data, (a,), backward)


def log(a) -> Tensor:
    a = as_tensor(a)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad / a.data)

    return _make(np.log(a.data), (a,), backward)


def square(a) -> Tensor:
    a = as_tensor(a)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * 2.0 * a.data)

    return _make(a.data ** 2, (a,), backward)


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * out_data * (1.0 - out_data))

    return _make(out_data, (a,), backward)


def spike(v, threshold: float, surrogate) -> Tensor:
    """Heaviside forward, surrogate backward (paper eqs. 10-11 + 14).

    Forward emits ``1.0`` where ``v >= threshold``; backward multiplies the
    incoming gradient by ``surrogate.derivative(v - threshold)`` — exactly
    the pseudo-gradient rule the manual BPTT uses, so both implementations
    are comparable to machine precision.
    """
    v = as_tensor(v)
    centred = v.data - float(threshold)
    out_data = (centred >= 0.0).astype(np.float64)

    def backward(grad):
        if v.requires_grad:
            v._accumulate(grad * surrogate.derivative(centred))

    return _make(out_data, (v,), backward)


def smooth_spike(v, threshold: float, surrogate) -> Tensor:
    """Fully smooth relaxation: forward uses ``surrogate.smooth_step``.

    Used by finite-difference tests — with a smooth forward the whole
    network becomes differentiable, so autograd gradients can be checked
    against central differences, closing the chain of trust
    (FD -> autograd -> manual BPTT).
    """
    v = as_tensor(v)
    centred = v.data - float(threshold)
    out_data = surrogate.smooth_step(centred)

    def backward(grad):
        if v.requires_grad:
            v._accumulate(grad * surrogate.derivative(centred))

    return _make(out_data, (v,), backward)


# -- attach operator sugar to Tensor ------------------------------------------
def _radd(self, other):
    return add(self, other)


Tensor.__add__ = lambda self, other: add(self, other)
Tensor.__radd__ = _radd
Tensor.__sub__ = lambda self, other: sub(self, other)
Tensor.__rsub__ = lambda self, other: sub(as_tensor(other), self)
Tensor.__mul__ = lambda self, other: mul(self, other)
Tensor.__rmul__ = lambda self, other: mul(self, other)
Tensor.__neg__ = lambda self: neg(self)
Tensor.__matmul__ = lambda self, other: matmul(self, other)
Tensor.sum = lambda self, axis=None: tsum(self, axis=axis)
Tensor.mean = lambda self, axis=None: tmean(self, axis=axis)
