"""The spatial-temporal pattern association task (paper Section V-B).

The network must *produce* a specific spatio-temporal output pattern in
response to a specific input pattern: given the audio of a spoken digit
(an SHD sample, 700 trains), emit the image of the corresponding
handwritten digit as a spike raster.

The paper's target conversion rule: a digit image's pixel ``(x, y)``
becomes a spike in the ``y``-th output train at time ``x`` — i.e. the
image's columns are scanned out over time.  The paper uses 700 input
trains of length 300 and 300 output trains of the same length; the
``reduced`` default shrinks both for CI-scale runs.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.config import BaseConfig
from ..common.rng import RandomState, as_random_state
from .datasets import SpikeDataset
from .glyphs import render_digit
from .shd import SyntheticSHDConfig, generate_shd

__all__ = ["AssociationConfig", "generate_association", "glyph_to_target"]


def glyph_to_target(image: np.ndarray, steps: int, trains: int,
                    threshold: float = 0.35) -> np.ndarray:
    """Convert a grayscale digit image to the paper's target raster.

    Pixel ``(x, y)`` with intensity above ``threshold`` becomes a spike in
    train ``y`` at time ``x``.  The image is placed centred on the
    (steps, trains) canvas; row 0 of the image (the glyph top) maps to the
    *last* train so the raster plot visually matches the digit.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError(f"image must be 2-D, got {image.shape}")
    height, width = image.shape
    if height > trains or width > steps:
        raise ValueError(
            f"image {image.shape} does not fit raster ({steps}, {trains})"
        )
    target = np.zeros((steps, trains), dtype=np.float32)
    x0 = (steps - width) // 2
    y0 = (trains - height) // 2
    mask = image > threshold
    ys, xs = np.nonzero(mask)
    # Flip rows: image row 0 (top) -> highest train index.
    target[x0 + xs, y0 + (height - 1 - ys)] = 1.0
    return target


@dataclasses.dataclass(frozen=True)
class AssociationConfig(BaseConfig):
    """Generation parameters for the association dataset.

    Attributes
    ----------
    n_samples:
        Input/target pairs (paper: 1000 SHD samples).
    steps:
        Sequence length for both input and target (paper: 300).
    input_channels:
        Input trains (paper: 700).
    target_trains:
        Output trains (paper: 300).
    glyph_size:
        Rendered digit size; must fit within (steps, target_trains).
    """

    n_samples: int = 200
    steps: int = 100
    input_channels: int = 700
    target_trains: int = 96
    glyph_size: int = 64

    def validate(self) -> None:
        self.require_positive("n_samples")
        self.require_positive("steps")
        self.require_positive("input_channels")
        self.require_positive("target_trains")
        self.require(self.glyph_size <= min(self.steps, self.target_trains),
                     "glyph must fit within (steps, target_trains)")


def paper_association_config() -> AssociationConfig:
    """The full-scale configuration from Section V-B."""
    return AssociationConfig(
        n_samples=1000, steps=300, input_channels=700,
        target_trains=300, glyph_size=280,
    )


def generate_association(config: AssociationConfig | None = None,
                         rng: RandomState | int | None = None) -> SpikeDataset:
    """Generate (spoken-digit input, handwritten-digit target) pairs.

    The inputs are synthetic SHD samples (both languages map a digit to
    the *same* glyph class, as in the paper's task: the audio of "three"
    and "drei" should both draw a 3).

    Returns
    -------
    SpikeDataset
        ``inputs`` (n, steps, input_channels); ``targets``
        (n, steps, target_trains) spike rasters.
    """
    config = config or AssociationConfig()
    root = as_random_state(rng)

    # Build the speech inputs by reusing the SHD generator at the right
    # length, with samples spread over all 20 spoken classes.
    n_per_class = max(1, int(np.ceil(config.n_samples / 20)))
    shd = generate_shd(
        SyntheticSHDConfig(
            n_per_class=n_per_class, steps=config.steps,
            n_channels=config.input_channels,
        ),
        rng=root.child("shd-inputs"),
    )
    order = root.child("subset").permutation(len(shd))[:config.n_samples]
    inputs = shd.inputs[order]
    spoken_class = shd.targets[order]
    digits = spoken_class % 10          # language-independent digit identity

    targets = np.zeros((config.n_samples, config.steps, config.target_trains),
                       dtype=np.float32)
    for index, digit in enumerate(digits):
        glyph = render_digit(
            int(digit), size=config.glyph_size,
            rng=root.child(f"glyph{index}"), jitter=True,
        )
        targets[index] = glyph_to_target(
            glyph, steps=config.steps, trains=config.target_trains,
        )

    return SpikeDataset(
        inputs, targets, name="synthetic-association",
        class_names=[str(d) for d in range(10)],
        metadata={
            "config": config.to_dict(),
            "seed": root.seed,
            "digit_labels": digits.tolist(),
        },
    )
