"""Run rules, apply suppressions + baseline, render results.

Pipeline: :func:`~repro.analysis.lint.facts.build_facts` (phase 1) ->
:func:`~repro.analysis.lint.rules.run_rules` (phase 2) -> drop inline
``# repro: disable=`` suppressions -> drop baselined findings ->
deterministic text/JSON rendering.  Baselines match on ``(rule, path,
message)`` — never on line numbers, which shift under every edit — and
are written sorted so regeneration is byte-stable.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from .facts import LintConfig, ProjectFacts, build_facts
from .rules import RULES, Finding, run_rules

__all__ = [
    "JSON_SCHEMA_VERSION",
    "LintResult",
    "load_baseline",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]

JSON_SCHEMA_VERSION = 1
TOOL_NAME = "repro.analysis.lint"


@dataclasses.dataclass
class LintResult:
    facts: ProjectFacts
    findings: list            # reported (post-suppression, post-baseline)
    suppressed: list
    baselined: list
    stale_baseline: list      # baseline entries no longer produced

    @property
    def raw_count(self) -> int:
        return (len(self.findings) + len(self.suppressed)
                + len(self.baselined))

    @property
    def clean(self) -> bool:
        return not self.findings


def _parse_error_findings(facts: ProjectFacts) -> list:
    out = []
    for path in sorted(facts.modules):
        mod = facts.modules[path]
        if mod.parse_error:
            out.append(Finding(
                rule="parse-error", severity="error", path=path,
                line=1, col=0,
                message=f"file does not parse: {mod.parse_error}",
                hint="the linter (and the interpreter) need valid "
                     "syntax"))
    return out


def run_lint(root=None, sources: dict | None = None,
             config: LintConfig | None = None,
             baseline: set | None = None) -> LintResult:
    """Lint a tree (or in-memory ``sources``) end to end.

    ``baseline`` is a set of ``(rule, path, message)`` keys from
    :func:`load_baseline`; ``None`` means no baseline filtering.
    """
    facts = build_facts(root=root, sources=sources, config=config)
    raw = _parse_error_findings(facts) + run_rules(facts)
    raw.sort(key=lambda f: f.sort_key)

    reported: list = []
    suppressed: list = []
    baselined: list = []
    matched_keys: set = set()
    for finding in raw:
        mod = facts.modules.get(finding.path)
        if mod is not None and mod.suppressed(finding.line, finding.rule):
            suppressed.append(finding)
        elif baseline and finding.baseline_key in baseline:
            baselined.append(finding)
            matched_keys.add(finding.baseline_key)
        else:
            reported.append(finding)

    stale = sorted(baseline - matched_keys) if baseline else []
    return LintResult(facts=facts, findings=reported,
                      suppressed=suppressed, baselined=baselined,
                      stale_baseline=stale)


# ---------------------------------------------------------------------------
# Baseline file
# ---------------------------------------------------------------------------

def load_baseline(path) -> set:
    """Read a baseline file into a set of ``(rule, path, message)``
    keys.  A missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    entries = payload.get("findings", payload) \
        if isinstance(payload, dict) else payload
    keys = set()
    for entry in entries:
        keys.add((entry["rule"], entry["path"], entry["message"]))
    return keys


def write_baseline(path, result: LintResult) -> int:
    """Grandfather every currently-reported finding.  Returns the entry
    count.  Output is sorted and newline-terminated so regeneration is
    deterministic."""
    entries = sorted({f.baseline_key for f in result.findings})
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "tool": TOOL_NAME,
        "findings": [
            {"rule": rule, "path": rel, "message": message}
            for rule, rel, message in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return len(entries)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def render_text(result: LintResult, verbose: bool = False) -> str:
    lines = []
    for f in result.findings:
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.rule} "
                     f"[{f.severity}] {f.message}")
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    for key in result.stale_baseline:
        lines.append(f"stale baseline entry (fixed? run `make "
                     f"lint-baseline`): {key[1]}: {key[0]}: {key[2]}")
    lines.append(
        f"{len(result.facts.modules)} files, {result.raw_count} raw "
        f"finding(s): {len(result.findings)} reported, "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined")
    if verbose and result.suppressed:
        for f in result.suppressed:
            lines.append(f"suppressed: {f.path}:{f.line}: {f.rule}: "
                         f"{f.message}")
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "tool": TOOL_NAME,
        "root": result.facts.root,
        "files": len(result.facts.modules),
        "rules": [rule.id for rule in RULES],
        "counts": {
            "raw": result.raw_count,
            "reported": len(result.findings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "stale_baseline": len(result.stale_baseline),
        },
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "hint": f.hint,
            }
            for f in result.findings
        ],
    }
    return json.dumps(payload, indent=2) + "\n"
