"""The feedforward spiking network (paper Fig. 2/3).

A :class:`SpikingNetwork` is a stack of :class:`~repro.core.layers.SpikingLinear`
layers.  Two execution engines produce identical dynamics:

* ``engine="step"`` — the *step-wise reference path*: at each step ``t``
  the input spikes propagate through every layer (eq. 9 couples layer
  ``l``'s synapse filter to layer ``l-1``'s output *at the same step*),
  then ``t`` advances.  This is the literal unfolding of the paper's
  Fig. 2 — easy to audit, and what :meth:`SpikingNetwork.step` exposes for
  closed-loop use — but it pays one small matmul and several Python
  dispatches per layer per step.

* ``engine="fused"`` (the default) — the vectorized engine in
  :mod:`repro.core.engine`: because the stack is feedforward and causal,
  the loop nest is reordered layer-major, the synapse filter becomes an
  in-place exponential scan over ``(batch, T, n)`` buffers, and the
  crossbar product collapses to one batched matmul per layer.  Spikes,
  membrane traces and BPTT gradients match the reference to tolerance
  (``tests/unit/test_engine.py``); throughput is several times higher
  (``docs/performance.md``).

Both engines support ``precision="float32"|"float64"``.

A recorded run (:class:`RunRecord`) captures, per layer, the synapse-filter
traces ``k``, membrane values ``v`` and output spikes — everything backward
passes and the analysis/plotting code need.
"""

from __future__ import annotations

import numpy as np

from .. import obs as _obs
from ..common.errors import ShapeError
from ..common.rng import RandomState, as_random_state
from .engine import StreamState, fused_run, resolve_precision, run_streaming
from .layers import LayerStepRecord, SpikingLinear
from .neurons import NeuronParameters
from .surrogate import SurrogateGradient

__all__ = ["SpikingNetwork", "RunRecord"]


class RunRecord:
    """Everything captured from one recorded forward run.

    Memory layout: every tensor is a C-contiguous array indexed
    ``[batch, t, neuron]`` — batch-major, time second, channel last — so a
    single time step ``tensor[:, t, :]`` is a strided ``(batch, n)`` slice
    (what the step-wise loops touch) while a whole trace flattens to
    ``(batch*T, n)`` without a copy (what the fused engine's batched
    matmuls consume).  Per layer the record holds ``k`` (synapse-filter
    trace, ``(batch, T, n_in)``, ``None`` for hard-reset layers), ``v``
    (membrane values, pre-reset for HR) and ``spikes`` (both
    ``(batch, T, n_out)``).  The dtype is whatever precision the run used;
    both engines produce the same layout, so BPTT and the analysis code
    never need to know which engine recorded it.

    Attributes
    ----------
    inputs:
        The network input spikes, shape (batch, T, n_input).
    layers:
        One :class:`~repro.core.layers.LayerStepRecord` per layer.
    """

    def __init__(self, inputs: np.ndarray, layers: list[LayerStepRecord]):
        self.inputs = inputs
        self.layers = layers

    @property
    def outputs(self) -> np.ndarray:
        """Output spikes of the last layer, shape (batch, T, n_out)."""
        return self.layers[-1].spikes

    def layer_input(self, index: int) -> np.ndarray:
        """Spikes entering layer ``index`` (network input for index 0)."""
        if index == 0:
            return self.inputs
        return self.layers[index - 1].spikes


class SpikingNetwork:
    """A feedforward stack of spiking layers.

    Parameters
    ----------
    sizes:
        Layer widths including the input, e.g. ``(700, 400, 400, 20)``.
    params:
        Neuron hyper-parameters shared by all layers (Table I defaults).
    neuron_kind:
        ``"adaptive"`` or ``"hard_reset"`` for every layer.
    surrogate:
        Surrogate gradient attached to every layer.
    rng:
        Seed / RandomState; each layer's init gets an independent child
        stream.
    """

    def __init__(self, sizes: tuple[int, ...] | list[int],
                 params: NeuronParameters | None = None,
                 neuron_kind: str = "adaptive",
                 surrogate: SurrogateGradient | None = None,
                 rng: RandomState | int | None = None):
        sizes = tuple(int(s) for s in sizes)
        if len(sizes) < 2:
            raise ValueError("a network needs at least an input and one layer")
        root = as_random_state(rng)
        self.sizes = sizes
        self.params = params or NeuronParameters()
        self.neuron_kind = neuron_kind
        self.layers = [
            SpikingLinear(
                sizes[i], sizes[i + 1], params=self.params,
                neuron_kind=neuron_kind, surrogate=surrogate,
                rng=root.child(f"layer{i}"), name=f"layer{i}",
            )
            for i in range(len(sizes) - 1)
        ]

    # -- forward -------------------------------------------------------------
    def reset_state(self, batch_size: int, dtype=np.float64) -> None:
        for layer in self.layers:
            layer.reset_state(batch_size, dtype=dtype)

    def step(self, x: np.ndarray) -> np.ndarray:
        """Propagate one time step through all layers; returns output spikes."""
        spikes = x
        for layer in self.layers:
            spikes, _ = layer.step(spikes)
        return spikes

    def run(self, inputs: np.ndarray, record: bool = False,
            dtype=np.float64, engine: str = "fused",
            precision: str | None = None,
            workspace=None, weights=None
            ) -> tuple[np.ndarray, RunRecord | None]:
        """Run a batch of spike sequences through the network.

        Parameters
        ----------
        inputs:
            Spike array of shape (batch, T, n_input); values may exceed 1
            (event counts) — the filters are linear.
        record:
            Capture per-layer traces for BPTT / analysis.
        dtype:
            Array dtype (kept for backwards compatibility; prefer
            ``precision``).
        engine:
            ``"fused"`` (default, :mod:`repro.core.engine`) or ``"step"``
            (the per-step reference loop).  Outputs agree to tolerance.
        precision:
            ``"float32"`` or ``"float64"``; overrides ``dtype`` when given.
        workspace:
            Optional :class:`~repro.runtime.workspace.Workspace` the fused
            engine checks its large buffers out of (identical results).
            The returned tensors then belong to that workspace's owner —
            only pass one from code that recycles them, like the
            :class:`~repro.core.trainer.Trainer`.  Ignored by
            ``engine="step"``.
        weights:
            Optional per-layer weight overrides (one ``(n_out, n_in)``
            array per layer) substituting the crossbar product's matrices
            for this run only — the network's own parameters are
            untouched.  The batch twin of :meth:`run_stream`'s override:
            hardware-aware training runs its forward pass through the
            quantized(+noisy) weights this way (see
            :class:`~repro.core.trainer.TrainerConfig` ``hardware=``).
            Fused engine only.

        Returns
        -------
        (outputs, record):
            ``outputs`` has shape (batch, T, n_output); ``record`` is a
            :class:`RunRecord` or ``None``.
        """
        if engine not in ("fused", "step"):
            raise ValueError(f"engine must be 'fused' or 'step', got {engine!r}")
        resolved = resolve_precision(precision)
        if resolved is not None:
            dtype = resolved
        inputs = np.asarray(inputs, dtype=dtype)
        if inputs.ndim != 3:
            raise ShapeError(f"expected (batch, T, n_in), got {inputs.shape}")
        if inputs.shape[2] != self.sizes[0]:
            raise ShapeError(
                f"expected {self.sizes[0]} input channels, got {inputs.shape[2]}"
            )
        if engine == "fused":
            # timed_span is the shared null context unless a telemetry
            # bundle is installed — the uninstrumented path pays one
            # global read per call.
            with _obs.timed_span("engine.run", metric="engine.run_ms",
                                 engine=engine, batch=int(inputs.shape[0]),
                                 steps=int(inputs.shape[1])):
                return fused_run(self, inputs, record=record, ws=workspace,
                                 weights=weights)
        if weights is not None:
            raise ValueError(
                "weight overrides are a fused-engine feature (the step "
                "path reads layer.weight directly)")
        batch, steps, _ = inputs.shape
        self.reset_state(batch, dtype=dtype)

        spike_buffers = [
            np.zeros((batch, steps, layer.n_out), dtype=dtype)
            for layer in self.layers
        ]
        v_buffers = None
        k_buffers = None
        if record:
            v_buffers = [np.zeros((batch, steps, layer.n_out), dtype=dtype)
                         for layer in self.layers]
            k_buffers = [
                np.zeros((batch, steps, layer.n_in), dtype=dtype)
                if layer.neuron_kind == "adaptive" else None
                for layer in self.layers
            ]

        with _obs.timed_span("engine.run", metric="engine.run_ms",
                             engine=engine, batch=batch, steps=steps):
            for t in range(steps):
                spikes = inputs[:, t, :]
                for index, layer in enumerate(self.layers):
                    spikes, v = layer.step(spikes)
                    spike_buffers[index][:, t, :] = spikes
                    if record:
                        v_buffers[index][:, t, :] = v
                        if k_buffers[index] is not None:
                            k_buffers[index][:, t, :] = layer.k

        outputs = spike_buffers[-1]
        run_record = None
        if record:
            layer_records = [
                LayerStepRecord(k=k_buffers[i], v=v_buffers[i],
                                spikes=spike_buffers[i])
                for i in range(len(self.layers))
            ]
            run_record = RunRecord(inputs=inputs, layers=layer_records)
        return outputs, run_record

    # -- streaming -----------------------------------------------------------
    def new_stream_state(self, batch_size: int, engine: str = "fused",
                         precision: str | None = None,
                         dtype=np.float64) -> StreamState:
        """A fresh :class:`~repro.core.engine.StreamState` for ``batch_size``
        independent streams (see :meth:`run_stream`)."""
        return StreamState.for_network(self, batch_size, engine=engine,
                                       precision=precision, dtype=dtype)

    def run_stream(self, chunk: np.ndarray, state: StreamState | None = None,
                   engine: str | None = None, precision: str | None = None,
                   workspace=None, lengths=None, weights=None
                   ) -> tuple[np.ndarray, StreamState]:
        """Consume one chunk of a live spike stream; returns
        ``(outputs, state)``.

        Feeding a T-step sequence in chunks of any sizes produces
        bitwise-identical output spikes to the one-shot :meth:`run` of the
        same engine (pinned in ``tests/unit/test_streaming.py``; for the
        fused engine the guarantee needs scipy — see
        :func:`~repro.core.engine.run_streaming`).  The stream's memory
        lives entirely in the returned state, never in the network — the
        fused engine leaves the layer/neuron scratch untouched, the step
        engine borrows it during the call and captures the result back —
        so any number of concurrent streams share one resident network.

        Parameters
        ----------
        chunk:
            Spike array of shape ``(batch, T_chunk, n_input)``; ``T_chunk``
            may vary call to call (0 is allowed and is a no-op).
        state:
            The :class:`~repro.core.engine.StreamState` returned by the
            previous call (advanced in place and returned), or ``None`` to
            open a new stream.
        engine, precision:
            Fix the stream's engine (``"fused"`` default / ``"step"``) and
            dtype when opening it; on an existing state they must match
            (the state representation is engine- and dtype-specific).
        workspace:
            Optional :class:`~repro.runtime.workspace.Workspace` the fused
            engine checks chunk buffers out of; the returned outputs then
            belong to the workspace's owner.  Ignored by ``engine="step"``.
        lengths:
            Optional ``(batch,)`` ints marking each row's valid prefix of
            a padded chunk (the serving micro-batcher's gather format):
            each row's state advances exactly ``lengths[i]`` steps and its
            outputs beyond that are unspecified.
        weights:
            Optional per-layer weight overrides (one ``(n_out, n_in)``
            array per layer) substituting the crossbar product's matrices
            for this chunk only — the network's own parameters are
            untouched.  Hardware-in-the-loop serving streams the resident
            software network with the crossbars' achieved weights this
            way (see :class:`~repro.hardware.mapped_network.
            HardwareMappedNetwork.run_stream`).  Fused engine only.
        """
        if state is None:
            if engine is None:
                engine = "fused"
            resolved = resolve_precision(precision) or np.dtype(np.float64)
        else:
            if engine is not None and engine != state.engine:
                raise ValueError(
                    f"stream state carries engine={state.engine!r}, "
                    f"cannot continue it with engine={engine!r}")
            engine = state.engine
            resolved = state.dtype
            requested = resolve_precision(precision)
            if requested is not None and requested != resolved:
                raise ValueError(
                    f"stream state carries dtype {resolved.name}, "
                    f"cannot continue it with precision={precision!r}")
        if engine not in ("fused", "step"):
            raise ValueError(f"engine must be 'fused' or 'step', got {engine!r}")
        chunk = np.asarray(chunk, dtype=resolved)
        if chunk.ndim != 3:
            raise ShapeError(f"expected (batch, T, n_in), got {chunk.shape}")
        if chunk.shape[2] != self.sizes[0]:
            raise ShapeError(
                f"expected {self.sizes[0]} input channels, got {chunk.shape[2]}"
            )
        batch = chunk.shape[0]
        if state is None:
            state = self.new_stream_state(batch, engine=engine, dtype=resolved)
        else:
            if not state.compatible_with(self):
                raise ShapeError(
                    f"stream state built for {'-'.join(map(str, state.sizes))} "
                    f"does not fit {self!r}")
            if state.batch != batch:
                raise ShapeError(
                    f"stream state carries {state.batch} streams, "
                    f"got a chunk of {batch}")
        if engine == "fused":
            with _obs.timed_span("engine.run_stream",
                                 metric="engine.run_stream_ms",
                                 engine=engine, batch=batch,
                                 steps=int(chunk.shape[1])):
                outputs = run_streaming(self, chunk, state, lengths=lengths,
                                        ws=workspace, weights=weights)
            return outputs, state
        if weights is not None:
            raise ValueError(
                "weight overrides are a fused-engine feature (the step "
                "path reads layer.weight directly)")
        with _obs.timed_span("engine.run_stream",
                             metric="engine.run_stream_ms",
                             engine=engine, batch=batch,
                             steps=int(chunk.shape[1])):
            outputs = self._run_stream_step(chunk, state, lengths)
        return outputs, state

    def _run_stream_step(self, chunk: np.ndarray,
                         state: StreamState, lengths) -> np.ndarray:
        """Step-engine streaming: install the carried state, advance the
        per-step reference loop without resetting, capture it back."""
        from .engine import _resolve_lengths

        batch, steps, _ = chunk.shape
        dtype = state.dtype
        lengths, ends = _resolve_lengths(lengths, batch, steps)
        outputs = np.zeros((batch, steps, self.sizes[-1]), dtype=dtype)
        if steps == 0:
            return outputs
        # Install: ``step`` rebinds (never mutates) these arrays, so the
        # state's own buffers are safe to hand over directly.
        for layer, st in zip(self.layers, state.layers):
            if layer.neuron_kind == "adaptive":
                layer.k = st["k"]
            else:
                layer.k = np.zeros((batch, layer.n_in), dtype=dtype)
            layer.neuron.load_stream_state(st)

        for t in range(steps):
            spikes = chunk[:, t, :]
            for layer in self.layers:
                spikes, _ = layer.step(spikes)
            outputs[:, t, :] = spikes
            if ends is not None:
                rows = ends.get(t)
                if rows is not None:
                    for layer, st in zip(self.layers, state.layers):
                        if layer.neuron_kind == "adaptive":
                            st["k"][rows] = layer.k[rows]
                        for key, live in layer.neuron.stream_state().items():
                            st[key][rows] = live[rows]
        if ends is None:
            for layer, st in zip(self.layers, state.layers):
                if layer.neuron_kind == "adaptive":
                    np.copyto(st["k"], layer.k)
                for key, live in layer.neuron.stream_state().items():
                    np.copyto(st[key], live)
        if lengths is None:
            state.steps += steps
        else:
            state.steps += lengths
        return outputs

    # -- parameters ------------------------------------------------------------
    @property
    def weights(self) -> list[np.ndarray]:
        """The per-layer weight matrices (live references, not copies)."""
        return [layer.weight for layer in self.layers]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        """Replace all weights (shapes must match)."""
        if len(weights) != len(self.layers):
            raise ShapeError(
                f"expected {len(self.layers)} weight arrays, got {len(weights)}"
            )
        for layer, w in zip(self.layers, weights):
            w = np.asarray(w, dtype=np.float64)
            if w.shape != layer.weight.shape:
                raise ShapeError(
                    f"{layer.name}: weight shape {w.shape} != {layer.weight.shape}"
                )
            layer.weight = w.copy()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Named parameter arrays for serialization."""
        return {f"layers.{i}.weight": layer.weight.copy()
                for i, layer in enumerate(self.layers)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_dict`."""
        weights = []
        for i in range(len(self.layers)):
            key = f"layers.{i}.weight"
            if key not in state:
                raise ShapeError(f"missing parameter {key!r}")
            weights.append(state[key])
        self.set_weights(weights)

    def with_neuron_kind(self, neuron_kind: str) -> "SpikingNetwork":
        """A new network with identical (shared) weights but other dynamics.

        Implements the paper's Table II 'HR' swap: evaluate the trained
        weights under hard-reset neurons.
        """
        clone = SpikingNetwork(
            self.sizes, params=self.params, neuron_kind=neuron_kind, rng=0,
        )
        for ours, theirs in zip(self.layers, clone.layers):
            theirs.weight = ours.weight  # intentional sharing
        return clone

    def count_parameters(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(w.size for w in self.weights))

    def __repr__(self) -> str:
        arch = "-".join(str(s) for s in self.sizes)
        return f"SpikingNetwork({arch}, kind={self.neuron_kind!r})"
