"""Pseudo-gradients for the Heaviside spike function — the paper's eq. (14).

The spike nonlinearity ``O = U(v - Vth)`` has a Dirac-delta derivative,
which blocks back-propagation.  The paper substitutes the derivative of a
complementary error function:

.. math::

    U'(x) \\approx \\frac{e^{-x^2 / 2\\sigma^2}}{\\sqrt{2\\pi}\\,\\sigma}

with sharpness ``sigma = 1/sqrt(2*pi)`` (Table I), which makes the peak
pseudo-derivative exactly 1.  (Eq. 14 in the paper carries a sign typo —
``erfc`` is decreasing, so the smooth step must be ``erfc(-x/...)/2``; the
*magnitude* of the derivative, which is all BPTT uses, is the Gaussian
above.)

Alternative surrogates common in the literature are provided for the
ablation bench (`benchmarks/bench_ablation_surrogate.py`).
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

__all__ = [
    "SurrogateGradient",
    "ErfcSurrogate",
    "SigmoidSurrogate",
    "TriangleSurrogate",
    "RectangularSurrogate",
    "get_surrogate",
    "PAPER_SIGMA",
]

# Table I: sigma = 1/sqrt(2*pi); the pseudo-derivative then peaks at 1.
PAPER_SIGMA = 1.0 / np.sqrt(2.0 * np.pi)


class SurrogateGradient:
    """Interface: a smooth stand-in for the Heaviside derivative.

    Subclasses implement :meth:`derivative`, mapping the *centred* membrane
    value ``x = v - Vth`` to the pseudo-derivative ``dO/dv`` used in BPTT.
    The forward spike decision always remains the exact Heaviside — the
    surrogate only affects gradients.
    """

    name = "base"

    def derivative(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def smooth_step(self, x: np.ndarray) -> np.ndarray:
        """A smooth approximation of ``U(x)`` (used only for inspection)."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.derivative(x)

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v:g}" for k, v in sorted(vars(self).items()))
        return f"{type(self).__name__}({params})"


class ErfcSurrogate(SurrogateGradient):
    """The paper's surrogate: Gaussian pseudo-derivative of width ``sigma``."""

    name = "erfc"

    def __init__(self, sigma: float = PAPER_SIGMA):
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.sigma = float(sigma)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.exp(-(x * x) / (2.0 * self.sigma ** 2)) / (
            np.sqrt(2.0 * np.pi) * self.sigma
        )

    def smooth_step(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return 0.5 * erfc(-x / (np.sqrt(2.0) * self.sigma))


class SigmoidSurrogate(SurrogateGradient):
    """SuperSpike-style fast sigmoid: ``1 / (1 + beta*|x|)^2``."""

    name = "sigmoid"

    def __init__(self, beta: float = 5.0):
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return 1.0 / (1.0 + self.beta * np.abs(x)) ** 2

    def smooth_step(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        scaled = self.beta * x
        return 0.5 * (1.0 + scaled / (1.0 + np.abs(scaled)))


class TriangleSurrogate(SurrogateGradient):
    """Piecewise-linear hat: ``max(0, 1 - |x|/width) / width``."""

    name = "triangle"

    def __init__(self, width: float = 1.0):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = float(width)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.maximum(0.0, 1.0 - np.abs(x) / self.width) / self.width

    def smooth_step(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        clipped = np.clip(x / self.width, -1.0, 1.0)
        return 0.5 + clipped - np.sign(clipped) * clipped ** 2 / 2.0


class RectangularSurrogate(SurrogateGradient):
    """Boxcar: ``1/(2*half_width)`` inside ``|x| <= half_width`` else 0."""

    name = "rectangular"

    def __init__(self, half_width: float = 0.5):
        if half_width <= 0:
            raise ValueError(f"half_width must be positive, got {half_width}")
        self.half_width = float(half_width)

    def derivative(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        inside = np.abs(x) <= self.half_width
        return inside / (2.0 * self.half_width)

    def smooth_step(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.clip(0.5 + x / (2.0 * self.half_width), 0.0, 1.0)


_REGISTRY = {
    "erfc": ErfcSurrogate,
    "sigmoid": SigmoidSurrogate,
    "triangle": TriangleSurrogate,
    "rectangular": RectangularSurrogate,
}


def get_surrogate(name: str, **kwargs) -> SurrogateGradient:
    """Look up a surrogate by name (``erfc``/``sigmoid``/``triangle``/``rectangular``)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown surrogate {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)
