"""Paper-style plain-text table rendering.

The benchmark harness reproduces each table of the paper as printed rows;
this module renders those rows as aligned monospace tables so benchmark
output can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["Table", "format_table"]


class Table:
    """An incrementally-built text table.

    Example
    -------
    >>> t = Table(["Model", "Accuracy"], title="Classification Results")
    >>> t.add_row(["This work", "98.40"])
    >>> t.add_row(["This work (HR)", "95.31"])
    >>> print(t.render())  # doctest: +ELLIPSIS
    Classification Results
    ...
    """

    def __init__(self, columns: Sequence[str], title: str = ""):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: list[list[str]] = []
        self._separators: set[int] = set()

    def add_row(self, row: Sequence[object]) -> None:
        """Append a row; values are stringified, floats with 4 sig. digits."""
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def add_separator(self) -> None:
        """Insert a horizontal rule before the next row to be added."""
        self._separators.add(len(self.rows))

    def render(self) -> str:
        """Render the table as a string (no trailing newline)."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        rule = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.columns))
        lines.append(rule)
        for index, row in enumerate(self.rows):
            if index in self._separators and index > 0:
                lines.append(rule)
            lines.append(fmt_row(row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_table(columns: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """One-shot helper: build and render a :class:`Table`."""
    table = Table(columns, title=title)
    for row in rows:
        table.add_row(row)
    return table.render()
