"""Serving workloads: what the open-loop client streams actually carry.

Until now only the synthetic Bernoulli "SHD-shaped" chunks flowed through
the server.  This module gives the load generator (and the scenario
harness) the repo's *real* input modalities as first-class workloads:

* ``synthetic`` — i.i.d. Bernoulli spikes at a configured density (the
  legacy ``open_loop`` payload, kept for comparability);
* ``speech``    — spoken-digit waveforms (:mod:`repro.data.speech`)
  through the cochlea front-end (700 channels, the SHD shape);
* ``dvs``       — saccade-driven DVS recordings of stroke glyphs
  (:mod:`repro.data.dvs`; 34x34x2 = 2312 channels, the N-MNIST shape);
* ``glyph``     — Poisson rate-coded 28x28 glyph images
  (:mod:`repro.data.glyphs` + :func:`repro.data.encoders.poisson_encode`,
  784 channels);
* mixes         — ``"speech+dvs"`` style weighted blends of same-width
  workloads (:class:`WorkloadMix`).

A workload owns a small pool of pre-rendered samples (sensor simulation
is expensive; load generation must not be) built deterministically from
its constructor seed, and draws chunks from the pool with the *caller's*
rng — so a scenario run is exactly reproducible for a given seed while
successive chunks still vary.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ExperimentError, ShapeError
from ..common.rng import RandomState, as_random_state

__all__ = [
    "Workload",
    "SyntheticWorkload",
    "SpeechWorkload",
    "DVSWorkload",
    "GlyphWorkload",
    "WorkloadMix",
    "WORKLOAD_CHANNELS",
    "make_workload",
]

#: Native channel width of each named workload.
WORKLOAD_CHANNELS = {
    "synthetic": 700,
    "speech": 700,
    "dvs": 2312,   # 34 x 34 x 2 event polarities
    "glyph": 784,  # 28 x 28 pixels
}


class Workload:
    """Base class: a named source of ``(steps, channels)`` spike chunks."""

    name: str = "workload"

    def __init__(self, channels: int):
        if channels < 1:
            raise ExperimentError(f"workload needs >= 1 channel, "
                                  f"got {channels}")
        self.channels = int(channels)

    def sample(self, steps: int,
               rng: RandomState | int | None = None) -> np.ndarray:
        """One ``(steps, channels)`` float64 spike chunk."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, " \
               f"channels={self.channels})"


class SyntheticWorkload(Workload):
    """I.i.d. Bernoulli spikes — the legacy ``open_loop`` payload."""

    name = "synthetic"

    def __init__(self, channels: int = WORKLOAD_CHANNELS["synthetic"],
                 density: float = 0.03):
        super().__init__(channels)
        if not 0.0 < density <= 1.0:
            raise ExperimentError(f"spike density must be in (0, 1], "
                                  f"got {density}")
        self.density = float(density)

    def sample(self, steps, rng=None):
        rng = as_random_state(rng)
        return (rng.random((steps, self.channels))
                < self.density).astype(np.float64)


class _PooledWorkload(Workload):
    """Shared machinery: a lazily built pool of pre-rendered rasters.

    Subclasses implement :meth:`_render` (one ``(pool_steps, channels)``
    raster from a pool-local rng).  :meth:`sample` picks a pool entry and
    a random time window with the caller's rng — cheap per chunk, fully
    deterministic per (constructor seed, caller rng).
    """

    def __init__(self, channels: int, seed: int = 0, pool_size: int = 4,
                 pool_steps: int = 100):
        super().__init__(channels)
        if pool_size < 1:
            raise ExperimentError(f"pool_size must be >= 1, got {pool_size}")
        self.seed = int(seed)
        self.pool_size = int(pool_size)
        self.pool_steps = int(pool_steps)
        self._pool: list[np.ndarray] | None = None

    def _render(self, index: int, rng: RandomState) -> np.ndarray:
        raise NotImplementedError

    @property
    def pool(self) -> list[np.ndarray]:
        if self._pool is None:
            base = RandomState(self.seed)
            self._pool = [
                np.ascontiguousarray(
                    self._render(i, base.child(f"{self.name}-{i}")),
                    dtype=np.float64)
                for i in range(self.pool_size)
            ]
            for raster in self._pool:
                if raster.shape != (self.pool_steps, self.channels):
                    raise ShapeError(
                        f"{self.name} pool raster has shape {raster.shape}, "
                        f"expected {(self.pool_steps, self.channels)}")
        return self._pool

    def sample(self, steps, rng=None):
        rng = as_random_state(rng)
        raster = self.pool[int(rng.integers(self.pool_size))]
        if steps <= self.pool_steps:
            offset = int(rng.integers(self.pool_steps - steps + 1))
            return raster[offset:offset + steps].copy()
        reps = -(-steps // self.pool_steps)          # ceil division
        return np.tile(raster, (reps, 1))[:steps].copy()


class SpeechWorkload(_PooledWorkload):
    """Spoken digits through the cochlea — the SHD-shaped 700 channels."""

    name = "speech"

    def __init__(self, channels: int = WORKLOAD_CHANNELS["speech"],
                 seed: int = 0, pool_size: int = 4, pool_steps: int = 100,
                 languages: tuple = ("english", "german")):
        super().__init__(channels, seed=seed, pool_size=pool_size,
                         pool_steps=pool_steps)
        self.languages = tuple(languages)

    def _render(self, index, rng):
        from ..data.cochlea import Cochlea, CochleaConfig
        from ..data.speech import synthesize_digit

        language = self.languages[index % len(self.languages)]
        waveform = synthesize_digit(language, index % 10,
                                    rng=rng.child("speaker"))
        cochlea = Cochlea(CochleaConfig(n_channels=self.channels))
        return cochlea.encode(waveform, self.pool_steps,
                              rng=rng.child("cochlea"))


class DVSWorkload(_PooledWorkload):
    """Saccade-driven DVS recordings of glyphs — N-MNIST-shaped events."""

    name = "dvs"

    def __init__(self, channels: int = WORKLOAD_CHANNELS["dvs"],
                 seed: int = 0, pool_size: int = 4, pool_steps: int = 100,
                 sensor_size: int = 34):
        if channels != 2 * sensor_size * sensor_size:
            raise ExperimentError(
                f"dvs workload channels must be 2*{sensor_size}^2 = "
                f"{2 * sensor_size * sensor_size}, got {channels}")
        super().__init__(channels, seed=seed, pool_size=pool_size,
                         pool_steps=pool_steps)
        self.sensor_size = int(sensor_size)

    def _render(self, index, rng):
        from ..data.dvs import record_moving_image
        from ..data.glyphs import render_digit

        image = render_digit(index % 10, size=self.sensor_size - 6,
                             rng=rng.child("glyph"))
        events = record_moving_image(image, self.pool_steps,
                                     sensor_size=self.sensor_size,
                                     rng=rng.child("camera"))
        return events.reshape(self.pool_steps, -1)


class GlyphWorkload(Workload):
    """Poisson rate-coded glyph images (28x28 = 784 channels).

    The image pool is pre-rendered; the rate coding itself is drawn fresh
    per chunk from the caller's rng (rate coding *is* the stochastic
    part, unlike the event-stream workloads above).
    """

    name = "glyph"

    def __init__(self, channels: int = WORKLOAD_CHANNELS["glyph"],
                 seed: int = 0, pool_size: int = 4, max_rate: float = 0.3,
                 size: int = 28):
        if channels != size * size:
            raise ExperimentError(
                f"glyph workload channels must be {size}^2 = {size * size}, "
                f"got {channels}")
        super().__init__(channels)
        self.seed = int(seed)
        self.pool_size = int(pool_size)
        self.max_rate = float(max_rate)
        self.size = int(size)
        self._pool: list[np.ndarray] | None = None

    @property
    def pool(self) -> list[np.ndarray]:
        if self._pool is None:
            from ..data.glyphs import render_digit

            base = RandomState(self.seed)
            self._pool = [
                render_digit(i % 10, size=self.size,
                             rng=base.child(f"glyph-{i}")).ravel()
                for i in range(self.pool_size)
            ]
        return self._pool

    def sample(self, steps, rng=None):
        from ..data.encoders import poisson_encode

        rng = as_random_state(rng)
        image = self.pool[int(rng.integers(self.pool_size))]
        return poisson_encode(image, steps, max_rate=self.max_rate,
                              rng=rng).astype(np.float64)


class WorkloadMix(Workload):
    """Weighted blend of same-width workloads (``"speech+synthetic"``)."""

    def __init__(self, workloads, weights=None):
        workloads = list(workloads)
        if len(workloads) < 2:
            raise ExperimentError("a workload mix needs >= 2 components")
        widths = {w.channels for w in workloads}
        if len(widths) > 1:
            raise ExperimentError(
                f"mixed workloads must share a channel width, got "
                f"{sorted(widths)} — a server has one input layer")
        super().__init__(workloads[0].channels)
        self.workloads = workloads
        weights = ([1.0] * len(workloads) if weights is None
                   else [float(w) for w in weights])
        if len(weights) != len(workloads) or min(weights) <= 0:
            raise ExperimentError("mix weights must be positive, one per "
                                  "component workload")
        total = sum(weights)
        self.weights = [w / total for w in weights]
        self.name = "+".join(w.name for w in workloads)

    def sample(self, steps, rng=None):
        rng = as_random_state(rng)
        draw = float(rng.random())
        cumulative = 0.0
        for workload, weight in zip(self.workloads, self.weights):
            cumulative += weight
            if draw < cumulative:
                return workload.sample(steps, rng)
        return self.workloads[-1].sample(steps, rng)


_FACTORIES = {
    "synthetic": SyntheticWorkload,
    "speech": SpeechWorkload,
    "dvs": DVSWorkload,
    "glyph": GlyphWorkload,
}


def make_workload(spec, channels: int | None = None,
                  seed: int = 0,
                  density: float | None = None) -> Workload:
    """Resolve a workload name (or ``"a+b"`` mix) to an instance.

    ``channels`` overrides the width where the workload supports it
    (synthetic only — the sensor workloads have fixed native widths).
    ``density`` overrides the Bernoulli spike density of synthetic
    components (including inside mixes); sensor workloads ignore it.
    Passing an existing :class:`Workload` returns it unchanged.
    """
    if isinstance(spec, Workload):
        return spec
    if not isinstance(spec, str):
        raise ExperimentError(f"workload spec must be a name or Workload, "
                              f"got {type(spec).__name__}")
    if "+" in spec:
        parts = [p.strip() for p in spec.split("+")]
        if any(not p for p in parts):
            raise ExperimentError(f"malformed workload mix {spec!r}")
        if channels is None:
            # Synthetic components adapt to the fixed-width sensor
            # workloads they are mixed with.
            fixed = [WORKLOAD_CHANNELS[p] for p in parts
                     if p in WORKLOAD_CHANNELS and p != "synthetic"]
            channels = fixed[0] if fixed else None
        return WorkloadMix([make_workload(p, channels=channels, seed=seed,
                                          density=density)
                            for p in parts])
    if spec not in _FACTORIES:
        raise ExperimentError(
            f"unknown workload {spec!r}; known: "
            f"{sorted(_FACTORIES)} or 'a+b' mixes")
    if spec == "synthetic":
        width = WORKLOAD_CHANNELS["synthetic"] if channels is None \
            else channels
        if density is None:
            return SyntheticWorkload(channels=width)
        return SyntheticWorkload(channels=width, density=density)
    if channels is not None and channels != WORKLOAD_CHANNELS[spec]:
        raise ExperimentError(
            f"workload {spec!r} has a fixed native width of "
            f"{WORKLOAD_CHANNELS[spec]} channels, cannot serve {channels}")
    return _FACTORIES[spec](seed=seed)
