"""Unit tests for the temporal-information controls."""

import numpy as np
import pytest

from repro.analysis import jitter_time, shuffle_time
from repro.common.errors import ShapeError


class TestShuffleTime:
    def test_counts_preserved_exactly(self):
        rng = np.random.default_rng(0)
        x = (rng.random((5, 30, 8)) < 0.2).astype(np.float32)
        shuffled = shuffle_time(x, rng=1)
        np.testing.assert_array_equal(x.sum(axis=1), shuffled.sum(axis=1))

    def test_order_destroyed(self):
        x = np.zeros((1, 20, 2))
        x[0, :10, 0] = 1.0           # channel 0 early
        x[0, 10:, 1] = 1.0           # channel 1 late
        shuffled = shuffle_time(x, rng=2)
        assert not np.array_equal(x, shuffled)

    def test_within_step_coincidences_survive(self):
        """The same permutation applies to all channels, so spikes that
        were simultaneous stay simultaneous."""
        x = np.zeros((1, 10, 3))
        x[0, 4, :] = 1.0             # one fully synchronous step
        shuffled = shuffle_time(x, rng=3)
        sums = shuffled[0].sum(axis=1)
        assert sums.max() == 3.0

    def test_independent_permutation_per_sample(self):
        x = np.zeros((2, 30, 1))
        x[:, 5, 0] = 1.0
        shuffled = shuffle_time(x, rng=4)
        t0 = np.flatnonzero(shuffled[0, :, 0])[0]
        t1 = np.flatnonzero(shuffled[1, :, 0])[0]
        assert (t0, t1) != (5, 5)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            shuffle_time(np.zeros((10, 3)))


class TestJitterTime:
    def test_zero_jitter_is_copy(self):
        x = (np.random.default_rng(0).random((2, 15, 4)) < 0.3).astype(float)
        out = jitter_time(x, 0)
        np.testing.assert_array_equal(out, x)
        assert out is not x

    def test_total_spikes_preserved(self):
        rng = np.random.default_rng(1)
        x = (rng.random((3, 40, 6)) < 0.2).astype(float)
        out = jitter_time(x, 3, rng=2)
        assert out.sum() == x.sum()

    def test_displacement_bounded(self):
        x = np.zeros((1, 50, 1))
        x[0, 25, 0] = 1.0
        out = jitter_time(x, 4, rng=3)
        t = np.flatnonzero(out[0, :, 0])[0]
        assert 21 <= t <= 29

    def test_clipping_at_boundaries(self):
        x = np.zeros((1, 10, 1))
        x[0, 0, 0] = 1.0
        out = jitter_time(x, 9, rng=4)
        assert out.sum() == 1.0        # never lost off the edge

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            jitter_time(np.zeros((1, 5, 1)), -1)
