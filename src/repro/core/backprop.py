"""Backpropagation through time for the filter-based spiking network.

This module implements the paper's training algorithm (Section III).  The
network equations (6)-(11) are unrolled in time (Fig. 2) and differentiated
with the Heaviside replaced by the erfc pseudo-gradient (eq. 14).

Two gradient modes are provided:

* ``exact`` (default) — the full adjoint recursion.  The paper's eq. (13)
  compresses the derivation; writing out every dependency of the unrolled
  graph adds two filter-state adjoints:

  - synapse-filter adjoint ``a_k[t] = W^T dE/dv[t] + alpha * a_k[t+1]``
    (the error reaching filter state ``k[t]`` also flows *through the
    filter's own recursion* into ``k[t+1]``),
  - reset-filter adjoint ``a_h[t] = -theta * dE/dv[t] + beta * a_h[t+1]``.

  The spike adjoint is then
  ``dE/dO_l[t] = (loss term) + a_k^{l+1}[t] + a_h^l[t+1]``.

* ``truncated`` — the two-term form as literally printed in eq. (13):
  the cross-layer term ``W^T(eps*delta)`` without the alpha-carry, and the
  one-step reset term ``-theta * delta[t+1]*eps[t+1]`` without the
  beta-carry.  This is cheaper but biased; the ablation bench
  (``bench_ablation_gradient``) compares the two.

Correctness of ``exact`` is verified against (a) central finite differences
and (b) the independent :mod:`repro.autograd` implementation, in
``tests/unit/test_backprop.py`` and ``tests/property/test_gradients.py``.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError
from .network import RunRecord, SpikingNetwork

__all__ = ["backward", "GradientResult"]


class GradientResult:
    """Output of :func:`backward`.

    Attributes
    ----------
    weight_grads:
        Per-layer ``dE/dW`` arrays matching ``network.weights`` shapes.
    input_grad:
        ``dE/d(input spikes)``, shape (batch, T, n_input).  Useful for
        sensitivity analysis and tests.  The fused engine materialises it
        lazily on first access — training only consumes ``weight_grads``,
        and the first layer's input gradient costs a full dense matmul.
    """

    def __init__(self, weight_grads: list[np.ndarray], input_grad: np.ndarray,
                 input_grad_fn=None):
        self.weight_grads = weight_grads
        self._input_grad = input_grad
        self._input_grad_fn = input_grad_fn

    @property
    def input_grad(self) -> np.ndarray:
        if self._input_grad is None and self._input_grad_fn is not None:
            self._input_grad = self._input_grad_fn()
            self._input_grad_fn = None
        return self._input_grad


def backward(network: SpikingNetwork, record: RunRecord,
             grad_outputs: np.ndarray, mode: str = "exact",
             engine: str = "fused",
             precision: str | None = None,
             workspace=None,
             need_input_grad: bool = True,
             weights=None) -> GradientResult:
    """BPTT through a recorded forward run.

    Parameters
    ----------
    network:
        The network that produced ``record`` (weights must be unchanged
        since the forward pass).
    record:
        A :class:`~repro.core.network.RunRecord` from
        ``network.run(..., record=True)`` (either engine's record works).
    grad_outputs:
        ``dE/dO_L``, the loss gradient with respect to the last layer's
        output spikes, shape (batch, T, n_out).
    mode:
        ``"exact"`` or ``"truncated"`` (see module docstring).
    engine:
        ``"fused"`` (default) hoists the matmuls out of the time loop
        (:func:`repro.core.engine.fused_backward`); ``"reference"`` runs
        the per-step adjoint loops below, always in float64.
    precision:
        ``"float32"`` or ``"float64"`` for the fused engine (defaults to
        the record's dtype).  Ignored by the reference engine.
    workspace:
        Optional :class:`~repro.runtime.workspace.Workspace` the fused
        engine recycles its adjoint buffers through.  Ignored by the
        reference engine.
    need_input_grad:
        ``False`` lets the fused engine skip building the deferred
        ``input_grad`` closure entirely (training only reads
        ``weight_grads``); ``input_grad`` is then ``None``.  The
        reference engine ignores this and always materialises it.
    weights:
        Optional per-layer weight overrides — the same list the forward
        pass ran with (``network.run(..., weights=...)``), so the adjoint
        matmuls traverse the weights that actually produced ``record``.
        The returned ``weight_grads`` are gradients with respect to the
        override values; hardware-aware training's straight-through
        estimator applies them to the master weights unchanged.  Fused
        engine only.

    Returns
    -------
    GradientResult
        Weight gradients (summed over the batch — divide by batch size in
        the loss if a mean is wanted) and the input-spike gradient.
    """
    if mode not in ("exact", "truncated"):
        raise ValueError(f"mode must be 'exact' or 'truncated', got {mode!r}")
    if engine not in ("fused", "reference"):
        raise ValueError(
            f"engine must be 'fused' or 'reference', got {engine!r}"
        )
    if engine == "fused":
        from .engine import fused_backward
        return fused_backward(network, record, grad_outputs, mode=mode,
                              precision=precision, ws=workspace,
                              need_input_grad=need_input_grad,
                              weights=weights)
    if weights is not None:
        raise ValueError(
            "weight overrides are a fused-engine feature (the reference "
            "adjoints read layer.weight directly)")
    outputs = record.outputs
    if grad_outputs.shape != outputs.shape:
        raise ShapeError(
            f"grad_outputs shape {grad_outputs.shape} != outputs {outputs.shape}"
        )

    grad_spikes = np.asarray(grad_outputs, dtype=np.float64)
    weight_grads: list[np.ndarray] = [None] * len(network.layers)

    for index in range(len(network.layers) - 1, -1, -1):
        layer = network.layers[index]
        layer_record = record.layers[index]
        if layer.neuron_kind == "adaptive":
            w_grad, grad_spikes = _backward_adaptive(
                layer, layer_record, grad_spikes, mode
            )
        else:
            w_grad, grad_spikes = _backward_hard_reset(
                layer, layer_record, record.layer_input(index), grad_spikes
            )
        weight_grads[index] = w_grad

    return GradientResult(weight_grads=weight_grads, input_grad=grad_spikes)


def _backward_adaptive(layer, layer_record, grad_spikes: np.ndarray,
                       mode: str) -> tuple[np.ndarray, np.ndarray]:
    """Adjoint recursion for one adaptive-threshold layer.

    Forward equations (per step, batch-vectorised)::

        k[t] = alpha*k[t-1] + x[t]          # synapse filter, eq. 9
        g[t] = k[t] @ W.T                   # crossbar, eq. 7
        h[t] = beta*h[t-1] + O[t-1]         # reset filter, eq. 8
        v[t] = g[t] - theta*h[t]            # eq. 6
        O[t] = U(v[t] - v_th)               # eq. 10/11
    """
    weight = layer.weight
    params = layer.params
    alpha = layer.alpha
    beta = layer.neuron.beta_r
    theta = params.theta
    exact = mode == "exact"

    k = layer_record.k                # (B, T, n_in)
    v = layer_record.v                # (B, T, n_out)
    batch, steps, n_out = v.shape
    n_in = k.shape[2]

    eps = layer.surrogate.derivative(v - params.v_th)   # (B, T, n_out)

    w_grad = np.zeros_like(weight)
    grad_inputs = np.zeros((batch, steps, n_in), dtype=np.float64)

    a_h = np.zeros((batch, n_out), dtype=np.float64)    # dE/dh[t+1]
    a_k = np.zeros((batch, n_in), dtype=np.float64)     # dE/dk[t+1]
    delta_v_next = np.zeros((batch, n_out), dtype=np.float64)

    for t in range(steps - 1, -1, -1):
        if exact:
            # h[t+1] = beta*h[t] + O[t]  =>  dE/dO[t] += dE/dh[t+1]
            reset_term = a_h
        else:
            # Paper eq. 13 second term: -theta * delta[t+1] * eps[t+1].
            reset_term = -theta * delta_v_next
        delta_o = grad_spikes[:, t, :] + reset_term
        delta_v = delta_o * eps[:, t, :]

        # Weight gradient: g[t] = k[t] @ W.T  =>  dE/dW += delta_v^T k[t].
        w_grad += delta_v.T @ k[:, t, :]

        # Synapse-filter adjoint: dE/dk[t] = W^T delta_v + alpha*dE/dk[t+1].
        a_k_t = delta_v @ weight
        if exact:
            a_k_t = a_k_t + alpha * a_k
        # k[t] = alpha*k[t-1] + x[t]  =>  dE/dx[t] = dE/dk[t].
        grad_inputs[:, t, :] = a_k_t
        a_k = a_k_t

        if exact:
            # Reset-filter adjoint: dE/dh[t] = -theta*delta_v + beta*dE/dh[t+1].
            a_h = -theta * delta_v + beta * a_h
        delta_v_next = delta_v

    return w_grad, grad_inputs


def _backward_hard_reset(layer, layer_record, layer_inputs: np.ndarray,
                         grad_spikes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Adjoint recursion for one hard-reset layer (reset gate detached).

    Forward equations::

        v_pre[t] = alpha*v_post[t-1] + x[t] @ W.T
        O[t]     = U(v_pre[t] - v_th)
        v_post[t] = v_pre[t] * (1 - O[t])     # hard reset

    The reset gate ``(1 - O[t])`` is treated as a constant during
    backpropagation (standard practice for hard-reset SNNs — the gate's own
    derivative is another Dirac delta).
    """
    weight = layer.weight
    params = layer.params
    alpha = layer.neuron.alpha
    input_gain = getattr(layer.neuron, "input_gain", 1.0)

    v_pre = layer_record.v            # (B, T, n_out)
    spikes = layer_record.spikes
    batch, steps, n_out = v_pre.shape
    n_in = layer_inputs.shape[2]

    eps = layer.surrogate.derivative(v_pre - params.v_th)

    w_grad = np.zeros_like(weight)
    grad_inputs = np.zeros((batch, steps, n_in), dtype=np.float64)
    delta_v = np.zeros((batch, n_out), dtype=np.float64)  # dE/dv_pre[t+1]

    for t in range(steps - 1, -1, -1):
        carry = alpha * (1.0 - spikes[:, t, :]) * delta_v
        delta_v = grad_spikes[:, t, :] * eps[:, t, :] + carry
        w_grad += input_gain * (delta_v.T @ layer_inputs[:, t, :])
        grad_inputs[:, t, :] = input_gain * (delta_v @ weight)

    return w_grad, grad_inputs
