"""Power, energy and area estimation for the neurosynaptic circuit.

Reproduces the methodology of the paper's Section V-C: an input sample
(300 steps of 10 ns, 14 input spikes) is run through the circuit transient,
instantaneous power is evaluated at every solver step, and the minimum /
maximum / average power plus total energy are reported, alongside a
footprint-sum area estimate.

The paper's numbers come from Cadence with a TSMC 65 nm PDK we do not
have; this model computes the same quantities from the behavioral traces:

* resistive dissipation ``V^2/R`` of every resistor, from the node traces;
* capacitor charging current drawn through the amplifier output stages
  (``|I| * V_DD`` supply draw);
* static (quiescent) bias power of the analog blocks — class-A op-amp
  stages burn current regardless of activity, which is why the paper's
  *minimum* (1.067 mW) is already within 4 % of its *average* (1.11 mW).

The static constants are calibrated so the idle floor lands in the
paper's regime (documented per block below); the *dynamic* structure —
when power peaks, how energy scales with spike count — follows entirely
from the simulated waveforms.  Area sums per-device footprints at 65 nm
densities; the two 10.14 pF MIM capacitors dominate, which is consistent
with the paper's total of 0.0125 mm^2 for a single neuron + synapse.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.config import BaseConfig
from ..common.units import si_format
from .neuron_circuit import NeuronCircuitConfig, NeuronCircuitResult

__all__ = ["PowerModelConfig", "AreaModelConfig", "PowerReport",
           "estimate_power", "estimate_area", "PAPER_POWER_REPORT"]

#: The paper's Section V-C reference values (for report tables/tests).
PAPER_POWER_REPORT = {
    "min_power_w": 1.067e-3,
    "max_power_w": 1.965e-3,
    "avg_power_w": 1.11e-3,
    "energy_j": 3.329e-9,
    "area_mm2": 0.0125,
}


@dataclasses.dataclass(frozen=True)
class PowerModelConfig(BaseConfig):
    """Static power constants for the analog blocks (65 nm class-A stages).

    Calibrated so the quiescent floor matches the regime of the paper's
    minimum power (about 1.07 mW for one neuron + synapse): the comparator
    needs a strong second stage to drive the feedback RC (paper Section
    IV), so it dominates; the bias amp drives only the comparator input.
    """

    comparator_static_w: float = 5.5e-4
    bias_amp_static_w: float = 4.6e-4
    inverter_static_w: float = 2.5e-5
    level_shifter_static_w: float = 2.0e-5

    def validate(self) -> None:
        for field in ("comparator_static_w", "bias_amp_static_w",
                      "inverter_static_w", "level_shifter_static_w"):
            self.require_non_negative(field)

    @property
    def total_static_w(self) -> float:
        return (self.comparator_static_w + self.bias_amp_static_w
                + 2 * self.inverter_static_w + self.level_shifter_static_w)


@dataclasses.dataclass(frozen=True)
class AreaModelConfig(BaseConfig):
    """65 nm footprint densities / block areas.

    Attributes
    ----------
    mim_cap_density_f_per_um2:
        MIM capacitor density (2 fF/um^2 is typical at 65 nm).
    poly_res_ohm_per_um2:
        Effective resistance per unit area for poly resistors.
    opamp_area_um2:
        Footprint of one two-stage op-amp.
    inverter_area_um2:
        Footprint of one inverter.
    rram_cell_area_um2:
        One memristor cell (4F^2-class at 65 nm plus access overhead).
    """

    mim_cap_density_f_per_um2: float = 2e-15
    poly_res_ohm_per_um2: float = 300.0
    opamp_area_um2: float = 900.0
    inverter_area_um2: float = 2.0
    rram_cell_area_um2: float = 0.1

    def validate(self) -> None:
        for field in ("mim_cap_density_f_per_um2", "poly_res_ohm_per_um2",
                      "opamp_area_um2", "inverter_area_um2",
                      "rram_cell_area_um2"):
            self.require_positive(field)


@dataclasses.dataclass
class PowerReport:
    """Min/max/avg power, energy and the per-step power trace."""

    min_power_w: float
    max_power_w: float
    avg_power_w: float
    energy_j: float
    duration_s: float
    power_trace_w: np.ndarray

    def table_rows(self) -> list[tuple[str, str, str]]:
        """(quantity, paper, measured) rows for the bench harness."""
        paper = PAPER_POWER_REPORT
        return [
            ("min power", si_format(paper["min_power_w"], "W"),
             si_format(self.min_power_w, "W")),
            ("max power", si_format(paper["max_power_w"], "W"),
             si_format(self.max_power_w, "W")),
            ("avg power", si_format(paper["avg_power_w"], "W"),
             si_format(self.avg_power_w, "W")),
            ("energy", si_format(paper["energy_j"], "J"),
             si_format(self.energy_j, "J")),
        ]


def estimate_power(result: NeuronCircuitResult,
                   model: PowerModelConfig | None = None) -> PowerReport:
    """Integrate instantaneous power over a neuron-circuit transient.

    Parameters
    ----------
    result:
        Traces from :func:`repro.hardware.neuron_circuit.simulate_neuron`.
    model:
        Static power constants.
    """
    model = model or PowerModelConfig()
    cfg: NeuronCircuitConfig = result.config
    time = result.time
    if len(time) < 2:
        raise ValueError("transient too short for power integration")
    dt = float(time[1] - time[0])

    v_in = result["input"]
    v_k = result["k"]
    v_g = result["g"]
    v_cmp = result["comparator"]
    v_fb = result["feedback"]
    v_thr = result["threshold"]
    v_out = result["spike"]

    # Resistive dissipation from the recorded node voltages.
    p_resistive = (
        (v_in - v_k) ** 2 / cfg.r_filter        # synapse filter R
        + (v_k - v_g) ** 2 / cfg.r_memristor    # RRAM cell
        + v_g ** 2 / cfg.r_sense                # sense resistor
        + (v_cmp - v_fb) ** 2 / cfg.r_filter    # feedback filter R
    )
    # Amplifier output stages: supply draw ~ |I_out| * VDD.
    i_cmp = np.abs(v_cmp - v_fb) / cfg.r_filter
    i_bias = np.abs(v_thr) / 1e6                # light threshold load
    i_out = np.abs(np.gradient(v_out, dt)) * cfg.c_filter * 0.05
    p_dynamic = (i_cmp + i_bias + i_out) * cfg.v_dd

    power = model.total_static_w + p_resistive + p_dynamic
    energy = float(np.sum(power) * dt)
    return PowerReport(
        min_power_w=float(power.min()),
        max_power_w=float(power.max()),
        avg_power_w=float(power.mean()),
        energy_j=energy,
        duration_s=float(time[-1] - time[0] + dt),
        power_trace_w=power,
    )


def estimate_area(circuit: NeuronCircuitConfig | None = None,
                  model: AreaModelConfig | None = None) -> dict:
    """Footprint-sum area estimate for one neuron + synapse circuit.

    Returns a breakdown dict (um^2 per block) plus ``total_mm2``.
    """
    circuit = circuit or NeuronCircuitConfig()
    model = model or AreaModelConfig()
    cap_area = circuit.c_filter / model.mim_cap_density_f_per_um2
    res_area_filter = circuit.r_filter / model.poly_res_ohm_per_um2
    res_area_sense = circuit.r_sense / model.poly_res_ohm_per_um2
    breakdown = {
        "synapse_cap_um2": cap_area,
        "feedback_cap_um2": cap_area,
        "filter_resistors_um2": 2 * res_area_filter,
        "sense_resistor_um2": res_area_sense,
        "comparator_um2": model.opamp_area_um2,
        "bias_amp_um2": model.opamp_area_um2,
        "inverters_um2": 2 * model.inverter_area_um2,
        "rram_cell_um2": model.rram_cell_area_um2,
    }
    total_um2 = float(sum(breakdown.values()))
    breakdown["total_um2"] = total_um2
    breakdown["total_mm2"] = total_um2 * 1e-6  # 1 mm^2 = 1e6 um^2
    return breakdown
