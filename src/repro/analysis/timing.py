"""Temporal-information analysis: how much of a dataset's class
information lives in spike *timing* rather than spike *counts*?

The paper's Table II argument rests on a property of the datasets: SHD is
timing-rich (so destroying temporal state collapses accuracy) while
N-MNIST is mostly spatial (Iyer et al., the paper's [6]).  These controls
make that property measurable on our synthetic substitutes:

* :func:`shuffle_time` — permute the time axis identically for all
  channels of each sample.  Spike counts per channel are exactly
  preserved; all temporal structure is destroyed.  The accuracy gap
  between a model trained on original vs time-shuffled data *is* the
  timing information (operationally defined).

* :func:`jitter_time` — displace every spike by bounded random jitter,
  degrading timing smoothly instead of destroying it.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError
from ..common.rng import RandomState, as_random_state

__all__ = ["shuffle_time", "jitter_time"]


def shuffle_time(inputs: np.ndarray,
                 rng: RandomState | int | None = None) -> np.ndarray:
    """Destroy temporal structure, preserve per-channel spike counts.

    Each sample's time steps are permuted by an independent random
    permutation applied to *all channels at once*, so within-step spatial
    coincidences survive but all ordering/timing is lost.

    Parameters
    ----------
    inputs:
        Spike tensor (n, T, channels).
    """
    inputs = np.asarray(inputs)
    if inputs.ndim != 3:
        raise ShapeError(f"expected (n, T, channels), got {inputs.shape}")
    generator = as_random_state(rng)
    out = np.empty_like(inputs)
    for i in range(inputs.shape[0]):
        order = generator.permutation(inputs.shape[1])
        out[i] = inputs[i][order]
    return out


def jitter_time(inputs: np.ndarray, max_jitter: int,
                rng: RandomState | int | None = None) -> np.ndarray:
    """Displace every spike by a uniform jitter in [-max_jitter, +max_jitter].

    Spikes pushed outside [0, T) are clipped to the boundary step.  With
    ``max_jitter = 0`` the input is returned unchanged (copy).
    """
    inputs = np.asarray(inputs)
    if inputs.ndim != 3:
        raise ShapeError(f"expected (n, T, channels), got {inputs.shape}")
    if max_jitter < 0:
        raise ValueError(f"max_jitter must be >= 0, got {max_jitter}")
    if max_jitter == 0:
        return inputs.copy()
    generator = as_random_state(rng)
    n, steps, channels = inputs.shape
    out = np.zeros_like(inputs)
    sample_idx, time_idx, channel_idx = np.nonzero(inputs > 0)
    counts = inputs[sample_idx, time_idx, channel_idx]
    offsets = generator.integers(-max_jitter, max_jitter + 1,
                                 size=time_idx.shape)
    new_times = np.clip(time_idx + offsets, 0, steps - 1)
    np.add.at(out, (sample_idx, new_times, channel_idx), counts)
    return out
