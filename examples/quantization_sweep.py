"""Weight quantization and RRAM process variation (paper Fig. 8).

Trains a small N-MNIST classifier, programs its weights into differential
RRAM crossbars at 4-bit and 5-bit precision, sweeps the device process
variation from 0 to 0.5, and prints the accuracy curves the paper plots
in Fig. 8 — including the paper's highlighted point (4-bit, 0.2 deviation).

Run:  python examples/quantization_sweep.py
"""

import numpy as np

from repro import CrossEntropyRateLoss, Trainer, TrainerConfig
from repro.common.asciiplot import line_plot
from repro.core.calibration import calibrate_firing
from repro.core.model_zoo import nmnist_mlp
from repro.data import SyntheticNMNISTConfig, generate_nmnist
from repro.hardware import accuracy_under_variation


def main():
    print("training a reduced N-MNIST classifier...")
    dataset = generate_nmnist(
        SyntheticNMNISTConfig(n_per_class=30, steps=40), rng=0)
    train, test = dataset.split(0.8, rng=1)
    network = nmnist_mlp(profile="reduced", rng=2)
    calibrate_firing(network, train.inputs[:48], target_rate=0.08)
    trainer = Trainer(network, CrossEntropyRateLoss(), TrainerConfig(
        epochs=10, batch_size=64, learning_rate=1e-3), rng=3)
    trainer.fit(train.inputs, train.targets, test.inputs, test.targets,
                verbose=True)
    baseline = trainer.evaluate(test.inputs, test.targets)["accuracy"]
    print(f"\nfloat32 baseline accuracy: {100 * baseline:.2f} %\n")

    variations = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
    curves = {}
    for bits in (4, 5):
        accs = []
        for variation in variations:
            mean, std = accuracy_under_variation(
                network, test.inputs, test.targets, bits=bits,
                variation=variation, n_seeds=3, rng=7)
            accs.append(mean)
            print(f"{bits}-bit, variation {variation:.2f}: "
                  f"{100 * mean:6.2f} % (+- {100 * std:.2f})")
        curves[f"{bits}-bit"] = accs

    print()
    print(line_plot(
        {name: np.array(values) * 100 for name, values in curves.items()},
        height=12, width=60,
        title="Fig. 8: accuracy (%) vs process variation (x = 0 .. 0.5)"))
    drop_at_02 = baseline - curves["4-bit"][variations.index(0.2)]
    print(f"\npaper: 4-bit at 0.2 deviation kept 97.97 % of a 98.40 % "
          f"baseline (drop 0.43 pts)")
    print(f"ours:  4-bit at 0.2 deviation drops {100 * drop_at_02:.2f} pts "
          f"from the float baseline")


if __name__ == "__main__":
    main()
