"""Scenario harness: expand declarative grids, run them, fill one table.

This is the execution layer over :mod:`repro.experiments.scenario`:
:func:`run_scenarios` expands every scenario deterministically
(:func:`~repro.experiments.scenario.expand`), executes each grid cell
with the right runner for its kind, and appends one row per run to a
single :class:`~repro.common.runtable.RunTable` — the artifact all
``BENCH_*.json`` files are regenerated from
(:mod:`repro.experiments.benchjson`).

Cross-cell resources are shared, not rebuilt: networks are cached by
(sizes, seed) and worker pools by (network, workers) through one
:class:`~repro.runtime.pool.PoolCache`, so a 4-worker-count grid pays
pool startup once per count instead of once per cell.

Determinism contract (what ``tests/unit/test_harness.py`` pins down):

* grid expansion and run ids never depend on measurement;
* every run's randomness derives from ``scenario.seed`` via
  ``RandomState(seed).child(run_id)`` — rows are independent of
  execution order;
* wall-clock enters only through the injectable ``timer``; with a fake
  timer two identical invocations produce byte-identical CSV text.

The canonical grids live here too (:data:`PRESETS`): ``smoke`` (the CI
seconds-scale grid), ``throughput`` / ``serving`` / ``aware`` (the three
``BENCH_*.json`` sources), ``chaos`` (serving under seeded fault
schedules — the availability rows) and ``full`` (their union).
"""

from __future__ import annotations

import contextlib
import statistics
import time
from pathlib import Path

import numpy as np

from .. import obs as _obs
from ..common.benchcfg import (
    BENCH_FORWARD_BATCH,
    BENCH_SIZES,
    BENCH_STEPS,
    BENCH_TRAIN_BATCH,
    bench_inputs,
    bench_network,
)
from ..common.errors import ExperimentError
from ..common.rng import RandomState
from ..common.runtable import RunTable
from .scenario import HardwareSpec, LoadSpec, RunSpec, Scenario, expand

__all__ = [
    "PRESETS",
    "modeled_energy_j",
    "preset_scenarios",
    "run_scenario",
    "run_scenarios",
]


def modeled_energy_j(steps: int, n_neurons: int) -> float:
    """Modeled hardware energy for ``steps`` time steps of ``n_neurons``.

    Scales the paper's measured average neuron-circuit power (Table 1 of
    ``docs/hardware.md``; ``repro.hardware.power.PAPER_POWER_REPORT``)
    by the circuit's 10 ns step — the energy this run's simulated spike
    traffic would have cost on the accelerator, *not* the CPU joules of
    the simulation.
    """
    from ..hardware.neuron_circuit import NeuronCircuitConfig
    from ..hardware.power import PAPER_POWER_REPORT

    per_neuron_step = (PAPER_POWER_REPORT["avg_power_w"]
                       * NeuronCircuitConfig().step_ns * 1e-9)
    return per_neuron_step * float(steps) * float(n_neurons)


class _HarnessContext:
    """Caches shared across the cells of one harness invocation."""

    def __init__(self, timer=None):
        from ..runtime.pool import PoolCache

        self.timer = time.perf_counter if timer is None else timer
        self.pools = PoolCache()
        self._networks: dict = {}
        self._workloads: dict = {}

    def network(self, sizes: tuple, seed: int):
        key = (tuple(sizes), seed)
        if key not in self._networks:
            self._networks[key] = bench_network(sizes=tuple(sizes),
                                                seed=seed)
        return self._networks[key]

    def workload(self, name: str, channels_hint: int, seed: int,
                 density: float | None = None):
        from ..serve.workloads import make_workload

        channels = channels_hint if name == "synthetic" else None
        if "synthetic" not in name.split("+"):
            density = None  # only synthetic components carry a density
        key = (name, seed, channels, density)
        if key not in self._workloads:
            self._workloads[key] = make_workload(name, channels=channels,
                                                 seed=seed, density=density)
        return self._workloads[key]

    def close(self) -> None:
        self.pools.close()

    def __enter__(self) -> "_HarnessContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _time(fn, rounds: int, timer, warmup: int = 2) -> dict:
    """min/mean/max milliseconds over ``rounds`` calls of ``fn``."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        start = timer()
        fn()
        samples.append((timer() - start) * 1e3)
    return {
        "min_ms": round(min(samples), 3),
        "mean_ms": round(statistics.fmean(samples), 3),
        "max_ms": round(max(samples), 3),
        "rounds": rounds,
    }


def _run_seed(spec: RunSpec) -> int:
    """Per-run derived seed: a pure function of (scenario seed, run id)."""
    return int(RandomState(spec.seed).child(spec.run_id).integers(2 ** 31))


# -- per-kind runners --------------------------------------------------------

def _run_forward(spec: RunSpec, ctx: _HarnessContext) -> dict:
    scenario = spec.scenario
    net = ctx.network(scenario.sizes, seed=0)
    x = bench_inputs(BENCH_FORWARD_BATCH, n_in=scenario.sizes[0])
    timing = _time(
        lambda: net.run(x, engine=spec.engine, precision=spec.precision),
        scenario.rounds, ctx.timer, warmup=scenario.warmup)
    steps = BENCH_FORWARD_BATCH * BENCH_STEPS
    timing["energy_j"] = modeled_energy_j(steps, sum(scenario.sizes[1:]))
    return timing


def _run_backward(spec: RunSpec, ctx: _HarnessContext) -> dict:
    from ..core import CrossEntropyRateLoss, backward

    scenario = spec.scenario
    net = ctx.network(scenario.sizes, seed=0)
    x = bench_inputs(BENCH_FORWARD_BATCH, n_in=scenario.sizes[0])
    labels = np.arange(BENCH_FORWARD_BATCH) % scenario.sizes[-1]
    outputs, record = net.run(x, record=True, precision=spec.precision)
    _, grad_out = CrossEntropyRateLoss().value_and_grad(outputs, labels)
    engine = "fused" if spec.engine == "fused" else "reference"
    return _time(lambda: backward(net, record, grad_out, engine=engine),
                 scenario.rounds, ctx.timer, warmup=scenario.warmup)


def _run_train_step(spec: RunSpec, ctx: _HarnessContext) -> dict:
    from ..core import CrossEntropyRateLoss, Trainer, TrainerConfig

    scenario = spec.scenario
    net = ctx.network(scenario.sizes, seed=2)
    x = bench_inputs(BENCH_TRAIN_BATCH, seed=3, n_in=scenario.sizes[0])
    labels = np.arange(BENCH_TRAIN_BATCH) % scenario.sizes[-1]
    hardware = None
    if spec.hardware is not None:
        from ..hardware import HardwareProfile

        hardware = HardwareProfile.create(bits=spec.hardware.bits,
                                          variation=spec.hardware.variation,
                                          seed=spec.hardware.seed)
    trainer = Trainer(net, CrossEntropyRateLoss(), TrainerConfig(
        epochs=1, batch_size=BENCH_TRAIN_BATCH, learning_rate=1e-4,
        optimizer="adamw", engine=spec.engine, precision=spec.precision,
        workers=spec.workers, hardware=hardware))
    try:
        return _time(lambda: trainer.train_batch(x, labels),
                     scenario.rounds, ctx.timer, warmup=scenario.warmup)
    finally:
        trainer.close()


def _run_inference(spec: RunSpec, ctx: _HarnessContext) -> dict:
    from ..core.trainer import run_in_batches

    scenario = spec.scenario
    net = ctx.network(scenario.sizes, seed=4)
    x = bench_inputs(4 * BENCH_FORWARD_BATCH, seed=5,
                     n_in=scenario.sizes[0])
    pool = (ctx.pools.get(net, spec.workers) if spec.workers else None)
    timing = _time(
        lambda: run_in_batches(net, x, BENCH_FORWARD_BATCH,
                               engine=spec.engine,
                               precision=spec.precision, pool=pool),
        scenario.rounds, ctx.timer, warmup=scenario.warmup)
    steps = 4 * BENCH_FORWARD_BATCH * BENCH_STEPS
    timing["energy_j"] = modeled_energy_j(steps, sum(scenario.sizes[1:]))
    return timing


def _run_variation(spec: RunSpec, ctx: _HarnessContext) -> dict:
    from ..hardware import accuracy_under_variation

    scenario = spec.scenario
    net = ctx.network(scenario.sizes, seed=6)
    rng = RandomState(_run_seed(spec))
    x = (rng.random((scenario.samples, BENCH_STEPS, scenario.sizes[0]))
         < scenario.spike_density).astype(np.float64)
    labels = np.arange(scenario.samples) % scenario.sizes[-1]
    sweep_rng = int(rng.child("sweep").integers(2 ** 31))
    pool = None
    if spec.workers:
        pool = ctx.pools.get(net, min(spec.workers, scenario.n_seeds))
    result = {}

    def point():
        result["accuracy"] = accuracy_under_variation(
            net, x, labels, bits=spec.hardware.bits,
            variation=spec.hardware.variation, n_seeds=scenario.n_seeds,
            rng=sweep_rng, engine=spec.engine, precision=spec.precision,
            pool=pool)

    timing = _time(point, scenario.rounds, ctx.timer,
                   warmup=min(scenario.warmup, 1))
    mean, std = result["accuracy"]
    timing["accuracy"] = round(float(mean), 6)
    timing["accuracy_std"] = round(float(std), 6)
    return timing


def _run_serving(spec: RunSpec, ctx: _HarnessContext) -> dict:
    from ..common import faults as _faults
    from ..serve import ModelServer
    from ..serve.loadgen import open_loop

    scenario = spec.scenario
    run_seed = _run_seed(spec)
    workload = ctx.workload(spec.workload, scenario.sizes[0],
                            seed=spec.seed,
                            density=scenario.spike_density)
    sizes = (workload.channels,) + tuple(scenario.sizes[1:])
    net = ctx.network(sizes, seed=0)
    hardware = None
    if spec.hardware is not None:
        from ..hardware import HardwareProfile

        hardware = HardwareProfile.create(
            bits=spec.hardware.bits, variation=spec.hardware.variation,
            seed=spec.hardware.seed).build(net)
    server = ModelServer(
        net, engine=spec.engine, precision=spec.precision,
        max_batch=scenario.max_batch, max_wait_ms=scenario.max_wait_ms,
        queue_limit=scenario.queue_limit, hardware=hardware,
        shadow=spec.hardware.shadow if spec.hardware else False,
        request_ttl_ms=scenario.request_ttl_ms,
        session_ttl_s=scenario.session_ttl_s)
    # A chaos cell is the same open-loop run under an installed fault
    # plan seeded from the run seed — the injected schedule is as
    # reproducible as the arrival process.
    plan = (_faults.FaultPlan(scenario.faults, seed=run_seed)
            if spec.kind == "chaos" else None)
    try:
        # spike_density reaches the run through the workload itself
        # (ctx.workload builds synthetic components at the scenario's
        # density); open_loop ignores its spike_density arg when a
        # workload is passed.
        with _faults.active(plan) if plan is not None else _noop():
            report = open_loop(
                server, sessions=scenario.sessions,
                requests=spec.load.requests,
                chunk_steps=scenario.chunk_steps,
                rate_rps=spec.load.rate_rps, rng=run_seed,
                workload=workload, timer=ctx.timer)
    finally:
        server.close()
    return _serving_measurement(report, spec.load.requests, sizes)


def _serving_measurement(report, requests: int, sizes) -> dict:
    """A ``ServingReport`` flattened into run-table measurement cells."""
    latency = report.latency_ms
    steps_served = int(round(report.steps_per_s * report.duration_s))
    return {
        "requests": requests,
        "completed": report.completed,
        "rejected": report.rejected,
        "ticks": report.ticks,
        "duration_s": report.duration_s,
        "throughput_rps": report.throughput_rps,
        "mean_batch": report.mean_batch,
        "steps_per_s": report.steps_per_s,
        "p50_ms": latency["p50"],
        "p95_ms": latency["p95"],
        "p99_ms": latency["p99"],
        "mean_ms": latency["mean"],
        "max_ms": latency["max"],
        "divergence": report.divergence,
        "energy_j": modeled_energy_j(steps_served, sum(sizes[1:])),
        "faults_injected": report.faults_injected,
        "requests_retried": report.requests_retried,
        "requests_expired": report.requests_expired,
        "requests_failed": report.requests_failed,
        "recovery_p99_ms": report.recovery_p99_ms,
        "availability": report.availability,
        "queue_wait_p95_ms": report.queue_wait_p95_ms,
        "tick_compute_p95_ms": report.tick_compute_p95_ms,
    }


def _run_fleet(spec: RunSpec, ctx: _HarnessContext) -> dict:
    """One fleet cell: a multi-tenant open-loop run against a
    :class:`~repro.serve.fleet.Fleet` (optionally with a canary
    generation deployed at the scenario's ``canary_weight``).

    Returns the fleet-wide aggregate measurement, with the per-tenant
    SLO measurements under the ``"__tenants__"`` key —
    :func:`run_scenarios` appends those as their own rows (``run_id``
    suffixed ``+<tenant>``, tenant identity column filled).
    """
    from ..serve import Fleet, TenantQuota
    from ..serve.loadgen import TenantLoad, open_loop_fleet

    scenario = spec.scenario
    run_seed = _run_seed(spec)
    workload = ctx.workload(spec.workload, scenario.sizes[0],
                            seed=spec.seed,
                            density=scenario.spike_density)
    sizes = (workload.channels,) + tuple(scenario.sizes[1:])
    net = ctx.network(sizes, seed=0)
    hardware = None
    if spec.hardware is not None:
        from ..hardware import HardwareProfile

        hardware = HardwareProfile.create(
            bits=spec.hardware.bits, variation=spec.hardware.variation,
            seed=spec.hardware.seed).build(net)
    fleet = Fleet(
        net, replicas=scenario.replicas, engine=spec.engine,
        precision=spec.precision, max_batch=scenario.max_batch,
        max_wait_ms=scenario.max_wait_ms,
        queue_limit=scenario.queue_limit, hardware=hardware,
        shadow=spec.hardware.shadow if spec.hardware else False,
        request_ttl_ms=scenario.request_ttl_ms,
        session_ttl_s=scenario.session_ttl_s, seed=run_seed)
    try:
        if scenario.canary_weight:
            canary_hardware = None
            canary_shadow = False
            if scenario.canary_hardware is not None:
                from ..hardware import HardwareProfile

                canary_hardware = HardwareProfile.create(
                    bits=scenario.canary_hardware.bits,
                    variation=scenario.canary_hardware.variation,
                    seed=scenario.canary_hardware.seed).build(net)
                canary_shadow = scenario.canary_hardware.shadow
            fleet.deploy_canary(weight=scenario.canary_weight,
                                hardware=canary_hardware,
                                shadow=canary_shadow)
        mix = tuple(
            TenantLoad(
                tenant.id, share=tenant.share, sessions=tenant.sessions,
                quota=(TenantQuota(rate_rps=tenant.quota_rps,
                                   burst=tenant.burst,
                                   max_pending=tenant.max_pending)
                       if (tenant.quota_rps is not None
                           or tenant.max_pending is not None) else None))
            for tenant in scenario.tenants)
        report = open_loop_fleet(
            fleet, tenants=mix, requests=spec.load.requests,
            chunk_steps=scenario.chunk_steps,
            rate_rps=spec.load.rate_rps, rng=run_seed,
            workload=workload, timer=ctx.timer)
    finally:
        fleet.close()
    measurement = _serving_measurement(report.aggregate,
                                       spec.load.requests, sizes)
    measurement.update(
        replicas=scenario.replicas,
        canary_weight=scenario.canary_weight,
        canary_share=report.canary_share,
        quota_rejected=sum(report.quota_rejected.values()),
        misroutes=report.misroutes)
    tenant_rows = []
    for tenant in scenario.tenants:
        tenant_report = report.tenants[tenant.id]
        tenant_measurement = _serving_measurement(
            tenant_report, tenant_report.submitted, sizes)
        tenant_measurement["quota_rejected"] = \
            report.quota_rejected.get(tenant.id, 0)
        tenant_rows.append((tenant.id, tenant_measurement))
    measurement["__tenants__"] = tenant_rows
    return measurement


@contextlib.contextmanager
def _noop():
    yield


_RUNNERS = {
    "forward": _run_forward,
    "backward": _run_backward,
    "train_step": _run_train_step,
    "inference": _run_inference,
    "variation": _run_variation,
    "serving": _run_serving,
    "chaos": _run_serving,
    "fleet": _run_fleet,
}


# -- the harness -------------------------------------------------------------

def run_scenarios(scenarios, table: RunTable | None = None,
                  timer=None, log=None, trace_dir=None) -> RunTable:
    """Expand and execute ``scenarios``; return the filled run table.

    ``table`` lets callers accumulate several invocations into one
    artifact; ``timer`` replaces the wall clock (tests); ``log`` is an
    optional ``print``-like progress callback.

    ``trace_dir`` switches telemetry on: every run executes under a
    fresh :class:`repro.obs.Telemetry` bundle on the harness clock, and
    exports ``<run_id>.trace.jsonl`` (the JSONL trace) plus
    ``<run_id>.prom`` (the Prometheus metrics snapshot) into that
    directory — the per-run artifacts next to ``run_table.csv``.  With
    the default ``None`` no telemetry is installed and runs measure
    exactly as before (the overhead gate in ``tools/obs_smoke.py``
    compares the two modes).
    """
    table = RunTable() if table is None else table
    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
    with _HarnessContext(timer=timer) as ctx:
        for scenario in scenarios:
            if not isinstance(scenario, Scenario):
                raise ExperimentError(
                    f"run_scenarios expects Scenario objects, "
                    f"got {type(scenario).__name__}")
            for spec in expand(scenario):
                telemetry = (None if trace_dir is None
                             else _obs.Telemetry(clock=ctx.timer))
                with _obs.active(telemetry):
                    measurement = _RUNNERS[spec.kind](spec, ctx)
                if telemetry is not None:
                    slug = spec.run_id.replace("/", "__")
                    telemetry.tracer.write_jsonl(
                        trace_dir / f"{slug}.trace.jsonl")
                    (trace_dir / f"{slug}.prom").write_text(
                        telemetry.metrics.render_prometheus(),
                        encoding="utf-8")
                # A fleet cell carries per-tenant SLO measurements in a
                # side channel; they become their own rows below, with
                # the same identity cells plus the tenant column.
                tenant_rows = measurement.pop("__tenants__", ())
                identity = dict(
                    scenario=scenario.name,
                    kind=spec.kind,
                    engine=spec.engine,
                    precision=spec.precision,
                    workers=spec.workers,
                    hardware=spec.hardware_label,
                    hw_bits=(None if spec.hardware is None
                             else spec.hardware.bits),
                    hw_variation=(None if spec.hardware is None
                                  else spec.hardware.variation),
                    workload=spec.workload,
                    load=(None if spec.load is None else spec.load.id),
                    rate_rps=(None if spec.load is None
                              else spec.load.rate_rps),
                    repetition=spec.repetition,
                    seed=_run_seed(spec),
                )
                row = table.append(run_id=spec.run_id, **identity,
                                   **measurement)
                if log is not None:
                    log(_render_row(row))
                for tenant_id, tenant_measurement in tenant_rows:
                    tenant_row = table.append(
                        run_id=f"{spec.run_id}+{tenant_id}",
                        tenant=tenant_id, **identity,
                        **tenant_measurement)
                    if log is not None:
                        log(_render_row(tenant_row))
    return table


def run_scenario(scenario: Scenario, table: RunTable | None = None,
                 timer=None, log=None, trace_dir=None) -> RunTable:
    return run_scenarios([scenario], table=table, timer=timer, log=log,
                         trace_dir=trace_dir)


def _render_row(row: dict) -> str:
    if row["kind"] == "fleet":
        scope = row["tenant"] or "fleet"
        canary = ("" if row["canary_share"] is None
                  else f"  canary {row['canary_share']:.3f}")
        return (f"{row['run_id']:<56} {row['throughput_rps']:9.1f} rps  "
                f"[{scope}] rejected {row['rejected']} "
                f"(quota {row['quota_rejected']})  "
                f"avail {row['availability']:.4f}{canary}")
    if row["kind"] == "chaos":
        return (f"{row['run_id']:<56} {row['throughput_rps']:9.1f} rps  "
                f"avail {row['availability']:.4f}  "
                f"faults {row['faults_injected']}  "
                f"retried {row['requests_retried']}  "
                f"expired {row['requests_expired']}")
    if row["kind"] == "serving":
        return (f"{row['run_id']:<56} {row['throughput_rps']:9.1f} rps  "
                f"p95 {row['p95_ms'] if row['p95_ms'] is not None else 'n/a'}"
                f" ms  rejected {row['rejected']}")
    extra = ""
    if row["accuracy"] is not None:
        extra = f"  accuracy {row['accuracy']:.3f}"
    return f"{row['run_id']:<56} {row['mean_ms']:9.3f} ms mean{extra}"


# -- canonical scenario grids ------------------------------------------------

#: The three offered-load points of the serving benchmark
#: (``benchmarks/bench_serving.py`` rationale: latency floor, throughput
#: plateau, backpressure).
SERVING_LOADS = (
    LoadSpec("light", 300.0, 300),
    LoadSpec("heavy", 4000.0, 800),
    LoadSpec("overload", 20000.0, 1200),
)

#: The Fig. 8 operating point the hardware-aware rows are measured at.
AWARE_BITS = 4
AWARE_VARIATION = 0.1

_SWEEP_SIZES = (700, 128, 20)
_SWEEP_SAMPLES = 128
_SWEEP_SEEDS = 4


def throughput_scenarios(rounds: int = 10,
                         worker_counts: tuple = (0, 1, 2, 4)) -> list:
    """The ``BENCH_throughput.json`` grid as declarative scenarios."""
    worker_counts = tuple(worker_counts)
    return [
        Scenario(name="forward", kind="forward",
                 engines=("fused",), precisions=("float64", "float32"),
                 rounds=rounds),
        Scenario(name="forward-step", kind="forward", engines=("step",),
                 rounds=max(rounds // 2, 3)),
        Scenario(name="backward", kind="backward", engines=("fused",),
                 rounds=rounds),
        Scenario(name="backward-step", kind="backward", engines=("step",),
                 rounds=max(rounds // 2, 3)),
        Scenario(name="train-step", kind="train_step",
                 workers=worker_counts, rounds=rounds),
        Scenario(name="inference", kind="inference", workers=worker_counts,
                 rounds=max(rounds // 2, 3)),
        Scenario(name="variation-sweep", kind="variation",
                 workers=worker_counts,
                 hardware=(HardwareSpec(bits=4, variation=0.2, seed=13),),
                 sizes=_SWEEP_SIZES, samples=_SWEEP_SAMPLES,
                 n_seeds=_SWEEP_SEEDS, rounds=max(rounds // 3, 2), seed=7),
    ]


def aware_scenarios(rounds: int = 10) -> list:
    """The ``BENCH_aware.json`` rows: ideal vs fake-quant vs quant+noise."""
    return [
        Scenario(name="train-step-aware", kind="train_step",
                 hardware=(None,
                           HardwareSpec(bits=AWARE_BITS, variation=0.0,
                                        seed=13),
                           HardwareSpec(bits=AWARE_BITS,
                                        variation=AWARE_VARIATION,
                                        seed=13)),
                 rounds=rounds),
    ]


def serving_scenarios(loads: tuple = SERVING_LOADS) -> list:
    """The ``BENCH_serving.json`` grid: 4 server configs x 3 loads."""
    common = dict(kind="serving", workloads=("synthetic",), loads=loads,
                  sessions=32, chunk_steps=10, max_batch=16,
                  max_wait_ms=5.0, queue_limit=128, seed=7)
    return [
        Scenario(name="serving", engines=("fused",),
                 precisions=("float64", "float32"), **common),
        Scenario(name="serving-hardware",
                 hardware=(HardwareSpec(bits=4, variation=0.1, seed=7),),
                 **common),
        Scenario(name="serving-shadow",
                 hardware=(HardwareSpec(bits=4, variation=0.1, seed=7,
                                        shadow=True),),
                 **common),
    ]


def smoke_scenarios() -> list:
    """The CI seconds-scale grid: every kind touched, tiny shapes.

    The serving block is the acceptance grid — 2 engines x 2 workloads
    (synthetic + a real sensor workload, DVS) x 1 repetition — plus a
    speech+synthetic mix cell so a mixed arrival stream stays exercised.
    """
    smoke_load = (LoadSpec("smoke", 500.0, 40),)
    return [
        Scenario(name="smoke-serving", kind="serving",
                 engines=("fused", "step"),
                 workloads=("synthetic", "dvs"), loads=smoke_load,
                 sizes=(700, 32, 16), sessions=8, chunk_steps=8),
        Scenario(name="smoke-serving-mix", kind="serving",
                 workloads=("speech+synthetic",), loads=smoke_load,
                 sizes=(700, 32, 16), sessions=8, chunk_steps=8),
        Scenario(name="smoke-forward", kind="forward",
                 engines=("fused", "step"), sizes=(128, 32, 10), rounds=2,
                 warmup=1),
        Scenario(name="smoke-train-step", kind="train_step",
                 sizes=(128, 32, 10), rounds=2, warmup=1),
        Scenario(name="smoke-variation", kind="variation",
                 hardware=(HardwareSpec(bits=3, variation=0.2, seed=5),),
                 sizes=(64, 32, 10), samples=16, n_seeds=2, rounds=2,
                 warmup=0),
    ]


def chaos_scenarios() -> list:
    """The chaos grid: open-loop serving under seeded fault schedules.

    Each scenario exercises one rung of the degradation ladder
    (``docs/robustness.md``): per-request isolation + whole-tick retry,
    hardware->ideal weight fallback, and the shadow-path circuit
    breaker.  Fault schedules derive from the per-run seed, so a chaos
    row is exactly as reproducible as a clean serving row.
    """
    chaos_load = (LoadSpec("steady", 500.0, 240),)
    common = dict(kind="chaos", loads=chaos_load, sizes=(700, 32, 16),
                  sessions=8, chunk_steps=8, max_batch=8,
                  queue_limit=64, seed=7)
    return [
        # Poisoned chunks fail in isolation while innocent batch-mates
        # complete via the retry path; two whole ticks also fail.
        Scenario(name="chaos-isolation",
                 faults=({"site": "serve.request.raise",
                          "probability": 0.02},
                         {"site": "serve.tick.raise", "nth": (3, 11)}),
                 request_ttl_ms=250.0, session_ttl_s=60.0, **common),
        # Hardware weight reads fail intermittently: chunks are served
        # degraded on ideal weights instead of erroring.
        Scenario(name="chaos-hw-fallback",
                 hardware=(HardwareSpec(bits=4, variation=0.1, seed=7),),
                 faults=({"site": "hw.weights.stale",
                          "probability": 0.1},),
                 **common),
        # The shadow path raises until its circuit breaker trips; the
        # primary path must keep answering throughout.
        Scenario(name="chaos-shadow-breaker",
                 hardware=(HardwareSpec(bits=4, variation=0.1, seed=7,
                                        shadow=True),),
                 faults=({"site": "serve.shadow.raise",
                          "nth": (1, 2, 3)},),
                 **common),
    ]


def fleet_scenarios() -> list:
    """The fleet grid: a 2-replica multi-tenant mix with a canary split.

    One cell measures everything the fleet layer adds: a hot tenant
    offered 3x the cold tenant's traffic but capped by a token-bucket
    quota (isolation shows up as ``quota_rejected`` on the hot tenant's
    row and a clean cold-tenant row), plus a same-weights canary
    generation taking 25% of new sessions (``canary_share``).  Each cell
    emits the fleet-wide aggregate row and one per-tenant SLO row
    (``run_id`` suffixed ``+hot`` / ``+cold``).
    """
    fleet_load = (LoadSpec("mixed", 800.0, 400),)
    return [
        Scenario(name="fleet-mixed", kind="fleet", loads=fleet_load,
                 sizes=(700, 32, 16), replicas=2, chunk_steps=8,
                 max_batch=8, queue_limit=64, canary_weight=0.25,
                 tenants=({"id": "hot", "share": 3.0, "quota_rps": 400.0,
                           "burst": 16, "max_pending": 24, "sessions": 6},
                          {"id": "cold", "share": 1.0, "sessions": 4}),
                 seed=7),
    ]


def full_scenarios(rounds: int = 10,
                   worker_counts: tuple = (0, 1, 2, 4)) -> list:
    return (throughput_scenarios(rounds, worker_counts)
            + aware_scenarios(rounds) + serving_scenarios()
            + chaos_scenarios() + fleet_scenarios())


PRESETS = {
    "smoke": smoke_scenarios,
    "throughput": throughput_scenarios,
    "aware": aware_scenarios,
    "serving": serving_scenarios,
    "chaos": chaos_scenarios,
    "fleet": fleet_scenarios,
    "full": full_scenarios,
}


def preset_scenarios(name: str, **kwargs) -> list:
    if name not in PRESETS:
        raise ExperimentError(f"unknown preset {name!r}; "
                              f"known: {sorted(PRESETS)}")
    return PRESETS[name](**kwargs)
