"""Unit tests for repro.core.optim."""

import numpy as np
import pytest

from repro.common.errors import ShapeError
from repro.core.optim import SGD, Adam, AdamW, clip_grad_norm, make_optimizer


def quadratic_params():
    return [np.array([5.0, -3.0]), np.array([[2.0]])]


def quadratic_grads(params):
    # Gradient of 0.5*||p||^2 is p itself -> all optimizers must reach 0.
    return [p.copy() for p in params]


class TestSGD:
    def test_plain_descent_converges(self):
        params = quadratic_params()
        opt = SGD(params, lr=0.1)
        for _ in range(200):
            opt.step(quadratic_grads(params))
        for p in params:
            np.testing.assert_allclose(p, 0.0, atol=1e-6)

    def test_momentum_accelerates(self):
        params_a = quadratic_params()
        params_b = quadratic_params()
        plain = SGD(params_a, lr=0.02)
        momentum = SGD(params_b, lr=0.02, momentum=0.9)
        for _ in range(30):
            plain.step(quadratic_grads(params_a))
            momentum.step(quadratic_grads(params_b))
        assert np.abs(params_b[0]).sum() < np.abs(params_a[0]).sum()

    def test_in_place_updates(self):
        params = [np.ones(3)]
        original = params[0]
        SGD(params, lr=0.5).step([np.ones(3)])
        assert params[0] is original          # same array object
        np.testing.assert_allclose(original, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([np.ones(2)], lr=0.0)
        with pytest.raises(ValueError):
            SGD([np.ones(2)], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        params = quadratic_params()
        opt = Adam(params, lr=0.2)
        for _ in range(300):
            opt.step(quadratic_grads(params))
        for p in params:
            np.testing.assert_allclose(p, 0.0, atol=1e-3)

    def test_first_step_size_is_lr(self):
        """With bias correction, the first Adam step is ~lr * sign(g)."""
        params = [np.array([1.0])]
        opt = Adam(params, lr=0.01)
        opt.step([np.array([123.0])])
        assert params[0][0] == pytest.approx(1.0 - 0.01, rel=1e-4)

    def test_grad_shape_check(self):
        opt = Adam([np.ones((2, 2))], lr=0.1)
        with pytest.raises(ShapeError):
            opt.step([np.ones(3)])
        with pytest.raises(ShapeError):
            opt.step([np.ones((2, 2)), np.ones(1)])


class TestAdamW:
    def test_decay_shrinks_weights_without_gradient(self):
        params = [np.array([10.0])]
        opt = AdamW(params, lr=0.1, weight_decay=0.5)
        opt.step([np.array([0.0])])
        # Pure decay: p -= lr*wd*p -> 10 * (1 - 0.05) = 9.5.
        assert params[0][0] == pytest.approx(9.5)

    def test_decay_is_decoupled(self):
        """AdamW decay must not enter the moment estimates: with huge
        weights and tiny gradients the total move is exactly
        lr*wd*p plus the eps-damped Adam step (lr * g/(g + eps) = lr/2
        when g == eps), not a decay-inflated gradient step."""
        params_adamw = [np.array([100.0])]
        opt = AdamW(params_adamw, lr=0.001, weight_decay=0.01)
        opt.step([np.array([1e-8])])      # gradient == Adam eps
        moved = 100.0 - params_adamw[0][0]
        decay_part = 0.001 * 0.01 * 100.0
        adam_part = 0.001 * 0.5
        assert moved == pytest.approx(decay_part + adam_part, rel=0.02)

    def test_negative_decay_rejected(self):
        with pytest.raises(ValueError):
            AdamW([np.ones(1)], lr=0.1, weight_decay=-0.1)


class TestClipGradNorm:
    def test_noop_below_limit(self):
        grads = [np.array([0.3, 0.4])]
        norm = clip_grad_norm(grads, max_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(grads[0], [0.3, 0.4])

    def test_scales_above_limit(self):
        grads = [np.array([3.0, 4.0])]
        norm = clip_grad_norm(grads, max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(grads[0]) == pytest.approx(1.0)

    def test_global_norm_across_arrays(self):
        grads = [np.array([3.0]), np.array([4.0])]
        clip_grad_norm(grads, max_norm=1.0)
        total = np.sqrt(sum(float(np.sum(g * g)) for g in grads))
        assert total == pytest.approx(1.0)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([np.ones(2)], max_norm=0.0)


class TestFactory:
    def test_names(self):
        params = [np.ones(2)]
        assert isinstance(make_optimizer("sgd", params, lr=0.1), SGD)
        assert isinstance(make_optimizer("adam", params, lr=0.1), Adam)
        assert isinstance(make_optimizer("AdamW", params, lr=0.1), AdamW)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_optimizer("lion", [np.ones(2)], lr=0.1)
