"""The fleet front door: replicas, tenant quotas, weighted canary rollout.

A :class:`Fleet` owns N :class:`~repro.serve.server.ModelServer`
replicas behind one submit/poll surface — the production shape the
ROADMAP names: one resident model per replica, many models/versions/
realizations behind one front door.  Three mechanisms compose here:

**Routing** — a session sticks to one replica for its whole life
(stream state lives on the replica; moving it would fork the stream),
new sessions go to the least-loaded live replica of their generation.
Request routing is therefore a pure function of the session id: the
session table is authoritative, and the ``fleet.route.misroute`` fault
site exercises the guard that enforces it (a bogus pick is detected
against the table and corrected before any state is touched).

**Admission** — per-tenant token buckets
(:class:`TenantQuota`: refill ``rate_rps``, capacity ``burst``) plus a
per-tenant in-flight bound (``max_pending``).  Both are checked *before*
a chunk reaches any replica queue, so a hot tenant's overload converts
to that tenant's ``CapacityError``\\ s without consuming the shared
queue capacity a cold tenant needs — isolation is structural, and
:meth:`Fleet.check_invariants` proves the per-tenant books conserve
every offered chunk (offered == admitted + rejected + voided).

**Canary rollout** — :meth:`Fleet.deploy_canary` stands up a second
*generation* of replicas (a new
:class:`~repro.serve.registry.ModelRegistry` checkpoint, a new hardware
realization, or both — ``save_pair`` generations) and routes a weighted
fraction of *new sessions* to it.  Existing sessions never move:
generations are fenced, so no stream crosses versions mid-flight.
:meth:`Fleet.evaluate_canary` turns the rolling
:attr:`~repro.serve.batcher.Ticket.divergence` signal (shadow-mode
canary replicas) and per-tenant error rates into a
promote / rollback / hold decision; :meth:`promote_canary` /
:meth:`rollback_canary` re-point *new* traffic and mark the losing
generation draining — its replicas retire once their last session
closes and their queues empty (:meth:`drained`).

Replica death is a first-class event: the ``fleet.replica.down`` fault
site kills a replica mid-load — its queued tickets fail cleanly
(:meth:`~repro.serve.server.ModelServer.fail_pending`), its sessions
raise :class:`~repro.common.errors.StateError` on their next submit so
clients reconnect onto a live replica, and the fleet-wide books still
balance (``tools/chaos_smoke.py`` gates availability under this).

See ``docs/fleet.md`` for the full lifecycle and
:func:`repro.serve.loadgen.open_loop_fleet` for the multi-tenant load
generator that measures it.
"""

from __future__ import annotations

import collections
import dataclasses
import time

from .. import obs as _obs
from ..common import faults as _faults
from ..common.errors import CapacityError, StateError
from ..common.rng import RandomState
from .server import ModelServer

__all__ = ["Fleet", "TenantQuota"]


@dataclasses.dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission budget.

    ``rate_rps`` refills a token bucket of capacity ``burst`` (one token
    per admitted chunk; ``None`` = unlimited rate).  ``max_pending``
    bounds the tenant's in-flight chunks across the whole fleet
    (``None`` = unbounded) — the per-tenant queue that keeps one
    tenant's backlog out of everyone else's.
    """

    rate_rps: float | None = None
    burst: int = 8
    max_pending: int | None = None

    def __post_init__(self):
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ValueError(
                f"quota rate_rps must be > 0, got {self.rate_rps}")
        if self.burst < 1:
            raise ValueError(f"quota burst must be >= 1, got {self.burst}")
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError(
                f"quota max_pending must be >= 1, got {self.max_pending}")


#: Per-tenant counter instruments (``fleet.<key>{tenant=...}``).
_TENANT_COUNTERS = (
    ("offered", "admission attempts (incl. rejected)"),
    ("admitted", "chunks accepted onto a replica queue"),
    ("rejected_quota", "chunks refused by the tenant's token bucket or "
                       "in-flight bound"),
    ("rejected_queue", "chunks refused by a replica's bounded queue"),
    ("voided", "admission attempts voided by a server-side session loss"),
    ("completed", "chunks answered"),
    ("failed", "chunks whose ticket resolved with an error"),
    ("expired", "chunks shed past their deadline"),
    ("completed_canary", "completed chunks served by a canary replica"),
)


class _Tenant:
    """One tenant's admission state: bucket, bound, books."""

    __slots__ = ("name", "quota", "tokens", "stamped", "pending",
                 "counters", "_pending_gauge")

    def __init__(self, name: str, quota: TenantQuota, metrics):
        self.name = name
        self.quota = quota
        self.tokens = float(quota.burst)
        self.stamped: float | None = None
        self.pending = 0
        self.counters = {
            key: metrics.counter(f"fleet.{key}", help=help_text, tenant=name)
            for key, help_text in _TENANT_COUNTERS
        }
        self._pending_gauge = metrics.gauge(
            "fleet.pending", help="tenant chunks in flight", tenant=name)

    def refill(self, now: float) -> None:
        if self.quota.rate_rps is None:
            return
        if self.stamped is not None and now > self.stamped:
            self.tokens = min(float(self.quota.burst),
                              self.tokens
                              + (now - self.stamped) * self.quota.rate_rps)
        if self.stamped is None or now > self.stamped:
            self.stamped = now

    def count(self, key: str, amount: int = 1) -> None:
        self.counters[key].inc(amount)

    def value(self, key: str) -> int:
        return int(self.counters[key].value)

    def track(self, delta: int) -> None:
        self.pending += delta
        self._pending_gauge.set(self.pending)

    @property
    def books(self) -> dict:
        view = {key: self.value(key) for key, _ in _TENANT_COUNTERS}
        view["pending"] = self.pending
        return view


class _Replica:
    """One server slot: a ModelServer plus fleet-side bookkeeping."""

    __slots__ = ("index", "server", "generation", "down", "retired",
                 "sessions")

    def __init__(self, index: int, server: ModelServer, generation: int):
        self.index = index
        self.server = server
        self.generation = generation
        self.down = False      # killed (fleet.replica.down) — sessions lost
        self.retired = False   # drained after its generation lost a rollout
        self.sessions = 0      # fleet sessions currently routed here

    @property
    def live(self) -> bool:
        return not self.down and not self.retired


class _Generation:
    """One deployed model version: its replicas and rollout signals."""

    __slots__ = ("gen", "network", "hardware", "label", "replicas",
                 "draining", "window")

    def __init__(self, gen: int, network, hardware, label: str,
                 window: int):
        self.gen = gen
        self.network = network
        self.hardware = hardware
        self.label = label
        self.replicas: list[_Replica] = []
        self.draining = False
        # Rolling outcome window: (tenant, ok, divergence) per resolved
        # chunk — what evaluate_canary reads.
        self.window: collections.deque = collections.deque(maxlen=window)


class _FleetSession:
    """Fleet-scoped session: the routing-table entry."""

    __slots__ = ("session_id", "tenant", "replica", "local_id",
                 "generation", "last_active")

    def __init__(self, session_id: str, tenant: str, replica: _Replica,
                 local_id: str, now: float):
        self.session_id = session_id
        self.tenant = tenant
        self.replica = replica
        self.local_id = local_id
        self.generation = replica.generation
        self.last_active = now


class Fleet:
    """N ``ModelServer`` replicas behind one routed, quota'd front door.

    Parameters mirror :class:`~repro.serve.server.ModelServer` where they
    configure the replicas (``engine``, ``precision``, ``max_batch``,
    ``max_wait_ms``, ``queue_limit``, ``hardware``, ``shadow``,
    ``request_ttl_ms``, ``shadow_threshold``); the rest are fleet-level:

    ``replicas``
        Primary-generation replica count (>= 1).  All replicas of a
        generation share one network object (ticks only read weights).
    ``session_ttl_s``
        Idle-session reaping, enforced *here* (replicas run without a
        session TTL) so the routing table and the replica session set
        can never disagree about liveness.
    ``seed``
        Seeds the canary traffic split: the weighted generation draw for
        each new session comes from a
        :class:`~repro.common.rng.RandomState` child, so a fixed seed
        reproduces the exact split (property-tested tolerance).
    ``workers`` / ``pools``
        With ``workers >= 1``, offline :meth:`run_batch` calls shard
        over a per-generation :class:`~repro.runtime.pool.WorkerPool`
        obtained from ``pools`` (a shared
        :class:`~repro.runtime.pool.PoolCache`; one is created and owned
        when omitted).
    ``canary_window``
        Rolling outcome window length per generation — the sample the
        promote/rollback decision reads.
    """

    def __init__(self, network, *, replicas: int = 2, engine: str = "fused",
                 precision: str = "float64", max_batch: int = 8,
                 max_wait_ms: float = 2.0, queue_limit: int = 64,
                 hardware=None, shadow: bool = False,
                 request_ttl_ms: float | None = None,
                 session_ttl_s: float | None = None,
                 shadow_threshold: int = 3, clock=time.monotonic,
                 telemetry: _obs.Telemetry | None = None, seed: int = 0,
                 workers: int = 0, pools=None, canary_window: int = 64):
        if replicas < 1:
            raise ValueError(f"a fleet needs >= 1 replica, got {replicas}")
        if session_ttl_s is not None and session_ttl_s <= 0:
            raise ValueError(
                f"session_ttl_s must be > 0, got {session_ttl_s}")
        if canary_window < 1:
            raise ValueError(
                f"canary_window must be >= 1, got {canary_window}")
        self.clock = clock
        self.session_ttl = (None if session_ttl_s is None
                            else float(session_ttl_s))
        self.telemetry = (telemetry if telemetry is not None
                          else _obs.active_telemetry())
        self.metrics = (self.telemetry.metrics
                        if self.telemetry is not None
                        else _obs.MetricsRegistry())
        self._event = (self.telemetry.tracer.event
                       if self.telemetry is not None else _noop_event)
        self._server_kwargs = dict(
            engine=engine, precision=precision, max_batch=max_batch,
            max_wait_ms=max_wait_ms, queue_limit=queue_limit,
            request_ttl_ms=request_ttl_ms, session_ttl_s=None,
            shadow_threshold=shadow_threshold)
        self._canary_window = int(canary_window)
        self._route_rng = RandomState(int(seed)).child("fleet.canary")
        self._replicas: list[_Replica] = []
        self._generations: dict[int, _Generation] = {}
        self._gen_seq = 0
        self._sessions: dict[str, _FleetSession] = {}
        self._session_seq = 0
        self._tenants: dict[str, _Tenant] = {}
        self._outstanding: list = []   # (ticket, _Tenant, _Replica)
        self._misroutes = self.metrics.counter(
            "fleet.misroutes",
            help="route-guard corrections (fleet.route.misroute firings "
                 "caught against the session table)")
        self._replicas_down = self.metrics.counter(
            "fleet.replicas_down", help="replicas killed mid-flight")
        self._lost_sessions = self.metrics.counter(
            "fleet.lost_sessions",
            help="sessions dropped because their replica died")
        self.model_name: str | None = None
        self.workers = int(workers)
        self._owned_pools = None
        self._pools = pools
        if self.workers and pools is None:
            from ..runtime.pool import PoolCache

            self._owned_pools = self._pools = PoolCache()
        self._primary = self._add_generation(
            network, hardware, shadow=shadow, label="g0", count=replicas)
        self._canary: int | None = None
        self._canary_weight = 0.0

    # -- construction --------------------------------------------------------
    def _add_generation(self, network, hardware, *, shadow: bool,
                        label: str, count: int) -> int:
        self._gen_seq += 1
        gen = _Generation(self._gen_seq, network, hardware, label,
                          self._canary_window)
        self._generations[gen.gen] = gen
        for _ in range(count):
            index = len(self._replicas)
            server = ModelServer(
                network, hardware=hardware, shadow=shadow,
                clock=self.clock, instance=f"r{index}",
                telemetry=self.telemetry, **self._server_kwargs)
            replica = _Replica(index, server, gen.gen)
            self._replicas.append(replica)
            gen.replicas.append(replica)
        return gen.gen

    @classmethod
    def from_registry(cls, registry, name: str, *, version: str | None = None,
                      hardware_profile=None, replicas: int = 2,
                      **kwargs) -> "Fleet":
        """Cold-start a fleet from a
        :class:`~repro.serve.registry.ModelRegistry` checkpoint (and
        optionally its linked hardware profile), like
        :meth:`ModelServer.from_registry` but N replicas wide.  The
        loaded version becomes the primary generation;
        :meth:`deploy_canary` with ``registry=`` stands the next
        ``save_pair`` generation up beside it.
        """
        network, hardware, version, profile_id, meta = _load_generation(
            registry, name, version, hardware_profile)
        fleet = cls(network, replicas=replicas, hardware=hardware, **kwargs)
        fleet.model_name = name
        gen = fleet._generations[fleet._primary]
        gen.label = version
        for replica in gen.replicas:
            replica.server.model_name = name
            replica.server.model_version = version
            replica.server.model_profile = profile_id
            replica.server.model_meta = meta
        return fleet

    # -- tenants -------------------------------------------------------------
    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        """Register (or replace) a tenant's admission quota; the bucket
        restarts full."""
        existing = self._tenants.get(tenant)
        if existing is None:
            self._tenants[tenant] = _Tenant(tenant, quota, self.metrics)
        else:
            existing.quota = quota
            existing.tokens = float(quota.burst)
            existing.stamped = None

    def _tenant(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = self._tenants[name] = _Tenant(name, TenantQuota(),
                                                   self.metrics)
        return tenant

    # -- routing -------------------------------------------------------------
    def _live(self, generation: int | None = None) -> list[_Replica]:
        return [r for r in self._replicas if r.live
                and (generation is None or r.generation == generation)]

    def _least_loaded(self, generation: int | None) -> _Replica | None:
        candidates = [r for r in self._live(generation)
                      if not self._generations[r.generation].draining]
        if not candidates:
            return None
        return min(candidates, key=lambda r: (r.sessions, r.index))

    def _pick_generation(self) -> int:
        if self._canary is not None and self._canary_weight > 0.0:
            if float(self._route_rng.random()) < self._canary_weight:
                return self._canary
        return self._primary

    def open_session(self, tenant: str = "default",
                     now: float | None = None) -> str:
        """Open a stream for ``tenant``; returns the fleet session id.

        The session is pinned to one replica (weighted generation draw,
        then least-loaded within the generation) for its whole life.
        """
        now = self.clock() if now is None else now
        self._tenant(tenant)
        replica = self._least_loaded(self._pick_generation())
        if replica is None:
            replica = self._least_loaded(None)
        if replica is None:
            raise StateError("no live replica in the fleet")
        local_id = replica.server.open_session(now=now)
        self._session_seq += 1
        session_id = f"f{self._session_seq:06d}"
        self._sessions[session_id] = _FleetSession(
            session_id, tenant, replica, local_id, now)
        replica.sessions += 1
        self._event("fleet.session.opened", session=session_id,
                    tenant=tenant, replica=replica.index,
                    generation=replica.generation)
        return session_id

    def route(self, session_id: str) -> int:
        """The replica index ``session_id`` is pinned to (pure lookup —
        what the routing property test pins)."""
        return self._lookup(session_id).replica.index

    def _lookup(self, session_id: str) -> _FleetSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise StateError(
                f"unknown or closed fleet session {session_id!r}")
        return session

    def close_session(self, session_id: str) -> None:
        session = self._lookup(session_id)
        replica = session.replica
        if not replica.retired:
            try:
                replica.server.close_session(session.local_id)
            except StateError:
                pass  # already gone server-side (dead replica)
        del self._sessions[session_id]
        replica.sessions -= 1
        self._event("fleet.session.closed", session=session_id,
                    tenant=session.tenant, replica=replica.index)

    def _drop_session(self, session: _FleetSession, reason: str) -> None:
        del self._sessions[session.session_id]
        session.replica.sessions -= 1
        self._event(f"fleet.session.{reason}",
                    session=session.session_id, tenant=session.tenant,
                    replica=session.replica.index)

    @property
    def sessions(self) -> int:
        """Open fleet session count."""
        return len(self._sessions)

    # -- admission -----------------------------------------------------------
    def submit(self, session_id: str, chunk, now: float | None = None):
        """Route one chunk to its session's replica, through the
        tenant's admission control; returns the replica's
        :class:`~repro.serve.batcher.Ticket`.

        Raises :class:`~repro.common.errors.CapacityError` when the
        tenant's token bucket / in-flight bound (or the replica's
        bounded queue) refuses the chunk, and
        :class:`~repro.common.errors.StateError` for an unknown,
        TTL-expired, or dead-replica session (clients reconnect via
        :meth:`open_session`, landing on a live replica).
        """
        now = self.clock() if now is None else now
        session = self._lookup(session_id)
        replica = session.replica
        if not replica.live:
            self._lost_sessions.inc()
            self._drop_session(session, "lost")
            raise StateError(
                f"session {session_id!r} lost: replica r{replica.index} "
                "is down — reconnect")
        if (self.session_ttl is not None
                and now - session.last_active > self.session_ttl
                and not replica.server.batcher.session_pending(
                    session.local_id)):
            try:
                replica.server.close_session(session.local_id)
            except StateError:
                pass
            self._drop_session(session, "reaped")
            raise StateError(
                f"session {session_id!r} expired after "
                f"{self.session_ttl:g}s idle")
        tenant = self._tenant(session.tenant)
        tenant.count("offered")
        tenant.refill(now)
        quota = tenant.quota
        if quota.rate_rps is not None and tenant.tokens < 1.0:
            tenant.count("rejected_quota")
            self._event("fleet.quota_rejected", session=session_id,
                        tenant=tenant.name, reason="rate")
            raise CapacityError(
                f"tenant {tenant.name!r} over its token-bucket rate "
                f"({quota.rate_rps:g} rps, burst {quota.burst})")
        if (quota.max_pending is not None
                and tenant.pending >= quota.max_pending):
            tenant.count("rejected_quota")
            self._event("fleet.quota_rejected", session=session_id,
                        tenant=tenant.name, reason="pending")
            raise CapacityError(
                f"tenant {tenant.name!r} at its in-flight bound "
                f"({quota.max_pending} chunks pending)")
        # Route guard: the session table is authoritative.  The misroute
        # fault site simulates a router bug picking another replica; the
        # guard detects the mismatch against the table and corrects it
        # before any replica state is touched (outputs stay bitwise
        # identical — pinned by test).
        if _faults.should_fire("fleet.route.misroute",
                               replica=replica.index):
            wrong = next((r for r in self._live()
                          if r.index != replica.index), None)
            if wrong is not None:
                self._misroutes.inc()
                self._event("fleet.misroute", session=session_id,
                            wanted=replica.index, got=wrong.index)
        try:
            ticket = replica.server.submit(session.local_id, chunk, now=now)
        except CapacityError:
            tenant.count("rejected_queue")
            raise
        except StateError:
            # The replica lost the session underneath us (should be
            # unreachable — the fleet owns session lifecycle); void the
            # attempt so the per-tenant books still conserve.
            tenant.count("voided")
            self._drop_session(session, "lost")
            raise
        if quota.rate_rps is not None:
            tenant.tokens -= 1.0
        tenant.count("admitted")
        tenant.track(+1)
        session.last_active = now
        self._outstanding.append((ticket, tenant, replica))
        return ticket

    # -- scheduling ----------------------------------------------------------
    @property
    def pending(self) -> int:
        """Chunks queued fleet-wide and not yet served."""
        return sum(r.server.pending for r in self._replicas)

    def ready(self, now: float | None = None) -> bool:
        now = self.clock() if now is None else now
        return any(r.server.ready(now=now) for r in self._live())

    def next_deadline(self) -> float | None:
        deadlines = [r.server.next_deadline() for r in self._live()]
        deadlines = [d for d in deadlines if d is not None]
        return min(deadlines) if deadlines else None

    def poll(self, now: float | None = None) -> int:
        """Run one due tick on every live replica; returns completed
        chunks.  Housekeeping rides every poll: the
        ``fleet.replica.down`` fault site is consulted per replica,
        idle sessions are reaped, resolved tickets are swept into the
        per-tenant books, and drained generations retire."""
        now = self.clock() if now is None else now
        for replica in self._live():
            if _faults.should_fire("fleet.replica.down",
                                   replica=replica.index):
                self._kill_replica(replica, now)
        self._reap_sessions(now)
        completed = 0
        for replica in self._live():
            completed += replica.server.poll(now=now)
        self._sweep()
        self._retire_drained()
        return completed

    def flush(self, now: float | None = None) -> int:
        """Drain every live replica's queue; returns completed chunks."""
        now = self.clock() if now is None else now
        completed = 0
        while True:
            progressed = sum(r.server.flush(now=now) for r in self._live())
            completed += progressed
            self._sweep()
            if not progressed or not any(r.server.pending
                                         for r in self._live()):
                break
        self._retire_drained()
        return completed

    def _kill_replica(self, replica: _Replica, now: float) -> None:
        replica.down = True
        failed = replica.server.fail_pending(
            "injected fault at site 'fleet.replica.down'", now=now)
        self._replicas_down.inc()
        self._event("fleet.replica.down", replica=replica.index,
                    generation=replica.generation, failed=failed,
                    sessions=replica.sessions)

    def _reap_sessions(self, now: float) -> None:
        if self.session_ttl is None:
            return
        reapable = [
            session for session in self._sessions.values()
            if now - session.last_active > self.session_ttl
            and (not session.replica.live
                 or not session.replica.server.batcher.session_pending(
                     session.local_id))
        ]
        for session in reapable:
            if session.replica.live:
                try:
                    session.replica.server.close_session(session.local_id)
                except StateError:
                    pass
            self._drop_session(session, "reaped")

    def _sweep(self) -> None:
        """Move resolved tickets from the in-flight list to the books."""
        if not self._outstanding:
            return
        still = []
        for entry in self._outstanding:
            ticket, tenant, replica = entry
            if not ticket.done:
                still.append(entry)
                continue
            tenant.track(-1)
            generation = self._generations[replica.generation]
            if ticket.ok:
                tenant.count("completed")
                if replica.generation == self._canary:
                    tenant.count("completed_canary")
                generation.window.append(
                    (tenant.name, True, ticket.divergence))
            elif ticket.expired:
                tenant.count("expired")
                generation.window.append((tenant.name, True, None))
            else:
                tenant.count("failed")
                generation.window.append((tenant.name, False, None))
        self._outstanding = still

    # -- canary rollout ------------------------------------------------------
    def deploy_canary(self, network=None, *, weight: float = 0.1,
                      replicas: int = 1, hardware=None, shadow: bool = False,
                      registry=None, name: str | None = None,
                      version: str | None = None, hardware_profile=None,
                      label: str | None = None) -> int:
        """Stand up a canary generation and send it ``weight`` of new
        sessions; returns the generation id.

        Three sources, in precedence order: ``registry`` loads a
        checkpoint (+ optionally its linked
        :meth:`~repro.serve.registry.ModelRegistry.save_pair` hardware
        profile); ``network`` serves an in-memory model; neither reuses
        the primary's network (a hardware-only canary — pass
        ``hardware=`` / ``shadow=True`` to canary a new realization of
        the same weights, the divergence-signal deployment).
        """
        if self._canary is not None:
            raise StateError(
                "a canary generation is already in flight; promote or "
                "roll it back before deploying another")
        if not 0.0 < weight <= 1.0:
            raise ValueError(f"canary weight must be in (0, 1], "
                             f"got {weight}")
        if replicas < 1:
            raise ValueError(
                f"a canary needs >= 1 replica, got {replicas}")
        model = meta = profile_id = None
        if registry is not None:
            name = name or self.model_name
            if name is None:
                raise StateError(
                    "deploy_canary(registry=...) needs a model name "
                    "(the fleet was not built from_registry)")
            network, hardware, version, profile_id, meta = _load_generation(
                registry, name, version, hardware_profile)
            label = label or version
            model = name
        if network is None:
            network = self._generations[self._primary].network
        gen_id = self._add_generation(
            network, hardware, shadow=shadow,
            label=label or f"g{self._gen_seq + 1}", count=replicas)
        if model is not None:
            for replica in self._generations[gen_id].replicas:
                replica.server.model_name = model
                replica.server.model_version = version
                replica.server.model_profile = profile_id
                replica.server.model_meta = meta
        self._canary = gen_id
        self._canary_weight = float(weight)
        self._event("fleet.canary.deployed", generation=gen_id,
                    weight=self._canary_weight,
                    label=self._generations[gen_id].label)
        return gen_id

    @property
    def canary_weight(self) -> float:
        return self._canary_weight

    @property
    def primary_generation(self) -> int:
        return self._primary

    @property
    def canary_generation(self) -> int | None:
        return self._canary

    @property
    def network(self):
        """The primary generation's served network."""
        return self._generations[self._primary].network

    @property
    def shadow(self) -> bool:
        """Whether any live replica shadows a hardware realization."""
        return any(r.server.shadow for r in self._live())

    def canary_status(self) -> dict:
        """The rolling signals the rollout decision reads."""
        if self._canary is None:
            raise StateError("no canary generation in flight")
        self._sweep()
        generation = self._generations[self._canary]
        window = list(generation.window)
        observed = len(window)
        errors = sum(1 for _, ok, _ in window if not ok)
        divergences = [d for _, _, d in window if d is not None]
        per_tenant: dict[str, dict] = {}
        for tenant, ok, _ in window:
            entry = per_tenant.setdefault(tenant,
                                          {"observed": 0, "errors": 0})
            entry["observed"] += 1
            entry["errors"] += 0 if ok else 1
        for entry in per_tenant.values():
            entry["error_rate"] = entry["errors"] / entry["observed"]
        return {
            "generation": self._canary,
            "label": generation.label,
            "weight": self._canary_weight,
            "sessions": sum(r.sessions for r in generation.replicas),
            "observed": observed,
            "error_rate": (errors / observed) if observed else 0.0,
            "mean_divergence": (sum(divergences) / len(divergences)
                                if divergences else None),
            "per_tenant": per_tenant,
        }

    def evaluate_canary(self, *, min_chunks: int = 32,
                        max_divergence: float = 0.05,
                        max_error_rate: float = 0.02) -> str:
        """``"promote"`` / ``"rollback"`` / ``"hold"`` from the rolling
        window: hold below ``min_chunks`` observations; roll back when
        the canary's mean shadow divergence exceeds ``max_divergence``
        or any adequately-sampled tenant's error rate exceeds
        ``max_error_rate``; promote otherwise.  Pure read — acting on
        the decision is :meth:`promote_canary` / :meth:`rollback_canary`.
        """
        status = self.canary_status()
        if status["observed"] < min_chunks:
            return "hold"
        floor = max(1, min_chunks // 4)
        tenant_rates = [entry["error_rate"]
                        for entry in status["per_tenant"].values()
                        if entry["observed"] >= floor]
        worst = max([status["error_rate"], *tenant_rates])
        if worst > max_error_rate:
            return "rollback"
        divergence = status["mean_divergence"]
        if divergence is not None and divergence > max_divergence:
            return "rollback"
        return "promote"

    def promote_canary(self) -> int:
        """Make the canary generation primary.  New sessions all land on
        it; the old generation drains generation-fenced (existing
        sessions finish where they are) and retires once idle."""
        if self._canary is None:
            raise StateError("no canary generation to promote")
        old = self._primary
        self._primary = self._canary
        self._canary = None
        self._canary_weight = 0.0
        self._generations[old].draining = True
        self._event("fleet.canary.promoted",
                    generation=self._primary, draining=old)
        self._retire_drained()
        return self._primary

    def rollback_canary(self) -> int:
        """Stop routing new sessions to the canary; it drains
        generation-fenced and retires once idle."""
        if self._canary is None:
            raise StateError("no canary generation to roll back")
        cancelled = self._canary
        self._canary = None
        self._canary_weight = 0.0
        self._generations[cancelled].draining = True
        self._event("fleet.canary.rolled_back", generation=cancelled)
        self._retire_drained()
        return cancelled

    def drained(self, generation: int) -> bool:
        """Whether every replica of ``generation`` has retired (or died)."""
        gen = self._generations.get(generation)
        if gen is None:
            raise StateError(f"unknown generation {generation!r}")
        return all(not r.live for r in gen.replicas)

    def _retire_drained(self) -> None:
        for generation in self._generations.values():
            if not generation.draining:
                continue
            for replica in generation.replicas:
                if (replica.live and replica.sessions == 0
                        and replica.server.pending == 0):
                    replica.retired = True
                    replica.server.close()
                    self._event("fleet.replica.retired",
                                replica=replica.index,
                                generation=generation.gen)

    # -- offline bulk --------------------------------------------------------
    def run_batch(self, inputs, batch_size: int = 64):
        """Stateless bulk inference on the least-loaded primary replica,
        sharded over its generation's worker pool when the fleet was
        built with ``workers >= 1`` (one pool per generation network via
        the shared :class:`~repro.runtime.pool.PoolCache`)."""
        replica = self._least_loaded(self._primary)
        if replica is None:
            raise StateError("no live replica in the fleet")
        pool = None
        if self.workers:
            server = replica.server
            pooled = (server.hardware.hardware_network
                      if server.hardware is not None and not server.shadow
                      else server.network)
            pool = self._pools.get(pooled, self.workers)
        return replica.server.run_batch(inputs, batch_size, pool=pool)

    # -- aggregation ---------------------------------------------------------
    def mean_divergence(self) -> float | None:
        """Fleet-wide mean per-chunk shadow divergence, or ``None``."""
        chunks = sum(r.server.stats["shadow_chunks"]
                     for r in self._replicas)
        if not chunks:
            return None
        total = sum(r.server.stats["divergence_sum"]
                    for r in self._replicas)
        return total / chunks

    def check_invariants(self) -> dict:
        """Fleet-wide ticket accounting tripwire.

        Verifies every replica's own books
        (:meth:`ModelServer.check_invariants`), then the fleet-level
        conservation laws: per tenant, offered == admitted +
        rejected_quota + rejected_queue + voided, and admitted ==
        completed + failed + expired + in-flight; across the fleet,
        tenant admissions + queue rejections == replica submissions.
        Raises :class:`~repro.common.errors.StateError` on drift;
        returns the aggregated books.
        """
        self._sweep()
        per_replica = {f"r{r.index}": r.server.check_invariants()
                       for r in self._replicas}
        in_flight: collections.Counter = collections.Counter()
        for _, tenant, _ in self._outstanding:
            in_flight[tenant.name] += 1
        per_tenant = {}
        for name, tenant in self._tenants.items():
            books = tenant.books
            offered = books["offered"]
            decided = (books["admitted"] + books["rejected_quota"]
                       + books["rejected_queue"] + books["voided"])
            if offered != decided:
                raise StateError(
                    f"tenant {name!r} admission drift: offered={offered} "
                    f"but decided={decided} ({books})")
            resolved = (books["completed"] + books["failed"]
                        + books["expired"] + books["pending"])
            if books["admitted"] != resolved:
                raise StateError(
                    f"tenant {name!r} resolution drift: "
                    f"admitted={books['admitted']} but "
                    f"resolved={resolved} ({books})")
            if books["pending"] != in_flight[name]:
                raise StateError(
                    f"tenant {name!r} in-flight drift: books say "
                    f"{books['pending']} pending but "
                    f"{in_flight[name]} tickets are outstanding")
            per_tenant[name] = books
        admitted = sum(b["admitted"] for b in per_tenant.values())
        queue_rejected = sum(b["rejected_queue"]
                             for b in per_tenant.values())
        submitted = sum(b["submitted"] for b in per_replica.values())
        if admitted + queue_rejected != submitted:
            raise StateError(
                f"fleet routing drift: tenants admitted {admitted} + "
                f"{queue_rejected} queue-rejected but replicas booked "
                f"{submitted} submissions")
        return {
            "submitted": submitted,
            "admitted": admitted,
            "per_replica": per_replica,
            "per_tenant": per_tenant,
        }

    @property
    def replicas(self) -> int:
        """Total replica slots (live + down + retired)."""
        return len(self._replicas)

    @property
    def live_replicas(self) -> int:
        return len(self._live())

    @property
    def stats(self) -> dict:
        """Aggregated counters plus per-replica / per-tenant breakdowns."""
        aggregate: collections.Counter = collections.Counter()
        for replica in self._replicas:
            for key, value in replica.server.stats.items():
                if key == "max_tick_batch":
                    aggregate[key] = max(aggregate[key], value)
                else:
                    aggregate[key] += value
        view = dict(aggregate)
        view.update(
            replicas=len(self._replicas),
            live_replicas=self.live_replicas,
            replicas_down=int(self._replicas_down.value),
            misroutes=int(self._misroutes.value),
            lost_sessions=int(self._lost_sessions.value),
            sessions=len(self._sessions),
            primary_generation=self._primary,
            canary_generation=self._canary,
            canary_weight=self._canary_weight,
            per_replica=[
                {"replica": r.index, "generation": r.generation,
                 "down": r.down, "retired": r.retired,
                 "sessions": r.sessions, "pending": r.server.pending}
                for r in self._replicas
            ],
            per_tenant={name: tenant.books
                        for name, tenant in self._tenants.items()},
        )
        return view

    def _queue_wait_window(self) -> list[tuple]:
        """(histogram, start-count) pairs for every replica's queue-wait
        histogram — :func:`~repro.serve.loadgen.open_loop_fleet` windows
        the fleet-wide p95 across them."""
        return [(r.server._queue_wait, r.server._queue_wait.count)
                for r in self._replicas]

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Close every replica and any owned worker pools (idempotent)."""
        for replica in self._replicas:
            replica.server.close()
        self._sessions.clear()
        self._outstanding.clear()
        if self._owned_pools is not None:
            self._owned_pools.close()

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        canary = (f", canary gen{self._canary}@{self._canary_weight:g}"
                  if self._canary is not None else "")
        return (f"Fleet({len(self._replicas)} replicas "
                f"({self.live_replicas} live), "
                f"{len(self._sessions)} sessions, "
                f"{len(self._tenants)} tenants{canary})")


def _noop_event(name: str, **attrs) -> None:
    return None


def _load_generation(registry, name: str, version: str | None,
                     hardware_profile):
    """Resolve one (network, hardware, version, profile, meta) generation
    from a registry — the :meth:`ModelServer.from_registry` pairing
    rules, shared by :meth:`Fleet.from_registry` and
    :meth:`Fleet.deploy_canary`."""
    version = version or registry.latest(name)
    network, meta = registry.load(name, version)
    hardware = None
    profile_id = None
    if hardware_profile is not None and hardware_profile is not False:
        if hardware_profile is True:
            for entry in registry.list_profiles(name):
                if entry["meta"].get("checkpoint") == version:
                    profile_id = entry["profile"]
            profile_id = profile_id or registry.latest_profile(name)
        else:
            profile_id = hardware_profile
        profile, _ = registry.load_profile(name, profile_id)
        hardware = profile.build(network)
    return network, hardware, version, profile_id, meta
