"""Fig. 4 — dataset raster samples (synthetic N-MNIST and SHD).

Regenerates one sample of each dataset and checks the event statistics
that make them suitable stand-ins: dense saccade-locked DVS activity for
N-MNIST, sparse channel-structured cochlea activity for SHD.
"""

import numpy as np

from conftest import bench_experiment


def test_fig4_dataset_samples(benchmark):
    result = bench_experiment(benchmark, "fig4")
    summary = result.summary

    # Both rasters contain activity.
    assert summary["nmnist_total_spikes"] > 100
    assert summary["shd_total_spikes"] > 100

    # SHD is sparse (real SHD ~1-5 % density); the DVS raster is denser.
    assert summary["shd_mean_rate"] < 0.15
    assert summary["nmnist_mean_rate"] > summary["shd_mean_rate"] / 2

    nmnist = result.data["nmnist"]           # (T, 2312)
    shd = result.data["shd"]                 # (T, 700)
    assert nmnist.shape[1] == 34 * 34 * 2
    assert shd.shape[1] == 700

    # N-MNIST: the three saccade legs each generate events.
    steps = nmnist.shape[0]
    thirds = [nmnist[i * steps // 3:(i + 1) * steps // 3].sum()
              for i in range(3)]
    assert all(third > 0 for third in thirds)

    # SHD: activity is band-structured — some channels silent, some busy.
    per_channel = shd.sum(axis=0)
    assert (per_channel == 0).sum() > 20
    assert (per_channel > 0).sum() > 100
