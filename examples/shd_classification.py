"""SHD classification (paper Section V-A, Table II right column).

Generates the synthetic Spiking Heidelberg Digits substitute (formant
speech -> artificial cochlea -> 700 spike trains, 20 classes), trains the
paper's feedforward adaptive-threshold MLP, and reruns the trained weights
under hard-reset dynamics — the paper's headline ablation.

Run:  python examples/shd_classification.py            (reduced scale)
      REPRO_PROFILE=full python examples/shd_classification.py
"""

import os

import numpy as np

from repro import CrossEntropyRateLoss, Trainer, TrainerConfig
from repro.analysis import confusion_matrix
from repro.common.asciiplot import raster_plot
from repro.core.calibration import calibrate_firing
from repro.core.model_zoo import shd_mlp
from repro.data import SyntheticSHDConfig, generate_shd


def main():
    full = os.environ.get("REPRO_PROFILE", "ci").lower() == "full"
    data_cfg = SyntheticSHDConfig(n_per_class=200 if full else 40, steps=100)
    print(f"generating synthetic SHD ({20 * data_cfg.n_per_class} samples)...")
    dataset = generate_shd(data_cfg, rng=0)
    train, test = dataset.split(0.8, rng=1)

    sample_x, sample_y = dataset[0]
    print(raster_plot(sample_x.T, height=14, width=70,
                      title=f"sample raster: {dataset.class_names[sample_y]}"))

    network = shd_mlp(profile="paper" if full else "reduced", rng=2)
    print(f"network: {network}")
    calibrate_firing(network, train.inputs[:48], target_rate=0.08)

    trainer = Trainer(
        network, CrossEntropyRateLoss(),
        TrainerConfig(epochs=40 if full else 25, batch_size=64,
                      learning_rate=1e-3, optimizer="adamw"),
        rng=3,
    )
    trainer.fit(train.inputs, train.targets, test.inputs, test.targets,
                verbose=True)

    adaptive = trainer.evaluate(test.inputs, test.targets)["accuracy"]
    hard_reset = trainer.evaluate(
        test.inputs, test.targets,
        network=network.with_neuron_kind("hard_reset"))["accuracy"]
    euler = trainer.evaluate(
        test.inputs, test.targets,
        network=network.with_neuron_kind("hard_reset_euler"))["accuracy"]

    print("\n--- Table II (SHD), this run ---")
    print(f"adaptive threshold (this work):      {100 * adaptive:6.2f} %   "
          f"(paper: 85.69 %)")
    print(f"hard reset, impulse discretization:  {100 * hard_reset:6.2f} %   "
          f"(paper HR: 26.36 %)")
    print(f"hard reset, forward-Euler reading:   {100 * euler:6.2f} %   "
          f"(chance: 5 %)")

    predictions = trainer.loss.predict(
        network.run(test.inputs[:200])[0])
    matrix = confusion_matrix(predictions, test.targets[:200], n_classes=20)
    en_de_confusions = matrix[:10, 10:].sum() + matrix[10:, :10].sum()
    print(f"\ncross-language confusions in the first 200 test samples: "
          f"{en_de_confusions} of {matrix.sum()}")


if __name__ == "__main__":
    main()
