"""Unit tests for the neuron circuit (Fig. 6/7) and power/area estimation."""

import numpy as np
import pytest

from repro.hardware.mapped_network import (
    HardwareMappedNetwork,
    accuracy_under_variation,
)
from repro.hardware.devices import RRAMDeviceConfig
from repro.hardware.neuron_circuit import (
    NeuronCircuitConfig,
    build_neuron_circuit,
    simulate_neuron,
)
from repro.hardware.power import (
    PAPER_POWER_REPORT,
    AreaModelConfig,
    PowerModelConfig,
    estimate_area,
    estimate_power,
)
from repro.core.network import SpikingNetwork


@pytest.fixture(scope="module")
def burst_result():
    """One simulated burst (3 close spikes) plus two isolated spikes."""
    return simulate_neuron([50, 70, 90, 250, 450],
                           config=NeuronCircuitConfig(), duration_ns=700)


class TestCircuitConfig:
    def test_paper_time_constant(self):
        config = NeuronCircuitConfig()
        # R = 4.56k, C = 10.14p -> ~46 ns; ~4 steps of 10 ns (Table I tau).
        assert config.tau_seconds == pytest.approx(46.2e-9, rel=0.01)
        assert config.tau_steps == pytest.approx(4.6, rel=0.01)

    def test_validation(self):
        with pytest.raises(Exception):
            NeuronCircuitConfig(r_filter=-1.0)
        with pytest.raises(Exception):
            NeuronCircuitConfig(v_bias=5.0, spike_amplitude=2.5)


class TestNeuronCircuitBehaviour:
    def test_burst_fires_exactly_once(self, burst_result):
        assert burst_result.output_spike_count() == 1

    def test_psp_crosses_threshold_only_at_burst(self, burst_result):
        g = burst_result["g"]
        threshold = burst_result["threshold"]
        above = g > threshold
        time_ns = burst_result.time * 1e9
        # Crossing happens during the burst window (roughly 50-150 ns).
        assert np.any(above[(time_ns > 50) & (time_ns < 150)])
        # The isolated spikes at 250/450 ns must not cross (refractory or
        # single-spike PSP too small).
        assert not np.any(above[(time_ns > 240) & (time_ns < 320)])

    def test_threshold_rises_then_decays(self, burst_result):
        threshold = burst_result["threshold"]
        base = threshold[20]
        peak_index = int(np.argmax(threshold))
        assert threshold[peak_index] > base + 0.01
        assert threshold[-1] == pytest.approx(base, abs=0.02)

    def test_feedback_mirrors_comparator(self, burst_result):
        # h(t) is the low-passed comparator output: it must peak after
        # the comparator does and be smoother (smaller max slope).
        cmp_out = burst_result["comparator"]
        feedback = burst_result["feedback"]
        assert int(np.argmax(feedback)) >= int(np.argmax(cmp_out))
        assert np.max(np.abs(np.diff(feedback))) < np.max(np.abs(np.diff(cmp_out)))

    def test_output_spike_rail_to_rail(self, burst_result):
        spike = burst_result["spike"]
        config = burst_result.config
        assert spike.max() > 0.95 * config.v_dd
        assert spike.min() < 0.05 * config.v_dd

    def test_no_input_no_spike(self):
        result = simulate_neuron([50], config=NeuronCircuitConfig(),
                                 duration_ns=300)
        assert result.output_spike_count() == 0

    def test_requires_spikes(self):
        with pytest.raises(ValueError):
            simulate_neuron([])

    def test_netlist_component_count(self):
        circuit = build_neuron_circuit(NeuronCircuitConfig(), [10.0])
        names = {c.name for c in circuit.components}
        for expected in ("vin", "r_syn", "c_syn", "r_mem", "r_sense",
                         "cmp", "r_fb", "c_fb", "bias", "inv1", "inv2"):
            assert expected in names


class TestPowerEstimate:
    def test_paper_scenario_in_regime(self):
        """300 steps x 10 ns, 14 spikes: all quantities within 2.5x of the
        paper's Cadence numbers (same methodology, behavioral models)."""
        rng = np.random.default_rng(0)
        steps = np.sort(rng.choice(np.arange(5, 295), 14, replace=False))
        result = simulate_neuron([float(s) * 10 for s in steps],
                                 config=NeuronCircuitConfig(),
                                 duration_ns=3000, dt_ns=0.5)
        report = estimate_power(result)
        for measured, paper in [
            (report.min_power_w, PAPER_POWER_REPORT["min_power_w"]),
            (report.max_power_w, PAPER_POWER_REPORT["max_power_w"]),
            (report.avg_power_w, PAPER_POWER_REPORT["avg_power_w"]),
            (report.energy_j, PAPER_POWER_REPORT["energy_j"]),
        ]:
            assert paper / 2.5 < measured < paper * 2.5
        assert report.min_power_w < report.avg_power_w < report.max_power_w

    def test_energy_equals_power_integral(self, burst_result):
        report = estimate_power(burst_result)
        dt = burst_result.time[1] - burst_result.time[0]
        assert report.energy_j == pytest.approx(
            float(report.power_trace_w.sum() * dt))

    def test_static_floor(self, burst_result):
        model = PowerModelConfig()
        report = estimate_power(burst_result, model)
        assert report.min_power_w >= model.total_static_w

    def test_more_spikes_more_energy(self):
        few = simulate_neuron([100], duration_ns=1000)
        many = simulate_neuron([100, 200, 300, 400, 500, 600],
                               duration_ns=1000)
        assert estimate_power(many).energy_j > estimate_power(few).energy_j

    def test_table_rows_format(self, burst_result):
        rows = estimate_power(burst_result).table_rows()
        assert len(rows) == 4
        assert all(len(row) == 3 for row in rows)


class TestAreaEstimate:
    def test_total_near_paper(self):
        area = estimate_area()
        assert area["total_mm2"] == pytest.approx(
            PAPER_POWER_REPORT["area_mm2"], rel=0.3)

    def test_capacitors_dominate(self):
        area = estimate_area()
        cap_total = area["synapse_cap_um2"] + area["feedback_cap_um2"]
        assert cap_total > 0.5 * area["total_um2"]

    def test_scales_with_capacitance(self):
        small = estimate_area(NeuronCircuitConfig())
        big = estimate_area(NeuronCircuitConfig(c_filter=20e-12))
        assert big["total_mm2"] > small["total_mm2"]

    def test_custom_model(self):
        model = AreaModelConfig(mim_cap_density_f_per_um2=4e-15)
        dense = estimate_area(model=model)
        assert dense["total_mm2"] < estimate_area()["total_mm2"]


class TestMappedNetwork:
    def _toy_network(self):
        net = SpikingNetwork((6, 5, 3), rng=0)
        for layer in net.layers:
            layer.weight *= 8.0
        return net

    def test_zero_variation_high_precision_matches_software(self):
        net = self._toy_network()
        device = RRAMDeviceConfig(levels=2 ** 12, variation=0.0)
        mapped = HardwareMappedNetwork(net, device, rng=0)
        rng = np.random.default_rng(1)
        x = (rng.random((4, 15, 6)) < 0.4).astype(float)
        soft, _ = net.run(x)
        hard, _ = mapped.run(x)
        # 12-bit weights: spike trains should be virtually identical.
        assert np.mean(soft != hard) < 0.02

    def test_weight_errors_grow_with_variation(self):
        net = self._toy_network()
        errors = []
        for variation in (0.0, 0.2, 0.5):
            device = RRAMDeviceConfig(levels=2 ** 6, variation=variation)
            mapped = HardwareMappedNetwork(net, device, rng=3)
            errors.append(np.mean(mapped.weight_errors()))
        assert errors[0] < errors[1] < errors[2]

    def test_accuracy_under_variation_returns_mean_std(self):
        net = self._toy_network()
        rng = np.random.default_rng(2)
        x = (rng.random((12, 10, 6)) < 0.4).astype(float)
        labels = np.arange(12) % 3
        mean, std = accuracy_under_variation(net, x, labels, bits=4,
                                             variation=0.2, n_seeds=2, rng=4)
        assert 0.0 <= mean <= 1.0
        assert std >= 0.0
