"""Fig. 1 — synapse PSP and adaptive-threshold dynamics.

Regenerates the traces of the paper's didactic figure: two synapses'
PSPs, their weighted sum, and the threshold that jumps on every output
spike and decays exponentially back toward Vth.
"""

import numpy as np

from conftest import bench_experiment


def test_fig1_dynamics(benchmark):
    result = bench_experiment(benchmark, "fig1")
    summary = result.summary

    # The scenario elicits output spikes and the threshold reacts.
    assert summary["output_spikes"] >= 1
    assert summary["threshold_peak"] > summary["threshold_base"]

    # Threshold jump after a spike ~ theta (Table I theta = 1, decayed by
    # one step of tau_r = 4 -> e^(-1/4) ~ 0.78).
    assert 0.3 < summary["mean_jump_after_spike"] <= 1.0

    threshold = result.data["threshold"]
    outputs = result.data["outputs"]
    spikes_at = np.flatnonzero(outputs)

    # Between output spikes the threshold decays monotonically (exponential
    # relaxation, eq. 8) back toward the base value.
    quiet = np.ones(len(threshold), dtype=bool)
    for t in spikes_at:
        quiet[t:t + 2] = False
    decay_deltas = np.diff(threshold)[quiet[1:]]
    assert np.all(decay_deltas <= 1e-9)

    # PSPs are non-negative and the summed PSP equals the parts.
    np.testing.assert_allclose(
        result.data["sum"], result.data["psp_1"] + result.data["psp_2"],
        atol=1e-12)
