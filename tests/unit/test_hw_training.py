"""Hardware-aware training: shared quantization grids, the engine weight
override, the straight-through estimator, and the co-trained
checkpoint+profile registry round-trip.

The load-bearing guarantees pinned here:

* train-time fake-quant and map-time crossbar programming share ONE grid
  (bitwise, by construction — both run the same conductance pipeline);
* an all-zero layer round-trips bitwise through every quantization path
  (regression: the naive ``max(|w|)`` scale divided by zero and silently
  propagated NaN into the conductances);
* ``run(weights=)`` / ``backward(weights=)`` are transparent when the
  override equals the installed weights, and equivalent to installing the
  override on a clone otherwise;
* hardware-aware training is bitwise-identical between the serial path
  and the shared-memory worker pool, deterministic under its profile
  seed, and measurably improves post-mapping accuracy over post-hoc
  mapping on a small SHD slice (pinned seeds);
* ``ModelRegistry.save_pair`` + ``ModelServer.from_registry(
  hardware_profile=True)`` cold-start exactly the co-trained pair.
"""

import numpy as np
import pytest

from repro.common.errors import ConfigError, ShapeError
from repro.common.rng import RandomState
from repro.core import (
    CrossEntropyRateLoss,
    SpikingNetwork,
    Trainer,
    TrainerConfig,
    backward,
)
from repro.data import SyntheticSHDConfig, generate_shd
from repro.hardware import (
    DifferentialCrossbar,
    HardwareProfile,
    RRAMDeviceConfig,
    accuracy_under_variation,
    fake_quantize,
    quantize_weights,
    resolve_weight_scale,
    sample_programmed_weights,
    weights_to_conductances,
)
from repro.hardware.quantization import QuantizationConfig, \
    conductances_to_weights


def _spikes(shape, density=0.08, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random(shape) < density).astype(np.float64)


# ---------------------------------------------------------------------------
# Shared train-time / map-time grid
# ---------------------------------------------------------------------------
class TestSharedGrid:
    @pytest.mark.parametrize("bits", [2, 4, 5, 8])
    def test_fake_quantize_is_bitwise_the_crossbar_grid(self, bits):
        """fake_quantize == a noise-free crossbar's achieved weights."""
        rng = np.random.default_rng(bits)
        weights = rng.normal(0, 0.2, (9, 13))
        device = RRAMDeviceConfig(levels=2 ** bits)
        crossbar = DifferentialCrossbar(weights, device, rng=1)
        np.testing.assert_array_equal(
            fake_quantize(weights, device),
            np.asarray(crossbar.effective_weights()))

    def test_fake_quantize_idempotent(self):
        rng = np.random.default_rng(3)
        weights = rng.normal(0, 0.2, (6, 6))
        device = RRAMDeviceConfig(levels=16)
        once = fake_quantize(weights, device)
        scale = resolve_weight_scale(weights)
        np.testing.assert_allclose(
            fake_quantize(once, device, scale=scale), once, atol=1e-15)

    def test_sampled_programming_matches_crossbar_draw(self):
        """Same root seed -> the trainer's noise draw IS the crossbar's
        first programming (variation and stuck-at included)."""
        rng = np.random.default_rng(7)
        weights = rng.normal(0, 0.2, (8, 5))
        device = RRAMDeviceConfig(levels=16, variation=0.15,
                                  stuck_at_rate=0.05)
        crossbar = DifferentialCrossbar(weights, device, rng=42)
        np.testing.assert_array_equal(
            sample_programmed_weights(weights, device, rng=42),
            np.asarray(crossbar.effective_weights()))

    def test_sampled_programming_matches_crossbar_read_noise(self):
        """With read noise the draw matches the crossbar's first *read*
        (programming then read, per polarity stream) — so training under
        a read-noise profile sees exactly the serving noise model."""
        rng = np.random.default_rng(9)
        weights = rng.normal(0, 0.2, (7, 6))
        device = RRAMDeviceConfig(levels=16, variation=0.1,
                                  read_noise=0.05)
        crossbar = DifferentialCrossbar(weights, device, rng=21)
        np.testing.assert_array_equal(
            sample_programmed_weights(weights, device, rng=21),
            np.asarray(crossbar.effective_weights()))

    def test_trainer_noise_path_covers_read_noise(self):
        """A read-noise-only profile must not silently degrade to the
        deterministic quantize path (regression)."""
        profile = HardwareProfile.create(bits=4, variation=0.0,
                                         read_noise=0.05, seed=3)
        network = SpikingNetwork((10, 8, 4), rng=0)
        trainer = Trainer(network, CrossEntropyRateLoss(),
                          TrainerConfig(epochs=1, hardware=profile), rng=0)
        first = trainer.hardware_weights()
        second = trainer.hardware_weights()
        assert any(not np.array_equal(a, b)
                   for a, b in zip(first, second))

    def test_sampled_programming_varies_with_rng(self):
        weights = np.random.default_rng(1).normal(0, 0.2, (8, 5))
        device = RRAMDeviceConfig(levels=16, variation=0.1)
        a = sample_programmed_weights(weights, device, rng=0)
        b = sample_programmed_weights(weights, device, rng=1)
        assert not np.array_equal(a, b)

    def test_sampled_programming_without_noise_is_fake_quantize(self):
        weights = np.random.default_rng(2).normal(0, 0.2, (4, 6))
        device = RRAMDeviceConfig(levels=16)
        np.testing.assert_array_equal(
            sample_programmed_weights(weights, device, rng=5),
            fake_quantize(weights, device))


# ---------------------------------------------------------------------------
# Zero-layer regression (ISSUE: max(|w|) scale divided by zero -> NaN)
# ---------------------------------------------------------------------------
class TestZeroLayerRegression:
    def test_resolve_weight_scale_guards_zero(self):
        assert resolve_weight_scale(np.zeros((3, 4))) == 1.0
        assert resolve_weight_scale(np.zeros((3, 4)), scale=0.0) == 1.0
        assert resolve_weight_scale(np.ones((2, 2)), scale=0.5) == 0.5
        assert resolve_weight_scale(np.full((2, 2), 3.0)) == 3.0

    def test_zero_layer_conductances_are_finite(self):
        device = RRAMDeviceConfig(levels=16)
        g_plus, g_minus, scale = weights_to_conductances(
            np.zeros((4, 5)), device)
        assert scale == 1.0
        assert np.all(np.isfinite(g_plus)) and np.all(np.isfinite(g_minus))
        np.testing.assert_array_equal(g_plus, device.g_min)
        np.testing.assert_array_equal(g_minus, device.g_min)

    def test_zero_layer_roundtrips_bitwise(self):
        """zeros -> conductances -> weights is exactly zeros, on every
        software path and on a real crossbar."""
        zeros = np.zeros((4, 5))
        device = RRAMDeviceConfig(levels=16)
        np.testing.assert_array_equal(fake_quantize(zeros, device), zeros)
        np.testing.assert_array_equal(
            quantize_weights(zeros, QuantizationConfig(bits=4)), zeros)
        g_plus, g_minus, scale = weights_to_conductances(zeros, device)
        np.testing.assert_array_equal(
            conductances_to_weights(g_plus, g_minus, device, scale), zeros)
        crossbar = DifferentialCrossbar(zeros, device, rng=0)
        np.testing.assert_array_equal(
            np.asarray(crossbar.effective_weights()), zeros)

    def test_zero_layer_inside_network_mapping(self):
        """A network with one pruned (all-zero) layer maps NaN-free.

        With device variation the pair of ``g_min`` devices legitimately
        jitters (real physics, small and finite); without it the layer
        must come back exactly zero."""
        from repro.hardware.mapped_network import HardwareMappedNetwork

        network = SpikingNetwork((10, 8, 4), rng=0)
        network.layers[-1].weight[:] = 0.0
        noisy = HardwareMappedNetwork(
            network, RRAMDeviceConfig(levels=16, variation=0.1), rng=1)
        for achieved in noisy.weight_list():
            assert np.all(np.isfinite(achieved))
        clean = HardwareMappedNetwork(
            network, RRAMDeviceConfig(levels=16), rng=1)
        assert np.all(np.isfinite(clean.weight_list()[0]))
        np.testing.assert_array_equal(clean.weight_list()[-1], 0.0)


# ---------------------------------------------------------------------------
# Engine weight override (forward + backward)
# ---------------------------------------------------------------------------
class TestWeightOverride:
    def setup_method(self):
        self.network = SpikingNetwork((20, 12, 5), rng=1)
        self.x = _spikes((4, 30, 20))
        self.labels = np.arange(4) % 5
        self.loss = CrossEntropyRateLoss()

    def test_identity_override_is_bitwise_transparent(self):
        override = [w.copy() for w in self.network.weights]
        base_out, base_rec = self.network.run(self.x, record=True)
        out, rec = self.network.run(self.x, record=True, weights=override)
        np.testing.assert_array_equal(base_out, out)
        _, grad_out = self.loss.value_and_grad(base_out, self.labels)
        base = backward(self.network, base_rec, grad_out)
        result = backward(self.network, rec, grad_out, weights=override)
        for a, b in zip(base.weight_grads, result.weight_grads):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(base.input_grad, result.input_grad)

    def test_override_equals_installed_weights(self):
        override = [0.5 * w for w in self.network.weights]
        clone = SpikingNetwork((20, 12, 5), rng=1)
        clone.set_weights(override)
        a, rec_a = self.network.run(self.x, record=True, weights=override)
        b, rec_b = clone.run(self.x, record=True)
        np.testing.assert_array_equal(a, b)
        _, grad_out = self.loss.value_and_grad(a, self.labels)
        ga = backward(self.network, rec_a, grad_out, weights=override)
        gb = backward(clone, rec_b, grad_out)
        for x, y in zip(ga.weight_grads, gb.weight_grads):
            np.testing.assert_array_equal(x, y)

    def test_override_hard_reset_kind(self):
        network = SpikingNetwork((20, 12, 5), neuron_kind="hard_reset",
                                 rng=1)
        override = [0.5 * w for w in network.weights]
        clone = SpikingNetwork((20, 12, 5), neuron_kind="hard_reset", rng=1)
        clone.set_weights(override)
        a, _ = network.run(self.x, weights=override)
        b, _ = clone.run(self.x)
        np.testing.assert_array_equal(a, b)

    def test_step_engine_rejects_override(self):
        with pytest.raises(ValueError):
            self.network.run(self.x, engine="step",
                             weights=list(self.network.weights))

    def test_reference_backward_rejects_override(self):
        out, rec = self.network.run(self.x, record=True)
        _, grad_out = self.loss.value_and_grad(out, self.labels)
        with pytest.raises(ValueError):
            backward(self.network, rec, grad_out, engine="reference",
                     weights=list(self.network.weights))

    def test_override_shape_validation(self):
        with pytest.raises(ShapeError):
            self.network.run(self.x, weights=[self.network.weights[0]])
        bad = [np.zeros((3, 3)) for _ in self.network.weights]
        with pytest.raises(ShapeError):
            self.network.run(self.x, weights=bad)


# ---------------------------------------------------------------------------
# The hardware-aware trainer (straight-through estimator)
# ---------------------------------------------------------------------------
def _aware_trainer(network, profile, workers=0, lr=1e-3):
    config = TrainerConfig(epochs=1, batch_size=16, learning_rate=lr,
                           workers=workers, hardware=profile)
    return Trainer(network, CrossEntropyRateLoss(), config, rng=2)


class TestHardwareAwareTrainer:
    def setup_method(self):
        self.x = _spikes((16, 40, 30), seed=3)
        self.labels = np.arange(16) % 5

    def _network(self):
        return SpikingNetwork((30, 16, 5), rng=1)

    def test_config_requires_profile_and_fused(self):
        profile = HardwareProfile.create(bits=4)
        with pytest.raises(ConfigError):
            TrainerConfig(hardware="not-a-profile")
        with pytest.raises(ConfigError):
            TrainerConfig(hardware=profile, engine="step")
        TrainerConfig(hardware=profile)  # valid

    def test_hardware_weights_quantize_only_is_fake_quantize(self):
        profile = HardwareProfile.create(bits=4, variation=0.0, seed=7)
        network = self._network()
        trainer = _aware_trainer(network, profile)
        override = trainer.hardware_weights()
        for got, layer in zip(override, network.layers):
            np.testing.assert_array_equal(
                got, fake_quantize(layer.weight, profile.device))
        # Deterministic: no noise stream is consumed.
        for a, b in zip(override, trainer.hardware_weights()):
            np.testing.assert_array_equal(a, b)

    def test_hardware_weights_noise_draws_advance(self):
        profile = HardwareProfile.create(bits=4, variation=0.1, seed=7)
        trainer = _aware_trainer(self._network(), profile)
        first = trainer.hardware_weights()
        second = trainer.hardware_weights()
        assert any(not np.array_equal(a, b)
                   for a, b in zip(first, second))

    def test_ideal_trainer_returns_none(self):
        network = self._network()
        trainer = Trainer(network, CrossEntropyRateLoss(),
                          TrainerConfig(epochs=1), rng=0)
        assert trainer.hardware_weights() is None

    def test_noise_stream_reproducible(self):
        """Two aware trainers with the same profile produce identical
        weights after identical batches (the profile seed pins the
        per-step draws)."""
        profile = HardwareProfile.create(bits=4, variation=0.1, seed=11)
        results = []
        for _ in range(2):
            network = self._network()
            trainer = _aware_trainer(network, profile)
            trainer.train_batch(self.x, self.labels)
            trainer.train_batch(self.x, self.labels)
            results.append([w.copy() for w in network.weights])
        for a, b in zip(*results):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_pooled_aware_training_matches_serial_shards(self, workers):
        """The pooled STE step == the serial execution of the same shard
        split, bitwise (the override rides the shared-memory weight
        block)."""
        from repro.runtime.parallel import data_parallel_grads

        profile = HardwareProfile.create(bits=4, variation=0.1, seed=5)
        network = self._network()
        serial_net = self._network()
        trainer = _aware_trainer(network, profile, workers=workers)
        serial = _aware_trainer(serial_net, profile, workers=0)
        try:
            trainer.train_batch(self.x, self.labels)
        finally:
            trainer.close()
        # Replay the same step serially on the same shard split.
        override = serial.hardware_weights()
        loss_value, grads = data_parallel_grads(
            serial_net, serial.loss, self.x, self.labels,
            n_shards=workers, weights=override)
        serial.optimizer.step(grads)
        for a, b in zip(network.weights, serial_net.weights):
            np.testing.assert_array_equal(a, b)

    def test_high_bits_ste_matches_ideal_gradients(self):
        """With enough bits the quantizer is (numerically) the identity:
        one aware step lands within float tolerance of the ideal step."""
        profile = HardwareProfile.create(bits=16, variation=0.0, seed=0)
        ideal_net = self._network()
        aware_net = self._network()
        ideal = Trainer(ideal_net, CrossEntropyRateLoss(),
                        TrainerConfig(epochs=1, batch_size=16,
                                      learning_rate=1e-3), rng=2)
        aware = _aware_trainer(aware_net, profile)
        ideal.train_batch(self.x, self.labels)
        aware.train_batch(self.x, self.labels)
        for a, b in zip(ideal_net.weights, aware_net.weights):
            np.testing.assert_allclose(a, b, atol=5e-5)

    def test_exact_identity_when_weights_on_grid(self):
        """Weights already on the 16-bit grid quantize to themselves, so
        the aware step is bitwise the ideal step."""
        profile = HardwareProfile.create(bits=16, variation=0.0, seed=0)
        nets = [self._network(), self._network()]
        for network in nets:
            network.set_weights([fake_quantize(w, profile.device)
                                 for w in network.weights])
        # Quantizing grid points must reproduce them exactly, else this
        # test cannot pin bitwise equality.
        for w in nets[0].weights:
            scale = resolve_weight_scale(w)
            np.testing.assert_array_equal(
                fake_quantize(w, profile.device, scale=scale), w)


# ---------------------------------------------------------------------------
# End to end: QAT recovers post-mapping accuracy on an SHD slice
# ---------------------------------------------------------------------------
class TestQATRecovery:
    def test_aware_finetune_beats_posthoc_mapping(self):
        """Hardware-aware fine-tuning measurably improves post-mapping
        accuracy over post-hoc mapping of the ideal model (pinned
        seeds; reduced SHD slice, the acceptance point of ISSUE 5)."""
        dataset = generate_shd(
            SyntheticSHDConfig(n_per_class=12, steps=80), rng=0)
        train, test = dataset.split(0.75, rng=1)
        network = SpikingNetwork((700, 64, 20), rng=2)
        from repro.core.calibration import calibrate_firing

        calibrate_firing(network, train.inputs[:32], target_rate=0.08)
        trainer = Trainer(network, CrossEntropyRateLoss(), TrainerConfig(
            epochs=12, batch_size=32, learning_rate=1e-3,
            optimizer="adamw"), rng=3)
        trainer.fit(train.inputs, train.targets)

        profile = HardwareProfile.create(bits=4, variation=0.1, seed=13)
        posthoc, _ = accuracy_under_variation(
            network, test.inputs, test.targets, bits=4, variation=0.1,
            n_seeds=3, rng=11, device=profile.device)

        aware_net = SpikingNetwork((700, 64, 20), rng=2)
        aware_net.set_weights(network.weights)
        aware = Trainer(aware_net, CrossEntropyRateLoss(), TrainerConfig(
            epochs=5, batch_size=32, learning_rate=3e-4,
            optimizer="adamw", hardware=profile), rng=3)
        aware.fit(train.inputs, train.targets)
        recovered, _ = accuracy_under_variation(
            aware_net, test.inputs, test.targets, bits=4, variation=0.1,
            n_seeds=3, rng=11, device=profile.device)

        assert recovered > posthoc, (
            f"hardware-aware fine-tune did not recover accuracy: "
            f"post-hoc {posthoc:.4f} vs aware {recovered:.4f}")


# ---------------------------------------------------------------------------
# Co-trained pair through the registry into the server
# ---------------------------------------------------------------------------
class TestCoTrainedPairServing:
    def test_save_pair_cold_starts_the_pair(self, tmp_path):
        from repro.serve import ModelRegistry, ModelServer

        registry = ModelRegistry(str(tmp_path))
        profile = HardwareProfile.create(bits=4, variation=0.1, seed=13)
        network = SpikingNetwork((12, 8, 4), rng=0)
        version, profile_id = registry.save_pair(
            "aware", network, profile, meta={"mode": "hardware-aware"})
        assert (version, profile_id) == ("v0001", "hw0001")
        # A newer, unrelated profile must not shadow the co-saved one.
        registry.save_profile(
            "aware", HardwareProfile.create(bits=5, variation=0.0, seed=1))

        server = ModelServer.from_registry(registry, "aware",
                                           hardware_profile=True)
        assert server.model_version == version
        assert server.model_profile == profile_id
        assert server.hardware is not None
        assert server.hardware.device.levels == profile.device.levels
        # The served realization is the profile's own programming draw.
        expected = profile.build(network)
        for a, b in zip(server.hardware.weight_list(),
                        expected.weight_list()):
            np.testing.assert_array_equal(a, b)

    def test_explicit_profile_id_still_wins(self, tmp_path):
        from repro.serve import ModelRegistry, ModelServer

        registry = ModelRegistry(str(tmp_path))
        network = SpikingNetwork((12, 8, 4), rng=0)
        registry.save_pair("m", network,
                           HardwareProfile.create(bits=4, seed=2))
        registry.save_profile("m", HardwareProfile.create(bits=5, seed=3))
        server = ModelServer.from_registry(registry, "m",
                                           hardware_profile="hw0002")
        assert server.model_profile == "hw0002"
        assert server.hardware.device.levels == 32
