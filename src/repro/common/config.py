"""Lightweight validated configuration objects.

Experiment and model configurations are frozen dataclasses built on
:class:`BaseConfig`, which adds:

* recursive ``to_dict`` / ``from_dict`` round-tripping (JSON-safe),
* a ``validate`` hook called after construction,
* ``replace`` for creating modified copies.

Keeping configs as plain data (instead of ad-hoc keyword soup) makes every
experiment reproducible from a single serialisable object.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Type, TypeVar

from .errors import ConfigError

__all__ = ["BaseConfig", "config_field"]

T = TypeVar("T", bound="BaseConfig")


def config_field(default, doc: str = ""):
    """A dataclass field carrying a human-readable description."""
    return dataclasses.field(default=default, metadata={"doc": doc})


@dataclasses.dataclass(frozen=True)
class BaseConfig:
    """Base class for frozen, validated, serialisable configs."""

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        """Override to raise :class:`ConfigError` on invalid field values."""

    def replace(self: T, **changes: Any) -> T:
        """Return a copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """Recursively convert to a JSON-safe dict (with a ``__config__`` tag)."""
        out: dict[str, Any] = {"__config__": type(self).__name__}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, BaseConfig):
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            out[field.name] = value
        return out

    @classmethod
    def from_dict(cls: Type[T], data: dict) -> T:
        """Reconstruct a config from :meth:`to_dict` output.

        Unknown keys raise :class:`ConfigError` so stale configs fail loudly
        rather than silently dropping fields.
        """
        payload = dict(data)
        payload.pop("__config__", None)
        field_map = {f.name: f for f in dataclasses.fields(cls)}
        unknown = set(payload) - set(field_map)
        if unknown:
            raise ConfigError(
                f"{cls.__name__}: unknown config keys {sorted(unknown)}"
            )
        kwargs = {}
        for name, value in payload.items():
            field = field_map[name]
            if isinstance(value, dict) and "__config__" in value:
                sub_cls = _resolve_config_type(field.type)
                if sub_cls is not None:
                    value = sub_cls.from_dict(value)
            if isinstance(value, list) and _field_wants_tuple(field):
                value = tuple(value)
            kwargs[name] = value
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls: Type[T], text: str) -> T:
        return cls.from_dict(json.loads(text))

    # -- validation helpers ------------------------------------------------
    def require(self, condition: bool, message: str) -> None:
        """Raise :class:`ConfigError` with ``message`` unless ``condition``."""
        if not condition:
            raise ConfigError(f"{type(self).__name__}: {message}")

    def require_positive(self, name: str) -> None:
        value = getattr(self, name)
        self.require(value > 0, f"{name} must be positive, got {value}")

    def require_non_negative(self, name: str) -> None:
        value = getattr(self, name)
        self.require(value >= 0, f"{name} must be non-negative, got {value}")

    def require_in_range(self, name: str, low: float, high: float) -> None:
        value = getattr(self, name)
        self.require(low <= value <= high,
                     f"{name} must be in [{low}, {high}], got {value}")


def _resolve_config_type(annotation) -> Type[BaseConfig] | None:
    """Best-effort resolution of a dataclass field annotation to a config class."""
    if isinstance(annotation, type) and issubclass(annotation, BaseConfig):
        return annotation
    return None


def _field_wants_tuple(field: dataclasses.Field) -> bool:
    annotation = field.type
    if isinstance(annotation, str):
        return annotation.startswith(("tuple", "Tuple"))
    if annotation is tuple:
        return True
    origin = getattr(annotation, "__origin__", None)
    return origin is tuple
