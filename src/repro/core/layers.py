"""Spiking layers: synapse filter bank + crossbar weights + neuron bank.

A :class:`SpikingLinear` layer is the software model of one stage of the
paper's Fig. 3 pipeline:

* an array of synapse filters ``k`` (eq. 9) turns the previous layer's
  spike trains into PSP traces — in hardware, the RC filters at the
  word-lines;
* a dense weight matrix performs ``g = W k`` (eq. 7) — in hardware, the
  RRAM crossbar dot product;
* a neuron bank compares ``g`` against the (adaptive) threshold and emits
  spikes (eqs. 6, 8, 10) — in hardware, the comparator + feedback-RC
  circuit of Fig. 6.

For the hard-reset baseline (eq. 1) the synapse filter is absorbed into the
membrane itself: the layer feeds the raw weighted spikes ``W x`` to a
:class:`~repro.core.neurons.HardResetLIFNeuron`, whose leaky membrane
performs the same integration but is destroyed on firing.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError, StateError
from ..common.rng import RandomState, as_random_state
from .filters import decay_from_tau
from .neurons import NeuronParameters, make_neuron
from .surrogate import ErfcSurrogate, SurrogateGradient

__all__ = ["SpikingLinear", "LayerStepRecord"]


class LayerStepRecord:
    """Per-layer time-stacked tensors captured during a recorded run.

    Attributes
    ----------
    k:
        Synapse-filter states, shape (batch, T, n_in).  ``None`` for
        hard-reset layers (which have no separate synapse filter).
    v:
        Membrane values (pre-reset for HR), shape (batch, T, n_out).
    spikes:
        Output spikes, shape (batch, T, n_out).
    """

    def __init__(self, k: np.ndarray | None, v: np.ndarray, spikes: np.ndarray):
        self.k = k
        self.v = v
        self.spikes = spikes


class SpikingLinear:
    """A fully-connected spiking layer (synapse filters + weights + neurons).

    Parameters
    ----------
    n_in, n_out:
        Fan-in / fan-out.
    params:
        Neuron hyper-parameters (Table I defaults when omitted); ``tau``
        also sets the synapse-filter time constant.
    neuron_kind:
        ``"adaptive"`` (the paper's model) or ``"hard_reset"`` (eq. 1
        baseline).
    surrogate:
        Pseudo-gradient used during training (paper: erfc, eq. 14).
    weight_scale:
        Std-dev multiplier of the ``N(0, scale/sqrt(n_in))`` init.  The
        default compensates the synapse filter's DC gain ``1/(1-alpha)`` so
        initial PSPs sit near threshold.
    rng:
        Seed / :class:`~repro.common.rng.RandomState` for the weight init.
    """

    def __init__(self, n_in: int, n_out: int,
                 params: NeuronParameters | None = None,
                 neuron_kind: str = "adaptive",
                 surrogate: SurrogateGradient | None = None,
                 weight_scale: float | None = None,
                 rng: RandomState | int | None = None,
                 name: str = ""):
        if n_in <= 0 or n_out <= 0:
            raise ValueError(f"layer sizes must be positive, got {n_in}x{n_out}")
        self.n_in = int(n_in)
        self.n_out = int(n_out)
        self.params = params or NeuronParameters()
        self.neuron_kind = neuron_kind
        self.neuron = make_neuron(neuron_kind, n_out, self.params)
        self.surrogate = surrogate or ErfcSurrogate()
        self.alpha = decay_from_tau(self.params.tau)
        self.name = name or f"spiking_linear_{n_in}x{n_out}"

        if weight_scale is None:
            # The filter's steady-state gain for a dense input is
            # 1/(1-alpha); scale down so initial activity is moderate.
            weight_scale = 2.0 * (1.0 - self.alpha)
        generator = as_random_state(rng)
        self.weight = generator.normal(
            0.0, weight_scale / np.sqrt(self.n_in), (self.n_out, self.n_in)
        )

        self.k: np.ndarray | None = None  # synapse filter state (adaptive)

    # -- state -------------------------------------------------------------
    def reset_state(self, batch_size: int, dtype=np.float64) -> None:
        """Zero all temporal state (between samples, never within one)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.k = np.zeros((batch_size, self.n_in), dtype=dtype)
        self.neuron.reset_state(batch_size, dtype=dtype)

    # -- forward -----------------------------------------------------------
    def step(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One time step; ``x`` is the incoming spike array (batch, n_in).

        Returns ``(spikes, v)`` with shapes (batch, n_out).
        """
        if self.k is None:
            raise StateError(f"{self.name}: step called before reset_state")
        if x.shape[-1] != self.n_in:
            raise ShapeError(f"{self.name}: expected {self.n_in} inputs, "
                             f"got {x.shape[-1]}")
        if self.neuron_kind == "adaptive":
            self.k = self.alpha * self.k + x
            g = self.k @ self.weight.T
            return self.neuron.step(g)
        # Hard reset: the membrane integrates the raw weighted spikes.
        j = x @ self.weight.T
        return self.neuron.step(j)

    def run(self, xs: np.ndarray, record: bool = False,
            dtype=np.float64,
            engine: str = "fused") -> tuple[np.ndarray, LayerStepRecord | None]:
        """Run a whole sequence ``xs`` of shape (batch, T, n_in).

        Resets state first.  Returns ``(spikes, record)`` where ``spikes``
        has shape (batch, T, n_out).  ``engine="fused"`` (default) uses the
        vectorized kernels in :mod:`repro.core.engine`; ``engine="step"``
        runs the per-step reference loop.
        """
        if engine not in ("fused", "step"):
            raise ValueError(f"engine must be 'fused' or 'step', got {engine!r}")
        xs = np.asarray(xs, dtype=dtype)
        if xs.ndim != 3:
            raise ShapeError(f"{self.name}: expected (batch, T, n_in), "
                             f"got {xs.shape}")
        if engine == "fused":
            from .engine import fused_layer_forward
            spikes, ks, vs = fused_layer_forward(self, xs, need_k=record)
            rec = None
            if record:
                rec = LayerStepRecord(
                    k=ks if self.neuron_kind == "adaptive" else None,
                    v=vs, spikes=spikes,
                )
            return spikes, rec
        batch, steps, _ = xs.shape
        self.reset_state(batch, dtype=dtype)
        out = np.zeros((batch, steps, self.n_out), dtype=dtype)
        ks = np.zeros((batch, steps, self.n_in), dtype=dtype) if record else None
        vs = np.zeros((batch, steps, self.n_out), dtype=dtype) if record else None
        for t in range(steps):
            spikes, v = self.step(xs[:, t, :])
            out[:, t, :] = spikes
            if record:
                vs[:, t, :] = v
                if self.neuron_kind == "adaptive":
                    ks[:, t, :] = self.k
        rec = None
        if record:
            rec = LayerStepRecord(
                k=ks if self.neuron_kind == "adaptive" else None,
                v=vs, spikes=out,
            )
        return out, rec

    # -- utilities ----------------------------------------------------------
    def copy_with_neuron(self, neuron_kind: str) -> "SpikingLinear":
        """A new layer *sharing this layer's weight array* with another neuron.

        This is the paper's Table II 'HR' experiment: keep structure and
        weights, swap the dynamics.
        """
        clone = SpikingLinear(
            self.n_in, self.n_out, params=self.params,
            neuron_kind=neuron_kind, surrogate=self.surrogate,
            rng=0, name=self.name + f"[{neuron_kind}]",
        )
        clone.weight = self.weight  # intentional sharing
        return clone

    def __repr__(self) -> str:
        return (f"SpikingLinear({self.n_in}->{self.n_out}, "
                f"kind={self.neuron_kind!r}, tau={self.params.tau})")
