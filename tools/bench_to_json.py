#!/usr/bin/env python
"""Machine-readable benchmarks: ``make bench-json`` / ``make bench-serving``.

A thin CLI over the scenario harness
(:mod:`repro.experiments.harness`): every mode expands a declarative
scenario preset into a deterministic grid, executes it into one run
table, and converts the table into the historical ``BENCH_*.json``
shapes (:mod:`repro.experiments.benchjson`).  The run table is the
source of truth — pass ``--table`` to keep it next to the JSON, and use
``--from-table`` to regenerate every JSON artifact from an existing
table without re-running anything.

Modes:

* default — the throughput grid (forward, backward, train step — ideal
  and hardware-aware — inference, and the Fig. 8 variation sweep; serial
  plus each requested worker count) -> ``BENCH_throughput.json``;
* ``--serving`` — the open-loop serving grid (Poisson arrivals through
  the micro-batching :class:`repro.serve.ModelServer`; ideal, hardware
  and shadow configs x light/heavy/overload loads) ->
  ``BENCH_serving.json``;
* ``--aware`` — only the hardware-aware train-step rows (ideal vs
  straight-through fake-quant vs fake-quant + programming noise, 4-bit /
  10 % variation) -> ``BENCH_aware.json``;
* ``--from-table PATH`` — no measurement: read ``PATH`` and regenerate
  all three JSON files from whatever rows it has (failing with a clear
  message when a required preset's rows are missing).

The shapes match ``benchmarks/bench_throughput.py`` and
``docs/performance.md``: batch 32 (forward/backward) and batch 64
(training step), T = 100, a 700-128-128-20 adaptive MLP at ~3 % input
spike density.

Usage::

    PYTHONPATH=src python tools/bench_to_json.py \
        [--out BENCH_throughput.json] [--rounds 10] [--workers 0,1,2,4] \
        [--table run_table.csv]
    PYTHONPATH=src python tools/bench_to_json.py --serving
    PYTHONPATH=src python tools/bench_to_json.py --from-table run_table.csv

Worker counts beyond the machine's cores are still measured (they quantify
oversubscription overhead); the JSON records ``cpu_count`` so readers can
judge the scaling numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.common.errors import ExperimentError  # noqa: E402
from repro.common.runtable import RunTable  # noqa: E402
from repro.experiments import benchjson  # noqa: E402
from repro.experiments.harness import (  # noqa: E402
    aware_scenarios,
    run_scenarios,
    serving_scenarios,
    throughput_scenarios,
)


def _write_json(report: dict, out_path: str) -> None:
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {out_path}")


def _maybe_write_table(table: RunTable, table_path: str | None) -> None:
    if table_path:
        table.write_csv(table_path)
        print(f"wrote {table_path} ({len(table)} rows)")


def from_table_main(table_path: str) -> int:
    """Regenerate every BENCH JSON the table has rows for."""
    table = RunTable.read_csv(table_path)
    print(f"read {table_path} ({len(table)} rows)")
    converted = 0
    for out_path, convert in (
            ("BENCH_throughput.json", benchjson.throughput_report),
            ("BENCH_serving.json", benchjson.serving_report),
            ("BENCH_aware.json", benchjson.aware_report)):
        try:
            report = convert(table)
        except ExperimentError as error:
            print(f"skip {out_path}: {error}")
            continue
        _write_json(report, out_path)
        converted += 1
    if not converted:
        print("no BENCH json could be regenerated from this table")
        return 1
    return 0


def serving_main(out_path: str, table_path: str | None) -> int:
    table = run_scenarios(serving_scenarios(), log=print)
    _maybe_write_table(table, table_path)
    _write_json(benchjson.serving_report(table), out_path)
    return 0


def aware_main(out_path: str, rounds: int, table_path: str | None) -> int:
    table = run_scenarios(aware_scenarios(rounds), log=print)
    _maybe_write_table(table, table_path)
    _write_json(benchjson.aware_report(table), out_path)
    return 0


def throughput_main(out_path: str, rounds: int, worker_counts: list,
                    table_path: str | None) -> int:
    scenarios = throughput_scenarios(rounds, tuple(worker_counts)) \
        + aware_scenarios(rounds)
    table = run_scenarios(scenarios, log=print)
    _maybe_write_table(table, table_path)
    _write_json(benchjson.throughput_report(table), out_path)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--workers", default="0,1,2,4",
                        help="comma-separated worker counts for the "
                             "parallel sections (0 = serial)")
    parser.add_argument("--table", default=None,
                        help="also write the underlying run table "
                             "(CSV) to this path")
    parser.add_argument("--serving", action="store_true",
                        help="run the open-loop serving grid instead "
                             "(writes BENCH_serving.json by default)")
    parser.add_argument("--aware", action="store_true",
                        help="run only the hardware-aware train-step rows "
                             "(writes BENCH_aware.json by default)")
    parser.add_argument("--from-table", dest="from_table", default=None,
                        metavar="PATH",
                        help="regenerate all BENCH_*.json from an existing "
                             "run table; no measurement runs")
    args = parser.parse_args(argv)
    if args.from_table:
        return from_table_main(args.from_table)
    if args.serving:
        return serving_main(args.out or "BENCH_serving.json", args.table)
    if args.aware:
        return aware_main(args.out or "BENCH_aware.json", args.rounds,
                          args.table)
    worker_counts = [int(w) for w in args.workers.split(",") if w != ""]
    return throughput_main(args.out or "BENCH_throughput.json",
                           args.rounds, worker_counts, args.table)


if __name__ == "__main__":
    raise SystemExit(main())
