"""RRAM (memristor) device models.

The paper's architecture stores synaptic weights as memristor conductances
in a crossbar (Section I, IV).  This module models the individual cell:

* a conductance range ``[g_min, g_max]`` (the HRS/LRS window),
* discrete programming levels (k-bit quantization, Fig. 8 uses 4/5 bits),
* programming *process variation* — each device's achieved resistance
  deviates from the target by a multiplicative lognormal factor whose
  standard deviation is the "process variation" axis of Fig. 8,
* optional read noise (cycle-to-cycle).

Conductances are stored in siemens; typical windows for HfO2-class devices
are used as defaults (HRS 1 MΩ, LRS 10 kΩ).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.config import BaseConfig
from ..common.rng import RandomState, as_random_state

__all__ = ["RRAMDeviceConfig", "RRAMCellArray", "quantize_conductances",
           "program_conductances"]


@dataclasses.dataclass(frozen=True)
class RRAMDeviceConfig(BaseConfig):
    """Device-level parameters of the memristor cells.

    Attributes
    ----------
    g_min, g_max:
        Conductance window in siemens (defaults: 1 uS - 100 uS, i.e.
        1 MOhm HRS to 10 kOhm LRS).
    levels:
        Number of programmable conductance levels per device (e.g. 16 for
        4-bit, 32 for 5-bit).
    variation:
        Std-dev of the multiplicative lognormal programming error on the
        device *resistance* (the paper's Fig. 8 x-axis, 0 - 0.5).
    read_noise:
        Std-dev of multiplicative Gaussian noise applied per read; 0
        disables.
    stuck_at_rate:
        Probability that a device is a manufacturing fault, stuck at one
        end of the conductance window regardless of programming (split
        evenly between stuck-at-HRS and stuck-at-LRS).  An extension
        beyond the paper's Fig. 8 noise model, for yield studies.
    """

    g_min: float = 1e-6
    g_max: float = 1e-4
    levels: int = 16
    variation: float = 0.0
    read_noise: float = 0.0
    stuck_at_rate: float = 0.0

    def validate(self) -> None:
        self.require_positive("g_min")
        self.require(self.g_max > self.g_min,
                     f"g_max ({self.g_max}) must exceed g_min ({self.g_min})")
        self.require(self.levels >= 2, "need at least 2 conductance levels")
        self.require_non_negative("variation")
        self.require_non_negative("read_noise")
        self.require_in_range("stuck_at_rate", 0.0, 1.0)

    @property
    def level_conductances(self) -> np.ndarray:
        """The ideal programmable conductance ladder (levels,)."""
        return np.linspace(self.g_min, self.g_max, self.levels)


def quantize_conductances(conductances: np.ndarray,
                          config: RRAMDeviceConfig) -> np.ndarray:
    """Snap target conductances to the device's programmable ladder.

    This is **the** k-bit grid of the hardware path: every consumer —
    :meth:`RRAMCellArray.quantize_targets` at map time, the trainer's
    fake-quant forward at train time
    (:func:`repro.hardware.quantization.fake_quantize`) — calls this one
    function, so the two grids cannot drift apart.
    """
    cfg = config
    conductances = np.clip(conductances, cfg.g_min, cfg.g_max)
    step = (cfg.g_max - cfg.g_min) / (cfg.levels - 1)
    indices = np.round((conductances - cfg.g_min) / step)
    return cfg.g_min + indices * step


def program_conductances(conductances: np.ndarray,
                         config: RRAMDeviceConfig,
                         rng: RandomState | None = None,
                         quantize: bool = True,
                         targets: np.ndarray | None = None) -> np.ndarray:
    """One simulated programming: ladder snap, variation, clip, faults.

    The single source of truth for "what conductances does a programming
    pass actually achieve":

    * ``quantize`` snaps the targets to the :func:`quantize_conductances`
      ladder (else they are only clipped to the window);
    * with ``rng`` and ``config.variation > 0`` the achieved *resistance*
      deviates by a multiplicative lognormal factor (conductance divided
      by it), clipped back into the physical window;
    * with ``rng`` and ``config.stuck_at_rate > 0`` a random subset of
      cells is stuck at one end of the window.

    ``rng=None`` is the noise-free programming — the pure quantization
    grid.  :meth:`RRAMCellArray.program` delegates its math here, so a
    caller passing the array's own rng stream reproduces the array's
    programming bitwise.  ``targets`` short-circuits the snap/clip when
    the caller already computed the programming targets (``quantize`` is
    then ignored) — the array avoids running the ladder snap twice.
    """
    cfg = config
    if targets is not None:
        target = targets
    else:
        conductances = np.asarray(conductances, dtype=np.float64)
        target = quantize_conductances(conductances, cfg) if quantize \
            else np.clip(conductances, cfg.g_min, cfg.g_max)
    achieved = target
    if rng is not None and cfg.variation > 0:
        factor = rng.lognormal(0.0, cfg.variation, target.shape)
        achieved = target / factor
    achieved = np.clip(achieved, cfg.g_min, cfg.g_max)
    if rng is not None and cfg.stuck_at_rate > 0:
        faulty = rng.random(target.shape) < cfg.stuck_at_rate
        stuck_low = rng.random(target.shape) < 0.5
        achieved = np.where(
            faulty, np.where(stuck_low, cfg.g_min, cfg.g_max), achieved)
    return achieved


class RRAMCellArray:
    """An array of memristor cells with programming and read semantics.

    The array is programmed with *target* conductances; the achieved
    conductances include the device-to-device programming variation.  Reads
    return the achieved conductance with optional per-read noise.

    Parameters
    ----------
    shape:
        Array shape, e.g. ``(rows, cols)``.
    config:
        Device parameters.
    rng:
        Randomness for variation and read noise.
    """

    def __init__(self, shape: tuple, config: RRAMDeviceConfig | None = None,
                 rng: RandomState | int | None = None):
        self.shape = tuple(int(s) for s in shape)
        self.config = config or RRAMDeviceConfig()
        self.rng = as_random_state(rng)
        self._target: np.ndarray | None = None
        self._achieved: np.ndarray | None = None
        #: Programming generation, bumped on every :meth:`program` call.
        #: Consumers (e.g. the crossbar's effective-weight cache) compare
        #: it to detect re-programming without holding array copies.
        self.version = 0

    @property
    def is_programmed(self) -> bool:
        return self._achieved is not None

    def quantize_targets(self, conductances: np.ndarray) -> np.ndarray:
        """Snap target conductances to the nearest programmable level
        (delegates to the shared :func:`quantize_conductances` grid)."""
        return quantize_conductances(conductances, self.config)

    def program(self, conductances: np.ndarray,
                quantize: bool = True) -> np.ndarray:
        """Program the array; returns the *achieved* conductances.

        Process variation is modelled on the resistance: the achieved
        resistance is ``R_target * exp(N(0, sigma))`` with
        ``sigma = variation`` (lognormal, mean-one in log-space), i.e.
        conductance is divided by that factor.  Achieved values are clipped
        to the physical window.  The math is the shared
        :func:`program_conductances` (one noise model for arrays and for
        the trainer's per-step device-noise injection).
        """
        conductances = np.asarray(conductances, dtype=np.float64)
        if conductances.shape != self.shape:
            raise ValueError(
                f"expected shape {self.shape}, got {conductances.shape}"
            )
        cfg = self.config
        target = self.quantize_targets(conductances) if quantize \
            else np.clip(conductances, cfg.g_min, cfg.g_max)
        achieved = program_conductances(conductances, cfg, rng=self.rng,
                                        targets=target)
        self._target = target
        self._achieved = achieved
        self.version += 1
        return achieved.copy()

    def read(self, rng: RandomState | None = None) -> np.ndarray:
        """Read the array conductances (with read noise if configured).

        ``rng`` overrides the array's own stream for this read's noise
        draw — the hook behind *per-session read realizations*: a serving
        stream that pins its read-noise rng sees one reproducible noisy
        read, independent of how many reads other consumers have drawn
        from the array's stream in the meantime.
        """
        if self._achieved is None:
            raise ValueError("array read before programming")
        cfg = self.config
        values = self._achieved
        if cfg.read_noise > 0:
            source = self.rng if rng is None else rng
            values = values * (
                1.0 + source.normal(0.0, cfg.read_noise, self.shape)
            )
            values = np.clip(values, cfg.g_min, cfg.g_max)
        return values

    def programming_error(self) -> np.ndarray:
        """Relative conductance error |achieved - target| / target."""
        if self._achieved is None or self._target is None:
            raise ValueError("array not programmed")
        return np.abs(self._achieved - self._target) / self._target

    def __repr__(self) -> str:
        state = "programmed" if self.is_programmed else "blank"
        return (f"RRAMCellArray(shape={self.shape}, levels="
                f"{self.config.levels}, variation={self.config.variation}, "
                f"{state})")
