"""``repro.obs`` — the unified telemetry plane: metrics, traces, hooks.

One seam runs from engine ticks to the serving fleet:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  exact-quantile histograms (the numeric instruments
  ``ModelServer.stats`` / ``WorkerPool.stats`` are now views of);
* :class:`~repro.obs.trace.Tracer` — structured spans and events with a
  bounded ring buffer and JSONL export;
* :class:`Telemetry` — one clock + one registry + one tracer, the bundle
  a run installs.

Installation mirrors :mod:`repro.common.faults`: a process-global slot
(:func:`install` / :func:`active` / :func:`deactivate`) that every hook
consults through no-op-fast module helpers —

>>> with obs.active(obs.Telemetry(clock=timer)) as tel:
...     report = open_loop(server, ...)      # hooks record into tel
... tel.tracer.write_jsonl("run.trace.jsonl")

With nothing installed, :func:`span` returns a shared null context and
:func:`event` returns immediately — the production path pays one global
read.  Components that *always* meter (the server and pool counters
behind their ``stats`` properties) own a private registry instead and
only borrow the installed tracer, so metering cost never depends on
installation state.

Instrument catalog, trace schema and exporter formats:
``docs/observability.md``.  ``tools/trace_view.py`` renders exported
traces; ``tools/obs_smoke.py`` gates schema validity and overhead.
"""

from __future__ import annotations

import contextlib
import functools
import time

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from .trace import RECORD_FIELDS, Span, Tracer, parse_jsonl, validate_record

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "RECORD_FIELDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Telemetry",
    "Tracer",
    "active",
    "active_telemetry",
    "deactivate",
    "event",
    "install",
    "parse_jsonl",
    "parse_prometheus",
    "span",
    "timed",
    "timed_span",
    "validate_record",
]


class Telemetry:
    """One run's telemetry bundle: a clock, a registry, a tracer.

    ``clock`` is the single time source for spans and profiling
    histograms; inject the harness timer to make a run's exported trace
    deterministic.  Components constructed while a bundle is installed
    (or handed one via ``telemetry=``) record their metrics into
    ``metrics``, so one Prometheus snapshot covers the whole run.
    """

    def __init__(self, clock=None, trace_capacity: int = 65536):
        self.clock = time.perf_counter if clock is None else clock
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=self.clock, capacity=trace_capacity)

    def span(self, name: str, **attrs) -> Span:
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        self.tracer.event(name, **attrs)

    def timed_span(self, name: str, metric: str | None = None, **attrs):
        """A span that additionally observes its duration (milliseconds)
        into histogram ``metric`` on exit."""
        return _TimedSpan(self, self.tracer.span(name, **attrs), metric)

    def __repr__(self) -> str:
        return (f"Telemetry({len(self.tracer)} trace records, "
                f"{len(self.metrics.instruments())} instruments)")


class _TimedSpan:
    """Class-based context for :meth:`Telemetry.timed_span` — cheaper
    than a generator context manager on the engine hot path."""

    __slots__ = ("_telemetry", "_span", "_metric")

    def __init__(self, telemetry: "Telemetry", span: Span,
                 metric: str | None):
        self._telemetry = telemetry
        self._span = span
        self._metric = metric

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.__exit__(exc_type, exc, tb)
        if self._metric is not None:
            self._telemetry.metrics.histogram(self._metric).observe(
                self._span.duration * 1e3)


# ---------------------------------------------------------------------------
# Process-global installation (mirrors repro.common.faults)
# ---------------------------------------------------------------------------
_ACTIVE: Telemetry | None = None


def install(telemetry: Telemetry) -> Telemetry:
    """Make ``telemetry`` the process's active bundle (replacing any)."""
    global _ACTIVE
    _ACTIVE = telemetry
    return telemetry


def deactivate() -> None:
    """Remove the active bundle; every hook becomes a no-op again."""
    global _ACTIVE
    _ACTIVE = None


def active_telemetry() -> Telemetry | None:
    return _ACTIVE


@contextlib.contextmanager
def active(telemetry: Telemetry | None):
    """Scoped :func:`install` (``None`` is a no-op pass-through);
    restores the previous bundle on exit."""
    if telemetry is None:
        yield None
        return
    previous = _ACTIVE
    install(telemetry)
    try:
        yield telemetry
    finally:
        if previous is None:
            deactivate()
        else:
            install(previous)


class _NullSpan:
    """Shared no-op context for uninstrumented runs (one global read)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> None:
        return None


#: The shared no-op span context — what hooks return when no telemetry
#: is installed (components with a ``telemetry=`` seam reuse it too).
NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """Span on the installed tracer, or a shared null context."""
    if _ACTIVE is None:
        return NULL_SPAN
    return _ACTIVE.tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Event on the installed tracer; no-op when none is installed."""
    if _ACTIVE is not None:
        _ACTIVE.tracer.event(name, **attrs)


def timed_span(name: str, metric: str | None = None, **attrs):
    """:meth:`Telemetry.timed_span` on the installed bundle, or the
    shared null context — the hook hot paths use around engine calls."""
    if _ACTIVE is None:
        return NULL_SPAN
    return _ACTIVE.timed_span(name, metric=metric, **attrs)


def timed(name: str, metric: str | None = None, **attrs):
    """Decorator: profile a callable through the *installed* telemetry.

    With no bundle installed the wrapper adds a single global read; with
    one installed, each call records a span (and, when ``metric`` is
    given, a duration histogram sample in milliseconds).
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            telemetry = _ACTIVE
            if telemetry is None:
                return fn(*args, **kwargs)
            with telemetry.timed_span(name, metric=metric, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
