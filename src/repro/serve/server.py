"""The serving front-end: resident model, sessions, micro-batched ticks.

A :class:`ModelServer` holds one resident
:class:`~repro.core.network.SpikingNetwork` and any number of client
:class:`~repro.serve.session.Session`\\ s.  Clients ``submit`` chunks of
their live spike stream and receive a :class:`~repro.serve.batcher.Ticket`;
the server's :meth:`~ModelServer.poll` runs a *tick* whenever the
micro-batcher says one is due:

1. **collect** — up to ``max_batch`` queued chunks, FIFO, one per session;
2. **gather** — copy each session's batch-1 stream state into one batched
   :class:`~repro.core.engine.StreamState` and the chunks into one padded
   ``(B, T_max, n_in)`` workspace buffer (rows shorter than ``T_max`` are
   zero-padded and tracked via ``lengths``);
3. **run** — a single :meth:`~repro.core.network.SpikingNetwork.run_stream`
   call advances all sessions at once;
4. **scatter** — copy each advanced state row back to its session and
   complete its ticket with the row's valid output slice.

With the fused engine the gather/scatter is bitwise-transparent: a session
receives exactly the spikes it would have received streaming alone,
regardless of which other sessions shared its ticks (the CSR product
computes rows independently — see ``docs/serving.md``).

The server can also serve the *simulated hardware* instead of the ideal
software model (``hardware=``, a
:class:`~repro.hardware.mapped_network.HardwareMappedNetwork` mapped from
the served network): ticks then substitute the crossbars' achieved
(quantized + variation-noisy) weights into every crossbar product via the
fused engine's weight-override hook — same dynamics code, hardware weight
values, same bitwise batching transparency.  ``shadow=True`` runs *both*
models on every stream and reports their per-chunk output divergence —
the canary deployment for a hardware realization (see
``docs/hardware.md``).

The server is single-threaded and clock-injected: ``poll``/``submit``
accept an explicit ``now`` so schedulers, tests and the open-loop load
generator (:mod:`repro.serve.loadgen`) can drive it deterministically; by
default it reads ``time.monotonic``.

Degradation ladder (see ``docs/robustness.md``): requests carry optional
deadlines and are **shed** unserved once expired (``request_ttl_ms``);
a failing batched tick falls back to **per-request isolation** so one
poisoned chunk fails only its own ticket; a failing hardware weight read
falls back to the **ideal weights** with tickets stamped
``degraded=True``; a repeatedly failing shadow stream trips a **circuit
breaker** that disables shadowing instead of failing the primary; idle
sessions are **reaped** after ``session_ttl_s``.
"""

from __future__ import annotations

import functools
import time

import numpy as np

from .. import obs as _obs
from ..common import faults as _faults
from ..common.errors import ShapeError, StateError
from ..core.engine import StreamState, resolve_precision
from ..core.network import SpikingNetwork
from ..core.trainer import run_in_batches
from ..hardware.mapped_network import (
    HardwareMappedNetwork,
    accuracy_under_variation,
)
from ..runtime.workspace import Workspace
from .batcher import MicroBatcher, StreamRequest, Ticket
from .session import Session

__all__ = ["ModelServer"]

#: The server's counter instruments (``serve.<key>`` in the registry);
#: the legacy ``stats`` keys are a compatibility view over these.
_SERVE_COUNTERS = (
    ("submitted", "admission attempts that reached the queue (incl. "
                  "rejected)"),
    ("rejected", "chunks refused by the bounded queue"),
    ("completed", "chunks answered"),
    ("ticks", "server ticks that served at least one chunk"),
    ("steps", "simulated time steps served"),
    ("closed_sessions", "sessions closed by their client"),
    ("shadow_chunks", "chunks also advanced through the shadow stream"),
    ("expired", "chunks shed past their queue-time deadline"),
    ("failed", "chunks whose ticket resolved with an error"),
    ("retried", "chunks completed via the isolation retry path"),
    ("degraded_chunks", "chunks served through a fallback weight read"),
    ("weight_fallbacks", "hardware weight reads that fell back to ideal"),
    ("shadow_failures", "shadow-path failures absorbed by the breaker"),
    ("reaped_sessions", "idle sessions dropped past session_ttl_s"),
)


class ModelServer:
    """Streaming inference server for one resident network.

    Parameters
    ----------
    network:
        The model to serve (weights are read at every tick, so hot-swapping
        weights in place between ticks is safe).
    engine:
        ``"fused"`` (default; bitwise batching-transparency with scipy) or
        ``"step"`` (reference loop; correct but slower, and batching
        transparency only to BLAS rounding).
    precision:
        ``"float64"`` (default) or ``"float32"`` for stream state and
        outputs.
    max_batch, max_wait_ms, queue_limit:
        Scheduler knobs, passed to :class:`~repro.serve.batcher.
        MicroBatcher`: chunks per tick, latency cap, admission bound.
    hardware:
        Optional :class:`~repro.hardware.mapped_network.
        HardwareMappedNetwork` **mapped from this network**.  When given
        (and ``shadow`` is off) the server serves the hardware
        realization: every tick substitutes the crossbars' achieved
        weights into the crossbar products (re-read through the mapped
        network's generation-keyed cache, so a ``reprogram()`` between
        ticks hot-swaps the served realization exactly like swapping
        ideal weights does).  Requires ``engine="fused"`` — the override
        is a fused-engine hook.
    shadow:
        Serve the *ideal* model but also advance a hardware shadow stream
        per session on the same chunks, recording per-chunk output
        divergence on each :class:`~repro.serve.batcher.Ticket` and in
        ``stats`` (see :meth:`mean_divergence`).  Requires ``hardware``.
        Roughly doubles tick compute.
    request_ttl_ms:
        Queue-time deadline per request: a chunk still queued this long
        after submission is shed (ticket resolved ``expired``) instead
        of served late.  ``None`` (default) disables shedding.
    session_ttl_s:
        Idle-session reaping: a session with no completed chunk for
        this long (and nothing queued) is dropped during :meth:`poll`;
        a ``submit`` to it raises
        :class:`~repro.common.errors.StateError`.  ``None`` disables
        reaping.
    shadow_threshold:
        Shadow circuit breaker: after this many shadow-path failures
        the shadow stream is disabled (``shadow_disabled``) rather than
        ever failing the primary.
    clock:
        0-arg callable returning seconds; default ``time.monotonic``.
    instance:
        Optional replica label (e.g. ``"r0"``).  When several servers
        share one metrics registry — the fleet
        (:class:`~repro.serve.fleet.Fleet`) binds all replicas to the
        run's bundle — each server's ``serve.*`` instruments must stay
        distinct or their books merge; the label becomes a
        ``replica=...`` instrument label and a ``replica`` attr on
        every trace record this server emits.  ``None`` (default)
        keeps the unlabelled single-server names.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` bundle.  Defaults to the
        process-installed bundle (:func:`repro.obs.active_telemetry`) at
        construction time, so a server built inside ``obs.active(...)``
        records its metrics into the run's shared registry and emits
        per-ticket lifecycle events on its tracer.  Without a bundle
        the server still meters — counters live in a private registry
        behind the :attr:`stats` view — but emits no trace records.
    """

    def __init__(self, network: SpikingNetwork, *, engine: str = "fused",
                 precision: str = "float64", max_batch: int = 8,
                 max_wait_ms: float = 2.0, queue_limit: int = 64,
                 hardware: HardwareMappedNetwork | None = None,
                 shadow: bool = False,
                 request_ttl_ms: float | None = None,
                 session_ttl_s: float | None = None,
                 shadow_threshold: int = 3, clock=time.monotonic,
                 instance: str | None = None,
                 telemetry: _obs.Telemetry | None = None):
        if engine not in ("fused", "step"):
            raise ValueError(f"engine must be 'fused' or 'step', got {engine!r}")
        if shadow and hardware is None:
            raise ValueError("shadow mode needs a hardware-mapped network "
                             "to shadow (pass hardware=)")
        if hardware is not None:
            if engine != "fused":
                raise ValueError(
                    "hardware serving rides the fused engine's weight "
                    "override; engine='step' cannot host it")
            if hardware.software_network is not network:
                raise ValueError(
                    "hardware was mapped from a different network object; "
                    "map it from the served network so the realization "
                    "matches the model")
        if request_ttl_ms is not None and request_ttl_ms <= 0:
            raise ValueError(
                f"request_ttl_ms must be > 0, got {request_ttl_ms}")
        if session_ttl_s is not None and session_ttl_s <= 0:
            raise ValueError(
                f"session_ttl_s must be > 0, got {session_ttl_s}")
        if shadow_threshold < 1:
            raise ValueError(
                f"shadow_threshold must be >= 1, got {shadow_threshold}")
        self.network = network
        self.engine = engine
        self.hardware = hardware
        self.shadow = bool(shadow)
        self.request_ttl = (None if request_ttl_ms is None
                            else float(request_ttl_ms) / 1e3)
        self.session_ttl = (None if session_ttl_s is None
                            else float(session_ttl_s))
        self.shadow_threshold = int(shadow_threshold)
        self._shadow_tripped = False
        self.dtype = resolve_precision(precision) or np.dtype(np.float64)
        self.batcher = MicroBatcher(max_batch=max_batch,
                                    max_wait_ms=max_wait_ms,
                                    queue_limit=queue_limit)
        self.clock = clock
        self.model_name: str | None = None
        self.model_version: str | None = None
        self.model_profile: str | None = None
        self.model_meta: dict = {}
        self._workspace = Workspace()
        self._sessions: dict[str, Session] = {}
        self._session_seq = 0
        self._request_seq = 0
        self.instance = instance
        self.telemetry = (telemetry if telemetry is not None
                          else _obs.active_telemetry())
        self.metrics = (self.telemetry.metrics
                        if self.telemetry is not None
                        else _obs.MetricsRegistry())
        # Bind the trace hooks once: with telemetry these are the
        # tracer's own methods (no per-call indirection on the hot
        # lifecycle-event path), without they are shared no-ops.  A
        # labelled replica stamps every record with its label so one
        # fleet trace stays attributable per replica (local session ids
        # and request seqs repeat across replicas).
        if self.telemetry is not None:
            tracer = self.telemetry.tracer
            if instance is None:
                self._event = tracer.event
                self._span = tracer.span
            else:
                self._event = functools.partial(tracer.event,
                                                replica=instance)
                self._span = functools.partial(tracer.span,
                                               replica=instance)
            self._trace_clock = self.telemetry.clock
        else:
            self._event = self._noop_event
            self._span = self._noop_span
            self._trace_clock = None
        labels = {} if instance is None else {"replica": instance}
        self._counters = {
            key: self.metrics.counter(f"serve.{key}", help=help_text,
                                      **labels)
            for key, help_text in _SERVE_COUNTERS
        }
        self._divergence_sum = self.metrics.counter(
            "serve.divergence_sum",
            help="summed per-chunk shadow output divergence", **labels)
        self._max_tick_batch = self.metrics.gauge(
            "serve.max_tick_batch", help="largest batch any tick served",
            **labels)
        # Queue wait is virtual time (tick `now` minus request arrival) —
        # pure arithmetic on injected clocks, so it is always metered and
        # stays deterministic under the harness fake timer.
        self._queue_wait = self.metrics.histogram(
            "serve.queue_wait_ms",
            help="per-chunk wait between submit and its serving tick (ms)",
            **labels)

    @classmethod
    def from_registry(cls, registry, name: str, version: str | None = None,
                      hardware_profile=None, **kwargs) -> "ModelServer":
        """Cold-start a server from a
        :class:`~repro.serve.registry.ModelRegistry` checkpoint.

        ``hardware_profile`` additionally loads a versioned hardware
        profile (``"hw0001"``-style id, or ``True`` for an automatic
        pick) and maps the checkpoint onto crossbars under it — the
        hardware-in-the-loop cold start.  ``True`` prefers the profile
        **co-saved with the chosen checkpoint**
        (:meth:`~repro.serve.registry.ModelRegistry.save_pair` records
        the link in the profile metadata), so a hardware-aware training
        run cold-starts as exactly the (weights, crossbar recipe) pair it
        optimised; without a linked profile the newest one is used.
        Combine with ``shadow=True`` to serve the ideal model while
        canarying the realization.
        """
        # Resolve the version once, up front: re-reading latest() after
        # the load could observe a concurrent save and pair the loaded
        # weights with another checkpoint's linked profile (or stamp the
        # wrong model_version on the server).
        version = version or registry.latest(name)
        network, meta = registry.load(name, version)
        hardware = None
        profile_id = None
        if hardware_profile is not None and hardware_profile is not False:
            if hardware_profile is True:
                for entry in registry.list_profiles(name):
                    # Keep the newest profile linked to this checkpoint.
                    if entry["meta"].get("checkpoint") == version:
                        profile_id = entry["profile"]
                # No linked profile: fall back to the newest one —
                # resolved once, like version above, so the id stamped
                # on the server is the profile actually loaded.
                profile_id = profile_id or registry.latest_profile(name)
            else:
                profile_id = hardware_profile
            profile, _ = registry.load_profile(name, profile_id)
            hardware = profile.build(network)
        server = cls(network, hardware=hardware, **kwargs)
        server.model_name = name
        server.model_version = version
        server.model_profile = profile_id
        server.model_meta = meta
        return server

    # -- telemetry -----------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Legacy counter view over the registry instruments.

        Same keys and int/float types as the pre-``repro.obs`` dict;
        the instruments themselves live in :attr:`metrics` under
        ``serve.<key>`` names.
        """
        view = {key: int(counter.value)
                for key, counter in self._counters.items()}
        view["max_tick_batch"] = int(self._max_tick_batch.value)
        view["divergence_sum"] = self._divergence_sum.value
        return view

    @staticmethod
    def _noop_event(name: str, **attrs) -> None:
        return None

    @staticmethod
    def _noop_span(name: str, **attrs):
        return _obs.NULL_SPAN

    def check_invariants(self) -> dict:
        """Verify ticket accounting: every submission must be exactly one
        of completed / expired / failed / rejected / still queued.

        Returns the accounting dict; raises ``StateError`` when the
        books don't balance — the tripwire that keeps the registry
        migration (or any future refactor) from silently losing tickets.
        """
        c = self._counters
        accounted = (int(c["completed"].value) + int(c["expired"].value)
                     + int(c["failed"].value) + int(c["rejected"].value)
                     + self.batcher.pending)
        submitted = int(c["submitted"].value)
        books = {
            "submitted": submitted,
            "completed": int(c["completed"].value),
            "expired": int(c["expired"].value),
            "failed": int(c["failed"].value),
            "rejected": int(c["rejected"].value),
            "in_flight": self.batcher.pending,
        }
        if submitted != accounted:
            raise StateError(
                f"ticket accounting drift: submitted={submitted} but "
                f"accounted={accounted} ({books})")
        return books

    # -- sessions ------------------------------------------------------------
    def open_session(self, now: float | None = None) -> str:
        """Create a fresh stream; returns its session id."""
        now = self.clock() if now is None else now
        self._session_seq += 1
        session_id = f"s{self._session_seq:06d}"
        state = StreamState.for_network(self.network, 1, engine=self.engine,
                                        dtype=self.dtype)
        shadow_state = None
        if self.shadow:
            # Same architecture, same dtype — only the weights differ at
            # tick time, so the shadow state is an ordinary stream state.
            shadow_state = StreamState.for_network(
                self.network, 1, engine=self.engine, dtype=self.dtype)
        self._sessions[session_id] = Session(session_id, state, now,
                                             shadow_state=shadow_state)
        return session_id

    def session(self, session_id: str) -> Session:
        session = self._sessions.get(session_id)
        if session is None:
            raise StateError(f"unknown or closed session {session_id!r}")
        return session

    def close_session(self, session_id: str) -> None:
        """Drop a session's state.  Its queued chunks (if any) still
        complete — the session object lives until they drain."""
        self.session(session_id)
        del self._sessions[session_id]
        self._counters["closed_sessions"].inc()
        self._event("session.closed", session=session_id)

    @property
    def sessions(self) -> int:
        """Open session count."""
        return len(self._sessions)

    # -- admission -----------------------------------------------------------
    def submit(self, session_id: str, chunk: np.ndarray,
               now: float | None = None) -> Ticket:
        """Queue one ``(T_chunk, n_in)`` chunk of a session's stream.

        Returns a :class:`~repro.serve.batcher.Ticket` that a later
        :meth:`poll` completes.  Raises
        :class:`~repro.common.errors.CapacityError` when the admission
        queue is full (the chunk is not queued; nothing changes), and
        :class:`~repro.common.errors.StateError` for an unknown, closed
        or TTL-expired session.
        """
        now = self.clock() if now is None else now
        session = self.session(session_id)
        if (self.session_ttl is not None
                and now - session.last_active > self.session_ttl
                and not self.batcher.session_pending(session_id)):
            # Lazy reap: an abandoned session is indistinguishable from a
            # closed one by the time its client returns.
            del self._sessions[session_id]
            self._counters["reaped_sessions"].inc()
            self._event("session.reaped", session=session_id)
            raise StateError(
                f"session {session_id!r} expired after "
                f"{self.session_ttl:g}s idle")
        chunk = np.asarray(chunk, dtype=self.dtype)
        if chunk.ndim != 2 or chunk.shape[1] != self.network.sizes[0]:
            raise ShapeError(
                f"expected a (T_chunk, {self.network.sizes[0]}) chunk, "
                f"got {chunk.shape}")
        if chunk.shape[0] == 0:
            raise ShapeError("cannot submit an empty chunk")
        deadline = (None if self.request_ttl is None
                    else now + self.request_ttl)
        ticket = Ticket(session_id, now, deadline=deadline)
        request = StreamRequest(self._request_seq, session, chunk, ticket)
        # Count the admission attempt *before* the queue decides, so the
        # check_invariants books always balance: every submission is
        # exactly one of rejected / queued (and queued ones later resolve
        # completed / expired / failed).
        self._counters["submitted"].inc()
        try:
            self.batcher.submit(request)
        except Exception:
            self._counters["rejected"].inc()
            self._event("ticket.rejected", request=request.seq,
                        session=session_id)
            raise
        self._request_seq += 1
        self._event("ticket.submitted", request=request.seq,
                    session=session_id, steps=request.steps)
        return ticket

    # -- scheduling ----------------------------------------------------------
    @property
    def pending(self) -> int:
        """Chunks queued and not yet served."""
        return self.batcher.pending

    def ready(self, now: float | None = None) -> bool:
        """Whether :meth:`poll` would run a tick at time ``now``."""
        return self.batcher.ready(self.clock() if now is None else now)

    def next_deadline(self) -> float | None:
        """When the queued work becomes due regardless of occupancy."""
        return self.batcher.next_deadline()

    def poll(self, now: float | None = None) -> int:
        """Run one tick if due; returns the number of completed chunks.

        Housekeeping rides every poll even when no tick is due: idle
        sessions past ``session_ttl_s`` are reaped, and queued requests
        past their deadline are shed (their tickets resolve
        ``expired``, which may leave no tick to run).
        """
        now = self.clock() if now is None else now
        self._reap_sessions(now)
        self._shed_expired(now)
        if not self.batcher.ready(now):
            return 0
        return self._run_tick(now)

    def flush(self, now: float | None = None) -> int:
        """Drain the whole queue (ignoring ``max_wait_ms``); returns the
        number of completed chunks."""
        completed = 0
        while self.batcher.pending:
            completed += self._run_tick(self.clock() if now is None else now)
        return completed

    def fail_pending(self, reason: str, now: float | None = None) -> int:
        """Fail every queued chunk with ``reason`` (tickets resolve
        ``failed``; no stream state advances); returns the count.

        The clean-death path: a deployment being torn down — or a fleet
        replica killed by the ``fleet.replica.down`` fault site — must
        resolve its queue rather than strand tickets pending forever,
        and the failures must land in the books so
        :meth:`check_invariants` still balances.
        """
        now = self.clock() if now is None else now
        failed = 0
        while self.batcher.pending:
            for request in self.batcher.collect():
                request.ticket.fail(reason, now)
                self._counters["failed"].inc()
                self._event("ticket.failed", request=request.seq,
                            session=request.session.session_id,
                            error=reason)
                failed += 1
        return failed

    def infer(self, session_id: str, chunk: np.ndarray,
              now: float | None = None) -> np.ndarray:
        """Convenience synchronous path: submit one chunk and drain the
        queue; returns the chunk's ``(T_chunk, n_out)`` output spikes.

        Note this flushes *all* queued work (other sessions' chunks
        complete too) — it is the single-client call, not a fast lane.
        """
        ticket = self.submit(session_id, chunk, now=now)
        self.flush(now=now)
        return ticket.outputs

    # -- housekeeping --------------------------------------------------------
    def _shed_expired(self, now: float) -> None:
        """Expire queued requests past their deadline (TTL shedding)."""
        if self.request_ttl is None:
            return
        for request in self.batcher.shed_expired(now):
            request.ticket.expire(now)
            self._counters["expired"].inc()
            self._event("ticket.expired", request=request.seq,
                        session=request.session.session_id,
                        waited_ms=(now - request.arrival) * 1e3)

    def _reap_sessions(self, now: float) -> None:
        """Drop sessions idle past ``session_ttl_s`` with nothing queued."""
        if self.session_ttl is None:
            return
        reapable = [
            sid for sid, session in self._sessions.items()
            if (now - session.last_active > self.session_ttl
                and not self.batcher.session_pending(sid))
        ]
        for sid in reapable:
            del self._sessions[sid]
            self._counters["reaped_sessions"].inc()
            self._event("session.reaped", session=sid)

    # -- the tick ------------------------------------------------------------
    def _primary_weights(self):
        """``(weight_overrides, degraded)`` for the primary tick run.

        ``None`` overrides serve the resident network's own (ideal)
        weights; in hardware mode the mapped network's generation-keyed
        cache supplies the achieved weights, so a ``reprogram()``
        between ticks is observed on the very next tick.  A failing
        hardware weight read (a real error, or the ``hw.weights.stale``
        fault site) degrades to the ideal weights instead of failing
        the tick — the second rung of the degradation ladder — and the
        chunks it serves are stamped ``degraded=True``.
        """
        if self.hardware is None or self.shadow:
            return None, False
        try:
            _faults.maybe_raise("hw.weights.stale")
            return self.hardware.weight_list(), False
        except Exception:
            self._counters["weight_fallbacks"].inc()
            self._event("serve.weight_fallback")
            return None, True

    @property
    def shadow_disabled(self) -> bool:
        """Whether the shadow circuit breaker has tripped."""
        return self._shadow_tripped

    def _run_tick(self, now: float) -> int:
        self._shed_expired(now)
        requests = self.batcher.collect()
        if not requests:
            return 0
        for request in requests:
            # Virtual queue wait: both times sit on the injected clock.
            self._queue_wait.observe((now - request.arrival) * 1e3)
            self._event("ticket.batched", request=request.seq,
                        session=request.session.session_id)
        with self._span("serve.tick", batch=len(requests)) as tick_span:
            weights, degraded = self._primary_weights()
            # Per-request poison flags are drawn before the batched
            # attempt: a fault plan can fail one specific chunk while its
            # co-batched neighbours complete (the isolation contract).
            poisoned = [_faults.should_fire("serve.request.raise")
                        for _ in requests]
            if any(poisoned):
                completed = self._isolate(requests, poisoned, weights, now,
                                          degraded)
            else:
                try:
                    completed = self._advance(requests, weights, now,
                                              degraded, span=tick_span)
                except Exception:
                    # The batched attempt died mid-tick: its workspace
                    # buffers are stranded mid-lend, and no session state
                    # was advanced (the scatter never ran).  Reclaim and
                    # retry each chunk in isolation.
                    self._workspace.reclaim()
                    completed = self._isolate(requests, poisoned, weights,
                                              now, degraded)
        self._counters["ticks"].inc()
        self._max_tick_batch.set_max(len(requests))
        return completed

    def _advance(self, requests, weights, now: float, degraded: bool,
                 retried: bool = False, span=None) -> int:
        """Advance ``requests`` in one batched run and complete tickets.

        This is the only computation path — the happy tick runs it on
        the full collected batch, the isolation fallback on one request
        at a time.  The fused engine's gather/scatter transparency makes
        the two bitwise-identical, so a retried chunk's outputs equal
        the ones its failed batched tick would have produced.

        ``span`` is the enclosing ``serve.tick`` span (``None`` with
        telemetry off, or on the isolation path): the gather / compute /
        scatter phase breakdown lands on it as millisecond attrs —
        three clock reads instead of three child span objects, because
        this is the serving hot loop.
        """
        if not retried:
            _faults.maybe_raise("serve.tick.raise")
        clock = self._trace_clock if span is not None else None
        ws = self._workspace
        n_in = self.network.sizes[0]
        count = len(requests)
        lengths = np.fromiter((r.steps for r in requests), np.int64, count)
        t_max = int(lengths.max())
        t0 = clock() if clock is not None else 0.0
        xs = ws.empty((count, t_max, n_in), self.dtype)
        for row, request in enumerate(requests):
            steps = request.steps
            xs[row, :steps] = request.chunk
            if steps < t_max:
                xs[row, steps:] = 0.0
        # The gather state is tick-transient, so its arrays come from
        # (and return to) the workspace: steady-state serving with
        # repeating tick shapes allocates nothing here.
        batched = StreamState.for_network(self.network, count,
                                          engine=self.engine,
                                          dtype=self.dtype, ws=ws)
        for row, request in enumerate(requests):
            batched.copy_row(row, request.session.state, 0)
        t1 = clock() if clock is not None else 0.0
        outputs, _ = self.network.run_stream(xs, batched,
                                             lengths=lengths,
                                             workspace=ws,
                                             weights=weights)
        t2 = clock() if clock is not None else 0.0
        divergences = self._shadow_divergences(requests, xs, lengths,
                                               outputs, ws)
        for row, request in enumerate(requests):
            request.session.state.copy_row(0, batched, row)
            request.session.last_active = now
            request.session.chunks += 1
            ticket = request.ticket
            if divergences is not None:
                ticket.divergence = divergences[row]
                request.session.divergence_sum += divergences[row]
            ticket.degraded = degraded
            ticket.retried = retried
            ticket.complete(outputs[row, :request.steps].copy(), now)
            self._event("ticket.completed", request=request.seq,
                        session=request.session.session_id,
                        steps=request.steps, degraded=degraded,
                        retried=retried, divergence=ticket.divergence)
        batched.release_to(ws)
        ws.release(xs, outputs)
        if clock is not None:
            end = clock()
            span.set(steps=t_max, degraded=degraded,
                     gather_ms=(t1 - t0) * 1e3,
                     compute_ms=(t2 - t1) * 1e3,
                     scatter_ms=(end - t2) * 1e3)
        self._counters["completed"].inc(count)
        self._counters["steps"].inc(int(lengths.sum()))
        if degraded:
            self._counters["degraded_chunks"].inc(count)
        if retried:
            self._counters["retried"].inc(count)
        return count

    def _isolate(self, requests, poisoned, weights, now: float,
                 degraded: bool) -> int:
        """Per-session error isolation: advance each chunk alone.

        Poisoned chunks (and chunks whose solo run raises) fail only
        their own ticket — the session's stream state is not advanced,
        so the client can resubmit from exactly where it stood.  The
        co-batched neighbours complete normally, stamped
        ``retried=True``.
        """
        completed = 0
        for request, bad in zip(requests, poisoned):
            if bad:
                error = "injected fault at site 'serve.request.raise'"
            else:
                try:
                    completed += self._advance([request], weights, now,
                                               degraded, retried=True)
                    continue
                except Exception as exc:
                    self._workspace.reclaim()
                    error = f"{type(exc).__name__}: {exc}"
            request.ticket.fail(error, now)
            self._counters["failed"].inc()
            self._event("ticket.failed", request=request.seq,
                        session=request.session.session_id, error=error)
        return completed

    def _shadow_divergences(self, requests, xs, lengths, outputs, ws):
        """Shadow pass behind a circuit breaker; ``None`` when disabled.

        A shadow failure (a real error, or the ``serve.shadow.raise``
        fault site) never fails the primary: it is counted, and after
        ``shadow_threshold`` failures the breaker trips and shadowing
        stops entirely (``shadow_disabled``) — the canary dying must
        not take down the deployment it canaries.
        """
        if not self.shadow or self._shadow_tripped:
            return None
        try:
            _faults.maybe_raise("serve.shadow.raise")
            return self._run_shadow(requests, xs, lengths, outputs, ws)
        except Exception:
            self._counters["shadow_failures"].inc()
            self._event("serve.shadow_failure",
                        failures=int(self._counters["shadow_failures"].value))
            if (self._counters["shadow_failures"].value
                    >= self.shadow_threshold):
                self._shadow_tripped = True
                self._event("serve.shadow_breaker_tripped",
                            threshold=self.shadow_threshold)
            return None

    def _run_shadow(self, requests, xs, lengths, outputs, ws) -> list[float]:
        """Advance every session's hardware shadow stream on the same
        gathered chunk; returns the per-row output divergence.

        Divergence is the fraction of output spike entries (over the
        row's valid steps) on which the ideal and hardware models
        disagree — 0.0 when the realization is output-transparent for
        this chunk.
        """
        count = len(requests)
        with self._span("serve.shadow", batch=count) as shadow_span:
            shadow_batched = StreamState.for_network(self.network, count,
                                                     engine=self.engine,
                                                     dtype=self.dtype, ws=ws)
            for row, request in enumerate(requests):
                shadow_batched.copy_row(row, request.session.shadow_state, 0)
            shadow_out, _ = self.network.run_stream(
                xs, shadow_batched, lengths=lengths, workspace=ws,
                weights=self.hardware.weight_list())
            divergences = []
            for row, request in enumerate(requests):
                request.session.shadow_state.copy_row(0, shadow_batched, row)
                steps = request.steps
                divergences.append(float(np.mean(
                    outputs[row, :steps] != shadow_out[row, :steps])))
            shadow_batched.release_to(ws)
            ws.release(shadow_out)
            if shadow_span is not None:
                shadow_span.set(divergence=float(sum(divergences)) / count)
        self._counters["shadow_chunks"].inc(count)
        self._divergence_sum.inc(float(sum(divergences)))
        return divergences

    def mean_divergence(self) -> float | None:
        """Mean per-chunk ideal-vs-hardware output divergence observed so
        far (shadow mode), or ``None`` before any shadowed chunk."""
        if not self._counters["shadow_chunks"].value:
            return None
        return (self._divergence_sum.value
                / self._counters["shadow_chunks"].value)

    # -- offline bulk --------------------------------------------------------
    @_obs.timed("serve.run_batch", metric="serve.run_batch_ms")
    def run_batch(self, inputs: np.ndarray, batch_size: int = 64,
                  workers: int = 0, pool=None) -> np.ndarray:
        """Stateless bulk inference on the served model (no sessions).

        Delegates to :func:`~repro.core.trainer.run_in_batches`; pass
        ``workers >= 1`` (or an existing
        :class:`~repro.runtime.pool.WorkerPool`) to shard large
        evaluation sets across processes.  A hardware-mode server runs
        the bulk set through the hardware realization too (via the mapped
        network's synced clone) — a reused ``pool`` must then have been
        built from ``server.hardware.hardware_network``, not the software
        model.  Shadow servers serve ideal outputs here, as in ticks.
        """
        network = self.network
        if self.hardware is not None and not self.shadow:
            self.hardware.weight_list()   # re-sync after any reprogram
            network = self.hardware.hardware_network
        return run_in_batches(network, inputs, batch_size,
                              engine=self.engine, precision=self.dtype,
                              workers=workers, pool=pool,
                              workspace=None if (workers or pool) else
                              self._workspace)
    # run_in_batches releases its chunk buffers after concatenation, so
    # handing it the server workspace is safe on the serial path.

    def evaluate_variation(self, inputs: np.ndarray, labels: np.ndarray,
                           bits=(4, 5),
                           variations=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
                           n_seeds: int = 3, rng=11, batch_size: int = 64,
                           workers: int = 0, pool=None) -> list[dict]:
        """Fig. 8-scale variation sweep of the served model, as a serving
        workload.

        Evaluates the resident network's accuracy under every
        ``bits × variation`` grid point (``n_seeds`` independent
        programming draws each) via
        :func:`~repro.hardware.mapped_network.accuracy_under_variation`.
        With ``workers >= 1`` one persistent
        :class:`~repro.runtime.pool.WorkerPool` is built from the served
        network and reused across the whole grid, sharding the
        device-noise seeds across processes; the numbers are identical to
        the serial sweep's (each seed's rng stream is keyed by the fixed
        root ``rng`` only).  A hardware-mode server's device model
        (conductance window, read noise, stuck-at rate) is the sweep's
        base device, so the fleet evaluates the realization family it
        actually serves.

        Returns one row dict per grid point:
        ``{bits, variation, mean_accuracy, std_accuracy, n_seeds}``.
        """
        device = self.hardware.device if self.hardware is not None else None
        bits_list = [bits] if isinstance(bits, int) else list(bits)
        owned = None
        if pool is None and workers >= 1:
            from ..runtime.pool import WorkerPool

            owned = pool = WorkerPool(self.network,
                                      workers=min(workers, max(n_seeds, 1)))
        try:
            rows = []
            for b in bits_list:
                for variation in variations:
                    mean, std = accuracy_under_variation(
                        self.network, inputs, labels, bits=b,
                        variation=variation, n_seeds=n_seeds, rng=rng,
                        batch_size=batch_size, precision=self.dtype,
                        pool=pool, device=device)
                    rows.append({
                        "bits": int(b),
                        "variation": float(variation),
                        "mean_accuracy": mean,
                        "std_accuracy": std,
                        "n_seeds": int(n_seeds),
                    })
        finally:
            if owned is not None:
                owned.close()
        return rows

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Drop all sessions and pooled buffers (idempotent)."""
        self._sessions.clear()
        self._workspace.reclaim()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        arch = "-".join(str(s) for s in self.network.sizes)
        model = f", model={self.model_name}:{self.model_version}" \
            if self.model_name else ""
        mode = ""
        if self.hardware is not None:
            mode = ", shadow" if self.shadow else ", hardware"
        return (f"ModelServer({arch}, engine={self.engine!r}, "
                f"sessions={len(self._sessions)}, "
                f"pending={self.batcher.pending}{mode}{model})")
