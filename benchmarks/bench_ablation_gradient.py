"""Design ablation — exact filter-adjoint BPTT vs the paper's truncated
eq. (13) (DESIGN.md Section 5).

The paper's printed recursion drops the filter-state adjoints (the
alpha/beta carries).  Both modes train; the comparison quantifies what
the truncation costs on a timing-rich task.
"""

from conftest import bench_experiment


def test_ablation_gradient(benchmark):
    result = bench_experiment(benchmark, "ablation-gradient")
    summary = result.summary
    chance = 1.0 / 20.0

    # Both gradient modes learn above chance (the truncated form is the
    # one the paper presumably trained with, so it must work).
    assert summary["acc_exact"] > 2 * chance
    assert summary["acc_truncated"] > 2 * chance

    # The exact adjoints must not be substantially worse than the
    # truncation (they are the true gradient).
    assert summary["acc_exact"] >= summary["acc_truncated"] - 0.10
