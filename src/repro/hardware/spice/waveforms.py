"""Waveform builders and trace measurements for the analog simulator."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...common.errors import CircuitError

__all__ = [
    "constant",
    "pwl",
    "pulse_train",
    "rising_crossings",
    "falling_crossings",
    "count_pulses",
    "trace_stats",
]


def constant(value: float):
    """Waveform: a constant voltage."""
    value = float(value)

    def wave(t: float) -> float:
        return value

    return wave


def pwl(points: Sequence[tuple[float, float]]):
    """Piece-wise-linear waveform through ``(time, value)`` points.

    Holds the first value before the first point and the last value after
    the last point.  Times must be strictly increasing.
    """
    if not points:
        raise CircuitError("pwl needs at least one point")
    times = np.array([p[0] for p in points], dtype=float)
    values = np.array([p[1] for p in points], dtype=float)
    if np.any(np.diff(times) <= 0):
        raise CircuitError("pwl times must be strictly increasing")

    def wave(t: float) -> float:
        return float(np.interp(t, times, values))

    return wave


def pulse_train(spike_times: Sequence[float], width: float,
                amplitude: float = 1.0, base: float = 0.0,
                edge_fraction: float = 0.1):
    """Rectangular pulses (with finite edges) at the given start times.

    This models the input spike train of the paper's circuit experiment:
    10 ns-wide voltage pulses at the word-line.

    Parameters
    ----------
    spike_times:
        Pulse start times (seconds).
    width:
        Pulse width (seconds).
    amplitude, base:
        High and low levels (volts).
    edge_fraction:
        Rise/fall time as a fraction of the width (keeps the PWL finite).
    """
    if width <= 0:
        raise CircuitError(f"width must be positive, got {width}")
    if not 0.0 < edge_fraction < 0.5:
        raise CircuitError("edge_fraction must be in (0, 0.5)")
    starts = sorted(float(t) for t in spike_times)
    for a, b in zip(starts, starts[1:]):
        if b - a < width:
            raise CircuitError(
                f"pulses at {a:g}s and {b:g}s overlap (width {width:g}s)"
            )
    edge = width * edge_fraction

    def wave(t: float) -> float:
        for start in starts:
            local = t - start
            if local < -0.0:
                continue
            if 0.0 <= local < edge:
                return base + (amplitude - base) * (local / edge)
            if edge <= local < width - edge:
                return amplitude
            if width - edge <= local < width:
                return base + (amplitude - base) * ((width - local) / edge)
        return base

    return wave


def rising_crossings(time: np.ndarray, trace: np.ndarray,
                     level: float) -> np.ndarray:
    """Times where ``trace`` crosses ``level`` upward (linear interp)."""
    time = np.asarray(time, dtype=float)
    trace = np.asarray(trace, dtype=float)
    if time.shape != trace.shape:
        raise CircuitError("time and trace must have the same shape")
    below = trace[:-1] < level
    above = trace[1:] >= level
    indices = np.flatnonzero(below & above)
    crossings = []
    for i in indices:
        frac = (level - trace[i]) / (trace[i + 1] - trace[i])
        crossings.append(time[i] + frac * (time[i + 1] - time[i]))
    return np.asarray(crossings)


def falling_crossings(time: np.ndarray, trace: np.ndarray,
                      level: float) -> np.ndarray:
    """Times where ``trace`` crosses ``level`` downward."""
    return rising_crossings(time, -np.asarray(trace, dtype=float), -level)


def count_pulses(time: np.ndarray, trace: np.ndarray,
                 level: float) -> int:
    """Number of upward crossings of ``level`` (output spike count)."""
    return int(len(rising_crossings(time, trace, level)))


def trace_stats(trace: np.ndarray) -> dict:
    """Min / max / mean / peak-to-peak of a waveform."""
    trace = np.asarray(trace, dtype=float)
    if trace.size == 0:
        raise CircuitError("empty trace")
    return {
        "min": float(trace.min()),
        "max": float(trace.max()),
        "mean": float(trace.mean()),
        "peak_to_peak": float(trace.max() - trace.min()),
    }
