"""Hardware streaming equivalence: chunked hardware ``run_stream`` ==
one-shot hardware ``run``.

The hardware-in-the-loop analogue of ``tests/unit/test_streaming.py``:
a :class:`~repro.hardware.mapped_network.HardwareMappedNetwork` streamed
in chunks of any sizes produces *bitwise-identical* output spikes to its
one-shot ``run`` — for the deterministic mapped realization and for a
read-noise realization pinned by a per-stream rng seed.  The guarantee
rests on the same two pillars as the software one: first-order carries
plus the always-CSR crossbar product (the weight override changes weight
*values* only, never the code path), and on the stream's weight
realization being pinned once at open (``weight_list``'s generation-keyed
cache / the ``read_noise_rng`` snapshot).

The shapes sit above the one-shot fused engine's sparse-probe threshold
so the bitwise claim is a theorem, not luck (asserted below, as in the
software tests).
"""

import numpy as np
import pytest

from repro.common.errors import ConfigError, ShapeError, StateError
from repro.core import SpikingNetwork
from repro.core import engine as engine_mod
from repro.hardware import (
    HardwareMappedNetwork,
    HardwareProfile,
    RRAMDeviceConfig,
    accuracy_under_variation,
)

needs_scipy = pytest.mark.skipif(
    engine_mod._sparse is None,
    reason="fused bitwise streaming guarantee requires scipy's CSR product")

#: Above the one-shot sparse-probe threshold at every layer (see
#: tests/unit/test_streaming.py for the arithmetic).
SIZES = (48, 44, 40)
BATCH, STEPS = 8, 48
DENSITY = 0.08


def make_net(seed=1):
    net = SpikingNetwork(SIZES, rng=seed)
    for layer in net.layers:
        layer.weight *= 5.0
    return net


def make_mapped(variation=0.1, read_noise=0.0, seed=3, net=None):
    device = RRAMDeviceConfig(levels=16, variation=variation,
                              read_noise=read_noise)
    return HardwareMappedNetwork(net or make_net(), device, rng=seed)


def make_inputs(batch=BATCH, steps=STEPS, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random((batch, steps, SIZES[0])) < DENSITY).astype(np.float64)


def stream_in_chunks(mapped, x, chunk, precision=None, read_noise_rng=None):
    state = None
    outs = []
    for start in range(0, x.shape[1], chunk):
        out, state = mapped.run_stream(
            x[:, start:start + chunk], state, precision=precision,
            read_noise_rng=read_noise_rng if state is None else None)
        outs.append(out)
    return np.concatenate(outs, axis=1), state


class TestChunkedHardwareEquivalence:
    @needs_scipy
    def test_shapes_exercise_the_sparse_path(self):
        """The one-shot probe must pick CSR at every layer under the
        *hardware* weights too (spike densities shift with the mapped
        values) for the bitwise guarantee to hold."""
        mapped = make_mapped()
        x = make_inputs()
        _, record = mapped.run(x, record=True)
        layer_inputs = [x] + [rec.spikes for rec in record.layers[:-1]]
        for index, arr in enumerate(layer_inputs):
            flat = arr.reshape(-1, arr.shape[2])
            assert flat.size >= engine_mod._SPARSE_MIN_SIZE, index
            density = np.count_nonzero(flat) / flat.size
            assert 0 < density <= engine_mod.SPARSE_DENSITY_THRESHOLD, (
                index, density)

    @needs_scipy
    @pytest.mark.parametrize("precision", ["float64", "float32"])
    @pytest.mark.parametrize("chunk", [1, 7, STEPS])
    def test_chunked_equals_one_shot(self, precision, chunk):
        mapped = make_mapped()
        x = make_inputs()
        full, _ = mapped.run(x, precision=precision)
        got, state = stream_in_chunks(mapped, x, chunk, precision=precision)
        assert got.dtype == full.dtype
        assert np.array_equal(full, got)
        assert state.steps.tolist() == [STEPS] * BATCH

    @needs_scipy
    @pytest.mark.parametrize("precision", ["float64", "float32"])
    @pytest.mark.parametrize("chunk", [1, 7, STEPS])
    def test_chunked_equals_one_shot_under_pinned_read_noise(
            self, precision, chunk):
        """Read noise pinned by a per-stream seed: the stream draws its
        read realization once at open and every chunk reuses it, so the
        one-shot run under the same seed is bitwise identical."""
        mapped = make_mapped(read_noise=0.05)
        x = make_inputs()
        full, _ = mapped.run(x, precision=precision, read_noise_rng=7)
        got, _ = stream_in_chunks(mapped, x, chunk, precision=precision,
                                  read_noise_rng=7)
        assert np.array_equal(full, got)

    @needs_scipy
    def test_hardware_differs_from_ideal(self):
        """Sanity: the mapped realization actually moves the outputs
        (otherwise every equivalence above would be vacuous)."""
        net = make_net()
        mapped = make_mapped(variation=0.3, net=net)
        x = make_inputs()
        ideal, _ = net.run(x)
        hardware, _ = mapped.run(x)
        assert not np.array_equal(ideal, hardware)


class TestWeightProvider:
    def test_cached_until_reprogram(self):
        mapped = make_mapped()
        first = mapped.weight_list()
        assert mapped.weight_list() is first      # memoised list object
        mapped.reprogram()
        second = mapped.weight_list()
        assert second is not first
        assert any(not np.array_equal(a, b) for a, b in zip(first, second))
        # the hardware clone tracks the realization
        for layer, weights in zip(mapped.hardware_network.layers, second):
            assert np.array_equal(layer.weight, weights)

    def test_read_noise_rng_is_reproducible_by_seed(self):
        mapped = make_mapped(read_noise=0.05)
        a = mapped.weight_list(rng=7)
        b = mapped.weight_list(rng=7)
        c = mapped.weight_list(rng=8)
        base = mapped.weight_list()
        for wa, wb, wc, wd in zip(a, b, c, base):
            assert np.array_equal(wa, wb)          # same seed, same draw
            assert not np.array_equal(wa, wc)      # different seed
            assert not np.array_equal(wa, wd)      # differs from mapped
    # realization (frozen at map time)

    def test_noisy_run_restores_the_mapped_realization(self):
        mapped = make_mapped(read_noise=0.05)
        x = make_inputs(batch=2, steps=6)
        before, _ = mapped.run(x)
        mapped.run(x, read_noise_rng=5)
        after, _ = mapped.run(x)
        assert np.array_equal(before, after)

    def test_reprogram_with_new_targets(self):
        net = make_net()
        mapped = make_mapped(variation=0.0, net=net)
        halved = [layer.weight * 0.5 for layer in net.layers]
        mapped.reprogram(halved)
        for got, target in zip(mapped.weight_list(), halved):
            # quantization error only — no variation in this device
            assert np.max(np.abs(got - target)) <= np.max(np.abs(target))
        with pytest.raises(ShapeError):
            mapped.reprogram(halved[:1])

    def test_stale_stream_refuses_to_continue(self):
        mapped = make_mapped()
        x = make_inputs(batch=2, steps=6)
        _, state = mapped.run_stream(x)
        mapped.reprogram()
        with pytest.raises(StateError):
            mapped.run_stream(x, state)

    def test_read_noise_rng_only_at_open(self):
        mapped = make_mapped(read_noise=0.05)
        x = make_inputs(batch=2, steps=6)
        _, state = mapped.run_stream(x, read_noise_rng=7)
        with pytest.raises(ValueError):
            mapped.run_stream(x, state, read_noise_rng=8)

    def test_weight_override_validation(self):
        """The engine hook itself rejects malformed overrides."""
        net = make_net()
        x = make_inputs(batch=2, steps=6)
        with pytest.raises(ShapeError):
            net.run_stream(x, weights=[net.layers[0].weight])  # wrong count
        with pytest.raises(ShapeError):
            net.run_stream(x, weights=[w.T for w in net.weights])
        with pytest.raises(ValueError):
            net.run_stream(x, engine="step", weights=list(net.weights))

    @needs_scipy
    def test_override_with_own_weights_is_identity(self):
        """weights= with the network's own arrays must change nothing —
        the override substitutes values, not code paths."""
        net = make_net()
        x = make_inputs()
        plain, _ = net.run_stream(x)
        overridden, _ = net.run_stream(x, weights=list(net.weights))
        assert np.array_equal(plain, overridden)


class TestHardwareProfile:
    def test_roundtrip_and_build(self):
        profile = HardwareProfile.create(bits=5, variation=0.2,
                                         read_noise=0.01, seed=4)
        assert profile.bits == 5
        assert profile.device.levels == 32
        clone = HardwareProfile.from_dict(profile.to_dict())
        assert clone == profile
        mapped = profile.build(make_net())
        assert mapped.device == profile.device
        # same (profile, network) => same realization
        again = profile.build(mapped.software_network)
        for a, b in zip(mapped.weight_list(), again.weight_list()):
            assert np.array_equal(a, b)

    def test_levels_bits_mismatch_rejected(self):
        from repro.hardware import QuantizationConfig

        with pytest.raises(ConfigError):
            HardwareProfile(device=RRAMDeviceConfig(levels=16),
                            quantization=QuantizationConfig(bits=5))


class TestDeviceParameterizedSweep:
    def test_device_base_flows_through_sweep(self):
        """seed_correct(device=base) evaluates exactly the mapped network
        of base.replace(levels=2**bits, variation=v) at the same seed."""
        from repro.hardware.mapped_network import seed_correct
        from repro.common.rng import RandomState
        from repro.core.trainer import run_in_batches

        net = SpikingNetwork((24, 20, 12), rng=1)
        for layer in net.layers:
            layer.weight *= 5.0
        rng = np.random.default_rng(5)
        x = (rng.random((10, 6, 24)) < 0.15).astype(np.float64)
        labels = np.arange(10) % 12
        base = RRAMDeviceConfig(g_min=2e-6, g_max=5e-5,
                                stuck_at_rate=0.3)
        expected_device = base.replace(levels=2 ** 4, variation=0.2)
        mapped = HardwareMappedNetwork(net, expected_device,
                                       rng=RandomState(123))
        outputs = run_in_batches(mapped.hardware_network, x, 64)
        predictions = np.argmax(outputs.sum(axis=1), axis=1)
        expected = int(np.sum(predictions == labels))
        got = seed_correct(net, x, labels, bits=4, variation=0.2, seed=123,
                           device=base)
        assert got == expected

    def test_pooled_sweep_with_device_matches_serial(self):
        net = SpikingNetwork((24, 20, 12), rng=1)
        for layer in net.layers:
            layer.weight *= 5.0
        rng = np.random.default_rng(6)
        x = (rng.random((8, 6, 24)) < 0.15).astype(np.float64)
        labels = np.arange(8) % 12
        base = RRAMDeviceConfig(read_noise=0.0, stuck_at_rate=0.05)
        serial = accuracy_under_variation(net, x, labels, bits=4,
                                          variation=0.2, n_seeds=2, rng=11,
                                          device=base)
        pooled = accuracy_under_variation(net, x, labels, bits=4,
                                          variation=0.2, n_seeds=2, rng=11,
                                          device=base, workers=1)
        assert serial == pooled
