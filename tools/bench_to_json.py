#!/usr/bin/env python
"""Machine-readable benchmarks: ``make bench-json`` / ``make bench-serving``.

Two modes sharing one CLI:

* default — times the repo's hot paths (forward, backward, the full
  training step — ideal and hardware-aware — and the Fig. 8 variation
  sweep) for the serial fused engine and for the parallel runtime at each
  requested worker count, then writes ``BENCH_throughput.json`` so the
  performance trajectory of the project is diffable from PR to PR;
* ``--serving`` — drives the open-loop serving benchmark
  (``benchmarks/bench_serving.py``: Poisson arrivals through the
  micro-batching :class:`repro.serve.ModelServer`) and writes
  ``BENCH_serving.json`` with throughput_rps and p50/p95/p99 latency per
  offered load — for the ideal model, the crossbar-mapped hardware
  realization, and the shadow (ideal + hardware, with per-chunk output
  divergence) configurations side by side;
* ``--aware`` — only the hardware-aware train-step rows (ideal vs
  straight-through fake-quant vs fake-quant + per-step programming
  noise, 4-bit / 10 % variation) into ``BENCH_aware.json`` — the
  ``make bench-aware`` entry point.

The shapes match ``benchmarks/bench_throughput.py`` and
``docs/performance.md``: batch 32 (forward/backward) and batch 64
(training step), T = 100, a 700-128-128-20 adaptive MLP at ~3 % input
spike density.

Usage::

    PYTHONPATH=src python tools/bench_to_json.py \
        [--out BENCH_throughput.json] [--rounds 10] [--workers 0,1,2,4]
    PYTHONPATH=src python tools/bench_to_json.py --serving \
        [--out BENCH_serving.json]

Worker counts beyond the machine's cores are still measured (they quantify
oversubscription overhead); the JSON records ``cpu_count`` so readers can
judge the scaling numbers.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.common.benchcfg import (  # noqa: E402
    BENCH_FORWARD_BATCH as FORWARD_BATCH,
    BENCH_SIZES as SIZES,
    BENCH_SPIKE_DENSITY,
    BENCH_STEPS as STEPS,
    BENCH_TRAIN_BATCH as TRAIN_BATCH,
    bench_inputs,
    bench_network,
)
from repro.common.rng import RandomState  # noqa: E402
from repro.core import (  # noqa: E402
    CrossEntropyRateLoss,
    Trainer,
    TrainerConfig,
    backward,
)
from repro.core.trainer import run_in_batches  # noqa: E402
from repro.hardware import accuracy_under_variation  # noqa: E402

SWEEP_SIZES = (700, 128, 20)
SWEEP_SAMPLES = 128
SWEEP_SEEDS = 4


def _time(fn, rounds: int, warmup: int = 2) -> dict:
    """min/mean/max wall-clock milliseconds over ``rounds`` calls."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return {
        "min_ms": round(min(samples), 3),
        "mean_ms": round(statistics.fmean(samples), 3),
        "max_ms": round(max(samples), 3),
        "rounds": rounds,
    }


def bench_forward(rounds: int) -> dict:
    net = bench_network()
    x = bench_inputs(FORWARD_BATCH)
    out = {
        "fused": _time(lambda: net.run(x), rounds),
        "fused_float32": _time(lambda: net.run(x, precision="float32"),
                               rounds),
        "step_reference": _time(lambda: net.run(x, engine="step"),
                                max(rounds // 2, 3)),
    }
    return out


def bench_backward(rounds: int) -> dict:
    net = bench_network()
    x = bench_inputs(FORWARD_BATCH)
    labels = np.arange(FORWARD_BATCH) % SIZES[-1]
    loss = CrossEntropyRateLoss()
    outputs, record = net.run(x, record=True)
    _, grad_out = loss.value_and_grad(outputs, labels)
    return {
        "fused": _time(lambda: backward(net, record, grad_out), rounds),
        "reference": _time(
            lambda: backward(net, record, grad_out, engine="reference"),
            max(rounds // 2, 3)),
    }


def bench_train_step(rounds: int, workers: int, hardware=None) -> dict:
    net = bench_network(seed=2)
    x = bench_inputs(TRAIN_BATCH, seed=3)
    labels = np.arange(TRAIN_BATCH) % SIZES[-1]
    trainer = Trainer(net, CrossEntropyRateLoss(), TrainerConfig(
        epochs=1, batch_size=TRAIN_BATCH, learning_rate=1e-4,
        optimizer="adamw", workers=workers, hardware=hardware))
    try:
        return _time(lambda: trainer.train_batch(x, labels), rounds)
    finally:
        trainer.close()


#: The Fig. 8 operating point the hardware-aware rows are measured at.
AWARE_BITS = 4
AWARE_VARIATION = 0.1


def _aware_profile(variation: float):
    from repro.hardware import HardwareProfile

    return HardwareProfile.create(bits=AWARE_BITS, variation=variation,
                                  seed=13)


def bench_train_step_aware(rounds: int, ideal: dict | None = None) -> dict:
    """Hardware-aware train-step cost rows (serial, paper shapes).

    ``ideal`` is the plain fused step (pass an already-measured row —
    e.g. the worker loop's ``serial`` — to avoid re-timing it);
    ``hardware_aware`` adds the straight-through fake-quant override
    (map-time grid, no noise); ``hardware_aware_noise`` additionally
    samples one programming-variation draw per step (the full Fig. 8
    operating-point training mode).  ``overhead_*`` are mean-time ratios
    against ``ideal``.
    """
    rows = {
        "ideal": ideal if ideal is not None else bench_train_step(rounds, 0),
        "hardware_aware": bench_train_step(
            rounds, 0, hardware=_aware_profile(0.0)),
        "hardware_aware_noise": bench_train_step(
            rounds, 0, hardware=_aware_profile(AWARE_VARIATION)),
    }
    base = rows["ideal"]["mean_ms"]
    for key in ("hardware_aware", "hardware_aware_noise"):
        rows[f"overhead_{key}"] = round(rows[key]["mean_ms"] / base, 3)
    return rows


def bench_inference(rounds: int, workers: int) -> dict:
    """Sharded forward over 4 batches (steady state: persistent pool)."""
    net = bench_network(seed=4)
    x = bench_inputs(4 * FORWARD_BATCH, seed=5)
    if workers == 0:
        return _time(
            lambda: run_in_batches(net, x, FORWARD_BATCH), rounds)
    from repro.runtime import WorkerPool

    with WorkerPool(net, workers=workers) as pool:
        return _time(
            lambda: run_in_batches(net, x, FORWARD_BATCH, pool=pool),
            rounds)


def bench_variation_sweep(rounds: int, workers: int) -> dict:
    """One Fig. 8 grid point, n_seeds=4 (persistent pool across calls)."""
    net = bench_network(sizes=SWEEP_SIZES, seed=6)
    rng = RandomState(7)
    x = (rng.random((SWEEP_SAMPLES, STEPS, SWEEP_SIZES[0]))
         < BENCH_SPIKE_DENSITY).astype(np.float64)
    labels = np.arange(SWEEP_SAMPLES) % SWEEP_SIZES[-1]

    def point(pool=None):
        return accuracy_under_variation(
            net, x, labels, bits=4, variation=0.2, n_seeds=SWEEP_SEEDS,
            rng=11, pool=pool)

    if workers == 0:
        return _time(point, rounds)
    from repro.runtime import WorkerPool

    with WorkerPool(net, workers=min(workers, SWEEP_SEEDS)) as pool:
        return _time(lambda: point(pool), rounds)


def _environment_meta() -> dict:
    return {
        "generated": datetime.datetime.now(datetime.timezone.utc)
                     .isoformat(timespec="seconds"),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def serving_main(out_path: str) -> int:
    """``--serving`` mode: the open-loop serving grid -> BENCH_serving.json."""
    sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                    "..", "benchmarks"))
    import bench_serving

    report = {
        "meta": {**_environment_meta(), "workload": bench_serving.serving_meta()},
        "serving": bench_serving.run_serving_bench(),
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {out_path}")
    return 0


def aware_main(out_path: str, rounds: int) -> int:
    """``--aware`` mode: hardware-aware train-step cost -> BENCH_aware.json.

    The quick ``make bench-aware`` entry point: only the train-step rows
    (ideal vs quantize vs quantize+noise), so the overhead of closing the
    codesign loop is measurable in seconds rather than the full grid.
    """
    report = {
        "meta": {
            **_environment_meta(),
            "shapes": {"sizes": list(SIZES), "steps": STEPS,
                       "train_batch": TRAIN_BATCH},
            "operating_point": {"bits": AWARE_BITS,
                                "variation": AWARE_VARIATION},
        },
        "train_step": bench_train_step_aware(rounds),
    }
    rows = report["train_step"]
    for key in ("ideal", "hardware_aware", "hardware_aware_noise"):
        print(f"train step [{key}]: {rows[key]['mean_ms']} ms mean")
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {out_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--workers", default="0,1,2,4",
                        help="comma-separated worker counts for the "
                             "parallel sections (0 = serial)")
    parser.add_argument("--serving", action="store_true",
                        help="run the open-loop serving benchmark instead "
                             "(writes BENCH_serving.json by default)")
    parser.add_argument("--aware", action="store_true",
                        help="run only the hardware-aware train-step rows "
                             "(writes BENCH_aware.json by default)")
    args = parser.parse_args(argv)
    if args.serving:
        return serving_main(args.out or "BENCH_serving.json")
    if args.aware:
        return aware_main(args.out or "BENCH_aware.json", args.rounds)
    out_path = args.out or "BENCH_throughput.json"
    worker_counts = [int(w) for w in args.workers.split(",") if w != ""]
    rounds = args.rounds

    report = {
        "meta": {
            **_environment_meta(),
            "shapes": {
                "sizes": list(SIZES),
                "steps": STEPS,
                "forward_batch": FORWARD_BATCH,
                "train_batch": TRAIN_BATCH,
                "sweep": {"sizes": list(SWEEP_SIZES),
                          "samples": SWEEP_SAMPLES,
                          "n_seeds": SWEEP_SEEDS},
            },
        },
        "forward": bench_forward(rounds),
        "backward": bench_backward(rounds),
        "train_step": {}, "inference": {}, "variation_sweep": {},
    }
    print(f"forward fused: {report['forward']['fused']['mean_ms']} ms mean")
    print(f"backward fused: {report['backward']['fused']['mean_ms']} ms mean")
    for workers in worker_counts:
        label = "serial" if workers == 0 else f"workers{workers}"
        report["train_step"][label] = bench_train_step(rounds, workers)
        report["inference"][label] = bench_inference(
            max(rounds // 2, 3), workers)
        report["variation_sweep"][label] = bench_variation_sweep(
            max(rounds // 3, 2), workers)
        print(f"train step [{label}]: "
              f"{report['train_step'][label]['mean_ms']} ms mean")
    # The aware rows reuse the serial ideal measurement when the loop
    # above produced one (workers=0 requested), instead of re-timing it.
    report["train_step_hardware_aware"] = bench_train_step_aware(
        rounds, ideal=report["train_step"].get("serial"))

    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
