"""Versioned on-disk model registry the server cold-starts from.

A :class:`ModelRegistry` is a directory of named models, each a sequence
of immutable checkpoint versions written with
:func:`~repro.common.serialization.save_checkpoint`, optionally joined by
immutable **hardware profiles** (``hwNNNN.json``) — the quantization +
device/variation recipes that map the checkpoints onto crossbars
(:class:`~repro.hardware.mapped_network.HardwareProfile`)::

    <root>/
      shd-mlp/
        v0001.npz  v0001.json
        v0002.npz  v0002.json
        hw0001.json
      quickstart/
        v0001.npz  v0001.json

``save`` / ``save_profile`` allocate the next version, ``load`` /
``load_profile`` rebuild the artifact (and return the metadata saved with
it), ``list`` enumerates everything from the JSON sidecars alone (no
array loading).  Checkpoints and profiles version independently: one
trained model may carry many candidate hardware realizations (4-bit vs
5-bit, different variation assumptions), and
:meth:`~repro.serve.server.ModelServer.from_registry` picks one pair to
serve.  The format inherits the serialization module's safety property:
no pickling, no executable content.
"""

from __future__ import annotations

import os
import re
import time

from ..common.errors import SerializationError
from ..common.serialization import (
    load_checkpoint,
    load_hardware_profile,
    load_json,
    save_checkpoint,
    save_hardware_profile,
)

__all__ = ["ModelRegistry"]

_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION = re.compile(r"^v(\d{4,})$")
_HW_VERSION = re.compile(r"^hw(\d{4,})$")


class ModelRegistry:
    """A directory of versioned model checkpoints.

    Parameters
    ----------
    root:
        Registry directory (created on first ``save``).
    """

    def __init__(self, root: str):
        self.root = os.fspath(root)

    # -- paths ---------------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME.match(name or ""):
            raise SerializationError(
                f"invalid model name {name!r}: use letters, digits, "
                f"'.', '_', '-'")
        return name

    def path(self, name: str, version: str) -> str:
        """The ``.npz`` path of one checkpoint (which need not exist)."""
        self._check_name(name)
        if not _VERSION.match(version):
            raise SerializationError(
                f"invalid version {version!r}: expected 'vNNNN'")
        return os.path.join(self.root, name, version + ".npz")

    def profile_path(self, name: str, profile: str) -> str:
        """The ``.json`` path of one hardware profile (which need not
        exist)."""
        self._check_name(name)
        if not _HW_VERSION.match(profile):
            raise SerializationError(
                f"invalid hardware profile {profile!r}: expected 'hwNNNN'")
        return os.path.join(self.root, name, profile + ".json")

    # -- queries -------------------------------------------------------------
    def models(self) -> list[str]:
        """Model names present in the registry, sorted."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            entry for entry in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, entry))
            and _NAME.match(entry)
        )

    def versions(self, name: str) -> list[str]:
        """All versions of ``name``, oldest first (empty if unknown)."""
        directory = os.path.join(self.root, self._check_name(name))
        if not os.path.isdir(directory):
            return []
        found = []
        for entry in os.listdir(directory):
            stem, ext = os.path.splitext(entry)
            if ext == ".npz" and _VERSION.match(stem):
                found.append(stem)
        return sorted(found, key=lambda v: int(v[1:]))

    def latest(self, name: str) -> str | None:
        """The newest version of ``name``, or ``None``."""
        versions = self.versions(name)
        return versions[-1] if versions else None

    def profiles(self, name: str) -> list[str]:
        """All hardware profiles of ``name``, oldest first (empty if
        none)."""
        directory = os.path.join(self.root, self._check_name(name))
        if not os.path.isdir(directory):
            return []
        found = []
        for entry in os.listdir(directory):
            stem, ext = os.path.splitext(entry)
            if ext == ".json" and _HW_VERSION.match(stem):
                found.append(stem)
        return sorted(found, key=lambda v: int(v[2:]))

    def latest_profile(self, name: str) -> str | None:
        """The newest hardware profile of ``name``, or ``None``."""
        profiles = self.profiles(name)
        return profiles[-1] if profiles else None

    def list(self, name: str | None = None) -> list[dict]:
        """Describe every checkpoint (of one model, or of all models).

        Reads only the JSON sidecars; each entry carries ``name``,
        ``version``, ``path``, the architecture summary and the user
        metadata saved with the checkpoint.
        """
        names = [self._check_name(name)] if name is not None else self.models()
        entries = []
        for model in names:
            for version in self.versions(model):
                npz = self.path(model, version)
                sidecar = load_json(os.path.splitext(npz)[0] + ".json")
                entries.append({
                    "name": model,
                    "version": version,
                    "path": npz,
                    "network": sidecar.get("network", {}),
                    "meta": sidecar.get("meta", {}),
                })
        return entries

    def list_profiles(self, name: str | None = None) -> list[dict]:
        """Describe every hardware profile (of one model, or of all).

        Each entry carries ``name``, ``profile`` (the ``hwNNNN`` id),
        ``path``, the profile's config dict and the user metadata saved
        with it.
        """
        names = [self._check_name(name)] if name is not None else self.models()
        entries = []
        for model in names:
            for profile in self.profiles(model):
                path = self.profile_path(model, profile)
                payload = load_json(path)
                entries.append({
                    "name": model,
                    "profile": profile,
                    "path": path,
                    "config": payload.get("profile", {}),
                    "meta": payload.get("meta", {}),
                })
        return entries

    # -- save / load ---------------------------------------------------------
    def save(self, name: str, network, meta: dict | None = None) -> str:
        """Write ``network`` as the next version of ``name``; returns the
        version id (``"v0001"``-style).

        ``meta`` is user metadata stored in the sidecar (the registry adds
        ``saved_unix``).
        """
        self._check_name(name)
        latest = self.latest(name)
        version = f"v{(int(latest[1:]) if latest else 0) + 1:04d}"
        meta = dict(meta or {})
        meta.setdefault("saved_unix", time.time())
        save_checkpoint(self.path(name, version), network, meta=meta)
        return version

    def load(self, name: str, version: str | None = None):
        """Rebuild ``(network, meta)`` from a checkpoint.

        ``version=None`` loads the latest.
        """
        if version is None:
            version = self.latest(name)
            if version is None:
                raise SerializationError(
                    f"registry has no model {name!r} under {self.root} "
                    f"(known: {self.models() or 'none'})")
        return load_checkpoint(self.path(name, version))

    def save_profile(self, name: str, profile,
                     meta: dict | None = None) -> str:
        """Write ``profile`` (a :class:`~repro.hardware.mapped_network.
        HardwareProfile`) as the next hardware profile of ``name``;
        returns the profile id (``"hw0001"``-style).

        Profiles version independently of checkpoints — map the same
        trained weights under several candidate device assumptions and
        pick one at serve time.
        """
        self._check_name(name)
        latest = self.latest_profile(name)
        version = f"hw{(int(latest[2:]) if latest else 0) + 1:04d}"
        meta = dict(meta or {})
        meta.setdefault("saved_unix", time.time())
        save_hardware_profile(self.profile_path(name, version), profile,
                              meta=meta)
        return version

    def load_profile(self, name: str, profile: str | None = None):
        """Rebuild ``(hardware_profile, meta)``.

        ``profile=None`` loads the latest.
        """
        if profile is None:
            profile = self.latest_profile(name)
            if profile is None:
                raise SerializationError(
                    f"registry has no hardware profile for {name!r} under "
                    f"{self.root} (save one with save_profile)")
        return load_hardware_profile(self.profile_path(name, profile))

    def __repr__(self) -> str:
        return f"ModelRegistry({self.root!r}, models={self.models()})"
