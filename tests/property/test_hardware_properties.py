"""Property tests for the hardware substrate: quantization bounds,
crossbar linearity, MNA physicality."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.hardware.crossbar import DifferentialCrossbar
from repro.hardware.devices import RRAMDeviceConfig
from repro.hardware.quantization import (
    QuantizationConfig,
    conductances_to_weights,
    quantize_weights,
    weights_to_conductances,
)
from repro.hardware.spice import Capacitor, Circuit, Resistor, VoltageSource

weight_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 6), st.integers(2, 6)),
    elements=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
)


@given(weights=weight_arrays, bits=st.integers(min_value=2, max_value=8))
@settings(max_examples=60, deadline=None)
def test_quantization_error_bound(weights, bits):
    """Quantization error never exceeds half an LSB step."""
    config = QuantizationConfig(bits=bits)
    quantized = quantize_weights(weights, config)
    scale = np.abs(weights).max()
    if scale == 0:
        np.testing.assert_array_equal(quantized, 0.0)
        return
    step = 2.0 * scale / (config.levels - 1)
    assert np.max(np.abs(quantized - weights)) <= step / 2 + 1e-12


@given(weights=weight_arrays, bits=st.integers(min_value=2, max_value=8))
@settings(max_examples=60, deadline=None)
def test_quantization_idempotent(weights, bits):
    """Quantizing twice (same scale) changes nothing."""
    config = QuantizationConfig(bits=bits)
    scale = float(np.abs(weights).max())
    once = quantize_weights(weights, config, scale=scale)
    twice = quantize_weights(once, config, scale=scale)
    np.testing.assert_allclose(once, twice, atol=1e-12)


@given(weights=weight_arrays)
@settings(max_examples=60, deadline=None)
def test_conductance_mapping_roundtrip(weights):
    device = RRAMDeviceConfig()
    g_plus, g_minus, scale = weights_to_conductances(weights, device)
    assert np.all(g_plus >= device.g_min - 1e-18)
    assert np.all(g_minus >= device.g_min - 1e-18)
    assert np.all(g_plus <= device.g_max + 1e-18)
    recovered = conductances_to_weights(g_plus, g_minus, device, scale)
    np.testing.assert_allclose(recovered, weights, atol=1e-12)


@given(
    weights=weight_arrays,
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_crossbar_is_linear(weights, seed):
    """The crossbar's analog product must be linear in its inputs
    (Kirchhoff superposition), whatever the programmed noise."""
    xbar = DifferentialCrossbar(
        weights, RRAMDeviceConfig(levels=16, variation=0.2), rng=seed)
    rng = np.random.default_rng(seed)
    a = rng.random(weights.shape[1])
    b = rng.random(weights.shape[1])
    lhs = xbar.bitline_currents(a + b)
    rhs = xbar.bitline_currents(a) + xbar.bitline_currents(b)
    np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-15)


@given(
    r1=st.floats(min_value=100.0, max_value=1e6),
    r2=st.floats(min_value=100.0, max_value=1e6),
    v=st.floats(min_value=-5.0, max_value=5.0),
)
@settings(max_examples=40, deadline=None)
def test_mna_voltage_divider_exact(r1, r2, v):
    circuit = Circuit()
    circuit.add(VoltageSource("v1", "in", "0", v))
    circuit.add(Resistor("ra", "in", "mid", r1))
    circuit.add(Resistor("rb", "mid", "0", r2))
    result = circuit.transient(1e-9, 1e-10)
    expected = v * r2 / (r1 + r2)
    np.testing.assert_allclose(result.voltage("mid"), expected,
                               rtol=1e-9, atol=1e-12)


@given(
    r=st.floats(min_value=1e3, max_value=1e5),
    c=st.floats(min_value=1e-12, max_value=1e-10),
)
@settings(max_examples=25, deadline=None)
def test_mna_rc_settles_to_source(r, c):
    """Any RC low-pass eventually settles at the DC source level, from
    below, without overshoot (passivity)."""
    circuit = Circuit()
    circuit.add(VoltageSource("v1", "in", "0", 1.0))
    circuit.add(Resistor("r1", "in", "out", r))
    circuit.add(Capacitor("c1", "out", "0", c))
    tau = r * c
    result = circuit.transient(8 * tau, tau / 100)
    out = result.voltage("out")
    assert np.all(out <= 1.0 + 1e-9)          # no overshoot
    assert np.all(np.diff(out) >= -1e-9)      # monotone rise
    assert out[-1] > 0.999                    # settled


@given(
    variation=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_effective_weight_error_bounded_by_window(variation, seed):
    """However bad the variation, effective weights stay within the range
    representable by the conductance window (clipping physicality)."""
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=(4, 4))
    xbar = DifferentialCrossbar(
        weights, RRAMDeviceConfig(levels=16, variation=variation), rng=seed)
    effective = xbar.effective_weights()
    limit = np.abs(weights).max() * (1.0 + 1e-9)
    assert np.all(np.abs(effective) <= limit + 1e-9)
