"""Design ablation — surrogate gradient choice (DESIGN.md Section 5).

The paper uses the erfc pseudo-gradient (eq. 14); common alternatives are
swept on the reduced SHD task.  Shape: every surrogate trains above
chance (surrogate-gradient learning is robust to the kernel, cf. Zenke &
Vogels [20]), and the paper's erfc is competitive with the best.
"""

from conftest import bench_experiment


def test_ablation_surrogate(benchmark):
    result = bench_experiment(benchmark, "ablation-surrogate")
    summary = result.summary
    chance = 1.0 / 20.0

    accs = {name.replace("acc_", ""): value
            for name, value in summary.items()}
    # Everything learns (robustness of surrogate-gradient training).
    for name, acc in accs.items():
        assert acc > 2 * chance, f"{name} failed to learn"

    # The paper's erfc choice is competitive (within 15 pts of the best).
    best = max(accs.values())
    assert accs["erfc"] >= best - 0.15
