"""Table II, N-MNIST rows — classification with adaptive threshold vs
hard reset.

Paper: 98.40 % adaptive, 95.31 % hard reset (a ~3 pt drop).  Shape
asserted here (reduced-scale synthetic substitute): the adaptive model
learns far above chance, swapping in impulse-discretised hard-reset
neurons does not help and typically costs a little, and the forward-Euler
reading of eq. (1) under-drives the network to near chance.  The paper's
published HR number lies between the two readings.
"""

from conftest import bench_experiment


def test_table2_nmnist(benchmark):
    result = bench_experiment(benchmark, "table2-nmnist")
    summary = result.summary
    chance = summary["chance"]

    # The trained adaptive model is far above chance (paper: 98.40 %).
    assert summary["accuracy"] > 5 * chance

    # Hard reset with preserved charge: no improvement, typically a small
    # drop (paper: -3.1 pts).
    assert summary["accuracy_hr"] <= summary["accuracy"] + 0.03

    # Forward-Euler reading: severe under-drive, near chance.
    assert summary["accuracy_hr_euler"] < 3 * chance

    # Both hard-reset variants are ordered: euler is the worse reading.
    assert summary["accuracy_hr_euler"] <= summary["accuracy_hr"]
