"""Property tests for the neuron-model equivalences claimed in Section II.

Two load-bearing identities:

1. **Adaptive-threshold form == reset-charge form** (eq. 6+10 vs eq. 12):
   comparing ``v = g - theta*h`` against ``Vth`` must produce exactly the
   same spikes as comparing ``g`` against ``Vth + theta*h``.

2. **Sub-threshold equivalence of the two neuron models**: without any
   spikes, the hard-reset membrane is exactly the exponential filter of
   the drive, i.e. the adaptive model's PSP.  (This makes the paper's
   weight-preserving neuron swap meaningful.)
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filters import decay_from_tau, exponential_filter
from repro.core.neurons import (
    AdaptiveLIFNeuron,
    HardResetLIFNeuron,
    NeuronParameters,
)


def drive_strategy():
    return st.lists(
        st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
        min_size=1, max_size=40,
    )


@given(
    drive=drive_strategy(),
    theta=st.floats(min_value=0.0, max_value=3.0),
    tau_r=st.floats(min_value=0.5, max_value=20.0),
)
@settings(max_examples=80, deadline=None)
def test_reset_charge_equals_adaptive_threshold(drive, theta, tau_r):
    params = NeuronParameters(theta=theta, tau_r=tau_r)
    neuron = AdaptiveLIFNeuron(1, params)
    neuron.reset_state(1)
    beta = decay_from_tau(tau_r)
    h = 0.0
    last_out = 0.0
    for g_value in drive:
        g = np.array([[g_value]])
        # Manual eq. 12: threshold comparison.
        h = beta * h + last_out
        expected = 1.0 if g_value >= params.v_th + theta * h else 0.0
        spikes, v = neuron.step(g)
        assert spikes[0, 0] == expected
        # And eq. 6's membrane identity.
        assert v[0, 0] == np.float64(g_value - theta * h)
        last_out = expected


@given(drive=drive_strategy(), tau=st.floats(min_value=0.5, max_value=20.0))
@settings(max_examples=80, deadline=None)
def test_hard_reset_subthreshold_is_exponential_filter(drive, tau):
    params = NeuronParameters(tau=tau, v_th=1e12)     # never fires
    neuron = HardResetLIFNeuron(1, params)
    neuron.reset_state(1)
    vs = []
    for j in drive:
        _, v = neuron.step(np.array([[j]]))
        vs.append(v[0, 0])
    expected = exponential_filter(np.asarray(drive), neuron.alpha)
    np.testing.assert_allclose(vs, expected, rtol=1e-10, atol=1e-12)


@given(drive=drive_strategy())
@settings(max_examples=60, deadline=None)
def test_hard_reset_membrane_never_exceeds_unreset_psp(drive):
    """Resetting only ever removes accumulated potential: the HR membrane
    is pointwise <= the never-reset PSP for non-negative drive."""
    params = NeuronParameters()
    neuron = HardResetLIFNeuron(1, params)
    neuron.reset_state(1)
    psp = exponential_filter(np.asarray(drive), neuron.alpha)
    for j, unreset in zip(drive, psp):
        _, v = neuron.step(np.array([[j]]))
        assert v[0, 0] <= unreset + 1e-9


@given(
    drive=drive_strategy(),
    theta=st.floats(min_value=0.1, max_value=2.0),
)
@settings(max_examples=60, deadline=None)
def test_adaptive_threshold_never_below_base(drive, theta):
    """theta*h >= 0 always: the effective threshold can only rise above
    Vth, never fall below it (h is a filtered spike count)."""
    params = NeuronParameters(theta=theta)
    neuron = AdaptiveLIFNeuron(1, params)
    neuron.reset_state(1)
    for j in drive:
        neuron.step(np.array([[j]]))
        assert neuron.adaptive_threshold()[0, 0] >= params.v_th - 1e-12


@given(drive=drive_strategy())
@settings(max_examples=60, deadline=None)
def test_spikes_are_binary(drive):
    neuron = AdaptiveLIFNeuron(1)
    neuron.reset_state(1)
    for j in drive:
        spikes, _ = neuron.step(np.array([[j]]))
        assert spikes[0, 0] in (0.0, 1.0)
