"""Integration: dataset generation -> training -> evaluation -> neuron swap
-> persistence, on small-but-real instances of the paper's pipelines."""

import numpy as np
import pytest

from repro.common.serialization import load_arrays, save_arrays
from repro.core import (
    CrossEntropyRateLoss,
    SpikingNetwork,
    Trainer,
    TrainerConfig,
)
from repro.core.calibration import calibrate_firing
from repro.data import (
    SyntheticNMNISTConfig,
    SyntheticSHDConfig,
    generate_nmnist,
    generate_shd,
)


@pytest.fixture(scope="module")
def shd_setup():
    """A small SHD task trained for a handful of epochs."""
    dataset = generate_shd(
        SyntheticSHDConfig(n_per_class=6, steps=80), rng=0)
    train, test = dataset.split(0.75, rng=1)
    network = SpikingNetwork((700, 64, 20), rng=2)
    calibrate_firing(network, train.inputs[:32], target_rate=0.08)
    trainer = Trainer(network, CrossEntropyRateLoss(), TrainerConfig(
        epochs=8, batch_size=32, learning_rate=2e-3, optimizer="adamw"),
        rng=3)
    history = trainer.fit(train.inputs, train.targets,
                          test.inputs, test.targets)
    return trainer, network, history, train, test


class TestSHDPipeline:
    def test_learns_above_chance(self, shd_setup):
        _, _, history, _, _ = shd_setup
        # 20 classes -> chance 5 %; a few epochs should triple that.
        assert history[-1].test_metrics["accuracy"] > 0.15

    def test_loss_monotone_trend(self, shd_setup):
        _, _, history, _, _ = shd_setup
        losses = [h.train_loss for h in history]
        assert losses[-1] < losses[0]

    def test_hard_reset_swap_degrades(self, shd_setup):
        trainer, network, history, _, test = shd_setup
        adaptive = history[-1].test_metrics["accuracy"]
        hr = trainer.evaluate(
            test.inputs, test.targets,
            network=network.with_neuron_kind("hard_reset"))["accuracy"]
        # Direction of the paper's Table II: the swap must not help.
        assert hr <= adaptive + 0.05

    def test_euler_swap_collapses(self, shd_setup):
        trainer, network, _, _, test = shd_setup
        euler = trainer.evaluate(
            test.inputs, test.targets,
            network=network.with_neuron_kind("hard_reset_euler"))["accuracy"]
        # Forward-Euler under-drive: near chance (5 %).
        assert euler < 0.25

    def test_trained_model_roundtrip(self, shd_setup, tmp_path):
        trainer, network, _, _, test = shd_setup
        path = str(tmp_path / "model")
        save_arrays(path, network.state_dict(), metadata={"arch": "700-64-20"})
        arrays, metadata = load_arrays(path)
        clone = SpikingNetwork((700, 64, 20), rng=99)
        clone.load_state_dict(arrays)
        original = trainer.evaluate(test.inputs, test.targets)
        restored = trainer.evaluate(test.inputs, test.targets, network=clone)
        assert restored["accuracy"] == original["accuracy"]
        assert metadata["arch"] == "700-64-20"


class TestNMNISTPipeline:
    def test_small_nmnist_learns(self):
        dataset = generate_nmnist(
            SyntheticNMNISTConfig(n_per_class=8, steps=30), rng=0)
        train, test = dataset.split(0.75, rng=1)
        network = SpikingNetwork((2312, 48, 10), rng=2)
        calibrate_firing(network, train.inputs[:24], target_rate=0.08)
        trainer = Trainer(network, CrossEntropyRateLoss(), TrainerConfig(
            epochs=10, batch_size=20, learning_rate=2e-3), rng=3)
        history = trainer.fit(train.inputs, train.targets,
                              test.inputs, test.targets)
        # 10 classes -> chance 10 %; 60 train samples should beat 2x chance.
        assert history[-1].test_metrics["accuracy"] > 0.25

    def test_two_seeds_give_different_but_working_models(self):
        dataset = generate_nmnist(
            SyntheticNMNISTConfig(n_per_class=6, steps=24), rng=0)
        accs = []
        for seed in (1, 2):
            network = SpikingNetwork((2312, 32, 10), rng=seed)
            calibrate_firing(network, dataset.inputs[:16], target_rate=0.1)
            trainer = Trainer(network, CrossEntropyRateLoss(),
                              TrainerConfig(epochs=8, batch_size=16,
                                            learning_rate=2e-3), rng=seed)
            trainer.fit(dataset.inputs, dataset.targets)
            accs.append(
                trainer.evaluate(dataset.inputs, dataset.targets)["accuracy"])
        # Train-set accuracy after a few epochs beats chance for any seed.
        assert all(acc > 0.15 for acc in accs)
