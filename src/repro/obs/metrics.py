"""Zero-dependency metrics: counters, gauges, exact-quantile histograms.

The registry is the *numeric* half of the telemetry plane
(:mod:`repro.obs`): every instrument is a named, optionally labelled
object living in one :class:`MetricsRegistry`, and the registry renders
the whole set as a Prometheus text-exposition snapshot
(:meth:`MetricsRegistry.render_prometheus`).

Design constraints, in order:

* **Deterministic** — instruments hold exact values (no sampling, no
  decay); a :class:`Histogram` keeps every observation so its
  percentiles are *exact* and reproduce numpy's linear interpolation
  bit-for-bit.  Under the injectable clocks the codebase threads
  everywhere, two identical runs produce identical snapshots.
* **Cheap** — one dict hit to fetch an instrument, one float add to
  record.  The serving hot path holds instrument references directly,
  so steady-state cost is the float add alone.
* **Dependency-free** — stdlib only; the registry must be importable
  from every layer (``common.faults`` included) without cycles.

Instrument names are dotted (``serve.completed``); labels are keyword
pairs (``pool.respawns{worker=1}``).  The Prometheus renderer maps dots
to underscores — the wire format is for scrapers, the dotted names for
code and docs (catalog in ``docs/observability.md``).
"""

from __future__ import annotations

import functools

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus",
]

#: Fixed latency buckets (milliseconds) spanning sub-tick arithmetic to
#: multi-second stalls; the ``+Inf`` bucket is implicit.
DEFAULT_LATENCY_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class Counter:
    """A monotonically increasing value (float increments allowed)."""

    __slots__ = ("name", "labels", "help", "_value")

    kind = "counter"

    def __init__(self, name: str, labels: tuple = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self._value += amount

    def __repr__(self) -> str:
        return f"Counter({_key_repr(self.name, self.labels)}={self._value:g})"


class Gauge:
    """A value that can move both ways; tracks its running maximum."""

    __slots__ = ("name", "labels", "help", "_value", "_max")

    kind = "gauge"

    def __init__(self, name: str, labels: tuple = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self._value = 0.0
        self._max = 0.0

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        return self._max

    def set(self, value: float) -> None:
        self._value = float(value)
        if self._value > self._max:
            self._max = self._value

    def set_max(self, value: float) -> None:
        """Keep the running maximum only (``max_tick_batch``-style)."""
        self.set(max(self._value, float(value)))

    def __repr__(self) -> str:
        return f"Gauge({_key_repr(self.name, self.labels)}={self._value:g})"


class Histogram:
    """Fixed-bucket histogram that also retains raw samples.

    The buckets serve the Prometheus exposition (cumulative ``le``
    counts); the retained samples serve exact quantiles —
    :meth:`percentile` matches ``numpy.percentile``'s default linear
    interpolation, so report numbers computed here agree with the
    numpy-based ones elsewhere in the repo.
    """

    __slots__ = ("name", "labels", "help", "buckets", "bucket_counts",
                 "_samples", "_sum")

    kind = "histogram"

    def __init__(self, name: str, labels: tuple = (), help: str = "",
                 buckets: tuple = DEFAULT_LATENCY_BUCKETS_MS):
        self.name = name
        self.labels = labels
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # + the Inf bucket
        self._samples: list[float] = []
        self._sum = 0.0

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def samples(self) -> tuple:
        return tuple(self._samples)

    def observe(self, value: float) -> None:
        value = float(value)
        self._samples.append(value)
        self._sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def percentile(self, p: float, start: int = 0) -> float | None:
        """Exact ``p``-th percentile of samples ``start:`` (numpy linear
        interpolation), or ``None`` when that window is empty.

        ``start`` lets a caller measure one run's window on a shared
        instrument: snapshot ``count`` before the run, percentile over
        the samples added since.
        """
        window = sorted(self._samples[start:])
        if not window:
            return None
        if len(window) == 1:
            return window[0]
        rank = (p / 100.0) * (len(window) - 1)
        lower = int(rank)
        frac = rank - lower
        if lower + 1 >= len(window):
            return window[-1]
        return window[lower] + frac * (window[lower + 1] - window[lower])

    def __repr__(self) -> str:
        return (f"Histogram({_key_repr(self.name, self.labels)}: "
                f"n={self.count}, sum={self._sum:g})")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), labels[k]) for k in labels))


def _key_repr(name: str, labels: tuple) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """All instruments of one component (or one shared telemetry plane).

    Instruments are keyed by ``(name, sorted labels)`` and created on
    first access; asking for an existing name with a different
    instrument kind raises — a registry is a typed namespace, not a
    bag.
    """

    def __init__(self):
        self._instruments: dict = {}
        self._kinds: dict[str, str] = {}
        self._helps: dict[str, str] = {}

    def _get(self, kind: str, name: str, labels: dict, help: str,
             **kwargs):
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {known}, "
                f"cannot re-register it as a {kind}")
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = _KINDS[kind](name, labels=key[1], help=help,
                                      **kwargs)
            self._instruments[key] = instrument
            self._kinds[name] = kind
            if help:
                self._helps[name] = help
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get("counter", name, labels, help)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get("gauge", name, labels, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_LATENCY_BUCKETS_MS,
                  **labels) -> Histogram:
        return self._get("histogram", name, labels, help, buckets=buckets)

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """Current value of a counter/gauge, ``default`` if absent."""
        instrument = self._instruments.get((name, _label_key(labels)))
        return default if instrument is None else instrument.value

    def instruments(self) -> list:
        """Every instrument, sorted by (name, labels) — the export order."""
        return [self._instruments[key]
                for key in sorted(self._instruments)]

    def labelled(self, name: str) -> list:
        """Every instrument registered under ``name`` (one per label set)."""
        return [inst for (n, _), inst in sorted(self._instruments.items())
                if n == name]

    def snapshot(self) -> dict:
        """Flat ``{rendered-key: value}`` view (histograms -> count/sum)."""
        out: dict = {}
        for instrument in self.instruments():
            key = _key_repr(instrument.name, instrument.labels)
            if instrument.kind == "histogram":
                out[key + ".count"] = instrument.count
                out[key + ".sum"] = instrument.sum
            else:
                out[key] = instrument.value
        return out

    # -- Prometheus text exposition ------------------------------------------
    def render_prometheus(self) -> str:
        """The registry as Prometheus text-exposition format (0.0.4)."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for instrument in self.instruments():
            name = _prom_name(instrument.name)
            if instrument.name not in seen_header:
                seen_header.add(instrument.name)
                help_text = self._helps.get(instrument.name, "")
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {instrument.kind}")
            if instrument.kind == "histogram":
                cumulative = 0
                for bound, count in zip(instrument.buckets,
                                        instrument.bucket_counts):
                    cumulative += count
                    labels = instrument.labels + (("le", _prom_num(bound)),)
                    lines.append(f"{name}_bucket{_prom_labels(labels)} "
                                 f"{cumulative}")
                labels = instrument.labels + (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_prom_labels(labels)} "
                             f"{instrument.count}")
                lines.append(f"{name}_sum{_prom_labels(instrument.labels)} "
                             f"{_prom_num(instrument.sum)}")
                lines.append(f"{name}_count{_prom_labels(instrument.labels)} "
                             f"{instrument.count}")
            else:
                lines.append(f"{name}{_prom_labels(instrument.labels)} "
                             f"{_prom_num(instrument.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


@functools.lru_cache(maxsize=1024)
def _prom_name(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch in "_:" else "_"
                      for ch in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return "repro_" + cleaned


def _prom_num(value: float) -> str:
    # Integral floats render as ints: `5` not `5.0` (both are legal
    # exposition, but ints diff cleaner and round-trip exactly).
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _prom_labels(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def parse_prometheus(text: str) -> dict:
    """Parse a text-exposition snapshot back to ``{key: float}``.

    The validator half of the exporter contract (``tools/obs_smoke.py``
    and the unit tests round-trip every snapshot through it): raises
    ``ValueError`` on any line that is neither a comment nor a
    ``name{labels} value`` sample.
    """
    samples: dict = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            key, value_text = line.rsplit(None, 1)
            value = float(value_text)
        except ValueError as exc:
            raise ValueError(
                f"prometheus line {lineno} is not 'name value': "
                f"{line!r}") from exc
        name = key.split("{", 1)[0]
        if not name or not all(ch.isalnum() or ch in "_:" for ch in name):
            raise ValueError(
                f"prometheus line {lineno} has an invalid metric name: "
                f"{line!r}")
        if key in samples:
            raise ValueError(
                f"prometheus line {lineno} repeats sample {key!r}")
        samples[key] = value
    return samples
