"""Documentation checker: links must resolve, module references must import.

Walks README.md and docs/*.md and fails if

* any relative markdown link targets a missing file (web URLs and pure
  anchors are ignored), or
* any dotted ``repro.*`` reference in the prose does not resolve to an
  importable module (plus, optionally, an attribute chain on it — e.g.
  ``repro.serve.server.ModelServer.poll``).  Docs drift silently when a
  module is renamed; imports do not.

This is the `make docs` target and runs in CI — it keeps the README's
promise that every paper artifact is reachable from it, and that every
module path the docs name still exists.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")
MODULE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

REPO = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO / "src"))


def check_links(markdown: Path) -> list[str]:
    errors = []
    text = markdown.read_text(encoding="utf-8")
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (markdown.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{markdown.relative_to(REPO)}: broken link {target}")
    return errors


def _reference_resolves(ref: str, cache: dict[str, bool]) -> bool:
    """Whether ``ref`` names an importable module / attribute chain.

    Tries the longest importable module prefix, then walks the remaining
    components as attributes (classes, functions, methods, constants).
    """
    if ref in cache:
        return cache[ref]
    parts = ref.split(".")
    resolved = False
    for split in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        resolved = True
        for attr in parts[split:]:
            if not hasattr(obj, attr):
                resolved = False
                break
            obj = getattr(obj, attr)
        break
    cache[ref] = resolved
    return resolved


def check_module_refs(markdown: Path, cache: dict[str, bool]) -> list[str]:
    text = markdown.read_text(encoding="utf-8")
    return [
        f"{markdown.relative_to(REPO)}: unresolvable module reference {ref}"
        for ref in sorted(set(MODULE.findall(text)))
        if not _reference_resolves(ref, cache)
    ]


def main() -> int:
    sources = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    missing = [str(s.relative_to(REPO)) for s in sources if not s.exists()]
    if missing:
        print("missing documentation files:", ", ".join(missing))
        return 1
    cache: dict[str, bool] = {}
    errors = [
        error
        for source in sources
        for error in (*check_links(source),
                      *check_module_refs(source, cache))
    ]
    for error in errors:
        print(error)
    checked = len(sources)
    refs = len(cache)
    if errors:
        print(f"FAIL: {len(errors)} problem(s) across {checked} files")
        return 1
    print(f"OK: all local links resolve and all {refs} repro.* references "
          f"import across {checked} documentation files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
