"""Dataset substrates: synthetic N-MNIST, synthetic SHD, pattern
association, and generic spike encoders."""

from .association import AssociationConfig, generate_association, glyph_to_target
from .cochlea import Cochlea, CochleaConfig, mel_frequencies
from .datasets import SpikeDataset
from .dvs import DVSCamera, record_moving_image, saccade_trajectory
from .encoders import delta_encode, latency_encode, poisson_encode
from .glyphs import DIGIT_STROKES, render_digit, render_digit_batch
from .nmnist import SyntheticNMNISTConfig, generate_nmnist
from .shd import SHD_CLASS_NAMES, SyntheticSHDConfig, generate_shd
from .speech import LANGUAGES, WORDS, synthesize_digit

__all__ = [
    "AssociationConfig",
    "generate_association",
    "glyph_to_target",
    "Cochlea",
    "CochleaConfig",
    "mel_frequencies",
    "SpikeDataset",
    "DVSCamera",
    "record_moving_image",
    "saccade_trajectory",
    "delta_encode",
    "latency_encode",
    "poisson_encode",
    "DIGIT_STROKES",
    "render_digit",
    "render_digit_batch",
    "SyntheticNMNISTConfig",
    "generate_nmnist",
    "SHD_CLASS_NAMES",
    "SyntheticSHDConfig",
    "generate_shd",
    "LANGUAGES",
    "WORDS",
    "synthesize_digit",
]
