"""Minimal reverse-mode automatic differentiation (verification substrate).

Used by the test suite to cross-check the hand-derived BPTT in
:mod:`repro.core.backprop`: the same unrolled network is rebuilt on the
tape (:mod:`repro.autograd.reference`) and both gradient paths must agree.
"""

from .functional import cross_entropy_with_logits, van_rossum_loss
from .ops import (
    add,
    exp,
    log,
    matmul,
    mul,
    neg,
    scale,
    sigmoid,
    smooth_spike,
    spike,
    square,
    sub,
    tmean,
    tsum,
)
from .reference import run_adaptive_reference, run_hard_reset_reference
from .tensor import Tensor, as_tensor, unbroadcast

__all__ = [
    "cross_entropy_with_logits",
    "van_rossum_loss",
    "add",
    "exp",
    "log",
    "matmul",
    "mul",
    "neg",
    "scale",
    "sigmoid",
    "smooth_spike",
    "spike",
    "square",
    "sub",
    "tmean",
    "tsum",
    "run_adaptive_reference",
    "run_hard_reset_reference",
    "Tensor",
    "as_tensor",
    "unbroadcast",
]
