"""Dataset container shared by all generated spike datasets.

A :class:`SpikeDataset` is a pair of aligned arrays — ``inputs`` of shape
``(n, T, channels)`` and ``targets`` that are either integer class labels
``(n,)`` (classification) or spike rasters ``(n, T', trains)`` (pattern
association) — plus naming metadata.  It supports deterministic splits,
batch iteration and npz round-tripping, and every generator in
:mod:`repro.data` returns one.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..common.errors import DatasetError
from ..common.rng import RandomState, as_random_state
from ..common.serialization import load_arrays, save_arrays

__all__ = ["SpikeDataset"]


class SpikeDataset:
    """Aligned ``(inputs, targets)`` arrays with metadata.

    Parameters
    ----------
    inputs:
        Spike tensor, shape (n, T, channels).
    targets:
        Integer labels (n,) or target rasters (n, T', trains).
    name:
        Dataset identifier, e.g. ``"synthetic-nmnist"``.
    class_names:
        Optional list of human-readable class names.
    metadata:
        JSON-safe provenance dict (generator parameters, seed, ...).
    """

    def __init__(self, inputs: np.ndarray, targets: np.ndarray,
                 name: str = "dataset", class_names: list[str] | None = None,
                 metadata: dict | None = None):
        inputs = np.asarray(inputs)
        targets = np.asarray(targets)
        if inputs.ndim != 3:
            raise DatasetError(
                f"inputs must be (n, T, channels), got {inputs.shape}"
            )
        if targets.shape[0] != inputs.shape[0]:
            raise DatasetError(
                f"{inputs.shape[0]} inputs but {targets.shape[0]} targets"
            )
        if targets.ndim not in (1, 3):
            raise DatasetError(
                f"targets must be labels (n,) or rasters (n, T, trains), "
                f"got {targets.shape}"
            )
        self.inputs = inputs
        self.targets = targets
        self.name = name
        self.class_names = list(class_names) if class_names else None
        self.metadata = dict(metadata or {})

    # -- basic protocol -----------------------------------------------------
    def __len__(self) -> int:
        return int(self.inputs.shape[0])

    def __getitem__(self, index):
        return self.inputs[index], self.targets[index]

    @property
    def n_steps(self) -> int:
        return int(self.inputs.shape[1])

    @property
    def n_channels(self) -> int:
        return int(self.inputs.shape[2])

    @property
    def is_classification(self) -> bool:
        return self.targets.ndim == 1

    @property
    def n_classes(self) -> int:
        if not self.is_classification:
            raise DatasetError(f"{self.name} is not a classification dataset")
        return int(self.targets.max()) + 1

    # -- splits & batches -----------------------------------------------------
    def split(self, train_fraction: float = 0.8,
              rng: RandomState | int | None = None
              ) -> tuple["SpikeDataset", "SpikeDataset"]:
        """Shuffled train/test split (deterministic given ``rng``)."""
        if not 0.0 < train_fraction < 1.0:
            raise DatasetError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        generator = as_random_state(rng)
        order = generator.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        if cut == 0 or cut == len(self):
            raise DatasetError(
                f"split of {len(self)} samples at {train_fraction} leaves an "
                "empty side"
            )
        train_idx, test_idx = order[:cut], order[cut:]
        return self._subset(train_idx, "train"), self._subset(test_idx, "test")

    def _subset(self, indices: np.ndarray, suffix: str) -> "SpikeDataset":
        return SpikeDataset(
            self.inputs[indices], self.targets[indices],
            name=f"{self.name}-{suffix}", class_names=self.class_names,
            metadata=self.metadata,
        )

    def batches(self, batch_size: int, shuffle: bool = False,
                rng: RandomState | int | None = None
                ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(inputs, targets)`` mini-batches."""
        if batch_size <= 0:
            raise DatasetError(f"batch_size must be positive, got {batch_size}")
        order = np.arange(len(self))
        if shuffle:
            as_random_state(rng).shuffle(order)
        for start in range(0, len(self), batch_size):
            index = order[start:start + batch_size]
            yield self.inputs[index], self.targets[index]

    # -- persistence -----------------------------------------------------------
    def save(self, path: str) -> None:
        """Write to ``<path>.npz`` (+ JSON sidecar with metadata)."""
        save_arrays(path, {"inputs": self.inputs, "targets": self.targets},
                    metadata={
                        "name": self.name,
                        "class_names": self.class_names,
                        **self.metadata,
                    })

    @classmethod
    def load(cls, path: str) -> "SpikeDataset":
        """Read a dataset written by :meth:`save`."""
        arrays, metadata = load_arrays(path)
        if "inputs" not in arrays or "targets" not in arrays:
            raise DatasetError(f"{path} is not a SpikeDataset artifact")
        name = metadata.pop("name", "dataset")
        class_names = metadata.pop("class_names", None)
        return cls(arrays["inputs"], arrays["targets"], name=name,
                   class_names=class_names, metadata=metadata)

    def __repr__(self) -> str:
        kind = "classification" if self.is_classification else "association"
        return (f"SpikeDataset({self.name!r}, n={len(self)}, "
                f"T={self.n_steps}, channels={self.n_channels}, kind={kind})")
