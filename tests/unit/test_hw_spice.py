"""Unit tests for the analog circuit simulator (netlist, MNA, waveforms)."""

import numpy as np
import pytest

from repro.common.errors import CircuitError
from repro.hardware.spice import (
    BehavioralSource,
    Capacitor,
    Circuit,
    Resistor,
    VoltageSource,
    comparator,
    constant,
    count_pulses,
    falling_crossings,
    inverter,
    pulse_train,
    pwl,
    rising_crossings,
    summing_amp,
    trace_stats,
)


class TestComponents:
    def test_resistor_validation(self):
        with pytest.raises(CircuitError):
            Resistor("r1", "a", "b", 0.0)
        assert Resistor("r1", "a", "b", 2.0).conductance == 0.5

    def test_capacitor_validation(self):
        with pytest.raises(CircuitError):
            Capacitor("c1", "a", "b", -1e-12)

    def test_voltage_source_constant(self):
        source = VoltageSource("v1", "a", "0", 2.5)
        assert source.value(0.0) == 2.5
        assert source.value(1.0) == 2.5

    def test_behavioral_source_lag(self):
        source = BehavioralSource("b", "out", ("in",),
                                  lambda v: 1.0, tau=1e-9, rails=(0, 1))
        value = source.advance([0.0], dt=1e-9)
        assert 0.0 < value < 1.0
        for _ in range(20):
            value = source.advance([0.0], dt=1e-9)
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_behavioral_source_rails(self):
        source = BehavioralSource("b", "out", (), lambda: 5.0,
                                  tau=1e-9, rails=(0, 1))
        for _ in range(50):
            value = source.advance([], dt=1e-9)
        assert value <= 1.0

    def test_behavioral_source_slew(self):
        source = BehavioralSource("b", "out", (), lambda: 1.0, tau=1e-12,
                                  rails=(0, 1), slew_rate=1e8)
        value = source.advance([], dt=1e-9)
        assert value <= 1e8 * 1e-9 + 1e-12

    def test_reset_restores_initial(self):
        source = BehavioralSource("b", "out", (), lambda: 1.0, tau=1e-9,
                                  initial=0.25)
        source.advance([], dt=1e-8)
        source.reset()
        assert source.state == 0.25


class TestCircuitAssembly:
    def test_duplicate_names_rejected(self):
        circuit = Circuit()
        circuit.add(Resistor("r1", "a", "0", 1.0))
        with pytest.raises(CircuitError):
            circuit.add(Resistor("r1", "b", "0", 1.0))

    def test_node_discovery(self):
        circuit = Circuit()
        circuit.add(Resistor("r1", "a", "b", 1.0))
        circuit.add(Resistor("r2", "b", "0", 1.0))
        assert circuit.nodes() == ["a", "b"]

    def test_floating_node_is_singular(self):
        circuit = Circuit()
        circuit.add(Capacitor("c1", "a", "b", 1e-12))  # nothing else
        with pytest.raises(CircuitError):
            circuit.transient(1e-9, 1e-10)


class TestTransientAccuracy:
    def test_resistive_divider(self):
        circuit = Circuit()
        circuit.add(VoltageSource("v1", "in", "0", 1.0))
        circuit.add(Resistor("r1", "in", "mid", 1e3))
        circuit.add(Resistor("r2", "mid", "0", 3e3))
        result = circuit.transient(1e-8, 1e-9)
        np.testing.assert_allclose(result.voltage("mid"), 0.75, rtol=1e-9)

    def test_rc_step_response_analytic(self):
        r_val, c_val = 4.56e3, 10.14e-12
        circuit = Circuit()
        circuit.add(VoltageSource("v1", "in", "0", 1.0))
        circuit.add(Resistor("r1", "in", "out", r_val))
        circuit.add(Capacitor("c1", "out", "0", c_val))
        result = circuit.transient(300e-9, 0.2e-9)
        tau = r_val * c_val
        analytic = 1.0 - np.exp(-result.time / tau)
        assert np.max(np.abs(result.voltage("out") - analytic)) < 0.01

    def test_rc_initial_condition(self):
        circuit = Circuit()
        circuit.add(Resistor("r1", "out", "0", 1e3))
        circuit.add(Capacitor("c1", "out", "0", 1e-9,
                              initial_voltage=2.0))
        result = circuit.transient(5e-6, 5e-9)
        analytic = 2.0 * np.exp(-result.time / 1e-6)
        assert np.max(np.abs(result.voltage("out") - analytic)) < 0.02

    def test_source_current_through_resistor(self):
        circuit = Circuit()
        circuit.add(VoltageSource("v1", "a", "0", 2.0))
        circuit.add(Resistor("r1", "a", "0", 1e3))
        result = circuit.transient(1e-8, 1e-9)
        # MNA current convention: the source sees -V/R flowing out.
        np.testing.assert_allclose(np.abs(result.current("v1")), 2e-3,
                                   rtol=1e-9)

    def test_dt_must_resolve_behavioral_tau(self):
        circuit = Circuit()
        circuit.add(VoltageSource("v1", "a", "0", 1.0))
        circuit.add(Resistor("r1", "a", "0", 1e3))
        circuit.add(BehavioralSource("b", "out", ("a",), lambda v: v,
                                     tau=1e-10))
        circuit.add(Resistor("r2", "out", "0", 1e3))
        with pytest.raises(CircuitError, match="does not resolve"):
            circuit.transient(1e-8, 1e-9)

    def test_unknown_probe_node(self):
        circuit = Circuit()
        circuit.add(VoltageSource("v1", "a", "0", 1.0))
        circuit.add(Resistor("r1", "a", "0", 1e3))
        with pytest.raises(CircuitError):
            circuit.transient(1e-9, 1e-10, record_nodes=["zz"])

    def test_comparator_switches(self):
        circuit = Circuit()
        circuit.add(VoltageSource("vp", "p", "0",
                                  pwl([(0, 0.0), (50e-9, 1.0)])))
        circuit.add(VoltageSource("vm", "m", "0", 0.5))
        circuit.add(comparator("cmp", "p", "m", "out", tau=1e-9))
        circuit.add(Resistor("rl", "out", "0", 1e5))
        result = circuit.transient(60e-9, 0.5e-9)
        out = result.voltage("out")
        assert out[10] < 0.1                      # below threshold early
        assert out[-1] > 0.9                      # high once p > m

    def test_inverter_inverts(self):
        circuit = Circuit()
        circuit.add(VoltageSource("vin", "a", "0",
                                  pwl([(0, 0.0), (20e-9, 1.0)])))
        circuit.add(inverter("inv", "a", "out"))
        circuit.add(Resistor("rl", "out", "0", 1e5))
        result = circuit.transient(30e-9, 0.3e-9)
        out = result.voltage("out")
        assert out[5] > 0.9
        assert out[-1] < 0.1

    def test_summing_amp_offsets(self):
        circuit = Circuit()
        circuit.add(VoltageSource("vin", "a", "0", 0.2))
        circuit.add(summing_amp("amp", "a", "out", offset=0.55, vdd=2.0))
        circuit.add(Resistor("rl", "out", "0", 1e5))
        result = circuit.transient(20e-9, 0.5e-9)
        assert result.voltage("out")[-1] == pytest.approx(0.75, abs=1e-3)


class TestWaveforms:
    def test_pwl_interpolation(self):
        wave = pwl([(0.0, 0.0), (1.0, 2.0)])
        assert wave(0.5) == 1.0
        assert wave(-1.0) == 0.0          # holds first value
        assert wave(2.0) == 2.0           # holds last value

    def test_pwl_validation(self):
        with pytest.raises(CircuitError):
            pwl([])
        with pytest.raises(CircuitError):
            pwl([(0.0, 1.0), (0.0, 2.0)])

    def test_pulse_train_levels(self):
        wave = pulse_train([10e-9], width=10e-9, amplitude=1.5)
        assert wave(0.0) == 0.0
        assert wave(15e-9) == 1.5
        assert wave(25e-9) == 0.0

    def test_pulse_overlap_rejected(self):
        with pytest.raises(CircuitError):
            pulse_train([0.0, 5e-9], width=10e-9)

    def test_crossings(self):
        t = np.linspace(0, 1, 101)
        signal = np.sin(2 * np.pi * t)
        ups = rising_crossings(t, signal, 0.5)
        downs = falling_crossings(t, signal, 0.5)
        assert len(ups) == 1
        assert len(downs) == 1
        assert ups[0] == pytest.approx(np.arcsin(0.5) / (2 * np.pi),
                                       abs=0.02)
        assert downs[0] == pytest.approx(0.5 - np.arcsin(0.5) / (2 * np.pi),
                                         abs=0.02)

    def test_count_pulses(self):
        t = np.linspace(0, 1, 1001)
        signal = (np.sin(2 * np.pi * 5 * t) > 0).astype(float)
        assert count_pulses(t, signal, 0.5) == 5

    def test_trace_stats(self):
        stats = trace_stats(np.array([0.0, 1.0, -1.0]))
        assert stats["min"] == -1.0
        assert stats["max"] == 1.0
        assert stats["peak_to_peak"] == 2.0
        with pytest.raises(CircuitError):
            trace_stats(np.array([]))
