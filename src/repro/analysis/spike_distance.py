"""Spike-train distances and similarity measures.

The paper's pattern-association task (Section V-B) is evaluated with the
kernelised distance of eq. 15 (a van Rossum-style metric).  This module
provides that distance as a standalone function plus two classical
alternatives (Victor-Purpura and the coincidence factor) used in the
analysis benches to confirm the association results are metric-independent.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError
from ..core.filters import DoubleExponentialKernel

__all__ = [
    "van_rossum_distance",
    "victor_purpura_distance",
    "coincidence_factor",
    "trace_correlation",
    "pairwise_van_rossum",
]


def _as_time_major(spikes: np.ndarray) -> np.ndarray:
    data = np.asarray(spikes, dtype=np.float64)
    if data.ndim == 1:
        data = data[:, None]
    if data.ndim != 2:
        raise ShapeError(f"expected (T,) or (T, trains), got {data.shape}")
    return data


def van_rossum_distance(a: np.ndarray, b: np.ndarray,
                        tau_m: float = 4.0, tau_s: float = 1.0) -> float:
    """Paper eq. 15 distance between spike arrays of shape (T,) or (T, trains).

    ``D = 1/(2T) * sum_t (f*a - f*b)^2`` summed over trains.
    """
    a = _as_time_major(a)
    b = _as_time_major(b)
    if a.shape != b.shape:
        raise ShapeError(f"shapes differ: {a.shape} vs {b.shape}")
    kernel = DoubleExponentialKernel(tau_m=tau_m, tau_s=tau_s)
    diff = kernel.convolve(a - b, time_axis=0)
    return float(np.sum(diff ** 2) / (2.0 * a.shape[0]))


def _spike_times(train: np.ndarray) -> np.ndarray:
    train = np.asarray(train)
    if train.ndim != 1:
        raise ShapeError(f"expected a single train (T,), got {train.shape}")
    return np.flatnonzero(train > 0).astype(np.float64)


def victor_purpura_distance(a: np.ndarray, b: np.ndarray,
                            cost: float = 0.5) -> float:
    """Victor-Purpura spike-time edit distance between two binary trains.

    Operations: insert/delete a spike (cost 1) or shift a spike by ``dt``
    (cost ``cost * |dt|``).  Computed by the classic O(n*m) dynamic program.
    """
    if cost < 0:
        raise ValueError(f"cost must be non-negative, got {cost}")
    times_a = _spike_times(a)
    times_b = _spike_times(b)
    n, m = len(times_a), len(times_b)
    if n == 0 or m == 0:
        return float(n + m)
    previous = np.arange(m + 1, dtype=np.float64)
    for i in range(1, n + 1):
        current = np.empty(m + 1)
        current[0] = i
        for j in range(1, m + 1):
            shift = previous[j - 1] + cost * abs(times_a[i - 1] - times_b[j - 1])
            current[j] = min(previous[j] + 1.0, current[j - 1] + 1.0, shift)
        previous = current
    return float(previous[m])


def coincidence_factor(a: np.ndarray, b: np.ndarray, window: int = 2) -> float:
    """Kistler coincidence factor Γ in [-1, 1] between two binary trains.

    Counts spikes of ``a`` landing within ``±window`` steps of a spike of
    ``b``, normalised by the expected chance coincidences of a Poisson
    train with ``b``'s rate.  Γ = 1 for identical trains, ≈ 0 for unrelated
    ones.
    """
    if window < 0:
        raise ValueError(f"window must be non-negative, got {window}")
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise ShapeError(f"expected equal-length 1-D trains, "
                         f"got {a.shape} and {b.shape}")
    steps = a.shape[0]
    times_a = np.flatnonzero(a > 0)
    times_b = np.flatnonzero(b > 0)
    n_a, n_b = len(times_a), len(times_b)
    if n_a == 0 and n_b == 0:
        return 1.0
    if n_a == 0 or n_b == 0:
        return 0.0
    coincidences = sum(
        1 for t in times_a if np.any(np.abs(times_b - t) <= window)
    )
    rate_b = n_b / steps
    expected = 2.0 * window * rate_b * n_a
    norm = 1.0 - 2.0 * rate_b * window
    denominator = 0.5 * (n_a + n_b) * norm
    if denominator <= 0:
        return 0.0
    return float((coincidences - expected) / denominator)


def trace_correlation(a: np.ndarray, b: np.ndarray,
                      tau: float = 4.0) -> float:
    """Pearson correlation of exponentially smoothed traces.

    Robust similarity for whole rasters: both arrays (T, trains) are
    filtered with an exponential kernel and correlated as flat vectors.
    Returns 0 when either trace is silent/constant.
    """
    from ..core.filters import exponential_filter, decay_from_tau

    a = _as_time_major(a)
    b = _as_time_major(b)
    if a.shape != b.shape:
        raise ShapeError(f"shapes differ: {a.shape} vs {b.shape}")
    alpha = decay_from_tau(tau)
    ta = exponential_filter(a, alpha, time_axis=0).ravel()
    tb = exponential_filter(b, alpha, time_axis=0).ravel()
    sa, sb = ta.std(), tb.std()
    if sa == 0.0 or sb == 0.0:
        return 0.0
    return float(np.corrcoef(ta, tb)[0, 1])


def pairwise_van_rossum(rasters: np.ndarray, tau_m: float = 4.0,
                        tau_s: float = 1.0) -> np.ndarray:
    """Symmetric distance matrix for a batch of rasters (N, T, trains)."""
    rasters = np.asarray(rasters, dtype=np.float64)
    if rasters.ndim != 3:
        raise ShapeError(f"expected (N, T, trains), got {rasters.shape}")
    kernel = DoubleExponentialKernel(tau_m=tau_m, tau_s=tau_s)
    traces = kernel.convolve(rasters, time_axis=1)
    n = rasters.shape[0]
    steps = rasters.shape[1]
    matrix = np.zeros((n, n))
    for i in range(n):
        diff = traces[i][None, :, :] - traces[i + 1:]
        if diff.size:
            matrix[i, i + 1:] = np.sum(diff ** 2, axis=(1, 2)) / (2.0 * steps)
    return matrix + matrix.T
