"""Property tests for scenario-grid expansion.

The harness promises (``docs/experiments.md``): every factor combination
expands to exactly one run per repetition, run ids never collide, the
expansion is a pure function of the scenario (stable across calls and
independent of seed), and invalid factor values are rejected eagerly
with :class:`~repro.common.errors.ExperimentError` — before any compute.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ExperimentError
from repro.experiments.scenario import (
    ENGINES,
    PRECISIONS,
    HardwareSpec,
    LoadSpec,
    Scenario,
    expand,
)

# -- strategies --------------------------------------------------------------

engines_st = st.lists(st.sampled_from(ENGINES), min_size=1,
                      max_size=len(ENGINES), unique=True).map(tuple)
precisions_st = st.lists(st.sampled_from(PRECISIONS), min_size=1,
                         max_size=len(PRECISIONS), unique=True).map(tuple)
workers_st = st.lists(st.integers(min_value=0, max_value=8), min_size=1,
                      max_size=3, unique=True).map(tuple)
hardware_st = st.lists(
    st.one_of(
        st.none(),
        st.builds(HardwareSpec, bits=st.integers(2, 8),
                  variation=st.sampled_from([0.0, 0.1, 0.25, 0.5]),
                  seed=st.integers(0, 3))),
    min_size=1, max_size=3,
    unique_by=lambda spec: None if spec is None else spec.label,
).map(tuple)
workloads_st = st.lists(
    st.sampled_from(["synthetic", "speech", "dvs", "glyph",
                     "speech+synthetic"]),
    min_size=1, max_size=3, unique=True).map(tuple)
loads_st = st.lists(st.integers(1, 4), min_size=1, max_size=3,
                    unique=True).map(lambda ids: tuple(
                        LoadSpec(f"l{i}", 100.0 * i, 10 * i) for i in ids))


@st.composite
def scenarios(draw):
    kind = draw(st.sampled_from(["forward", "backward", "train_step",
                                 "inference", "variation", "serving"]))
    kwargs = dict(
        name=f"prop-{kind}",
        kind=kind,
        engines=draw(engines_st),
        precisions=draw(precisions_st),
        repetitions=draw(st.integers(1, 3)),
        seed=draw(st.integers(0, 10)),
    )
    if kind in ("train_step", "inference", "variation"):
        kwargs["workers"] = draw(workers_st)
    if kind == "train_step":
        kwargs["hardware"] = draw(hardware_st)
    if kind == "variation":
        kwargs["hardware"] = draw(hardware_st.filter(
            lambda specs: all(s is not None for s in specs)))
    if kind == "serving":
        kwargs["engines"] = ("fused",)   # hardware x step is rejected
        kwargs["hardware"] = draw(hardware_st)
        kwargs["workloads"] = draw(workloads_st)
        kwargs["loads"] = draw(loads_st)
    return Scenario(**kwargs)


# -- expansion properties ----------------------------------------------------

@given(scenario=scenarios())
@settings(max_examples=120, deadline=None)
def test_every_combination_exactly_once_per_repetition(scenario):
    specs = expand(scenario)
    assert len(specs) == scenario.cells * scenario.repetitions
    combos = [(s.engine, s.precision, s.workers, s.hardware, s.workload,
               s.load, s.repetition) for s in specs]
    assert len(set(combos)) == len(combos)
    expected = set(itertools.product(
        scenario.engines, scenario.precisions, scenario.workers,
        scenario.hardware, scenario.workloads, scenario.loads,
        range(scenario.repetitions)))
    assert set(combos) == expected


@given(scenario=scenarios())
@settings(max_examples=120, deadline=None)
def test_run_ids_unique_and_stable(scenario):
    first = [spec.run_id for spec in expand(scenario)]
    assert len(set(first)) == len(first), "duplicate run ids"
    assert [spec.run_id for spec in expand(scenario)] == first


@given(scenario=scenarios(), other_seed=st.integers(0, 10))
@settings(max_examples=60, deadline=None)
def test_grid_independent_of_seed(scenario, other_seed):
    reseeded = Scenario(**{**{f: getattr(scenario, f)
                              for f in ("name", "kind", "engines",
                                        "precisions", "workers", "hardware",
                                        "workloads", "loads", "repetitions")},
                           "seed": other_seed})
    assert [s.run_id for s in expand(scenario)] \
        == [s.run_id for s in expand(reseeded)]


# -- validation properties ---------------------------------------------------

@pytest.mark.parametrize("kwargs,match", [
    (dict(kind="fwd"), "unknown kind"),
    (dict(engines=("cuda",)), "unknown engine"),
    (dict(engines=("fused", "fused")), "duplicate engine"),
    (dict(precisions=("float16",)), "unknown precision"),
    (dict(workers=(-1,)), "workers must be ints"),
    (dict(workers=(1.5,)), "workers must be ints"),
    (dict(kind="forward", workers=(2,)), "no\\s+worker-pool path"),
    (dict(repetitions=0), "repetitions must be an int >= 1"),
    (dict(rounds=0), "rounds must be >= 1"),
    (dict(sizes=(10,)), "sizes needs >= 2"),
    (dict(name="bad name"), "plain slug"),
    (dict(name=""), "non-empty name"),
])
def test_invalid_scalar_factors_rejected(kwargs, match):
    base = dict(name="v", kind="train_step")
    with pytest.raises(ExperimentError, match=match):
        Scenario(**{**base, **kwargs})


@pytest.mark.parametrize("kwargs,match", [
    (dict(kind="serving", workloads=("audio",),
          loads=(LoadSpec("l", 1.0, 1),)), "unknown workload"),
    (dict(kind="serving"), "concrete load point"),
    (dict(kind="forward", workloads=("speech",)), "serving\\s+factor"),
    (dict(kind="forward", loads=(LoadSpec("l", 1.0, 1),)),
     "serving\\s+factor"),
    (dict(kind="serving", engines=("step",),
          hardware=(HardwareSpec(),), loads=(LoadSpec("l", 1.0, 1),)),
     "fused\\s+engine"),
    (dict(kind="variation", hardware=(None,)), "concrete HardwareSpec"),
    (dict(kind="train_step", hardware=(HardwareSpec(shadow=True),)),
     "shadow"),
    (dict(kind="inference", hardware=(HardwareSpec(),)),
     "no\\s+hardware factor"),
])
def test_invalid_factor_combinations_rejected(kwargs, match):
    base = dict(name="v", kind="serving")
    with pytest.raises(ExperimentError, match=match):
        Scenario(**{**base, **kwargs})


@given(bits=st.integers(-3, 1))
@settings(max_examples=20, deadline=None)
def test_invalid_hardware_bits_rejected(bits):
    with pytest.raises(ExperimentError, match="bits must be >= 2"):
        HardwareSpec(bits=bits)


@given(rate=st.floats(max_value=0.0, allow_nan=False))
@settings(max_examples=20, deadline=None)
def test_invalid_load_rate_rejected(rate):
    with pytest.raises(ExperimentError, match="rate_rps must be > 0"):
        LoadSpec("l", rate, 10)
