"""Formant-trajectory synthesis of spoken digits (the SHD audio substitute).

The Spiking Heidelberg Digits dataset records speakers saying 0-9 in
English and German (20 classes).  Offline, we synthesize the *words*
instead of recording them: each word is a sequence of acoustic segments
(vowels with formant targets, diphthongs with moving formants, fricatives,
nasal murmurs, plosive bursts) rendered by additive harmonic synthesis plus
filtered noise.  Class identity lives in the formant *trajectories over
time* — exactly the timing-rich structure the paper's SHD experiments rely
on — while per-sample speaker variability (pitch, vocal-tract scaling,
tempo, loudness) provides within-class variance.

This is deliberately a signal-processing model, not a TTS system: it only
needs to produce 20 acoustically distinct, temporally structured word
classes for the inner-ear encoder in :mod:`repro.data.cochlea`.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from ..common.errors import DatasetError
from ..common.rng import RandomState, as_random_state

__all__ = ["WORDS", "LANGUAGES", "synthesize_digit", "segment_table"]

# -- segment primitives ------------------------------------------------------
# Each segment: (kind, duration_weight, start_formants, end_formants, amplitude)
# Formants are (F1, F2, F3) in Hz; end_formants None means static.


def _seg(kind: str, dur: float, start, end=None, amp: float = 1.0):
    return {
        "kind": kind,
        "dur": float(dur),
        "start": tuple(float(f) for f in start),
        "end": None if end is None else tuple(float(f) for f in end),
        "amp": float(amp),
    }


# Canonical vowel formant targets (Hz), loosely Peterson-Barney.
_IY = (270, 2290, 3010)   # "ee"
_IH = (390, 1990, 2550)   # "i"
_EH = (530, 1840, 2480)   # "e"
_AE = (660, 1720, 2410)   # "a" (cat)
_AH = (710, 1100, 2540)   # "a" (father)
_AO = (570, 840, 2410)    # "aw"
_UW = (300, 870, 2240)    # "oo"
_UH = (440, 1020, 2240)   # "u" (book)
_ER = (490, 1350, 1690)   # "er"
_AX = (500, 1500, 2500)   # schwa
_OW = (450, 880, 2540)    # "o"
_Y_UML = (280, 1700, 2100)  # German ü

_NASAL = (250, 1100, 2300)

_FRIC_S = (0, 0, 0)       # placeholders; fricatives use noise bands below
_NOISE_BANDS = {
    "s": (2200, 3800),
    "z": (2000, 3600),
    "f": (1200, 3600),
    "v": (900, 2800),
    "th": (1400, 3400),
    "sh": (1600, 3000),
    "x": (1000, 2600),    # German "ach" sound
    "h": (500, 2000),
}


def _fric(kind_key: str, dur: float, amp: float = 0.55):
    band = _NOISE_BANDS[kind_key]
    return {
        "kind": "fricative",
        "dur": float(dur),
        "band": band,
        "amp": float(amp),
        "start": (0.0, 0.0, 0.0),
        "end": None,
    }


def _burst(dur: float = 0.05, amp: float = 0.8, band=(800, 3600)):
    return {
        "kind": "burst",
        "dur": float(dur),
        "band": band,
        "amp": float(amp),
        "start": (0.0, 0.0, 0.0),
        "end": None,
    }


def _nasal(dur: float, amp: float = 0.45):
    return _seg("nasal", dur, _NASAL, amp=amp)


LANGUAGES = ("english", "german")

# Word inventories: 10 digits x 2 languages -> 20 classes.
#
# Deliberate design constraint: all 20 words are sequences over a SHARED
# phoneme inventory (six vowels, two fricative bands, one nasal, one burst)
# — just like real speech, where every word reuses the same phonemes.
# Channel-occupancy statistics therefore overlap heavily across classes and
# the discriminative information is the *order and duration* of segments.
# This is the property Cramer et al. report for real SHD ("spike timing is
# essential") and the property the paper's hard-reset ablation exposes.
WORDS: dict[tuple[str, int], list[dict]] = {
    # -- English ------------------------------------------------------------
    # zero: s-IY-ER-OW
    ("english", 0): [_fric("s", 0.18), _seg("vowel", 0.25, _IY),
                     _seg("glide", 0.22, _ER, _OW), _seg("vowel", 0.35, _OW)],
    # one: UW-AH-n
    ("english", 1): [_seg("glide", 0.3, _UW, _AH), _seg("vowel", 0.35, _AH),
                     _nasal(0.35)],
    # two: t-UW
    ("english", 2): [_burst(0.1), _seg("glide", 0.25, _EH, _UW),
                     _seg("vowel", 0.65, _UW)],
    # three (th->f): f-ER-IY
    ("english", 3): [_fric("f", 0.22), _seg("glide", 0.28, _ER, _IY),
                     _seg("vowel", 0.5, _IY)],
    # four: f-OW-ER
    ("english", 4): [_fric("f", 0.22), _seg("vowel", 0.43, _OW),
                     _seg("glide", 0.35, _OW, _ER)],
    # five: f-AH>IY-f
    ("english", 5): [_fric("f", 0.2), _seg("glide", 0.42, _AH, _IY),
                     _seg("vowel", 0.16, _IY), _fric("f", 0.22, amp=0.4)],
    # six: s-EH-t-s
    ("english", 6): [_fric("s", 0.24), _seg("vowel", 0.3, _EH),
                     _burst(0.1), _fric("s", 0.36)],
    # seven: s-EH-f-AH-n
    ("english", 7): [_fric("s", 0.2), _seg("vowel", 0.26, _EH),
                     _fric("f", 0.12, amp=0.35), _seg("vowel", 0.2, _AH),
                     _nasal(0.22)],
    # eight: EH>IY-t
    ("english", 8): [_seg("glide", 0.5, _EH, _IY),
                     _seg("vowel", 0.3, _IY), _burst(0.2)],
    # nine: n-AH>IY-n
    ("english", 9): [_nasal(0.22), _seg("glide", 0.42, _AH, _IY),
                     _seg("vowel", 0.14, _IY), _nasal(0.22)],
    # -- German -------------------------------------------------------------
    # null: n-UW-ER
    ("german", 0): [_nasal(0.26), _seg("vowel", 0.42, _UW),
                    _seg("glide", 0.32, _UW, _ER)],
    # eins: AH>IY-n-s
    ("german", 1): [_seg("glide", 0.42, _AH, _IY), _nasal(0.3),
                    _fric("s", 0.28)],
    # zwei: s-f-AH>IY
    ("german", 2): [_fric("s", 0.16), _fric("f", 0.12, amp=0.4),
                    _seg("glide", 0.44, _AH, _IY),
                    _seg("vowel", 0.28, _IY)],
    # drei: t-ER-AH>IY
    ("german", 3): [_burst(0.1), _seg("glide", 0.22, _ER, _AH),
                    _seg("glide", 0.42, _AH, _IY),
                    _seg("vowel", 0.26, _IY)],
    # vier: f-IY-ER
    ("german", 4): [_fric("f", 0.24), _seg("vowel", 0.42, _IY),
                    _seg("glide", 0.34, _IY, _ER)],
    # fuenf: f-UW-n-f
    ("german", 5): [_fric("f", 0.22), _seg("vowel", 0.36, _UW),
                    _nasal(0.2), _fric("f", 0.22)],
    # sechs: s-EH-t-AH-s
    ("german", 6): [_fric("s", 0.2), _seg("vowel", 0.26, _EH),
                    _burst(0.1), _seg("vowel", 0.14, _AH), _fric("s", 0.3)],
    # sieben: s-IY-t-AH-n
    ("german", 7): [_fric("s", 0.2), _seg("vowel", 0.3, _IY),
                    _burst(0.1), _seg("vowel", 0.18, _AH), _nasal(0.22)],
    # acht: AH-f-t
    ("german", 8): [_seg("vowel", 0.45, _AH), _fric("f", 0.33),
                    _burst(0.22)],
    # neun: n-OW>IY-n
    ("german", 9): [_nasal(0.22), _seg("glide", 0.42, _OW, _IY),
                    _seg("vowel", 0.14, _IY), _nasal(0.22)],
}


def segment_table(language: str, digit: int) -> list[dict]:
    """The segment specification for one word (read-only copy)."""
    key = (language, digit)
    if key not in WORDS:
        raise DatasetError(
            f"no word for language={language!r}, digit={digit}; "
            f"languages: {LANGUAGES}, digits: 0-9"
        )
    return [dict(seg) for seg in WORDS[key]]


def _lorentzian_envelope(freqs: np.ndarray, formants, bandwidths) -> np.ndarray:
    """Formant amplitude envelope: sum of Lorentzian resonance peaks."""
    envelope = np.zeros_like(freqs, dtype=np.float64)
    for centre, bw in zip(formants, bandwidths):
        if centre <= 0:
            continue
        envelope += 1.0 / (1.0 + ((freqs - centre) / (bw / 2.0)) ** 2)
    return envelope


def synthesize_digit(language: str, digit: int,
                     rng: RandomState | int | None = None,
                     sample_rate: int = 8000,
                     base_duration: float = 0.45) -> np.ndarray:
    """Synthesize one spoken digit; returns a float waveform in [-1, 1].

    Parameters
    ----------
    language:
        ``"english"`` or ``"german"``.
    digit:
        0-9.
    rng:
        Speaker/prosody randomness: fundamental frequency (90-240 Hz),
        vocal-tract formant scaling (0.88-1.15), per-segment tempo, and
        amplitude jitter.
    sample_rate:
        Output rate in Hz (8 kHz keeps all formants and fricative bands
        below Nyquist while staying fast).
    base_duration:
        Nominal word duration in seconds before tempo jitter.
    """
    generator = as_random_state(rng)
    segments = segment_table(language, digit)

    f0 = float(generator.uniform(90.0, 240.0))
    tract_scale = float(generator.uniform(0.88, 1.15))
    tempo = float(generator.uniform(0.8, 1.25))
    duration = base_duration * tempo

    total_weight = sum(seg["dur"] for seg in segments)
    pieces: list[np.ndarray] = []
    for index, seg in enumerate(segments):
        seg_dur = duration * seg["dur"] / total_weight
        seg_dur *= float(generator.uniform(0.85, 1.15))
        n = max(8, int(round(seg_dur * sample_rate)))
        seg_rng = generator.child(f"segment{index}")
        if seg["kind"] in ("vowel", "glide", "nasal"):
            pieces.append(_render_voiced(seg, n, f0, tract_scale,
                                         sample_rate, seg_rng))
        elif seg["kind"] == "fricative":
            pieces.append(_render_noise(seg, n, tract_scale, sample_rate,
                                        seg_rng, sustained=True))
        elif seg["kind"] == "burst":
            pieces.append(_render_noise(seg, n, tract_scale, sample_rate,
                                        seg_rng, sustained=False))
        else:
            raise DatasetError(f"unknown segment kind {seg['kind']!r}")

    waveform = np.concatenate(pieces)
    # Short fade-in/out to avoid clicks, light amplitude normalisation.
    fade = min(len(waveform) // 20 + 1, 160)
    ramp = np.linspace(0.0, 1.0, fade)
    waveform[:fade] *= ramp
    waveform[-fade:] *= ramp[::-1]
    peak = np.max(np.abs(waveform))
    if peak > 0:
        waveform = waveform / peak * 0.9
    return waveform.astype(np.float64)


def _render_voiced(seg: dict, n: int, f0: float, tract_scale: float,
                   sample_rate: int, rng: RandomState) -> np.ndarray:
    """Additive harmonic synthesis with (possibly moving) formants."""
    t = np.arange(n) / sample_rate
    start = np.asarray(seg["start"], dtype=np.float64) * tract_scale
    end = start if seg["end"] is None else (
        np.asarray(seg["end"], dtype=np.float64) * tract_scale
    )
    progress = np.linspace(0.0, 1.0, n)[:, None]
    formants_t = start[None, :] * (1 - progress) + end[None, :] * progress
    bandwidths = np.array([90.0, 120.0, 170.0])

    # Slow pitch declination + vibrato keeps the source natural.
    f0_track = f0 * (1.0 - 0.12 * progress[:, 0]) * (
        1.0 + 0.01 * np.sin(2 * np.pi * 5.5 * t)
    )
    phase = 2.0 * np.pi * np.cumsum(f0_track) / sample_rate

    nyquist = sample_rate / 2.0
    n_harmonics = max(1, int(nyquist / f0) - 1)
    out = np.zeros(n)
    harmonic_phases = rng.uniform(0.0, 2.0 * np.pi, n_harmonics)
    for harmonic in range(1, n_harmonics + 1):
        freq_track = harmonic * f0_track
        if freq_track.min() >= nyquist:
            break
        amp = _lorentzian_envelope_time(freq_track, formants_t, bandwidths)
        amp = amp / harmonic ** 0.5      # gentle source spectral tilt
        out += amp * np.sin(harmonic * phase + harmonic_phases[harmonic - 1])
    if seg["kind"] == "nasal":
        # Murmur: heavy low-pass character and reduced level.
        b, a = sp_signal.butter(2, 900.0 / nyquist, btype="low")
        out = sp_signal.lfilter(b, a, out)
    return out * seg["amp"]


def _lorentzian_envelope_time(freq_track: np.ndarray, formants_t: np.ndarray,
                              bandwidths: np.ndarray) -> np.ndarray:
    """Per-sample formant envelope for a moving harmonic frequency."""
    envelope = np.zeros_like(freq_track)
    for k in range(formants_t.shape[1]):
        centre = formants_t[:, k]
        bw = bandwidths[k]
        envelope += 1.0 / (1.0 + ((freq_track - centre) / (bw / 2.0)) ** 2)
    return envelope


def _render_noise(seg: dict, n: int, tract_scale: float, sample_rate: int,
                  rng: RandomState, sustained: bool) -> np.ndarray:
    """Band-passed noise for fricatives (sustained) and bursts (decaying)."""
    nyquist = sample_rate / 2.0
    low, high = seg["band"]
    low = min(low * tract_scale, nyquist * 0.85)
    high = min(high * tract_scale, nyquist * 0.95)
    if low >= high:
        low = high * 0.5
    noise = rng.normal(0.0, 1.0, n)
    b, a = sp_signal.butter(2, [low / nyquist, high / nyquist], btype="band")
    shaped = sp_signal.lfilter(b, a, noise)
    if sustained:
        envelope = np.ones(n)
        attack = max(1, n // 6)
        envelope[:attack] = np.linspace(0.0, 1.0, attack)
        envelope[-attack:] = np.linspace(1.0, 0.0, attack)
    else:
        envelope = np.exp(-np.arange(n) / max(1.0, n / 4.0))
    return shaped * envelope * seg["amp"]
