"""Builders for the network architectures used in the paper's evaluation.

Section V uses three fully-connected topologies:

* N-MNIST classification: ``(34*34*2) - 500 - 500 - 10``
* SHD classification: ``700 - 400 - 400 - 20``
* Pattern association: ``700 - 500 - 500 - 300``

Paper-scale hidden layers are expensive on an offline CPU, so each builder
takes a ``profile`` argument: ``"paper"`` reproduces the published sizes,
``"reduced"`` (default) shrinks hidden layers for the CI-scale benches.
The reduction preserves depth and all dynamics — only width changes.
"""

from __future__ import annotations

from ..common.rng import RandomState
from .network import SpikingNetwork
from .neurons import NeuronParameters
from .surrogate import ErfcSurrogate

__all__ = [
    "NMNIST_INPUT",
    "SHD_INPUT",
    "ASSOCIATION_OUTPUT",
    "nmnist_mlp",
    "shd_mlp",
    "association_net",
]

NMNIST_INPUT = 34 * 34 * 2       # two DVS polarity channels on a 34x34 grid
SHD_INPUT = 700                  # cochlea channels
ASSOCIATION_OUTPUT = 300         # target spike trains (glyph rows)

_PROFILES = {"paper", "reduced"}


def _check_profile(profile: str) -> None:
    if profile not in _PROFILES:
        raise ValueError(f"profile must be one of {sorted(_PROFILES)}, "
                         f"got {profile!r}")


def _build(sizes, params, rng) -> SpikingNetwork:
    return SpikingNetwork(
        sizes, params=params or NeuronParameters(),
        neuron_kind="adaptive", surrogate=ErfcSurrogate(), rng=rng,
    )


def nmnist_mlp(profile: str = "reduced",
               params: NeuronParameters | None = None,
               rng: RandomState | int | None = None) -> SpikingNetwork:
    """The paper's N-MNIST classifier ``2312-500-500-10`` (Section V-A).

    ``reduced`` profile: ``2312-128-128-10``.
    """
    _check_profile(profile)
    hidden = (500, 500) if profile == "paper" else (128, 128)
    return _build((NMNIST_INPUT, *hidden, 10), params, rng)


def shd_mlp(profile: str = "reduced",
            params: NeuronParameters | None = None,
            rng: RandomState | int | None = None) -> SpikingNetwork:
    """The paper's SHD classifier ``700-400-400-20`` (Section V-A).

    ``reduced`` profile: ``700-128-128-20``.
    """
    _check_profile(profile)
    hidden = (400, 400) if profile == "paper" else (128, 128)
    return _build((SHD_INPUT, *hidden, 20), params, rng)


def association_net(profile: str = "reduced",
                    params: NeuronParameters | None = None,
                    rng: RandomState | int | None = None) -> SpikingNetwork:
    """The pattern-association network ``700-500-500-300`` (Section V-B).

    ``reduced`` profile: ``700-128-128-300``.
    """
    _check_profile(profile)
    hidden = (500, 500) if profile == "paper" else (128, 128)
    return _build((SHD_INPUT, *hidden, ASSOCIATION_OUTPUT), params, rng)
