"""Deterministic random-number management.

Every stochastic component in the library draws randomness from a
:class:`RandomState` handed to it explicitly — there is no hidden global
seed.  A :class:`RandomState` is a thin wrapper around
:class:`numpy.random.Generator` that can *spawn* named child generators, so
that, for example, the dataset generator and the weight initialiser of one
experiment never share a stream and adding a consumer does not perturb the
streams of existing consumers.

Example
-------
>>> root = RandomState(seed=42)
>>> weights_rng = root.child("weights")
>>> data_rng = root.child("data")
>>> float(weights_rng.normal()) != float(data_rng.normal())
True
>>> # children are reproducible by (seed, name):
>>> again = RandomState(seed=42).child("weights")
>>> float(again.normal()) == float(RandomState(seed=42).child("weights").normal())
True
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomState", "as_random_state"]


def _stable_hash(text: str) -> int:
    """Map a string to a stable 64-bit integer (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomState:
    """A seeded random source that can spawn independent named children.

    Parameters
    ----------
    seed:
        Non-negative integer seed.  Two :class:`RandomState` objects built
        with the same seed produce identical streams.
    """

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = int(seed)
        self._generator = np.random.default_rng(self.seed)

    def child(self, name: str) -> "RandomState":
        """Return a child :class:`RandomState` derived from ``(seed, name)``.

        The child stream is independent of the parent stream and of any
        sibling with a different name, and does not advance the parent.
        """
        return RandomState(seed=(self.seed * 0x9E3779B1 + _stable_hash(name)) % (2**63))

    @property
    def generator(self) -> np.random.Generator:
        """The underlying :class:`numpy.random.Generator`."""
        return self._generator

    # -- conveniences delegating to the generator -------------------------
    def normal(self, loc=0.0, scale=1.0, size=None):
        return self._generator.normal(loc, scale, size)

    def uniform(self, low=0.0, high=1.0, size=None):
        return self._generator.uniform(low, high, size)

    def integers(self, low, high=None, size=None):
        return self._generator.integers(low, high, size)

    def random(self, size=None):
        return self._generator.random(size)

    def lognormal(self, mean=0.0, sigma=1.0, size=None):
        return self._generator.lognormal(mean, sigma, size)

    def choice(self, a, size=None, replace=True, p=None):
        return self._generator.choice(a, size=size, replace=replace, p=p)

    def permutation(self, x):
        return self._generator.permutation(x)

    def shuffle(self, x) -> None:
        self._generator.shuffle(x)

    def poisson(self, lam=1.0, size=None):
        return self._generator.poisson(lam, size)

    def __repr__(self) -> str:
        return f"RandomState(seed={self.seed})"


def as_random_state(rng) -> RandomState:
    """Coerce ``rng`` (``None`` | int | :class:`RandomState`) to a RandomState.

    ``None`` maps to the default seed 0, an ``int`` is used as the seed, and
    an existing :class:`RandomState` is returned unchanged.
    """
    if rng is None:
        return RandomState(0)
    if isinstance(rng, RandomState):
        return rng
    if isinstance(rng, (int, np.integer)):
        return RandomState(int(rng))
    raise TypeError(f"cannot interpret {type(rng).__name__} as RandomState")
