"""Hardware-in-the-loop inference: a trained network on RRAM crossbars.

This implements the evaluation behind the paper's Fig. 8: trained weights
are programmed into differential RRAM crossbars with k-bit quantization
and per-device lognormal process variation; inference then runs the same
adaptive-threshold dynamics using the *achieved* (non-ideal) weights.

Because the neuron dynamics are unchanged — only the weight values move —
mapping reduces to a clone network whose weights are the crossbars'
effective weights.  That clone is a faithful model of the analog datapath
under the paper's own simplifications (sense-resistor loading neglected
via the current-amplifier argument, Section IV).

The mapped realization is served through a cached *weight provider*
(:meth:`HardwareMappedNetwork.weight_list`): one effective-weight array
per layer, memoised against the crossbars' programming generations so
re-programming (:meth:`HardwareMappedNetwork.reprogram`) invalidates it
and every consumer — one-shot :meth:`~HardwareMappedNetwork.run`, chunked
:meth:`~HardwareMappedNetwork.run_stream`, the serving tick — reads the
same frozen arrays.  An optional per-stream read-noise rng draws a
private read realization instead (reproducible by seed), so a serving
session can model cycle-to-cycle read noise without perturbing anyone
else's weights.

Streaming rides the fused engine's weight-override hook
(:func:`repro.core.engine.run_streaming` ``weights=``): the chunked
hardware run executes exactly the software streaming code path with the
achieved weights substituted into the crossbar product, so chunked
hardware inference is bitwise-equal to a one-shot hardware ``run`` under
a fixed noise seed (pinned in ``tests/unit/test_hw_streaming.py``).

The Fig. 8 sweep is embarrassingly parallel across programming draws: each
device-noise seed owns an independent rng stream keyed by ``(root seed,
seed name)``, so :func:`accuracy_under_variation` can fan its seeds out to
a :class:`~repro.runtime.pool.WorkerPool` (``workers=N``) and return
exactly the numbers the serial loop returns — the per-seed unit of work is
the shared :func:`seed_accuracy` either way.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.config import BaseConfig
from ..common.errors import ShapeError, StateError
from ..common.rng import RandomState, as_random_state
from ..core.network import SpikingNetwork
from ..core.trainer import run_in_batches
from .crossbar import DifferentialCrossbar
from .devices import RRAMDeviceConfig
from .quantization import QuantizationConfig

__all__ = ["HardwareMappedNetwork", "HardwareProfile", "HardwareStreamState",
           "accuracy_under_variation", "seed_accuracy"]


class HardwareMappedNetwork:
    """A trained :class:`~repro.core.network.SpikingNetwork` on crossbars.

    Parameters
    ----------
    network:
        The trained software model (unmodified).
    device:
        RRAM device model; ``levels = 2**bits`` sets the quantization and
        ``variation`` the programming noise.
    rng:
        Randomness for the device draws (one independent stream per layer
        and polarity).
    """

    def __init__(self, network: SpikingNetwork,
                 device: RRAMDeviceConfig | None = None,
                 rng: RandomState | int | None = None):
        self.software_network = network
        self.device = device or RRAMDeviceConfig()
        root = as_random_state(rng)
        self.crossbars = [
            DifferentialCrossbar(layer.weight, self.device,
                                 rng=root.child(f"crossbar{i}"))
            for i, layer in enumerate(network.layers)
        ]
        self.hardware_network = SpikingNetwork(
            network.sizes, params=network.params,
            neuron_kind=network.neuron_kind, rng=0,
        )
        # The mapped realization: one effective-weight array per layer,
        # cached against the crossbars' programming generations and kept
        # installed on the hardware clone (see weight_list()).
        self._weights: list[np.ndarray] | None = None
        self._weights_generation: tuple | None = None
        self.weight_list()

    # -- the weight provider ---------------------------------------------------
    def generation(self) -> tuple:
        """The crossbars' programming generations (cache key; advances on
        every :meth:`reprogram` / crossbar ``program``)."""
        return tuple((xbar.array_plus.version, xbar.array_minus.version)
                     for xbar in self.crossbars)

    def weight_list(self, rng: RandomState | int | None = None
                    ) -> list[np.ndarray]:
        """Per-layer achieved weights — the provider every consumer reads.

        With ``rng=None`` (the default) the list is the *mapped
        realization*: memoised against :meth:`generation`, re-read (and
        re-installed on ``hardware_network``) only after a re-programming.
        When ``read_noise > 0`` that realization is one frozen read draw
        per programming — deterministic serving weights, like a
        sample-and-hold at map time.

        With ``rng`` the list is a private *read realization*: read noise
        for every layer is drawn from child streams of ``rng`` (keyed by
        layer index only), so the same seed always produces the same
        noisy weights — the per-session noise model of the serving layer,
        and the reason chunked streams can pin their realization once at
        open instead of re-rolling per chunk.
        """
        if rng is not None:
            root = as_random_state(rng)
            return [xbar.effective_weights(rng=root.child(f"read{i}"))
                    for i, xbar in enumerate(self.crossbars)]
        generation = self.generation()
        if self._weights_generation != generation:
            self._weights = [xbar.effective_weights()
                             for xbar in self.crossbars]
            self._weights_generation = generation
            self.hardware_network.set_weights(self._weights)
        return self._weights

    def reprogram(self, weights: list[np.ndarray] | None = None) -> None:
        """Re-program every crossbar and refresh the mapped realization.

        Draws fresh device variation for each layer (each ``program`` call
        advances the crossbar's rng streams); ``weights`` optionally
        replaces the per-layer target weights first (e.g. after further
        training of the software model).  All caches keyed on
        :meth:`generation` — this object's weight list, the hardware
        clone's installed weights — refresh; live hardware streams opened
        before the call refuse to continue (their snapshot is stale).
        """
        if weights is not None and len(weights) != len(self.crossbars):
            raise ShapeError(
                f"expected {len(self.crossbars)} weight arrays, "
                f"got {len(weights)}")
        for index, xbar in enumerate(self.crossbars):
            xbar.program(None if weights is None else weights[index])
        self.weight_list()

    # -- inference -------------------------------------------------------------
    def run(self, inputs: np.ndarray, record: bool = False,
            engine: str = "fused", precision: str | None = None,
            read_noise_rng: RandomState | int | None = None):
        """Inference with the achieved (quantized + noisy) weights.

        ``engine`` and ``precision`` are forwarded to
        :meth:`~repro.core.network.SpikingNetwork.run`.
        ``read_noise_rng`` pins a private read-noise realization for this
        run (see :meth:`weight_list`); the mapped realization is restored
        afterwards, so interleaved deterministic runs are unaffected.
        """
        if read_noise_rng is None:
            self.weight_list()   # re-sync after any re-programming
            return self.hardware_network.run(inputs, record=record,
                                             engine=engine,
                                             precision=precision)
        self.weight_list()
        self.hardware_network.set_weights(self.weight_list(read_noise_rng))
        try:
            return self.hardware_network.run(inputs, record=record,
                                             engine=engine,
                                             precision=precision)
        finally:
            self.hardware_network.set_weights(self._weights)

    def open_stream(self, batch: int = 1, precision: str | None = None,
                    read_noise_rng: RandomState | int | None = None
                    ) -> "HardwareStreamState":
        """Open ``batch`` hardware streams; returns their carry state.

        The stream's weight realization is pinned here — the mapped
        realization by default, or a private read-noise draw from
        ``read_noise_rng`` — and reused for every subsequent chunk, which
        is what makes chunked streaming bitwise-equal to a one-shot
        :meth:`run` under the same seed.
        """
        weights = self.weight_list(read_noise_rng)
        state = self.hardware_network.new_stream_state(
            batch, engine="fused", precision=precision)
        return HardwareStreamState(state, weights, self.generation())

    def run_stream(self, chunk: np.ndarray,
                   state: "HardwareStreamState | None" = None,
                   precision: str | None = None, lengths=None,
                   workspace=None,
                   read_noise_rng: RandomState | int | None = None
                   ) -> tuple[np.ndarray, "HardwareStreamState"]:
        """Consume one chunk of a live spike stream on the crossbars.

        The streaming analogue of :meth:`run` — same contract as
        :meth:`repro.core.network.SpikingNetwork.run_stream` (chunked ==
        one-shot bitwise, state carried in the returned
        :class:`HardwareStreamState`, the resident networks' scratch
        untouched), executed by the fused engine with the stream's pinned
        weight realization substituted into every crossbar product.

        ``read_noise_rng`` is accepted only when opening a stream
        (``state=None``): a stream's realization is pinned at open.
        Continuing a stream across a :meth:`reprogram` raises
        :class:`~repro.common.errors.StateError` — the snapshot no longer
        matches any programmed device state.
        """
        chunk = np.asarray(chunk)
        if chunk.ndim != 3:
            raise ShapeError(f"expected (batch, T, n_in), got {chunk.shape}")
        if state is None:
            state = self.open_stream(chunk.shape[0], precision=precision,
                                     read_noise_rng=read_noise_rng)
        elif read_noise_rng is not None:
            raise ValueError(
                "read_noise_rng pins a stream's realization when the "
                "stream opens; it cannot be changed mid-stream")
        if state.generation != self.generation():
            raise StateError(
                "crossbars were re-programmed under a live stream; open a "
                "new stream to serve the new realization")
        outputs, _ = self.hardware_network.run_stream(
            chunk, state.state, precision=precision, lengths=lengths,
            workspace=workspace, weights=state.weights)
        return outputs, state

    def weight_errors(self) -> list[float]:
        """Per-layer RMS relative weight error vs the software model."""
        errors = []
        for layer, actual in zip(self.software_network.layers,
                                 self.weight_list()):
            ideal = layer.weight
            scale = float(np.max(np.abs(ideal))) or 1.0
            errors.append(float(np.sqrt(np.mean((actual - ideal) ** 2)) / scale))
        return errors

    def __repr__(self) -> str:
        arch = "-".join(str(s) for s in self.software_network.sizes)
        return (f"HardwareMappedNetwork({arch}, levels={self.device.levels}, "
                f"variation={self.device.variation})")


class HardwareStreamState:
    """Carry state of a chunked hardware stream: the engine's
    :class:`~repro.core.engine.StreamState` plus the stream's pinned
    weight realization.

    The weights are pinned when the stream opens (one list shared by all
    deterministic streams of a programming generation; a private list for
    read-noise streams) and the opening generation is recorded so a
    re-programming mid-stream fails loudly instead of silently serving a
    realization no device holds.
    """

    __slots__ = ("state", "weights", "generation")

    def __init__(self, state, weights: list[np.ndarray], generation: tuple):
        self.state = state
        self.weights = weights
        self.generation = generation

    @property
    def steps(self) -> np.ndarray:
        """Per-row consumed time steps (delegates to the engine state)."""
        return self.state.steps

    @property
    def batch(self) -> int:
        return self.state.batch

    def __repr__(self) -> str:
        return (f"HardwareStreamState(batch={self.batch}, "
                f"steps={self.steps.tolist()})")


@dataclasses.dataclass(frozen=True)
class HardwareProfile(BaseConfig):
    """Serializable recipe for mapping a checkpoint onto crossbars.

    A profile captures everything the paper's Fig. 8 varies — the
    quantization grid and the device/variation model — plus the seed of
    the programming draw, so a served hardware realization is reproducible
    from ``(checkpoint, profile)`` alone.  The serving model registry
    versions profiles alongside checkpoints
    (:meth:`repro.serve.registry.ModelRegistry.save_profile`).

    Attributes
    ----------
    device:
        Device model; its ``levels`` must equal the quantization's
        ``2**bits`` (the differential mapping programs one k-bit ladder).
    quantization:
        Weight quantization parameters (Fig. 8: 4 or 5 bits).
    seed:
        Root seed of the programming draw (crossbar rng streams are its
        named children, one per layer and polarity).
    """

    device: RRAMDeviceConfig = dataclasses.field(
        default_factory=RRAMDeviceConfig)
    quantization: QuantizationConfig = dataclasses.field(
        default_factory=QuantizationConfig)
    seed: int = 0

    def validate(self) -> None:
        self.require(self.device.levels == self.quantization.levels,
                     f"device levels ({self.device.levels}) must equal "
                     f"2**bits ({self.quantization.levels})")
        self.require(self.seed >= 0,
                     f"seed must be non-negative, got {self.seed}")

    @classmethod
    def create(cls, bits: int = 4, variation: float = 0.0,
               read_noise: float = 0.0, seed: int = 0,
               device: RRAMDeviceConfig | None = None) -> "HardwareProfile":
        """Convenience constructor from Fig. 8 coordinates.

        ``device`` optionally supplies the base device model (conductance
        window, stuck-at rate); its ``levels`` are overridden to match
        ``bits``.
        """
        base = device or RRAMDeviceConfig()
        return cls(
            device=base.replace(levels=2 ** int(bits), variation=variation,
                                read_noise=read_noise),
            quantization=QuantizationConfig(bits=int(bits)),
            seed=int(seed),
        )

    @classmethod
    def from_dict(cls, data: dict) -> "HardwareProfile":
        # Postponed annotations hide the nested config types from
        # BaseConfig.from_dict's resolver; rebuild them explicitly.
        payload = dict(data)
        payload.pop("__config__", None)
        if isinstance(payload.get("device"), dict):
            payload["device"] = RRAMDeviceConfig.from_dict(payload["device"])
        if isinstance(payload.get("quantization"), dict):
            payload["quantization"] = QuantizationConfig.from_dict(
                payload["quantization"])
        return cls(**payload)

    @property
    def bits(self) -> int:
        return self.quantization.bits

    def build(self, network: SpikingNetwork) -> HardwareMappedNetwork:
        """Map ``network`` onto crossbars under this profile."""
        return HardwareMappedNetwork(network, self.device,
                                     rng=RandomState(self.seed))


def seed_correct(network: SpikingNetwork, inputs: np.ndarray,
                 labels: np.ndarray, bits: int, variation: float,
                 seed: int, batch_size: int = 64, engine: str = "fused",
                 precision: str | None = None,
                 device: RRAMDeviceConfig | None = None) -> int:
    """Correctly-classified count of one programming draw on ``inputs``.

    ``seed`` fully determines the draw (quantization targets + device
    variation), so evaluating a subset of samples — e.g. one bounded
    shared-memory window of a pooled sweep — reproduces exactly the
    predictions the full-set evaluation would give those samples: counts
    over disjoint windows sum to the full-set count.

    ``device`` optionally supplies the base device model (conductance
    window, read noise, stuck-at rate — e.g. a served hardware profile's
    device); the sweep coordinates ``bits``/``variation`` override its
    ``levels``/``variation``.  Default: the stock
    :class:`~repro.hardware.devices.RRAMDeviceConfig` window.
    """
    base = device or RRAMDeviceConfig()
    device = base.replace(levels=2 ** int(bits), variation=variation)
    mapped = HardwareMappedNetwork(network, device, rng=RandomState(seed))
    outputs = run_in_batches(mapped.hardware_network, inputs, batch_size,
                             engine=engine, precision=precision)
    predictions = np.argmax(outputs.sum(axis=1), axis=1)
    return int(np.sum(predictions == np.asarray(labels)))


def seed_accuracy(network: SpikingNetwork, inputs: np.ndarray,
                  labels: np.ndarray, bits: int, variation: float,
                  seed: int, batch_size: int = 64, engine: str = "fused",
                  precision: str | None = None,
                  device: RRAMDeviceConfig | None = None) -> float:
    """Accuracy of one independent programming draw (one Fig. 8 seed).

    This is the unit of work of :func:`accuracy_under_variation` — executed
    in-process by the serial loop, and window-wise (via
    :func:`seed_correct`) inside each pool worker, producing identical
    numbers either way (an integer count divided by ``n``).  ``seed`` is
    the integer seed of the draw's private rng stream.
    """
    count = seed_correct(network, inputs, labels, bits=bits,
                         variation=variation, seed=seed,
                         batch_size=batch_size, engine=engine,
                         precision=precision, device=device)
    return count / inputs.shape[0]


def accuracy_under_variation(network: SpikingNetwork, inputs: np.ndarray,
                             labels: np.ndarray, bits: int,
                             variation: float, n_seeds: int = 3,
                             rng: RandomState | int | None = None,
                             batch_size: int = 64, engine: str = "fused",
                             precision: str | None = None,
                             workers: int = 0, pool=None,
                             device: RRAMDeviceConfig | None = None
                             ) -> tuple[float, float]:
    """Mean/std accuracy over device-noise seeds (one Fig. 8 data point).

    Parameters
    ----------
    network:
        Trained classifier.
    inputs, labels:
        Evaluation set.
    bits:
        Weight precision (Fig. 8: 4 or 5).
    variation:
        Lognormal resistance-deviation sigma (Fig. 8 x-axis, 0 - 0.5).
    n_seeds:
        Independent programming draws to average over.
    engine, precision:
        Forwarded to the forward runs (previously ignored).
    workers, pool:
        ``workers >= 1`` evaluates the seeds concurrently on a
        :class:`~repro.runtime.pool.WorkerPool` (``pool`` reuses an
        existing one built for ``network`` — e.g. across a whole Fig. 8
        grid).  Every seed's rng stream is keyed by ``(rng, seed index)``
        only, so the parallel results equal the serial ones exactly.
    device:
        Optional base device model the sweep coordinates override (see
        :func:`seed_correct`) — lets a served hardware profile's window /
        read-noise / stuck-at parameters flow through the whole sweep.

    Returns
    -------
    (mean_accuracy, std_accuracy)
    """
    root = as_random_state(rng)
    seeds = [root.child(f"seed{s}").seed for s in range(n_seeds)]
    tasks = [(bits, variation, seed) for seed in seeds]
    if pool is not None:
        if pool.network is not network:
            raise ValueError(
                "pool was built for a different network object; build it "
                "from this network so the workers map the same weights")
        accuracies = pool.hw_eval(inputs, labels, tasks,
                                  batch_size=batch_size, engine=engine,
                                  precision=precision, device=device)
    elif workers >= 1 and n_seeds > 1:
        from ..runtime.pool import WorkerPool

        with WorkerPool(network, workers=min(workers, n_seeds)) as transient:
            accuracies = transient.hw_eval(inputs, labels, tasks,
                                           batch_size=batch_size,
                                           engine=engine,
                                           precision=precision,
                                           device=device)
    else:
        accuracies = [
            seed_accuracy(network, inputs, labels, bits=bits,
                          variation=variation, seed=seed,
                          batch_size=batch_size, engine=engine,
                          precision=precision, device=device)
            for seed in seeds
        ]
    accuracies = np.asarray(accuracies, dtype=np.float64)
    return float(np.mean(accuracies)), float(np.std(accuracies))
