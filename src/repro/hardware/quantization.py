"""Weight quantization and weight-to-conductance mapping.

Trained weights are signed reals; memristor conductances are positive and
bounded.  Following standard crossbar practice (and the paper's Fig. 8
levels), a weight ``w`` maps to a *differential pair* of conductances:

.. math::

    w \\propto g^+ - g^-

with one device per sign: positive weights program ``g+`` above the
midpoint and ``g-`` at minimum, negative weights the mirror.  Each layer
uses a single scale factor chosen so the largest |weight| uses the full
conductance window — that scale is divided back out after the analog dot
product, so quantization error (not gain) is the only distortion.

``quantize_weights`` is the pure-software shortcut used for quick sweeps:
it rounds weights to the same k-bit grid the conductance pair would
realise, without building device arrays.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.config import BaseConfig
from .devices import RRAMDeviceConfig

__all__ = [
    "QuantizationConfig",
    "quantize_weights",
    "weights_to_conductances",
    "conductances_to_weights",
]


@dataclasses.dataclass(frozen=True)
class QuantizationConfig(BaseConfig):
    """k-bit weight quantization parameters.

    Attributes
    ----------
    bits:
        Bits per device (Fig. 8: 4 or 5), i.e. ``2**bits`` levels.
    symmetric:
        Use a symmetric grid around zero (required by the differential
        mapping).
    """

    bits: int = 4
    symmetric: bool = True

    def validate(self) -> None:
        self.require(1 <= self.bits <= 16, f"bits must be 1-16, got {self.bits}")

    @property
    def levels(self) -> int:
        return 2 ** self.bits


def quantize_weights(weights: np.ndarray, config: QuantizationConfig,
                     scale: float | None = None) -> np.ndarray:
    """Round ``weights`` to the k-bit grid; returns the dequantized values.

    Parameters
    ----------
    scale:
        Full-scale value; defaults to ``max(|weights|)`` (per-tensor).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if scale is None:
        scale = float(np.max(np.abs(weights)))
    if scale == 0.0:
        return np.zeros_like(weights)
    # Symmetric signed grid with (levels - 1) steps across [-scale, +scale].
    steps = config.levels - 1
    normalized = np.clip(weights / scale, -1.0, 1.0)
    quantized = np.round(normalized * steps / 2.0) * 2.0 / steps
    return quantized * scale


def weights_to_conductances(weights: np.ndarray,
                            device: RRAMDeviceConfig,
                            scale: float | None = None
                            ) -> tuple[np.ndarray, np.ndarray, float]:
    """Map signed weights to differential conductance targets.

    Returns ``(g_plus, g_minus, weight_scale)`` where the realised weight is
    ``(g_plus - g_minus) * weight_scale / (g_max - g_min)``; both arrays lie
    in the device window and the mapping uses the full dynamic range for
    the largest |weight|.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if scale is None:
        scale = float(np.max(np.abs(weights)))
    if scale == 0.0:
        scale = 1.0
    window = device.g_max - device.g_min
    normalized = np.clip(weights / scale, -1.0, 1.0)
    magnitude = np.abs(normalized) * window
    g_plus = np.where(normalized >= 0, device.g_min + magnitude, device.g_min)
    g_minus = np.where(normalized < 0, device.g_min + magnitude, device.g_min)
    return g_plus, g_minus, float(scale)


def conductances_to_weights(g_plus: np.ndarray, g_minus: np.ndarray,
                            device: RRAMDeviceConfig,
                            weight_scale: float) -> np.ndarray:
    """Invert :func:`weights_to_conductances` for achieved conductances."""
    window = device.g_max - device.g_min
    return (np.asarray(g_plus, dtype=np.float64)
            - np.asarray(g_minus, dtype=np.float64)) * weight_scale / window
