#!/usr/bin/env python
"""Render an exported JSONL trace (:mod:`repro.obs`) as ASCII views.

Three views over the same trace file:

* ``tickets`` (default) — the full lifecycle of every request ticket,
  reconstructed from the server's ``ticket.*`` events: submitted ->
  batched -> completed / expired / failed, with the degraded / retried
  rungs and the shadow divergence the scatter stamped on completion.
* ``workers`` — the pool plane: dispatch spans plus per-worker respawn
  (supervisor restarts, with generation) and retry events.
* ``timeline`` — every span as a proportional bar on the trace clock,
  indented by parent nesting, events as point markers.

Usage::

    PYTHONPATH=src python tools/trace_view.py traces/run.trace.jsonl
    PYTHONPATH=src python tools/trace_view.py run.trace.jsonl \\
        --view timeline --width 72

Reads any trace the harness (``repro-exp harness --trace-dir``), the
load generator (``open_loop(export_dir=...)``) or a raw
``Tracer.write_jsonl`` produced; validates every record against the
trace schema first (:func:`repro.obs.parse_jsonl`).
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import defaultdict
from pathlib import Path

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import parse_jsonl  # noqa: E402

#: Event names that resolve a ticket (terminal lifecycle states).
_TERMINAL = {"ticket.completed", "ticket.expired", "ticket.failed",
             "ticket.rejected"}


def load_trace(path) -> list[dict]:
    """Read and schema-validate one JSONL trace file."""
    return parse_jsonl(Path(path).read_text(encoding="utf-8"))


def ticket_lifecycles(records: list[dict]) -> dict:
    """``{request id: [event record, ...]}`` in trace order.

    Rejected submissions carry a request id too (the seq the admission
    attempt would have used), so every admission attempt in the trace
    has exactly one lifecycle — terminal state included.
    """
    lifecycles: dict = defaultdict(list)
    for record in records:
        if (record["type"] == "event"
                and record["name"].startswith("ticket.")
                and "request" in record["attrs"]):
            lifecycles[record["attrs"]["request"]].append(record)
    return dict(lifecycles)


def _fmt_attrs(attrs: dict, skip=("request", "session")) -> str:
    parts = []
    for key, value in attrs.items():
        if key in skip or value is None or value is False:
            continue
        if value is True:
            parts.append(key)
        elif isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return f" [{', '.join(parts)}]" if parts else ""


def render_tickets(records: list[dict]) -> str:
    """One line per lifecycle stage, grouped per request ticket."""
    lifecycles = ticket_lifecycles(records)
    if not lifecycles:
        return "no ticket events in trace\n"
    lines = []
    unresolved = 0
    for request in sorted(lifecycles):
        events = lifecycles[request]
        session = events[0]["attrs"].get("session", "?")
        terminal = next((e["name"] for e in events
                         if e["name"] in _TERMINAL), None)
        if terminal is None:
            unresolved += 1
        state = (terminal or "IN-FLIGHT").removeprefix("ticket.")
        lines.append(f"ticket #{request} session={session} -> {state}")
        start = events[0]["start"]
        for event in events:
            stage = event["name"].removeprefix("ticket.")
            lines.append(f"  +{1e3 * (event['start'] - start):9.3f} ms  "
                         f"{stage}{_fmt_attrs(event['attrs'])}")
    lines.append(f"{len(lifecycles)} tickets, {unresolved} unresolved")
    return "\n".join(lines) + "\n"


def render_workers(records: list[dict]) -> str:
    """Dispatch spans plus per-worker respawn/retry event groups."""
    dispatches = [r for r in records
                  if r["type"] == "span" and r["name"] == "pool.dispatch"]
    by_worker: dict = defaultdict(list)
    for record in records:
        if (record["type"] == "event" and record["name"].startswith("pool.")
                and "worker" in record["attrs"]):
            by_worker[record["attrs"]["worker"]].append(record)
    lines = [f"{len(dispatches)} dispatch spans"]
    for span in dispatches:
        lines.append(f"  {span['span']}  {1e3 * span['duration']:9.3f} ms"
                     f"{_fmt_attrs(span['attrs'])}")
    for worker in sorted(by_worker):
        lines.append(f"worker {worker}:")
        for event in by_worker[worker]:
            lines.append(f"  {event['name'].removeprefix('pool.')}"
                         f"{_fmt_attrs(event['attrs'], skip=('worker',))}")
    if len(lines) == 1 and not by_worker:
        lines.append("  (no pool events in trace)")
    return "\n".join(lines) + "\n"


def render_timeline(records: list[dict], width: int = 64) -> str:
    """Proportional span bars on the trace clock, nested by parent."""
    if not records:
        return "empty trace\n"
    t0 = min(r["start"] for r in records)
    t1 = max(r["start"] + (r["duration"] or 0.0) for r in records)
    scale = (width - 1) / max(t1 - t0, 1e-12)
    depth: dict = {}
    lines = [f"trace window {1e3 * (t1 - t0):.3f} ms, "
             f"{len(records)} records"]
    for record in records:
        parent = record["parent"]
        level = depth.get(parent, -1) + 1
        if record["type"] == "span":
            depth[record["span"]] = level
            left = int((record["start"] - t0) * scale)
            span_cols = max(int(record["duration"] * scale), 1)
            bar = " " * left + "#" * min(span_cols, width - left)
        else:
            left = int((record["start"] - t0) * scale)
            bar = " " * left + "*"
        label = f"{'  ' * level}{record['name']}"
        lines.append(f"{label:<28.28} |{bar:<{width}}|")
    return "\n".join(lines) + "\n"


_VIEWS = {
    "tickets": lambda records, width: render_tickets(records),
    "workers": lambda records, width: render_workers(records),
    "timeline": render_timeline,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Render a repro.obs JSONL trace as an ASCII view.")
    parser.add_argument("trace", help="path to a .trace.jsonl export")
    parser.add_argument("--view", choices=sorted(_VIEWS),
                        default="tickets")
    parser.add_argument("--width", type=int, default=64,
                        help="timeline bar width in columns")
    args = parser.parse_args(argv)
    records = load_trace(args.trace)
    sys.stdout.write(_VIEWS[args.view](records, args.width))
    return 0


if __name__ == "__main__":
    sys.exit(main())
