"""Tests for the parallel runtime: workspace arenas, shard math, worker pool.

The load-bearing guarantees:

* a :class:`~repro.runtime.workspace.Workspace` is bitwise-transparent —
  fused runs/backwards through a (reused, shape-changing) workspace equal
  fresh-allocation runs exactly;
* the pooled execution of any sharded computation is bitwise-equal to the
  serial execution of the *same* shard split (gradients, inference chunks,
  Fig. 8 seeds), and ``workers=1`` is bitwise-equal to the plain serial
  trainer;
* ``workers=0`` changes nothing (it is the plain serial path).
"""

import numpy as np
import pytest

from repro.core import (
    CrossEntropyRateLoss,
    SpikingNetwork,
    Trainer,
    TrainerConfig,
    backward,
)
from repro.core.calibration import calibrate_firing
from repro.core.trainer import run_in_batches
from repro.hardware import accuracy_under_variation
from repro.runtime import (
    WorkerPool,
    Workspace,
    combine_shard_results,
    data_parallel_grads,
    parallel_map,
    resolve_workers,
    shard_slices,
)


def make_task(n=48, steps=20, channels=10, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    x = (rng.random((n, steps, channels)) < 0.2).astype(np.float64)
    y = np.arange(n) % classes
    return x, y


def make_net(sizes=(10, 14, 3), seed=0, x=None):
    net = SpikingNetwork(sizes, rng=seed)
    if x is not None:
        calibrate_firing(net, x[:16], target_rate=0.15)
    else:
        for layer in net.layers:
            layer.weight *= 6.0
    return net


# ---------------------------------------------------------------------------
# Workspace
# ---------------------------------------------------------------------------
class TestWorkspace:
    def test_release_then_reuse_returns_same_buffer(self):
        ws = Workspace()
        a = ws.empty((4, 5), np.float64)
        ws.release(a)
        b = ws.empty((4, 5), np.float64)
        assert b is a
        assert ws.hits == 1 and ws.misses == 1

    def test_shape_and_dtype_are_exact_keys(self):
        ws = Workspace()
        a = ws.empty((4, 5), np.float64)
        ws.release(a)
        assert ws.empty((5, 4), np.float64) is not a
        assert ws.empty((4, 5), np.float32) is not a

    def test_foreign_and_double_release_ignored(self):
        ws = Workspace()
        foreign = np.zeros((3, 3))
        ws.release(foreign, None)
        assert ws.idle_bytes == 0
        a = ws.empty((3, 3))
        ws.release(a)
        ws.release(a)  # second release: no duplicate pooling
        assert ws.empty((3, 3)) is a
        assert ws.empty((3, 3)) is not a

    def test_zeros(self):
        ws = Workspace()
        a = ws.empty((8,))
        a[:] = 7.0
        ws.release(a)
        b = ws.zeros((8,))
        assert b is a and np.all(b == 0.0)

    def test_eviction_cap(self):
        ws = Workspace(max_bytes=1024)
        big = [ws.empty((64,), np.float64) for _ in range(4)]  # 512 B each
        ws.release(*big)
        assert ws.idle_bytes <= 1024

    def test_eviction_queue_stays_bounded(self):
        # One queue entry per *idle* buffer: steady-state checkout/release
        # cycles must not accumulate stale entries (a long training run
        # would otherwise leak memory and evict the wrong buffers).
        ws = Workspace()
        for _ in range(100):
            a = ws.empty((8, 8))
            b = ws.empty((4, 4))
            ws.release(a, b)
        assert len(ws._fifo) == 2
        assert ws.idle_bytes == a.nbytes + b.nbytes

    def test_lent_buffers_are_kept_alive(self):
        # The strong reference prevents id-reuse corruption: a checked-out
        # buffer must never be collectable while the workspace thinks it
        # is lent.
        ws = Workspace()
        ws.empty((16,))
        assert ws.lent_count == 1
        ws.reclaim()
        assert ws.lent_count == 0


class TestWorkspaceEquivalence:
    """With-workspace results must equal fresh-allocation results bitwise,
    including across consecutive calls with differing shapes (the arena
    then serves a mix of reused and new buffers)."""

    @pytest.mark.parametrize("kind", ["adaptive", "hard_reset"])
    def test_forward_backward_across_differing_shapes(self, kind):
        net = SpikingNetwork((10, 12, 4), rng=3, neuron_kind=kind)
        for layer in net.layers:
            layer.weight *= 6.0
        rng = np.random.default_rng(4)
        shapes = [(6, 15), (9, 11), (6, 15)]   # third call reuses the first's
        batches = [(rng.random((b, t, 10)) < 0.2).astype(np.float64)
                   for b, t in shapes]
        ws = Workspace()
        for x in batches:
            out_ws, rec_ws = net.run(x, record=True, workspace=ws)
            out_ref, rec_ref = net.run(x, record=True)
            np.testing.assert_array_equal(out_ws, out_ref)
            grad_out = np.ones_like(out_ws) / out_ws.size
            res_ws = backward(net, rec_ws, grad_out, workspace=ws)
            res_ref = backward(net, rec_ref, grad_out)
            for g_ws, g_ref in zip(res_ws.weight_grads, res_ref.weight_grads):
                np.testing.assert_array_equal(g_ws, g_ref)
            np.testing.assert_array_equal(res_ws.input_grad,
                                          res_ref.input_grad)
            for lr in rec_ws.layers:
                ws.release(lr.k, lr.v, lr.spikes)
            ws.release(out_ws)
        assert ws.hits > 0  # the arena actually got reused

    def test_trainer_steady_state_reuses_buffers(self):
        x, y = make_task()
        net = make_net(x=x)
        trainer = Trainer(net, CrossEntropyRateLoss(),
                          TrainerConfig(epochs=1, batch_size=16,
                                        learning_rate=1e-2), rng=1)
        trainer.train_batch(x[:16], y[:16])
        misses_after_warmup = trainer._workspace.misses
        trainer.train_batch(x[16:32], y[16:32])
        # Steady state: the second identical-shape batch allocates nothing
        # and every buffer has been handed back.
        assert trainer._workspace.misses == misses_after_warmup
        assert trainer._workspace.lent_count == 0

    def test_backward_without_input_grad_matches(self):
        x, y = make_task(n=16)
        net = make_net(x=x)
        loss = CrossEntropyRateLoss()
        outputs, record = net.run(x, record=True)
        _, grad_out = loss.value_and_grad(outputs, y)
        full = backward(net, record, grad_out)
        lean = backward(net, record, grad_out, need_input_grad=False)
        for a, b in zip(full.weight_grads, lean.weight_grads):
            np.testing.assert_array_equal(a, b)
        assert lean.input_grad is None
        assert full.input_grad is not None


# ---------------------------------------------------------------------------
# Shard math
# ---------------------------------------------------------------------------
class TestShardHelpers:
    def test_shard_slices_cover_and_are_contiguous(self):
        for n, shards in [(10, 3), (8, 2), (5, 8), (64, 4)]:
            slices = shard_slices(n, shards)
            covered = []
            for sl in slices:
                covered.extend(range(sl.start, sl.stop))
            assert covered == list(range(n))
            sizes = [sl.stop - sl.start for sl in slices]
            assert max(sizes) - min(sizes) <= 1

    def test_combine_preserves_full_batch_semantics(self):
        # Equal shards with weight 1/2 each reconstruct the batch mean.
        g_a, g_b = np.full((2, 2), 4.0), np.full((2, 2), 8.0)
        loss, grads = combine_shard_results(
            [(1.0, 8, [g_a]), (3.0, 8, [g_b])], 16)
        assert loss == 2.0
        np.testing.assert_array_equal(grads[0], np.full((2, 2), 6.0))

    def test_resolve_workers(self, monkeypatch):
        assert resolve_workers(3) == 3
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 0
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert resolve_workers(None) == 2
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestDataParallelSerial:
    def test_two_shards_match_full_batch_to_rounding(self):
        x, y = make_task()
        net = make_net(x=x)
        loss = CrossEntropyRateLoss()
        l1, g1 = data_parallel_grads(net, loss, x, y, n_shards=1)
        l2, g2 = data_parallel_grads(net, loss, x, y, n_shards=2)
        assert l2 == pytest.approx(l1, rel=1e-12)
        for a, b in zip(g1, g2):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-13)

    def test_sharded_grads_are_reproducible_bitwise(self):
        x, y = make_task()
        net = make_net(x=x)
        loss = CrossEntropyRateLoss()
        la, ga = data_parallel_grads(net, loss, x, y, n_shards=3)
        lb, gb = data_parallel_grads(net, loss, x, y, n_shards=3)
        assert la == lb
        for a, b in zip(ga, gb):
            np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------------
# Worker pool (spawns real processes; kept tiny)
# ---------------------------------------------------------------------------
def _double(value):
    return 2 * value


def _fail_on_two(value):
    if value == 2:
        raise ValueError("boom")
    return 10 * value


def _raise_broken_pipe(value):
    raise BrokenPipeError("user-task pipe error")


def _echo(value):
    return value


class TestWorkerPool:
    def test_run_sharded_bitwise_equals_serial(self):
        x, _ = make_task()
        net = make_net(x=x)
        serial = run_in_batches(net, x, batch_size=16)
        with WorkerPool(net, workers=2) as pool:
            parallel = pool.run_sharded(x, batch_size=16)
            np.testing.assert_array_equal(serial, parallel)
            # run_in_batches(workers=...) routes through a pool too
            np.testing.assert_array_equal(
                serial, run_in_batches(net, x, batch_size=16, pool=pool))

    def test_grad_shards_bitwise_equal_serial_shards(self):
        x, y = make_task()
        net = make_net(x=x)
        loss = CrossEntropyRateLoss()
        loss_s, grads_s = data_parallel_grads(net, loss, x, y, n_shards=2)
        with WorkerPool(net, workers=2, loss=loss) as pool:
            loss_p, grads_p = data_parallel_grads(net, loss, x, y,
                                                  n_shards=2, pool=pool)
        assert loss_p == loss_s
        for a, b in zip(grads_s, grads_p):
            np.testing.assert_array_equal(a, b)

    def test_trainer_one_worker_bitwise_equals_serial(self):
        x, y = make_task()
        loss = CrossEntropyRateLoss()
        serial = Trainer(make_net(x=x), loss, TrainerConfig(
            epochs=2, batch_size=16, learning_rate=1e-2), rng=1)
        serial.fit(x, y)
        with Trainer(make_net(x=x), loss, TrainerConfig(
                epochs=2, batch_size=16, learning_rate=1e-2,
                workers=1), rng=1) as parallel:
            parallel.fit(x, y)
            for a, b in zip(serial.network.weights,
                            parallel.network.weights):
                np.testing.assert_array_equal(a, b)

    def test_trainer_two_workers_trains_equivalently(self):
        x, y = make_task()
        loss = CrossEntropyRateLoss()
        serial = Trainer(make_net(x=x), loss, TrainerConfig(
            epochs=2, batch_size=16, learning_rate=1e-2), rng=1)
        serial.fit(x, y)
        with Trainer(make_net(x=x), loss, TrainerConfig(
                epochs=2, batch_size=16, learning_rate=1e-2,
                workers=2), rng=1) as parallel:
            parallel.fit(x, y)
            for a, b in zip(serial.network.weights,
                            parallel.network.weights):
                np.testing.assert_allclose(a, b, rtol=1e-8, atol=1e-11)
            # The sharded eval path returns the identical metrics.
            assert parallel.evaluate(x, y) == serial.evaluate(x, y)

    def test_pool_serves_neuron_kind_swap(self):
        x, y = make_task()
        loss = CrossEntropyRateLoss()
        with Trainer(make_net(x=x), loss, TrainerConfig(
                epochs=1, batch_size=16, learning_rate=1e-2,
                workers=2), rng=1) as trainer:
            trainer.fit(x, y)
            hr = trainer.network.with_neuron_kind("hard_reset")
            pooled = trainer.evaluate(x, y, network=hr)
        serial = run_in_batches(hr, x, batch_size=16)
        expected = loss.metrics(serial, y)
        assert pooled == expected

    def test_large_dispatch_does_not_deadlock(self):
        # Commands and replies together far exceed the OS pipe buffers;
        # a send-everything-then-receive protocol deadlocks here (master
        # blocked in send, worker blocked in reply send).  The windowed
        # dispatch must stream through.
        payload = b"x" * 1024
        items = [(index, payload) for index in range(1000)]
        with WorkerPool(workers=2, timeout=60) as pool:
            assert pool.map(_echo, items) == items

    def test_oversized_payloads_do_not_deadlock(self):
        # Individual commands AND replies each exceed the 64 KiB pipe
        # buffer; they may only be in flight to an idle (draining) worker.
        payload = b"y" * (100 * 1024)
        items = [(index, payload) for index in range(12)]
        with WorkerPool(workers=2, timeout=60) as pool:
            assert pool.map(_echo, items) == items

    def test_windowed_staging_matches_serial(self, monkeypatch):
        # With the arena cap forced tiny, inference is staged in bounded
        # windows; chunk boundaries (and outputs) must stay identical.
        x, _ = make_task()
        net = make_net(x=x)
        serial = run_in_batches(net, x, batch_size=8)
        with WorkerPool(net, workers=2) as pool:
            monkeypatch.setattr(type(pool), "ARENA_CAP_BYTES", 1)
            np.testing.assert_array_equal(
                serial, pool.run_sharded(x, batch_size=8))

    def test_pool_survives_arena_growth(self):
        # Growing dispatch sizes replace the shm arenas (new segments);
        # workers must re-attach and prune superseded blocks without
        # disturbing results.
        rng = np.random.default_rng(5)
        net = make_net()
        with WorkerPool(net, workers=2) as pool:
            for n in (8, 40, 120, 16):
                x = (rng.random((n, 12, 10)) < 0.2).astype(np.float64)
                np.testing.assert_array_equal(
                    pool.run_sharded(x, batch_size=8),
                    run_in_batches(net, x, batch_size=8))

    def test_pool_reuse_tracks_weight_updates(self):
        # A pool handed around via pool= must compute with the master's
        # *current* weights, not the ones captured at construction.
        x, _ = make_task()
        net = make_net(x=x)
        with WorkerPool(net, workers=2) as pool:
            before = pool.run_sharded(x, batch_size=16)
            for layer in net.layers:
                layer.weight *= 0.5
            after = pool.run_sharded(x, batch_size=16)
            np.testing.assert_array_equal(
                after, run_in_batches(net, x, batch_size=16))
            assert not np.array_equal(before, after)

    def test_step_engine_float32_grads_stay_float64(self):
        # The reference backward always produces float64 gradients; the
        # pooled path must not downcast them into a float32 arena.
        x, y = make_task()
        net = make_net(x=x)
        loss = CrossEntropyRateLoss()
        kwargs = dict(mode="exact", engine="step", precision="float32")
        loss_s, grads_s = data_parallel_grads(net, loss, x, y, n_shards=2,
                                              **kwargs)
        with WorkerPool(net, workers=2, loss=loss) as pool:
            loss_p, grads_p = data_parallel_grads(net, loss, x, y,
                                                  n_shards=2, pool=pool,
                                                  **kwargs)
        assert loss_p == loss_s
        for a, b in zip(grads_s, grads_p):
            assert a.dtype == b.dtype == np.float64
            np.testing.assert_array_equal(a, b)

    def test_fig8_point_identical_for_fixed_seeds(self):
        x, y = make_task()
        net = make_net(x=x)
        serial = accuracy_under_variation(net, x, y, bits=4, variation=0.3,
                                          n_seeds=4, rng=7)
        parallel = accuracy_under_variation(net, x, y, bits=4, variation=0.3,
                                            n_seeds=4, rng=7, workers=2)
        assert serial == parallel  # mean AND std, exactly

    def test_fig8_point_windowed_staging_identical(self, monkeypatch):
        # With a tiny arena cap the eval set is staged in sample windows
        # and per-task correct counts are summed; the seed fully
        # determines each programming draw, so the result is unchanged.
        x, y = make_task()
        net = make_net(x=x)
        serial = accuracy_under_variation(net, x, y, bits=4, variation=0.3,
                                          n_seeds=3, rng=7,
                                          batch_size=16)
        with WorkerPool(net, workers=2) as pool:
            monkeypatch.setattr(type(pool), "ARENA_CAP_BYTES", 1)
            parallel = accuracy_under_variation(net, x, y, bits=4,
                                                variation=0.3, n_seeds=3,
                                                rng=7, batch_size=16,
                                                pool=pool)
        assert serial == parallel

    def test_map_and_parallel_map(self):
        with WorkerPool(workers=2) as pool:
            assert pool.map(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
            assert parallel_map(_double, [5, 6], pool=pool) == [10, 12]
        assert parallel_map(_double, [5, 6], workers=0) == [10, 12]

    def test_worker_error_propagates(self):
        x, _ = make_task()
        net = make_net(x=x)
        with WorkerPool(net, workers=1) as pool:
            with pytest.raises(RuntimeError, match="worker 0 raised"):
                pool.run_sharded(np.zeros((4, 5, 99)), batch_size=4)

    def test_task_raising_broken_pipe_is_a_worker_error(self):
        # A user task raising BrokenPipeError must be reported like any
        # other task exception — not mistaken for a dead reply pipe
        # (which would silently kill the worker and degrade the pool).
        from repro.runtime import WorkerError

        with WorkerPool(workers=1) as pool:
            with pytest.raises(WorkerError, match="user-task pipe error"):
                pool.map(_raise_broken_pipe, [1])
            assert pool.map(_double, [7]) == [14]

    def test_pool_survives_worker_error_without_desync(self):
        # A failed dispatch must drain the in-flight replies; otherwise a
        # later dispatch reads the previous dispatch's replies as its own
        # and silently returns misattributed results.
        with WorkerPool(workers=2) as pool:
            with pytest.raises(RuntimeError, match="worker"):
                pool.map(_fail_on_two, [1, 2, 3, 4, 5, 6])
            assert pool.map(_double, [10, 20, 30, 40]) == [20, 40, 60, 80]

    def test_grad_dispatch_with_single_shard_uses_the_pool(self, monkeypatch):
        # workers=1 documents "the serial gradients, just in another
        # process" — the single shard must actually reach the worker.
        x, y = make_task()
        net = make_net(x=x)
        loss = CrossEntropyRateLoss()
        loss_s, grads_s = data_parallel_grads(net, loss, x, y, n_shards=1)
        with WorkerPool(net, workers=1, loss=loss) as pool:
            # Break the master-side fallback: a result can now only come
            # from the worker process (which holds its own module copy).
            import repro.runtime.parallel as parallel_module

            def boom(*args, **kwargs):
                raise AssertionError("shard computed in master")

            monkeypatch.setattr(parallel_module, "shard_grads", boom)
            loss_p, grads_p = data_parallel_grads(net, loss, x, y,
                                                  n_shards=1, pool=pool)
            assert loss_p == loss_s
            for a, b in zip(grads_s, grads_p):
                np.testing.assert_array_equal(a, b)

    def test_close_is_idempotent_and_rejects_use(self):
        pool = WorkerPool(workers=1)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(_double, [1])

    def test_dead_worker_heals_and_close_stays_quiet(self):
        # A worker killed out-of-band no longer dooms the pool: the
        # dispatch respawns it, requeues its shards, and returns the
        # fault-free results.  close() afterwards must neither raise nor
        # warn — it is the path __del__ and the atexit hook take, where
        # any exception becomes stderr noise the user cannot act on.
        import warnings

        from repro.runtime import RestartPolicy

        pool = WorkerPool(workers=2,
                          restart_policy=RestartPolicy(backoff_s=0.01))
        pool._procs[0].kill()
        pool._procs[0].join()
        assert pool.map(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
        assert pool.stats["restarts"] == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            pool.close()
            pool.close()
        del pool  # __del__ on the closed pool must also stay silent

    def test_interpreter_exit_with_busy_pool_is_quiet(self):
        # A daemon thread frozen mid-dispatch keeps the pool referenced
        # at interpreter exit, so __del__ alone never runs; the atexit
        # hook must still close it, or the resource tracker prints a
        # "leaked shared_memory objects" warning and workers spray
        # BrokenPipeError tracebacks.
        import subprocess
        import sys
        import textwrap

        code = textwrap.dedent("""
            import threading, time
            import numpy as np
            from repro import SpikingNetwork, WorkerPool

            net = SpikingNetwork((10, 8, 3), rng=0)
            pool = WorkerPool(net, workers=2)
            thread = threading.Thread(
                target=lambda: pool.map(time.sleep, [0.4] * 4))
            thread.daemon = True
            thread.start()
            time.sleep(0.1)
            print("exiting busy")   # exit with the dispatch in flight
        """)
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            timeout=120,
            env={**__import__("os").environ, "PYTHONPATH": "src"},
        )
        assert result.returncode == 0, result.stderr
        assert "exiting busy" in result.stdout
        assert result.stderr.strip() == "", result.stderr


# ---------------------------------------------------------------------------
# run_in_batches parameter unification
# ---------------------------------------------------------------------------
class TestRunInBatchesUnified:
    def test_precision_and_legacy_dtype_agree(self):
        x, _ = make_task(n=10)
        net = make_net(x=x)
        via_precision = run_in_batches(net, x, 4, precision="float32")
        via_dtype = run_in_batches(net, x, 4, dtype=np.float32)
        assert via_precision.dtype == np.float32
        np.testing.assert_array_equal(via_precision, via_dtype)

    def test_precision_wins_over_dtype(self):
        x, _ = make_task(n=8)
        net = make_net(x=x)
        out = run_in_batches(net, x, 4, dtype=np.float32,
                             precision="float64")
        assert out.dtype == np.float64

    def test_workspace_serial_path_identical(self):
        x, _ = make_task(n=12)
        net = make_net(x=x)
        ws = Workspace()
        np.testing.assert_array_equal(
            run_in_batches(net, x, 5),
            run_in_batches(net, x, 5, workspace=ws))
