"""Exception hierarchy for the :mod:`repro` library.

All errors raised intentionally by library code derive from
:class:`ReproError`, so a downstream user can catch the whole family with
one ``except`` clause while still letting genuine programming errors
(``TypeError`` from misuse of numpy, etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """A configuration object failed validation."""


class ShapeError(ReproError):
    """An array argument had an incompatible shape."""


class StateError(ReproError):
    """A stateful object was used before its state was initialised."""


class CircuitError(ReproError):
    """A netlist is malformed or a circuit simulation failed to converge."""


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""


class SerializationError(ReproError):
    """A model or dataset artifact could not be saved or restored."""


class ExperimentError(ReproError):
    """An experiment id is unknown or an experiment failed to run."""


class CapacityError(ReproError):
    """A bounded queue or resource refused new work (backpressure).

    Raised by the serving layer when its admission queue is full; the
    caller is expected to retry later or shed the request — the server
    never grows its queue without bound.
    """


def check_shape(array, expected: tuple, name: str) -> None:
    """Raise :class:`ShapeError` unless ``array.shape == expected``.

    ``expected`` may contain ``None`` entries acting as wildcards, e.g.
    ``(None, 700)`` accepts any batch dimension.

    Parameters
    ----------
    array:
        Any object with a ``.shape`` attribute.
    expected:
        Tuple of ints and/or ``None`` wildcards.
    name:
        Human-readable argument name used in the error message.
    """
    shape = tuple(array.shape)
    if len(shape) != len(expected):
        raise ShapeError(
            f"{name}: expected {len(expected)} dimensions {expected}, "
            f"got shape {shape}"
        )
    for axis, (got, want) in enumerate(zip(shape, expected)):
        if want is not None and got != want:
            raise ShapeError(
                f"{name}: axis {axis} expected {want}, got {got} "
                f"(full shape {shape}, expected {expected})"
            )
