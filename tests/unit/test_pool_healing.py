"""Self-healing WorkerPool tests under the seeded fault plane.

The recovery contract (docs/robustness.md): a transport-level failure —
a worker that crashed, hangs, or violates the reply protocol — is
healed by the supervisor (respawn, re-stage, requeue the in-flight
shards) and the dispatch's results are bitwise-identical to a
fault-free pool's.  A :class:`WorkerError` (the *task* raised) stays
fail-fast and leaves the pool usable; transport healing is bounded by
the :class:`RestartPolicy`, after which the pool closes itself and
raises :class:`PoolTransportError`.
"""

import signal
import threading
import time

import numpy as np
import pytest

from repro.common import faults
from repro.common.faults import FaultPlan, FaultRule
from repro.core import CrossEntropyRateLoss, SpikingNetwork
from repro.core.calibration import calibrate_firing
from repro.core.trainer import run_in_batches
from repro.runtime import RestartPolicy, WorkerPool, shard_slices
from repro.runtime.pool import PoolTransportError, WorkerError


def make_task(n=48, steps=20, channels=10, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    x = (rng.random((n, steps, channels)) < 0.2).astype(np.float64)
    y = np.arange(n) % classes
    return x, y


def make_net(sizes=(10, 14, 3), seed=0, x=None):
    net = SpikingNetwork(sizes, rng=seed)
    if x is not None:
        calibrate_firing(net, x[:16], target_rate=0.15)
    else:
        for layer in net.layers:
            layer.weight *= 6.0
    return net


@pytest.fixture(autouse=True)
def no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


def _double(value):
    return value * 2


def _ignore_sigterm_then_sleep(seconds):
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(seconds)
    return seconds


def fast_policy(**kwargs):
    kwargs.setdefault("backoff_s", 0.01)
    return RestartPolicy(**kwargs)


def faulty_pool(rules, seed=7, **kwargs):
    """A pool whose workers run under a seeded fault plan.

    The plan is snapshotted into the worker spec at construction, so it
    only needs to be active while the pool is built.
    """
    kwargs.setdefault("restart_policy", fast_policy())
    with faults.active(FaultPlan(rules, seed=seed)):
        return WorkerPool(**kwargs)


class TestTransportHealing:
    def test_crash_heals_run_sharded_bitwise(self):
        x, _ = make_task()
        net = make_net(x=x)
        serial = run_in_batches(net, x, batch_size=16)
        rule = FaultRule("pool.worker.crash", nth=(1,),
                         where={"worker": 0, "generation": 0})
        pool = faulty_pool((rule,), network=net, workers=2)
        try:
            outputs = pool.run_sharded(x, batch_size=16).copy()
            assert pool.stats["restarts"] == 1
            assert pool.stats["retries"] >= 1
        finally:
            pool.close()
        np.testing.assert_array_equal(outputs, serial)

    def test_hang_heals_under_per_call_timeout(self):
        rule = FaultRule("pool.worker.hang", nth=(1,),
                         where={"worker": 0, "generation": 0}, payload=60.0)
        pool = faulty_pool((rule,), workers=2)
        try:
            assert pool.map(_double, [1, 2, 3, 4], timeout=1.0) \
                == [2, 4, 6, 8]
            assert pool.stats["restarts"] == 1
        finally:
            pool.close()

    def test_corrupt_reply_heals_grad_shards_bitwise(self):
        x, y = make_task()
        net = make_net(x=x)
        loss = CrossEntropyRateLoss()
        slices = shard_slices(len(x), 2)

        def snapshot(shards):
            # Gradients are views into the pool's shared-memory arena;
            # copy them out so they survive close().
            return [(lv, n, [g.copy() for g in grads])
                    for lv, n, grads in shards]

        with WorkerPool(net, workers=2, loss=loss) as clean:
            reference = snapshot(clean.grad_shards(x, y, slices))
        rule = FaultRule("pool.reply.corrupt", nth=(1,),
                         where={"worker": 0, "generation": 0})
        pool = faulty_pool((rule,), network=net, workers=2, loss=loss)
        try:
            shards = snapshot(pool.grad_shards(x, y, slices))
            assert pool.stats["restarts"] == 1
        finally:
            pool.close()
        assert len(shards) == len(reference)
        for (lv, n, grads), (rlv, rn, rgrads) in zip(shards, reference):
            assert lv == rlv and n == rn
            for g, r in zip(grads, rgrads):
                np.testing.assert_array_equal(g, r)

    def test_retries_exhausted_closes_pool_and_raises(self):
        # Unscoped nth=(1,): every respawned generation gets a fresh
        # plan copy and crashes on its first command too, so healing
        # can never converge and the policy bound must trip.
        rule = FaultRule("pool.worker.crash", nth=(1,))
        pool = faulty_pool(
            (rule,), workers=1,
            restart_policy=fast_policy(max_restarts=2))
        with pytest.raises(PoolTransportError):
            pool.map(_double, [1, 2])
        assert pool.stats["restarts"] == 2
        with pytest.raises(RuntimeError, match="closed"):
            pool.map(_double, [1])


class TestWorkerErrorStaysFailFast:
    def test_worker_error_mid_run_sharded_leaves_pool_usable(self):
        # Regression pin: a *task* failure (here a chunk whose channel
        # count does not match the network) must raise WorkerError
        # without healing, desyncing, or poisoning the pool — the very
        # next dispatch is bitwise-correct.
        x, _ = make_task()
        net = make_net(x=x)
        serial = run_in_batches(net, x, batch_size=16)
        bad = np.zeros((8, 20, x.shape[2] + 2))
        with WorkerPool(net, workers=2) as pool:
            # Both workers get a shard of the bad input; which one's
            # error surfaces first is a race, so match either.
            with pytest.raises(WorkerError, match=r"worker \d+ raised"):
                pool.run_sharded(bad, batch_size=4)
            assert pool.stats["restarts"] == 0
            np.testing.assert_array_equal(
                pool.run_sharded(x, batch_size=16), serial)


class TestCloseEscalation:
    def test_close_kills_sigterm_ignoring_worker(self):
        pool = WorkerPool(workers=1)
        errors = []

        def stuck_dispatch():
            try:
                pool.map(_ignore_sigterm_then_sleep, [60.0])
            except Exception as exc:   # the pool closes under us
                errors.append(exc)

        thread = threading.Thread(target=stuck_dispatch, daemon=True)
        thread.start()
        time.sleep(0.5)   # worker is now sleeping with SIGTERM ignored
        procs = list(pool._procs)
        assert any(proc.is_alive() for proc in procs)
        pool._CLOSE_GRACE_S = 0.2
        pool.close()
        for proc in procs:
            assert not proc.is_alive()

    def test_atexit_after_crash_heal_is_quiet(self):
        # A pool that healed a crashed worker mid-life and is then
        # abandoned (no close()) must still shut down silently at
        # interpreter exit: no resource_tracker "leaked shared_memory"
        # warnings, no worker tracebacks on stderr.
        import os
        import subprocess
        import sys
        import textwrap

        code = textwrap.dedent("""
            from repro import WorkerPool
            from repro.common import faults

            faults.install(faults.FaultPlan((
                faults.FaultRule("pool.worker.crash", nth=(1,),
                                 where={"worker": 0, "generation": 0}),
            ), seed=7))
            pool = WorkerPool(workers=2)
            assert pool.map(abs, [-1, 2, -3, 4]) == [1, 2, 3, 4]
            print("healed", pool.stats["restarts"])
            # exit without close(): the atexit hook owns the cleanup
        """)
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            timeout=120, env={**os.environ, "PYTHONPATH": "src"},
        )
        assert result.returncode == 0, result.stderr
        assert "healed 1" in result.stdout
        assert result.stderr.strip() == "", result.stderr
