"""Partitioning large weight matrices onto fixed-size crossbar tiles.

A physical RRAM macro has a bounded array size (wire capacitance, sense
margin and sneak currents limit practical arrays to the order of
128x128).  The paper's MLP layers are much larger (e.g. 2312x500 for
N-MNIST), so a real deployment must *tile*: split the weight matrix into
array-sized blocks, program one crossbar per block, drive row-blocks of
the input into each tile, and sum partial bit-line results across tile
columns digitally (or with current mirrors).

:class:`TiledCrossbar` implements exactly that on top of
:class:`~repro.hardware.crossbar.DifferentialCrossbar`, preserving its
quantization and process-variation modelling per tile.  Summation across
tiles is exact (Kirchhoff / digital accumulation), so an ideal tiled
array must agree with an ideal monolithic one — property-tested in
``tests/unit/test_hw_tiling.py``.
"""

from __future__ import annotations

import math

import numpy as np

from ..common.errors import ShapeError
from ..common.rng import RandomState, as_random_state
from .crossbar import DifferentialCrossbar
from .devices import RRAMDeviceConfig

__all__ = ["TiledCrossbar"]


class TiledCrossbar:
    """A weight matrix split across fixed-size differential crossbars.

    Parameters
    ----------
    weights:
        Full weight matrix (n_out, n_in).
    tile_rows, tile_cols:
        Physical array size: ``tile_rows`` word-lines (inputs) and
        ``tile_cols`` bit-lines (outputs) per tile.
    device:
        RRAM device model applied to every tile.
    rng:
        Randomness; each tile draws from an independent child stream (as
        separate macros would).
    """

    def __init__(self, weights: np.ndarray, tile_rows: int = 128,
                 tile_cols: int = 128,
                 device: RRAMDeviceConfig | None = None,
                 rng: RandomState | int | None = None):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ShapeError(f"weights must be 2-D, got {weights.shape}")
        if tile_rows <= 0 or tile_cols <= 0:
            raise ValueError("tile dimensions must be positive")
        self.weights = weights
        self.tile_rows = int(tile_rows)
        self.tile_cols = int(tile_cols)
        self.device = device or RRAMDeviceConfig()
        root = as_random_state(rng)

        n_out, n_in = weights.shape
        self.n_row_tiles = math.ceil(n_in / tile_rows)
        self.n_col_tiles = math.ceil(n_out / tile_cols)
        self.tiles: list[list[DifferentialCrossbar]] = []
        for col_tile in range(self.n_col_tiles):
            row: list[DifferentialCrossbar] = []
            out_lo = col_tile * tile_cols
            out_hi = min(out_lo + tile_cols, n_out)
            for row_tile in range(self.n_row_tiles):
                in_lo = row_tile * tile_rows
                in_hi = min(in_lo + tile_rows, n_in)
                block = weights[out_lo:out_hi, in_lo:in_hi]
                row.append(DifferentialCrossbar(
                    block, self.device,
                    rng=root.child(f"tile-{col_tile}-{row_tile}"),
                ))
            self.tiles.append(row)

    @property
    def n_tiles(self) -> int:
        """Total physical arrays used (2 devices per weight per tile)."""
        return self.n_row_tiles * self.n_col_tiles

    def matvec(self, activations: np.ndarray) -> np.ndarray:
        """Tiled product: per-tile analog dot products + cross-tile sums.

        ``activations`` is (n_in,) or (batch, n_in); returns the same
        leading shape with n_out columns, in trained-weight units.
        """
        activations = np.asarray(activations, dtype=np.float64)
        if activations.shape[-1] != self.weights.shape[1]:
            raise ShapeError(
                f"expected {self.weights.shape[1]} inputs, "
                f"got {activations.shape[-1]}"
            )
        squeeze = activations.ndim == 1
        batch = np.atleast_2d(activations)
        n_out = self.weights.shape[0]
        out = np.zeros((batch.shape[0], n_out))
        for col_tile, row in enumerate(self.tiles):
            out_lo = col_tile * self.tile_cols
            out_hi = min(out_lo + self.tile_cols, n_out)
            acc = np.zeros((batch.shape[0], out_hi - out_lo))
            for row_tile, tile in enumerate(row):
                in_lo = row_tile * self.tile_rows
                in_hi = min(in_lo + self.tile_rows, self.weights.shape[1])
                acc += tile.matvec(batch[:, in_lo:in_hi])
            out[:, out_lo:out_hi] = acc
        return out[0] if squeeze else out

    def effective_weights(self) -> np.ndarray:
        """Achieved full weight matrix stitched back from all tiles."""
        n_out, n_in = self.weights.shape
        stitched = np.zeros((n_out, n_in))
        for col_tile, row in enumerate(self.tiles):
            out_lo = col_tile * self.tile_cols
            for row_tile, tile in enumerate(row):
                in_lo = row_tile * self.tile_rows
                block = tile.effective_weights()
                stitched[out_lo:out_lo + block.shape[0],
                         in_lo:in_lo + block.shape[1]] = block
        return stitched

    def utilisation(self) -> float:
        """Fraction of allocated device pairs holding real weights."""
        allocated = self.n_tiles * self.tile_rows * self.tile_cols
        return float(self.weights.size) / float(allocated)

    def __repr__(self) -> str:
        return (f"TiledCrossbar({self.weights.shape[0]}x"
                f"{self.weights.shape[1]} on {self.n_col_tiles}x"
                f"{self.n_row_tiles} tiles of {self.tile_cols}x"
                f"{self.tile_rows})")
