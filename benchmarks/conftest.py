"""Shared benchmark plumbing.

Each benchmark file regenerates one table/figure of the paper via the
experiment registry, prints the paper-style report, and asserts the
*shape* of the result (who wins, direction and rough size of gaps) — not
absolute numbers, since the default profile runs reduced-scale synthetic
substitutes on CPU.

Experiment runners are executed exactly once per session and cached, so
the timing measured by pytest-benchmark is the full experiment cost while
assertions across files (e.g. fig8 reusing the N-MNIST model) stay cheap.
"""

import pytest

from repro.experiments import run_experiment

_RESULTS: dict = {}


def run_once(experiment_id: str):
    """Run an experiment once per pytest session; cache the result."""
    if experiment_id not in _RESULTS:
        _RESULTS[experiment_id] = run_experiment(experiment_id)
    return _RESULTS[experiment_id]


@pytest.fixture
def experiment(request):
    """Parametrised access to a cached experiment result."""
    return run_once(request.param)


def bench_experiment(benchmark, experiment_id: str):
    """Benchmark an experiment (single round) and print its report."""
    result = benchmark.pedantic(
        lambda: run_once(experiment_id), rounds=1, iterations=1,
    )
    print()
    print(result.render())
    return result
