"""Unit tests for the fault-injection plane (repro.common.faults).

The plan is the robustness suite's foundation: these tests pin that
rules validate eagerly, that triggers are a pure function of per-site
visit order and the plan seed, and that plan state never leaks across
processes (fresh/pickle reset) or installs (active() scoping).
"""
# repro: disable-file=fault-sites — these tests exercise the plan
# machinery itself with synthetic site names ("a", "site", ...) that
# deliberately live outside KNOWN_SITES.

import pickle

import pytest

from repro.common import faults
from repro.common.faults import (
    KNOWN_SITES,
    FaultError,
    FaultPlan,
    FaultRule,
)


@pytest.fixture(autouse=True)
def no_leaked_plan():
    """Every test starts and ends with no process-global plan."""
    faults.deactivate()
    yield
    faults.deactivate()


class TestFaultRule:
    def test_empty_site_rejected(self):
        with pytest.raises(ValueError, match="non-empty site"):
            FaultRule("", nth=(1,))

    def test_never_firing_rule_rejected(self):
        with pytest.raises(ValueError, match="can never fire"):
            FaultRule("pool.worker.crash")

    def test_nth_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultRule("pool.worker.crash", nth=(0,))

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule("pool.worker.crash", probability=1.5)

    def test_times_floor(self):
        with pytest.raises(ValueError, match="times"):
            FaultRule("pool.worker.crash", nth=(1,), times=0)

    def test_nth_coerces_and_sorts(self):
        assert FaultRule("s", nth=3).nth == (3,)
        assert FaultRule("s", nth=(5, 2)).nth == (2, 5)

    def test_where_dict_becomes_sorted_items(self):
        rule = FaultRule("s", nth=(1,), where={"worker": 1, "generation": 0})
        assert rule.where == (("generation", 0), ("worker", 1))
        assert rule.matches_context({"worker": 1, "generation": 0,
                                     "extra": "ignored"})
        assert not rule.matches_context({"worker": 2, "generation": 0})
        assert not rule.matches_context({})

    def test_rules_stay_hashable(self):
        rule = FaultRule("s", nth=(1,), where={"worker": 0})
        assert rule in {rule}


class TestFaultPlan:
    def test_nth_fires_on_exact_visits(self):
        plan = FaultPlan((FaultRule("site", nth=(2, 4)),))
        fired = [plan.hit("site") is not None for _ in range(5)]
        assert fired == [False, True, False, True, False]
        assert plan.visits["site"] == 5
        assert plan.injected["site"] == 2

    def test_sites_count_independently(self):
        plan = FaultPlan((FaultRule("a", nth=(2,)),))
        assert plan.hit("b") is None          # visit of another site
        assert plan.hit("a") is None          # a's first visit
        assert plan.hit("a") is not None      # a's second visit

    def test_probability_schedule_replays_with_seed(self):
        rules = (FaultRule("site", probability=0.3),)
        one = FaultPlan(rules, seed=11)
        two = FaultPlan(rules, seed=11)
        other = FaultPlan(rules, seed=12)
        seq_one = [one.hit("site") is not None for _ in range(200)]
        seq_two = [two.hit("site") is not None for _ in range(200)]
        seq_other = [other.hit("site") is not None for _ in range(200)]
        assert seq_one == seq_two
        assert any(seq_one) and not all(seq_one)
        assert seq_one != seq_other

    def test_times_caps_firings(self):
        plan = FaultPlan((FaultRule("site", nth=(1, 2, 3), times=2),))
        fired = [plan.hit("site") is not None for _ in range(3)]
        assert fired == [True, True, False]
        assert plan.injected["site"] == 2

    def test_where_filters_on_install_context(self):
        plan = FaultPlan((FaultRule("site", nth=(1,),
                                    where={"worker": 0}),))
        with faults.active(plan, worker=1):
            assert not faults.should_fire("site")
        plan2 = plan.fresh()
        with faults.active(plan2, worker=0):
            assert faults.should_fire("site")

    def test_fresh_and_pickle_reset_state(self):
        plan = FaultPlan((FaultRule("site", nth=(1,)),), seed=3)
        assert plan.hit("site") is not None
        assert plan.visits["site"] == 1
        for copy in (plan.fresh(), pickle.loads(pickle.dumps(plan))):
            assert copy.seed == 3
            assert copy.rules == plan.rules
            assert copy.visits["site"] == 0
            assert copy.hit("site") is not None  # counts from zero again

    def test_dict_rules_accepted(self):
        plan = FaultPlan(({"site": "site", "nth": (1,)},))
        assert plan.hit("site") is not None
        with pytest.raises(TypeError):
            FaultPlan((object(),))


class TestGlobalInstall:
    def test_sites_are_noops_without_a_plan(self):
        assert faults.hit("pool.worker.crash") is None
        assert not faults.should_fire("pool.worker.crash")
        faults.maybe_raise("pool.worker.crash")  # must not raise

    def test_maybe_raise_names_the_site(self):
        plan = FaultPlan((FaultRule("serve.tick.raise", nth=(1,)),))
        with faults.active(plan):
            with pytest.raises(FaultError, match="serve.tick.raise"):
                faults.maybe_raise("serve.tick.raise")

    def test_active_restores_previous_plan(self):
        outer = FaultPlan((FaultRule("a", nth=(1,)),))
        inner = FaultPlan((FaultRule("b", nth=(1,)),))
        with faults.active(outer):
            with faults.active(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_known_sites_catalogued(self):
        assert "pool.worker.crash" in KNOWN_SITES
        assert "serve.request.raise" in KNOWN_SITES
        assert len(set(KNOWN_SITES)) == len(KNOWN_SITES)
