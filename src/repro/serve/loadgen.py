"""Synthetic open-loop load generation and serving metrics.

:func:`open_loop` drives a :class:`~repro.serve.server.ModelServer` the
way a fleet of independent clients would: request arrival times are drawn
from a Poisson process at a configured offered rate and do **not** wait
for earlier responses (open loop — the honest way to measure a server,
cf. closed-loop generators that self-throttle and hide queueing).

Time is hybrid: arrivals advance a virtual clock along the precomputed
schedule, while each tick advances it by the tick's *measured* wall-clock
compute.  Latency therefore contains everything a real client would see —
queueing delay, the coalescing wait, and compute — while the schedule
stays exactly reproducible for a given seed.  On an otherwise idle
machine the numbers match a realtime run; the virtual clock just removes
sleep time and scheduler jitter from the measurement.

The resulting :class:`ServingReport` carries the acceptance metrics of
the serving layer: ``throughput_rps`` and p50/p95/p99 latency
(``make bench-serving`` -> ``BENCH_serving.json``).
"""

from __future__ import annotations

import dataclasses
import math
import time
from pathlib import Path

import numpy as np

from ..common import faults as _faults
from ..common.errors import CapacityError, ShapeError, StateError
from ..common.rng import RandomState, as_random_state

__all__ = ["ServingReport", "open_loop"]


@dataclasses.dataclass
class ServingReport:
    """Aggregate metrics of one open-loop serving run."""

    offered_rps: float
    duration_s: float
    submitted: int
    completed: int
    rejected: int
    ticks: int
    throughput_rps: float
    mean_batch: float
    steps_per_s: float
    latency_ms: dict  # p50 / p95 / p99 / mean / max
    #: Mean per-chunk ideal-vs-hardware output divergence (shadow-mode
    #: servers only; ``None`` otherwise).
    divergence: float | None = None
    #: Robustness metrics — the zero/1.0 defaults describe a clean run,
    #: so every serving report carries the same shape whether or not a
    #: fault plan was active (see docs/robustness.md).
    faults_injected: int = 0
    requests_retried: int = 0
    requests_expired: int = 0
    requests_failed: int = 0
    #: p99 arrival-to-answer latency of the *retried* requests only —
    #: what recovery costs the requests that needed it.  ``None`` when
    #: nothing was retried.
    recovery_p99_ms: float | None = None
    #: completed / (completed + failed + expired).  Queue-full
    #: rejections are back-pressure, not unavailability, and are
    #: excluded (reported separately as ``rejected``).
    availability: float = 1.0
    #: p95 of per-chunk queue wait (submit to serving tick, virtual
    #: clock, ms) — from the server's ``serve.queue_wait_ms`` histogram,
    #: windowed to this run.  ``None`` when nothing was batched.
    queue_wait_p95_ms: float | None = None
    #: p95 of measured per-tick compute (the load generator's ``timer``,
    #: ms).  ``None`` when no tick completed anything.
    tick_compute_p95_ms: float | None = None
    #: ``WorkerPool.stats`` snapshot of the deployment's pool (restarts,
    #: retries, dispatches, timeouts, per-worker respawns); ``None``
    #: when the served path ran without one.
    pool_stats: dict | None = None

    @classmethod
    def from_run(cls, offered_rps: float, duration_s: float,
                 latencies_s: list[float], rejected: int,
                 ticks: int, steps: int,
                 divergence: float | None = None,
                 expired: int = 0, failed: int = 0,
                 retried_latencies_s: list[float] | None = None,
                 faults_injected: int = 0,
                 queue_wait_p95_ms: float | None = None,
                 tick_compute_p95_ms: float | None = None,
                 pool_stats: dict | None = None) -> "ServingReport":
        completed = len(latencies_s)
        # The virtual clock runs on numpy scalars (np.cumsum arrivals);
        # coerce to builtin floats so downstream renderers (the run
        # table's repr-based CSV cells) never see np.float64.
        duration_s = float(duration_s)
        duration = max(duration_s, 1e-12)
        if completed:
            ms = 1e3 * np.asarray(latencies_s)
            latency = {
                "p50": round(float(np.percentile(ms, 50)), 3),
                "p95": round(float(np.percentile(ms, 95)), 3),
                "p99": round(float(np.percentile(ms, 99)), 3),
                "mean": round(float(ms.mean()), 3),
                "max": round(float(ms.max()), 3),
            }
        else:
            # Nothing completed (total rejection): JSON null, not a fake
            # 0 ms that would read as instant service in the trajectory.
            latency = {key: None for key in ("p50", "p95", "p99", "mean",
                                             "max")}
        retried = list(retried_latencies_s or [])
        recovery_p99 = None
        if retried:
            recovery_p99 = round(float(np.percentile(
                1e3 * np.asarray(retried), 99)), 3)
        resolved = completed + int(failed) + int(expired)
        return cls(
            offered_rps=round(float(offered_rps), 3),
            duration_s=round(duration_s, 6),
            submitted=completed + rejected + int(failed) + int(expired),
            completed=completed,
            rejected=rejected,
            ticks=ticks,
            throughput_rps=round(completed / duration, 3),
            mean_batch=round(completed / ticks, 3) if ticks else 0.0,
            steps_per_s=round(float(steps) / duration, 1),
            latency_ms=latency,
            divergence=(None if divergence is None
                        else round(float(divergence), 6)),
            faults_injected=int(faults_injected),
            requests_retried=len(retried),
            requests_expired=int(expired),
            requests_failed=int(failed),
            recovery_p99_ms=recovery_p99,
            availability=(round(completed / resolved, 6) if resolved
                          else 1.0),
            queue_wait_p95_ms=(None if queue_wait_p95_ms is None
                               else round(float(queue_wait_p95_ms), 3)),
            tick_compute_p95_ms=(None if tick_compute_p95_ms is None
                                 else round(float(tick_compute_p95_ms), 3)),
            pool_stats=pool_stats,
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        lat = self.latency_ms

        def ms(key: str) -> str:
            # Total-rejection reports carry None latencies by design.
            return "    n/a" if lat[key] is None else f"{lat[key]:7.2f}"

        return (
            f"offered {self.offered_rps:8.1f} rps | served "
            f"{self.throughput_rps:8.1f} rps | rejected {self.rejected:4d} | "
            f"batch {self.mean_batch:5.2f} | latency ms "
            f"p50 {ms('p50')}  p95 {ms('p95')}  p99 {ms('p99')}"
        )


def open_loop(server, *, sessions: int = 16, requests: int = 200,
              chunk_steps: int = 10, rate_rps: float = 200.0,
              spike_density: float = 0.03,
              rng: RandomState | int | None = 0,
              workload=None,
              timer=time.perf_counter, pool=None,
              export_dir=None) -> ServingReport:
    """Drive ``server`` with a Poisson open-loop arrival process.

    Parameters
    ----------
    server:
        A :class:`~repro.serve.server.ModelServer` (fresh stats are not
        required; the report uses only this run's tickets).
    sessions:
        Concurrent client streams; arrivals are assigned round-robin so
        every session receives an in-order subsequence of chunks.
    requests:
        Total chunks offered (pregenerated outside the timed loop).
    chunk_steps:
        Time steps per chunk.
    rate_rps:
        Offered arrival rate (chunks/second) of the Poisson process.
    spike_density:
        Bernoulli spike probability of the synthetic chunks (ignored
        when ``workload`` is given).
    workload:
        What the request streams carry: ``None`` keeps the legacy
        synthetic Bernoulli chunks; otherwise a
        :class:`~repro.serve.workloads.Workload` instance or name
        (``"speech"``, ``"dvs"``, ``"glyph"``, ``"speech+synthetic"``,
        ...) whose channel width must match the served network's input
        layer.
    timer:
        Clock used to measure per-tick compute (seconds, monotonic).
        The default is real wall time; the scenario harness injects a
        deterministic fake in its reproducibility tests.  Each completed
        tick's measurement is also observed into the server's
        ``serve.tick_compute_ms`` histogram, and the run's p95 lands in
        the report.
    pool:
        Optional :class:`~repro.runtime.pool.WorkerPool` backing the
        deployment; its ``stats`` snapshot is attached to the report
        (``pool_stats``) after the run.
    export_dir:
        Optional directory to export telemetry artifacts into after the
        run: ``serving.prom`` (the server registry's Prometheus text
        snapshot) always, plus ``serving.trace.jsonl`` when the server
        carries a telemetry bundle (see :mod:`repro.obs`).
    """
    rng = as_random_state(rng)
    n_in = server.network.sizes[0]
    if workload is not None:
        from .workloads import make_workload

        workload = make_workload(workload, channels=None)
        if workload.channels != n_in:
            raise ShapeError(
                f"workload {workload.name!r} emits {workload.channels} "
                f"channels but the served network expects {n_in}")
    session_ids = [server.open_session(now=0.0) for _ in range(sessions)]
    gaps = -np.log(np.clip(rng.random(requests), 1e-12, None)) / rate_rps
    arrivals = np.cumsum(gaps)
    if workload is None:
        chunks = [
            (rng.random((chunk_steps, n_in))
             < spike_density).astype(np.float64)
            for _ in range(requests)
        ]
    else:
        chunks = [workload.sample(chunk_steps, rng)
                  for _ in range(requests)]

    outstanding: list = []
    latencies: list[float] = []
    retried_latencies: list[float] = []
    rejected = 0
    expired = 0
    failed = 0
    ticks = 0
    steps_served = 0
    now = 0.0
    index = 0
    plan = _faults.active_plan()
    injected_before = sum(plan.injected.values()) if plan else 0
    # Window the shared histograms to this run: the server instruments
    # outlive a single open_loop call (and a PoolCache'd server may host
    # several), so percentiles read only the samples added from here on.
    queue_wait = server.metrics.histogram("serve.queue_wait_ms")
    tick_compute = server.metrics.histogram(
        "serve.tick_compute_ms",
        help="measured wall-clock compute per completed tick (ms)")
    queue_wait_start = queue_wait.count
    tick_compute_start = tick_compute.count

    def settle(after: float, completed: int) -> None:
        """Resolve finished tickets against the post-compute time."""
        nonlocal steps_served, expired, failed
        still = []
        for ticket in outstanding:
            if not ticket.done:
                still.append(ticket)
            elif ticket.ok:
                if completed:
                    # Re-stamp completion at the post-compute virtual
                    # time (the server stamped the pre-compute instant).
                    ticket.completed_at = after
                latencies.append(ticket.latency)
                if ticket.retried:
                    retried_latencies.append(ticket.latency)
                steps_served += ticket.outputs.shape[0]
            elif ticket.expired:
                expired += 1
            else:
                failed += 1
        outstanding[:] = still

    def run_tick(at: float) -> float:
        """Run one due tick; advance the virtual clock by measured cost."""
        nonlocal ticks
        start = timer()
        completed = server.poll(now=at)
        elapsed = timer() - start
        after = at + elapsed
        if completed:
            ticks += 1
            tick_compute.observe(elapsed * 1e3)
        # Scan even on completed == 0: a poll may resolve tickets only
        # by shedding expired requests or failing poisoned ones.
        settle(after, completed)
        return after

    def admit(position: int) -> None:
        nonlocal rejected
        arrival = float(arrivals[position])
        slot = position % sessions
        try:
            outstanding.append(
                server.submit(session_ids[slot], chunks[position],
                              now=arrival))
        except CapacityError:
            rejected += 1
        except StateError:
            # The session was reaped while this client was idle: a real
            # client reconnects — open a fresh stream and resubmit.
            session_ids[slot] = server.open_session(now=arrival)
            try:
                outstanding.append(
                    server.submit(session_ids[slot], chunks[position],
                                  now=arrival))
            except CapacityError:
                rejected += 1

    while index < requests or outstanding:
        # Admit everything that has arrived by ``now`` — arrivals land in
        # the queue while the server computes, stamped with their *true*
        # arrival time, and are rejected at that moment if the queue is
        # full.  Only then may the next tick run.
        while index < requests and arrivals[index] <= now:
            admit(index)
            index += 1
        if server.ready(now=now):
            now = run_tick(now)
            continue
        next_arrival = arrivals[index] if index < requests else math.inf
        deadline = server.next_deadline()
        deadline = math.inf if deadline is None else deadline
        event = min(next_arrival, deadline)
        if math.isinf(event):
            # Nothing schedulable — but queued-only requests may still
            # hold tickets that a TTL poll would expire; resolve them
            # instead of spinning forever.
            if outstanding:
                now = run_tick(now)
                if outstanding:
                    break  # genuinely unresolvable (no TTL configured)
                continue
            break
        now = max(now, event)

    duration = max(now, float(arrivals[-1]) if requests else 0.0)
    divergence = (server.mean_divergence()
                  if getattr(server, "shadow", False) else None)
    injected = (sum(plan.injected.values()) - injected_before if plan
                else 0)
    # Drain-time accounting tripwire: every submission this run made (and
    # any the server saw before) must be booked exactly once.
    server.check_invariants()
    if export_dir is not None:
        export_dir = Path(export_dir)
        export_dir.mkdir(parents=True, exist_ok=True)
        (export_dir / "serving.prom").write_text(
            server.metrics.render_prometheus(), encoding="utf-8")
        if server.telemetry is not None:
            server.telemetry.tracer.write_jsonl(
                export_dir / "serving.trace.jsonl")
    return ServingReport.from_run(
        rate_rps, duration, latencies, rejected, ticks, steps_served,
        divergence=divergence, expired=expired, failed=failed,
        retried_latencies_s=retried_latencies, faults_injected=injected,
        queue_wait_p95_ms=queue_wait.percentile(95,
                                                start=queue_wait_start),
        tick_compute_p95_ms=tick_compute.percentile(
            95, start=tick_compute_start),
        pool_stats=None if pool is None else pool.stats)
