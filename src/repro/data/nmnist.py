"""Synthetic N-MNIST: procedural digits seen through a simulated DVS camera.

The real N-MNIST dataset was captured by displaying MNIST digits on an LCD
and recording them with a DVS sensor on a pan/tilt platform performing
three saccades.  This generator reproduces the *acquisition pipeline* with
offline-safe components:

    stroke-rendered digit glyph  ->  3-saccade motion  ->  DVS pixel model
    (:mod:`repro.data.glyphs`)       (:mod:`repro.data.dvs`)

yielding the same tensor format as the real dataset — ON/OFF event counts
on a 34x34 grid over time, flattened to ``34*34*2 = 2312`` channels for the
paper's MLP.  As with real N-MNIST (see Iyer et al., cited as [6] in the
paper), most class information is *spatial*; the hard-reset ablation in
Table II therefore costs only a few points here, in contrast to SHD.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.config import BaseConfig
from ..common.rng import RandomState, as_random_state
from .datasets import SpikeDataset
from .dvs import DVSCamera, record_moving_image
from .glyphs import render_digit

__all__ = ["SyntheticNMNISTConfig", "generate_nmnist"]


@dataclasses.dataclass(frozen=True)
class SyntheticNMNISTConfig(BaseConfig):
    """Generation parameters for the synthetic N-MNIST dataset.

    Attributes
    ----------
    n_per_class:
        Samples generated per digit class.
    steps:
        Time steps (frames); the three saccades split this evenly.
        The real recordings are ~300 ms; 60 steps keeps the same
        three-saccade structure at CI scale.
    sensor_size:
        DVS resolution (real sensor: 34).
    digit_size:
        Glyph raster size placed at the sensor centre (real MNIST: 28).
    dvs_threshold:
        Log-contrast threshold of the pixel model.
    noise_rate:
        Spurious event probability per pixel per frame.
    saccade_amplitude:
        Peak camera displacement in pixels.
    """

    n_per_class: int = 30
    steps: int = 60
    sensor_size: int = 34
    digit_size: int = 28
    dvs_threshold: float = 0.15
    noise_rate: float = 0.001
    saccade_amplitude: float = 3.0

    def validate(self) -> None:
        self.require_positive("n_per_class")
        self.require(self.steps >= 3, "steps must be >= 3 (three saccades)")
        self.require(self.digit_size <= self.sensor_size,
                     "digit must fit on the sensor")
        self.require_positive("dvs_threshold")
        self.require_in_range("noise_rate", 0.0, 0.5)


def generate_nmnist(config: SyntheticNMNISTConfig | None = None,
                    rng: RandomState | int | None = None) -> SpikeDataset:
    """Generate the synthetic N-MNIST dataset.

    Returns
    -------
    SpikeDataset
        ``inputs`` of shape (10*n_per_class, steps, sensor_size**2 * 2)
        holding ON/OFF event counts; integer ``targets`` 0-9.
    """
    config = config or SyntheticNMNISTConfig()
    root = as_random_state(rng)
    n_total = 10 * config.n_per_class
    channels = config.sensor_size * config.sensor_size * 2
    inputs = np.zeros((n_total, config.steps, channels), dtype=np.float32)
    labels = np.zeros(n_total, dtype=np.int64)

    index = 0
    for digit in range(10):
        for sample in range(config.n_per_class):
            sample_rng = root.child(f"digit{digit}-sample{sample}")
            image = render_digit(
                digit, size=config.digit_size,
                rng=sample_rng.child("glyph"), jitter=True,
            )
            camera = DVSCamera(
                threshold=config.dvs_threshold,
                noise_rate=config.noise_rate,
                rng=sample_rng.child("camera"),
            )
            events = record_moving_image(
                image, steps=config.steps, sensor_size=config.sensor_size,
                camera=camera, amplitude=config.saccade_amplitude,
                rng=sample_rng.child("motion"),
            )
            inputs[index] = events.reshape(config.steps, channels)
            labels[index] = digit
            index += 1

    return SpikeDataset(
        inputs, labels, name="synthetic-nmnist",
        class_names=[str(d) for d in range(10)],
        metadata={"config": config.to_dict(), "seed": root.seed},
    )
