#!/usr/bin/env python
"""CI gate for the project linter (`make lint`).

Three checks, in order:

1. **Self-check** — one planted violation per registered rule, linted
   from in-memory sources, must be caught at the exact file:line.  A
   linter that silently stopped seeing violations must not be allowed
   to green-light the tree.
2. **Tree lint** — the repository lints clean against the committed
   baseline (``tools/lint_baseline.json``); stale baseline entries fail
   too.
3. **Artifact** — the JSON findings report is written to
   ``lint_findings.json`` for the CI upload, clean or not.

The lint engine is loaded *standalone* from its package directory —
not via ``import repro`` — so this gate runs on a stdlib-only
interpreter and keeps working while the scientific stack is broken.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
LINT_DIR = ROOT / "src" / "repro" / "analysis" / "lint"
BASELINE = ROOT / "tools" / "lint_baseline.json"
ARTIFACT = ROOT / "lint_findings.json"


def load_lint():
    """Import the lint package from its directory, bypassing the
    ``repro`` namespace (whose ``__init__`` pulls numpy)."""
    if "repro_lint_standalone" in sys.modules:
        return sys.modules["repro_lint_standalone"]
    spec = importlib.util.spec_from_file_location(
        "repro_lint_standalone", LINT_DIR / "__init__.py",
        submodule_search_locations=[str(LINT_DIR)])
    module = importlib.util.module_from_spec(spec)
    sys.modules["repro_lint_standalone"] = module
    spec.loader.exec_module(module)
    return module


# One minimal violation per rule: (rule id, sources, config overrides,
# expected file, expected line).
def _planted_cases(lint):
    catalog = lint.facts.parse_instrument_catalog(
        "| instrument | kind |\n|---|---|\n| `ok.name` | counter |\n")
    return [
        ("determinism",
         {"src/repro/core/bad.py":
          "import time\n\ndef f():\n    return time.time()\n"},
         {}, "src/repro/core/bad.py", 4),
        ("fault-sites",
         {"src/repro/serve/bad.py":
          "def f(plan):\n    return plan.hit('bogus.site')\n"},
         {"known_sites": ("real.site",)},
         "src/repro/serve/bad.py", 2),
        ("instruments",
         {"src/repro/obs/bad.py":
          "def f(registry):\n    registry.counter('nope.name', 1)\n"},
         {"instrument_catalog": catalog}, "src/repro/obs/bad.py", 2),
        ("layer-dag",
         {"src/repro/common/bad.py": "import repro.serve.server\n"},
         {}, "src/repro/common/bad.py", 1),
        ("concurrency",
         {"src/repro/runtime/bad.py":
          "def f(lock):\n    lock.acquire()\n    lock.release()\n"},
         {}, "src/repro/runtime/bad.py", 2),
        ("runtable-schema",
         {"src/repro/experiments/bad.py":
          "def f(row):\n    return row['bogus_col']\n"},
         {"run_table_columns": ("run_id",),
          "runtable_files": ("src/repro/experiments/bad.py",)},
         "src/repro/experiments/bad.py", 2),
    ]


def self_check(lint) -> list:
    failures = []
    for rule_id, sources, overrides, path, line in _planted_cases(lint):
        config = lint.LintConfig(**overrides)
        result = lint.run_lint(sources=sources, config=config)
        hits = [f for f in result.findings
                if f.rule == rule_id and f.path == path
                and f.line == line]
        if not hits:
            got = [(f.rule, f.path, f.line) for f in result.findings]
            failures.append(
                f"planted {rule_id} violation at {path}:{line} "
                f"not caught (findings: {got})")
    return failures


def main() -> int:
    lint = load_lint()

    failures = self_check(lint)
    for failure in failures:
        print(f"SELF-CHECK FAIL: {failure}")
    if not failures:
        print(f"self-check ok: {len(lint.RULES)} planted violations "
              f"caught at exact file:line")

    baseline = lint.load_baseline(BASELINE) or None
    result = lint.run_lint(root=ROOT, baseline=baseline)
    ARTIFACT.write_text(lint.engine.render_json(result),
                        encoding="utf-8")
    sys.stdout.write(lint.engine.render_text(result))
    print(f"findings artifact: {ARTIFACT.name}")

    ok = not failures and result.clean and not result.stale_baseline
    print("lint smoke:", "OK" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
