"""Engineering throughput benchmarks for the core kernels.

These are conventional pytest-benchmark microbenchmarks (multiple rounds)
for the kernels everything else is built from: network forward, exact
BPTT backward, crossbar analog product, cochlea encoding, and the MNA
transient solver.  They guard against performance regressions and give a
cost model for scaling the experiments.

The forward/backward benchmarks cover both simulation engines: the fused
vectorized engine (the default everywhere, ``repro.core.engine``) and the
step-wise reference loop it replaced.  The measured ratio is recorded in
``docs/performance.md``.
"""

import numpy as np
import pytest

from repro.common.rng import RandomState
from repro.core import CrossEntropyRateLoss, SpikingNetwork, backward
from repro.data.cochlea import Cochlea, CochleaConfig
from repro.data.speech import synthesize_digit
from repro.hardware.crossbar import DifferentialCrossbar
from repro.hardware.devices import RRAMDeviceConfig
from repro.hardware.neuron_circuit import NeuronCircuitConfig, simulate_neuron


@pytest.fixture(scope="module")
def forward_setup():
    net = SpikingNetwork((700, 128, 128, 20), rng=0)
    for layer in net.layers:
        layer.weight *= 6.0
    rng = RandomState(1)
    x = (rng.random((32, 100, 700)) < 0.03).astype(np.float64)
    return net, x


def test_forward_throughput(benchmark, forward_setup):
    """Default path: the fused vectorized engine."""
    net, x = forward_setup
    out, _ = benchmark(lambda: net.run(x))
    assert out.shape == (32, 100, 20)


def test_forward_throughput_step_reference(benchmark, forward_setup):
    """The step-wise reference loop the fused engine is measured against."""
    net, x = forward_setup
    out, _ = benchmark(lambda: net.run(x, engine="step"))
    assert out.shape == (32, 100, 20)


def test_forward_throughput_float32(benchmark, forward_setup):
    net, x = forward_setup
    out, _ = benchmark(lambda: net.run(x, precision="float32"))
    assert out.dtype == np.float32


def test_backward_throughput(benchmark, forward_setup):
    """Default path: the fused BPTT kernels."""
    net, x = forward_setup
    labels = np.arange(32) % 20
    loss = CrossEntropyRateLoss()
    out, record = net.run(x, record=True)
    _, grad_out = loss.value_and_grad(out, labels)

    result = benchmark(lambda: backward(net, record, grad_out))
    assert all(np.all(np.isfinite(g)) for g in result.weight_grads)


def test_backward_throughput_reference(benchmark, forward_setup):
    """The per-step adjoint loops the fused backward is measured against."""
    net, x = forward_setup
    labels = np.arange(32) % 20
    loss = CrossEntropyRateLoss()
    out, record = net.run(x, record=True)
    _, grad_out = loss.value_and_grad(out, labels)

    result = benchmark(
        lambda: backward(net, record, grad_out, engine="reference"))
    assert all(np.all(np.isfinite(g)) for g in result.weight_grads)


def test_crossbar_matvec_throughput(benchmark):
    rng = RandomState(2)
    weights = rng.normal(0, 0.1, (128, 700))
    xbar = DifferentialCrossbar(
        weights, RRAMDeviceConfig(levels=16, variation=0.1), rng=3)
    x = rng.random((64, 700))

    out = benchmark(lambda: xbar.matvec(x))
    assert out.shape == (64, 128)


def test_cochlea_encode_throughput(benchmark):
    wave = synthesize_digit("english", 3, rng=0)
    cochlea = Cochlea(CochleaConfig())

    spikes = benchmark(lambda: cochlea.encode(wave, steps=100, rng=0))
    assert spikes.shape == (100, 700)


def test_circuit_transient_throughput(benchmark):
    config = NeuronCircuitConfig()

    result = benchmark.pedantic(
        lambda: simulate_neuron([50, 70, 90], config=config,
                                duration_ns=400),
        rounds=3, iterations=1,
    )
    assert result.output_spike_count() >= 0
