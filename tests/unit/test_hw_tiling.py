"""Unit tests for crossbar tiling."""

import numpy as np
import pytest

from repro.common.errors import ShapeError
from repro.hardware.devices import RRAMDeviceConfig
from repro.hardware.tiling import TiledCrossbar


IDEAL = RRAMDeviceConfig(levels=2 ** 12, variation=0.0)


class TestTiling:
    def test_tile_counts(self):
        weights = np.ones((300, 500))
        tiled = TiledCrossbar(weights, tile_rows=128, tile_cols=128,
                              device=IDEAL, rng=0)
        assert tiled.n_row_tiles == 4      # ceil(500/128)
        assert tiled.n_col_tiles == 3      # ceil(300/128)
        assert tiled.n_tiles == 12

    def test_ideal_tiled_matches_matmul(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(40, 70))
        tiled = TiledCrossbar(weights, tile_rows=32, tile_cols=16,
                              device=IDEAL, rng=1)
        x = rng.random((5, 70))
        # 12-bit quantization leaves ~5e-4 per weight; with fan-in 70 the
        # worst-case output error is ~0.035 absolute.
        np.testing.assert_allclose(tiled.matvec(x), x @ weights.T,
                                   atol=0.05)

    def test_tiled_equals_monolithic_ideal(self):
        """Cross-tile summation is exact: a tiled ideal array equals a
        single ideal array."""
        from repro.hardware.crossbar import DifferentialCrossbar
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(20, 50))
        mono = DifferentialCrossbar(weights, IDEAL, rng=2)
        tiled = TiledCrossbar(weights, tile_rows=16, tile_cols=8,
                              device=IDEAL, rng=3)
        x = rng.random(50)
        # Both are 12-bit quantized (per-tile vs per-matrix scales), so
        # they agree within a couple of quantization steps times fan-in.
        np.testing.assert_allclose(tiled.matvec(x), mono.matvec(x),
                                   atol=0.05)

    def test_single_vector_shape(self):
        weights = np.ones((6, 10))
        tiled = TiledCrossbar(weights, tile_rows=4, tile_cols=4,
                              device=IDEAL, rng=0)
        out = tiled.matvec(np.ones(10))
        assert out.shape == (6,)

    def test_effective_weights_stitched(self):
        rng = np.random.default_rng(2)
        weights = rng.normal(size=(10, 12))
        tiled = TiledCrossbar(weights, tile_rows=5, tile_cols=4,
                              device=IDEAL, rng=4)
        stitched = tiled.effective_weights()
        assert stitched.shape == weights.shape
        # 12-bit quantization: near-exact reconstruction.
        np.testing.assert_allclose(stitched, weights, atol=2e-3)

    def test_variation_independent_per_tile(self):
        weights = np.full((8, 8), 0.5)
        device = RRAMDeviceConfig(variation=0.3)
        tiled = TiledCrossbar(weights, tile_rows=4, tile_cols=4,
                              device=device, rng=5)
        blocks = [tile.effective_weights() for row in tiled.tiles
                  for tile in row]
        # Independent draws: no two tiles identical.
        assert not np.allclose(blocks[0], blocks[1])

    def test_utilisation(self):
        weights = np.ones((100, 100))
        tiled = TiledCrossbar(weights, tile_rows=128, tile_cols=128,
                              device=IDEAL, rng=0)
        assert tiled.utilisation() == pytest.approx(10000 / (128 * 128))

    def test_validation(self):
        with pytest.raises(ShapeError):
            TiledCrossbar(np.ones(5))
        with pytest.raises(ValueError):
            TiledCrossbar(np.ones((4, 4)), tile_rows=0)
        tiled = TiledCrossbar(np.ones((4, 6)), device=IDEAL, rng=0)
        with pytest.raises(ShapeError):
            tiled.matvec(np.ones(7))
