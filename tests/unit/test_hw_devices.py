"""Unit tests for RRAM devices, quantization and the crossbar."""

import numpy as np
import pytest

from repro.common.errors import ShapeError
from repro.hardware.crossbar import DifferentialCrossbar
from repro.hardware.devices import RRAMCellArray, RRAMDeviceConfig
from repro.hardware.quantization import (
    QuantizationConfig,
    conductances_to_weights,
    quantize_weights,
    weights_to_conductances,
)


class TestDeviceConfig:
    def test_defaults(self):
        config = RRAMDeviceConfig()
        assert config.g_max > config.g_min
        assert len(config.level_conductances) == config.levels

    def test_validation(self):
        with pytest.raises(Exception):
            RRAMDeviceConfig(g_min=0.0)
        with pytest.raises(Exception):
            RRAMDeviceConfig(g_min=1e-4, g_max=1e-6)
        with pytest.raises(Exception):
            RRAMDeviceConfig(levels=1)
        with pytest.raises(Exception):
            RRAMDeviceConfig(variation=-0.1)


class TestRRAMCellArray:
    def test_program_and_read_ideal(self):
        config = RRAMDeviceConfig(levels=16, variation=0.0)
        array = RRAMCellArray((3, 4), config, rng=0)
        targets = np.full((3, 4), 5e-5)
        achieved = array.program(targets)
        np.testing.assert_allclose(array.read(), achieved)
        # Quantized to the nearest of 16 levels.
        ladder = config.level_conductances
        for value in achieved.ravel():
            assert np.min(np.abs(ladder - value)) < 1e-12

    def test_quantize_targets_snaps(self):
        config = RRAMDeviceConfig(levels=2)      # only g_min and g_max
        array = RRAMCellArray((1, 1), config, rng=0)
        low = array.quantize_targets(np.array([[config.g_min * 1.2]]))
        high = array.quantize_targets(np.array([[config.g_max * 0.9]]))
        assert low[0, 0] == config.g_min
        assert high[0, 0] == config.g_max

    def test_variation_perturbs(self):
        config = RRAMDeviceConfig(variation=0.3)
        array = RRAMCellArray((10, 10), config, rng=1)
        targets = np.full((10, 10), 5e-5)
        achieved = array.program(targets)
        assert np.std(achieved) > 0
        assert np.all(achieved >= config.g_min)
        assert np.all(achieved <= config.g_max)

    def test_variation_grows_with_sigma(self):
        errors = []
        for sigma in (0.1, 0.3, 0.5):
            config = RRAMDeviceConfig(variation=sigma)
            array = RRAMCellArray((30, 30), config, rng=2)
            array.program(np.full((30, 30), 5e-5))
            errors.append(array.programming_error().mean())
        assert errors[0] < errors[1] < errors[2]

    def test_read_noise(self):
        config = RRAMDeviceConfig(read_noise=0.05)
        array = RRAMCellArray((5, 5), config, rng=3)
        array.program(np.full((5, 5), 5e-5))
        a = array.read()
        b = array.read()
        assert not np.array_equal(a, b)

    def test_read_before_program_raises(self):
        array = RRAMCellArray((2, 2))
        with pytest.raises(ValueError):
            array.read()

    def test_shape_mismatch(self):
        array = RRAMCellArray((2, 2))
        with pytest.raises(ValueError):
            array.program(np.zeros((3, 3)))


class TestQuantizeWeights:
    def test_levels_count(self):
        config = QuantizationConfig(bits=2)     # 4 levels
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(50,))
        quantized = quantize_weights(weights, config)
        assert len(np.unique(quantized)) <= 4

    def test_error_bounded_by_half_step(self):
        config = QuantizationConfig(bits=4)
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(200,))
        quantized = quantize_weights(weights, config)
        scale = np.abs(weights).max()
        step = 2.0 * scale / (config.levels - 1)
        assert np.max(np.abs(quantized - weights)) <= step / 2 + 1e-12

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(2)
        weights = rng.normal(size=(500,))
        err4 = np.abs(quantize_weights(weights, QuantizationConfig(bits=4))
                      - weights).mean()
        err5 = np.abs(quantize_weights(weights, QuantizationConfig(bits=5))
                      - weights).mean()
        assert err5 < err4

    def test_zero_weights(self):
        quantized = quantize_weights(np.zeros(5), QuantizationConfig(bits=4))
        np.testing.assert_array_equal(quantized, 0.0)

    def test_bits_validation(self):
        with pytest.raises(Exception):
            QuantizationConfig(bits=0)


class TestConductanceMapping:
    def test_roundtrip_without_quantization(self):
        rng = np.random.default_rng(3)
        weights = rng.normal(size=(6, 8))
        device = RRAMDeviceConfig()
        g_plus, g_minus, scale = weights_to_conductances(weights, device)
        recovered = conductances_to_weights(g_plus, g_minus, device, scale)
        np.testing.assert_allclose(recovered, weights, atol=1e-12)

    def test_one_device_at_minimum_per_weight(self):
        weights = np.array([[0.5, -0.5]])
        device = RRAMDeviceConfig()
        g_plus, g_minus, _ = weights_to_conductances(weights, device)
        assert g_minus[0, 0] == device.g_min     # positive weight
        assert g_plus[0, 1] == device.g_min      # negative weight

    def test_conductances_in_window(self):
        rng = np.random.default_rng(4)
        weights = rng.normal(size=(20, 20)) * 3
        device = RRAMDeviceConfig()
        g_plus, g_minus, _ = weights_to_conductances(weights, device)
        for g in (g_plus, g_minus):
            assert g.min() >= device.g_min - 1e-18
            assert g.max() <= device.g_max + 1e-18


class TestDifferentialCrossbar:
    def test_ideal_crossbar_matches_matmul(self):
        rng = np.random.default_rng(5)
        weights = rng.normal(size=(4, 6))
        xbar = DifferentialCrossbar(
            weights, RRAMDeviceConfig(levels=2 ** 12, variation=0.0), rng=0)
        x = rng.random((3, 6))
        np.testing.assert_allclose(xbar.matvec(x), x @ weights.T, rtol=1e-3)

    def test_bitline_currents_scale_with_vread(self):
        weights = np.ones((2, 2))
        a = DifferentialCrossbar(weights, v_read=0.1, rng=0)
        b = DifferentialCrossbar(weights, v_read=0.2, rng=0)
        x = np.ones(2)
        np.testing.assert_allclose(2 * a.bitline_currents(x),
                                   b.bitline_currents(x))

    def test_output_voltage_is_current_times_rsense(self):
        weights = np.ones((2, 3))
        xbar = DifferentialCrossbar(weights, rng=0, r_sense=1e4)
        x = np.ones(3)
        np.testing.assert_allclose(xbar.output_voltages(x),
                                   xbar.bitline_currents(x) * 1e4)

    def test_quantization_limits_effective_weights(self):
        rng = np.random.default_rng(6)
        weights = rng.normal(size=(8, 8))
        xbar = DifferentialCrossbar(
            weights, RRAMDeviceConfig(levels=4, variation=0.0), rng=0)
        effective = xbar.effective_weights()
        # Coarse quantization: few distinct magnitudes.
        assert len(np.unique(np.round(effective, 9))) <= 8
        assert np.max(np.abs(effective - weights)) > 0

    def test_variation_changes_draws(self):
        weights = np.ones((4, 4)) * 0.5
        device = RRAMDeviceConfig(variation=0.3)
        a = DifferentialCrossbar(weights, device, rng=1)
        b = DifferentialCrossbar(weights, device, rng=2)
        assert not np.array_equal(a.effective_weights(),
                                  b.effective_weights())

    def test_input_width_checked(self):
        xbar = DifferentialCrossbar(np.ones((2, 3)), rng=0)
        with pytest.raises(ShapeError):
            xbar.bitline_currents(np.ones(4))

    def test_weights_must_be_2d(self):
        with pytest.raises(ShapeError):
            DifferentialCrossbar(np.ones(3), rng=0)


class TestStuckAtFaults:
    def test_zero_rate_is_clean(self):
        config = RRAMDeviceConfig(stuck_at_rate=0.0)
        array = RRAMCellArray((20, 20), config, rng=0)
        achieved = array.program(np.full((20, 20), 5e-5))
        ladder = config.level_conductances
        for value in achieved.ravel():
            assert np.min(np.abs(ladder - value)) < 1e-12

    def test_faulty_devices_pinned_to_rails(self):
        config = RRAMDeviceConfig(stuck_at_rate=0.3)
        array = RRAMCellArray((50, 50), config, rng=1)
        achieved = array.program(np.full((50, 50), 5e-5))
        at_rails = np.isclose(achieved, config.g_min) | \
            np.isclose(achieved, config.g_max)
        fraction = at_rails.mean()
        # ~30% of devices are stuck (binomial tolerance).
        assert 0.15 < fraction < 0.45

    def test_rate_validated(self):
        import pytest as _pytest
        with _pytest.raises(Exception):
            RRAMDeviceConfig(stuck_at_rate=1.5)

    def test_faults_hurt_accuracy_monotonically(self):
        """More stuck devices -> larger mean weight error."""
        rng = np.random.default_rng(2)
        weights = rng.normal(size=(16, 16))
        errors = []
        for rate in (0.0, 0.1, 0.4):
            config = RRAMDeviceConfig(levels=64, stuck_at_rate=rate)
            xbar = DifferentialCrossbar(weights, config, rng=3)
            errors.append(
                float(np.mean(np.abs(xbar.effective_weights() - weights))))
        assert errors[0] < errors[1] < errors[2]


class TestEffectiveWeightCache:
    """effective_weights() is memoised against the programming generation."""

    def test_repeated_reads_return_cached_array(self):
        rng = np.random.default_rng(7)
        weights = rng.normal(size=(6, 6))
        xbar = DifferentialCrossbar(
            weights, RRAMDeviceConfig(levels=16, variation=0.1), rng=0)
        first = xbar.effective_weights()
        assert xbar.effective_weights() is first  # no recompute

    def test_reprogram_invalidates_cache(self):
        rng = np.random.default_rng(8)
        weights = rng.normal(size=(6, 6))
        device = RRAMDeviceConfig(levels=16, variation=0.2)
        xbar = DifferentialCrossbar(weights, device, rng=0)
        before = xbar.effective_weights().copy()
        xbar.program()  # fresh variation draw, same target weights
        after = xbar.effective_weights()
        assert not np.array_equal(before, after)

    def test_reprogram_with_new_weights(self):
        xbar = DifferentialCrossbar(np.ones((3, 4)) * 0.5, rng=0)
        xbar.program(np.ones((3, 4)) * -0.5)
        assert np.all(xbar.effective_weights() < 0)
        with pytest.raises(ShapeError):
            xbar.program(np.ones((4, 3)))

    def test_read_noise_disables_cache(self):
        weights = np.ones((5, 5)) * 0.3
        device = RRAMDeviceConfig(read_noise=0.05)
        xbar = DifferentialCrossbar(weights, device, rng=1)
        a = xbar.effective_weights()
        b = xbar.effective_weights()
        assert not np.array_equal(a, b)  # every read draws fresh noise

    def test_cache_matches_uncached_value(self):
        rng = np.random.default_rng(9)
        weights = rng.normal(size=(6, 6))
        device = RRAMDeviceConfig(levels=16, variation=0.1)
        cached = DifferentialCrossbar(weights, device, rng=5)
        window = device.g_max - device.g_min
        expected = (cached.array_plus.read() - cached.array_minus.read()
                    ) * cached.weight_scale / window
        np.testing.assert_array_equal(cached.effective_weights(), expected)

    def test_array_version_counts_programs(self):
        array = RRAMCellArray((2, 2), RRAMDeviceConfig(), rng=0)
        assert array.version == 0
        array.program(np.full((2, 2), 5e-5))
        array.program(np.full((2, 2), 6e-5))
        assert array.version == 2
