"""Saving and loading model parameters and experiment artifacts.

Artifacts are stored as a ``.npz`` archive of named arrays plus a JSON
sidecar of metadata (configs, metrics, provenance).  Both files share a stem
so an artifact can be moved around as a pair.

On top of the raw array format sit **model checkpoints**
(:func:`save_checkpoint` / :func:`load_checkpoint`): one artifact holding a
:class:`~repro.core.network.SpikingNetwork`'s ``state_dict`` *plus* the
architecture needed to rebuild it (layer sizes, neuron kind, neuron
parameters), so a trained model round-trips from disk without the caller
reconstructing the network by hand, and **hardware profiles**
(:func:`save_hardware_profile` / :func:`load_hardware_profile`): the
quantization + device/variation recipe that maps a checkpoint onto
crossbars, as a single JSON file.  The serving model registry
(:class:`repro.serve.ModelRegistry`) versions both, side by side.

The format is intentionally dumb: no pickling, no executable content — a
model file from an untrusted source can at worst contain wrong numbers.
"""

from __future__ import annotations

import json
import os
from typing import Mapping

import numpy as np

from .errors import SerializationError

__all__ = [
    "save_arrays",
    "load_arrays",
    "save_json",
    "load_json",
    "save_checkpoint",
    "load_checkpoint",
    "save_hardware_profile",
    "load_hardware_profile",
]

#: Tag written into every checkpoint sidecar; bumped on layout changes.
CHECKPOINT_FORMAT = "repro-checkpoint-v1"

#: Tag written into every hardware-profile file; bumped on layout changes.
HWPROFILE_FORMAT = "repro-hwprofile-v1"


def save_arrays(path: str, arrays: Mapping[str, np.ndarray],
                metadata: dict | None = None) -> None:
    """Save named arrays to ``path`` (``.npz``) with an optional JSON sidecar.

    Parameters
    ----------
    path:
        Target path; a ``.npz`` suffix is appended if missing.
    arrays:
        Mapping from name to array.  Names must be non-empty strings.
    metadata:
        JSON-serialisable dict written next to the archive as ``<stem>.json``.
    """
    if not arrays:
        raise SerializationError("refusing to save an empty artifact")
    for name in arrays:
        if not isinstance(name, str) or not name:
            raise SerializationError(f"invalid array name: {name!r}")
    target = path if path.endswith(".npz") else path + ".npz"
    directory = os.path.dirname(os.path.abspath(target))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(target, **{k: np.asarray(v) for k, v in arrays.items()})
    if metadata is not None:
        save_json(_sidecar_path(target), metadata)


def load_arrays(path: str) -> tuple[dict[str, np.ndarray], dict]:
    """Load a ``.npz`` artifact; returns ``(arrays, metadata)``.

    Metadata is ``{}`` if no sidecar exists.
    """
    target = path if path.endswith(".npz") else path + ".npz"
    if not os.path.exists(target):
        raise SerializationError(f"artifact not found: {target}")
    with np.load(target) as archive:
        arrays = {name: archive[name].copy() for name in archive.files}
    sidecar = _sidecar_path(target)
    metadata = load_json(sidecar) if os.path.exists(sidecar) else {}
    return arrays, metadata


def save_json(path: str, payload: dict) -> None:
    """Write ``payload`` as pretty-printed JSON (creating directories)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    try:
        text = json.dumps(payload, indent=2, sort_keys=True, default=_json_default)
    except TypeError as exc:
        raise SerializationError(f"metadata is not JSON-serialisable: {exc}") from exc
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def load_json(path: str) -> dict:
    """Read a JSON file written by :func:`save_json`."""
    if not os.path.exists(path):
        raise SerializationError(f"JSON artifact not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def save_checkpoint(path: str, network, meta: dict | None = None) -> str:
    """Save a full model checkpoint: parameters + rebuildable architecture.

    Parameters
    ----------
    path:
        Target stem/path (``.npz`` appended if missing; a ``.json``
        sidecar is written alongside).
    network:
        The :class:`~repro.core.network.SpikingNetwork` to persist.  Its
        ``state_dict`` plus sizes / neuron kind / neuron parameters are
        stored; the surrogate gradient is a training-time object and is
        not serialised (a loaded checkpoint carries the default).
    meta:
        Optional JSON-serialisable user metadata (metrics, provenance),
        stored under the sidecar's ``"meta"`` key.

    Returns the ``.npz`` path actually written.
    """
    metadata = {
        "format": CHECKPOINT_FORMAT,
        "network": {
            "sizes": [int(s) for s in network.sizes],
            "neuron_kind": network.neuron_kind,
            "params": network.params.to_dict(),
        },
        "meta": meta or {},
    }
    save_arrays(path, network.state_dict(), metadata)
    return path if path.endswith(".npz") else path + ".npz"


def load_checkpoint(path: str):
    """Rebuild a network saved by :func:`save_checkpoint`.

    Returns ``(network, meta)`` where ``meta`` is the user metadata dict
    passed at save time.  The architecture (sizes, neuron kind, neuron
    parameters) comes from the sidecar; weights from the archive.
    """
    from ..core.network import SpikingNetwork  # lazy: common must not
    from ..core.neurons import NeuronParameters  # depend on core at import

    arrays, metadata = load_arrays(path)
    spec = metadata.get("network")
    if metadata.get("format") != CHECKPOINT_FORMAT or not spec:
        raise SerializationError(
            f"{path}: not a {CHECKPOINT_FORMAT} checkpoint (write one with "
            f"save_checkpoint)")
    params = NeuronParameters.from_dict(spec["params"])
    network = SpikingNetwork(tuple(spec["sizes"]), params=params,
                             neuron_kind=spec["neuron_kind"], rng=0)
    network.load_state_dict(arrays)
    return network, metadata.get("meta", {})


def save_hardware_profile(path: str, profile, meta: dict | None = None) -> str:
    """Save a :class:`~repro.hardware.mapped_network.HardwareProfile`.

    A profile is pure configuration (device model + quantization + seed),
    so the artifact is a single JSON file — same safety property as the
    checkpoint format: no pickling, no executable content.  ``meta`` is
    user metadata stored under the ``"meta"`` key.

    Returns the path written (``.json`` appended if missing).
    """
    target = path if path.endswith(".json") else path + ".json"
    save_json(target, {
        "format": HWPROFILE_FORMAT,
        "profile": profile.to_dict(),
        "meta": meta or {},
    })
    return target


def load_hardware_profile(path: str):
    """Rebuild ``(profile, meta)`` saved by :func:`save_hardware_profile`."""
    from ..hardware.mapped_network import HardwareProfile  # lazy: common
    # must not depend on hardware at import

    target = path if path.endswith(".json") else path + ".json"
    payload = load_json(target)
    if payload.get("format") != HWPROFILE_FORMAT or "profile" not in payload:
        raise SerializationError(
            f"{target}: not a {HWPROFILE_FORMAT} hardware profile (write "
            f"one with save_hardware_profile)")
    return (HardwareProfile.from_dict(payload["profile"]),
            payload.get("meta", {}))


def _sidecar_path(npz_path: str) -> str:
    stem, _ = os.path.splitext(npz_path)
    return stem + ".json"


def _json_default(value):
    """Coerce numpy scalars/arrays in metadata to plain Python types."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serialisable: {type(value).__name__}")
