"""Integration: the Section V-B pattern-association task end to end."""

import numpy as np
import pytest

from repro.analysis import trace_correlation
from repro.core import SpikingNetwork, Trainer, TrainerConfig, VanRossumLoss
from repro.core.calibration import calibrate_firing
from repro.data import AssociationConfig, generate_association


@pytest.fixture(scope="module")
def association_setup():
    config = AssociationConfig(n_samples=60, steps=60, target_trains=48,
                               glyph_size=32, input_channels=128)
    dataset = generate_association(config, rng=0)
    network = SpikingNetwork((128, 96, 48), rng=1)
    calibrate_firing(network, dataset.inputs[:16], target_rate=0.1)
    loss = VanRossumLoss()
    trainer = Trainer(network, loss, TrainerConfig(
        epochs=40, batch_size=20, learning_rate=3e-3), rng=2)
    before = trainer.evaluate(dataset.inputs, dataset.targets)["van_rossum"]
    trainer.fit(dataset.inputs, dataset.targets)
    after = trainer.evaluate(dataset.inputs, dataset.targets)["van_rossum"]
    return dataset, network, before, after


class TestAssociation:
    def test_distance_decreases_substantially(self, association_setup):
        _, _, before, after = association_setup
        assert after < 0.8 * before

    def test_outputs_correlate_with_own_targets(self, association_setup):
        """Identity check: each output matches its own target better than a
        shuffled pairing (scale-free version of the Fig. 5 visual check)."""
        dataset, network, _, _ = association_setup
        outputs, _ = network.run(dataset.inputs[:12])
        own = np.mean([
            trace_correlation(outputs[i], dataset.targets[i])
            for i in range(12)
        ])
        cross = np.mean([
            trace_correlation(outputs[i], dataset.targets[(i + 5) % 12])
            for i in range(12)
        ])
        assert own > 0.0
        assert own > cross

    def test_output_is_spatiotemporal_not_constant(self, association_setup):
        """The trained output must vary across time and trains (it draws a
        glyph, not a constant rate pattern)."""
        dataset, network, _, _ = association_setup
        outputs, _ = network.run(dataset.inputs[:4])
        for i in range(4):
            per_step = outputs[i].sum(axis=1)
            per_train = outputs[i].sum(axis=0)
            assert per_step.std() > 0.0
            assert per_train.std() > 0.0
