"""Section V-C — power, energy and area of the neuron + synapse circuit.

Paper (Cadence, TSMC 1V-65 nm): min 1.067 mW, max 1.965 mW, avg 1.11 mW,
3.329 nJ over a 300-step sample with 14 input spikes, 0.0125 mm^2.
Our behavioral model reproduces the methodology; asserted shape: correct
ordering (min < avg < max), every quantity within the paper's order of
magnitude, energy consistent with avg power x duration, and the area
breakdown dominated by the two MIM filter capacitors.
"""

import pytest

from conftest import bench_experiment
from repro.hardware import PAPER_POWER_REPORT


def test_power_area(benchmark):
    result = bench_experiment(benchmark, "power-area")
    summary = result.summary

    # Ordering.
    assert summary["min_power_w"] < summary["avg_power_w"] < \
        summary["max_power_w"]

    # Within 2.5x of every paper number (same methodology, behavioral
    # component models instead of a PDK).
    for key in ("min_power_w", "max_power_w", "avg_power_w", "energy_j",
                "area_mm2"):
        paper = PAPER_POWER_REPORT[key]
        assert paper / 2.5 < summary[key] < paper * 2.5, key

    # Energy == integral of power over the 3 us sample.
    duration = 3000e-9
    assert summary["energy_j"] == pytest.approx(
        summary["avg_power_w"] * duration, rel=0.05)

    # The report table carries both paper and measured columns.
    assert "Paper" in result.text and "Measured" in result.text
