"""Saving and loading model parameters and experiment artifacts.

Artifacts are stored as a ``.npz`` archive of named arrays plus a JSON
sidecar of metadata (configs, metrics, provenance).  Both files share a stem
so an artifact can be moved around as a pair.

The format is intentionally dumb: no pickling, no executable content — a
model file from an untrusted source can at worst contain wrong numbers.
"""

from __future__ import annotations

import json
import os
from typing import Mapping

import numpy as np

from .errors import SerializationError

__all__ = ["save_arrays", "load_arrays", "save_json", "load_json"]


def save_arrays(path: str, arrays: Mapping[str, np.ndarray],
                metadata: dict | None = None) -> None:
    """Save named arrays to ``path`` (``.npz``) with an optional JSON sidecar.

    Parameters
    ----------
    path:
        Target path; a ``.npz`` suffix is appended if missing.
    arrays:
        Mapping from name to array.  Names must be non-empty strings.
    metadata:
        JSON-serialisable dict written next to the archive as ``<stem>.json``.
    """
    if not arrays:
        raise SerializationError("refusing to save an empty artifact")
    for name in arrays:
        if not isinstance(name, str) or not name:
            raise SerializationError(f"invalid array name: {name!r}")
    target = path if path.endswith(".npz") else path + ".npz"
    directory = os.path.dirname(os.path.abspath(target))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(target, **{k: np.asarray(v) for k, v in arrays.items()})
    if metadata is not None:
        save_json(_sidecar_path(target), metadata)


def load_arrays(path: str) -> tuple[dict[str, np.ndarray], dict]:
    """Load a ``.npz`` artifact; returns ``(arrays, metadata)``.

    Metadata is ``{}`` if no sidecar exists.
    """
    target = path if path.endswith(".npz") else path + ".npz"
    if not os.path.exists(target):
        raise SerializationError(f"artifact not found: {target}")
    with np.load(target) as archive:
        arrays = {name: archive[name].copy() for name in archive.files}
    sidecar = _sidecar_path(target)
    metadata = load_json(sidecar) if os.path.exists(sidecar) else {}
    return arrays, metadata


def save_json(path: str, payload: dict) -> None:
    """Write ``payload`` as pretty-printed JSON (creating directories)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    try:
        text = json.dumps(payload, indent=2, sort_keys=True, default=_json_default)
    except TypeError as exc:
        raise SerializationError(f"metadata is not JSON-serialisable: {exc}") from exc
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def load_json(path: str) -> dict:
    """Read a JSON file written by :func:`save_json`."""
    if not os.path.exists(path):
        raise SerializationError(f"JSON artifact not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _sidecar_path(npz_path: str) -> str:
    stem, _ = os.path.splitext(npz_path)
    return stem + ".json"


def _json_default(value):
    """Coerce numpy scalars/arrays in metadata to plain Python types."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serialisable: {type(value).__name__}")
