"""Parallel runtime: worker pools, data-parallel training, buffer arenas.

This package scales the fused simulation engine across processes:

* :mod:`repro.runtime.workspace` — reusable buffer arenas that remove the
  fused engine's per-batch allocations in steady-state training;
* :mod:`repro.runtime.pool` — a persistent worker pool holding the network
  weights in shared memory, executing forward chunks, gradient shards,
  Fig. 8 device-noise seeds and generic sweep tasks;
* :mod:`repro.runtime.parallel` — the deterministic shard split and
  fixed-order reduction shared by the serial and pooled paths (the basis
  of the bitwise parallel == serial equivalence tests);
* :mod:`repro.runtime.supervisor` — the restart policy behind the pool's
  self-healing: dead/hung workers are respawned from the original spec
  and their in-flight shards requeued, bitwise-transparently.

Everything is opt-in: ``workers=0`` (the default everywhere, including
``TrainerConfig``) keeps the serial in-process behavior bit-for-bit.  Set
``workers=N`` — or the ``REPRO_WORKERS`` environment variable — to fan
training batches, inference shards and sweep grid points across ``N``
processes.
"""

from .parallel import (
    combine_shard_results,
    data_parallel_grads,
    parallel_map,
    resolve_workers,
    shard_grads,
    shard_slices,
)
from .pool import PoolCache, PoolTransportError, WorkerError, WorkerPool
from .supervisor import RestartPolicy, WorkerSupervisor
from .workspace import Workspace

__all__ = [
    "PoolCache",
    "PoolTransportError",
    "RestartPolicy",
    "WorkerSupervisor",
    "Workspace",
    "WorkerError",
    "WorkerPool",
    "combine_shard_results",
    "data_parallel_grads",
    "parallel_map",
    "resolve_workers",
    "shard_grads",
    "shard_slices",
]
