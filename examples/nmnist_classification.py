"""N-MNIST classification (paper Section V-A, Table II left column).

Generates the synthetic N-MNIST substitute (procedural digit glyphs seen
through a simulated DVS camera performing the dataset's three saccades),
trains the paper's MLP, and runs the hard-reset ablation.  Note how much
*smaller* the hard-reset penalty is here than on SHD — N-MNIST's class
information is mostly spatial (the paper cites Iyer et al. [6] for this),
so destroying temporal state costs little.

Run:  python examples/nmnist_classification.py         (reduced scale)
      REPRO_PROFILE=full python examples/nmnist_classification.py
"""

import os

from repro import CrossEntropyRateLoss, Trainer, TrainerConfig
from repro.analysis import raster_summary, unflatten_dvs
from repro.common.asciiplot import raster_plot
from repro.core.calibration import calibrate_firing
from repro.core.model_zoo import nmnist_mlp
from repro.data import SyntheticNMNISTConfig, generate_nmnist


def main():
    full = os.environ.get("REPRO_PROFILE", "ci").lower() == "full"
    data_cfg = SyntheticNMNISTConfig(
        n_per_class=300 if full else 40,
        steps=99 if full else 50,
    )
    print(f"generating synthetic N-MNIST ({10 * data_cfg.n_per_class} "
          f"samples, {data_cfg.steps} steps)...")
    dataset = generate_nmnist(data_cfg, rng=0)
    train, test = dataset.split(0.8, rng=1)

    x0, y0 = dataset[0]
    print(raster_plot(x0.T, height=14, width=70,
                      title=f"DVS event raster for digit {y0} "
                            "(channels = 34x34x2 flattened)"))
    print("event statistics:", raster_summary(x0))
    events = unflatten_dvs(x0, 34, 34)
    print(f"ON events: {int(events[..., 0].sum())}, "
          f"OFF events: {int(events[..., 1].sum())}")

    network = nmnist_mlp(profile="paper" if full else "reduced", rng=2)
    print(f"network: {network} "
          f"({network.count_parameters():,} parameters)")
    calibrate_firing(network, train.inputs[:48], target_rate=0.08)

    trainer = Trainer(
        network, CrossEntropyRateLoss(),
        TrainerConfig(epochs=30 if full else 12, batch_size=64,
                      learning_rate=1e-4 if full else 1e-3,
                      optimizer="adamw"),
        rng=3,
    )
    trainer.fit(train.inputs, train.targets, test.inputs, test.targets,
                verbose=True)

    adaptive = trainer.evaluate(test.inputs, test.targets)["accuracy"]
    hard_reset = trainer.evaluate(
        test.inputs, test.targets,
        network=network.with_neuron_kind("hard_reset"))["accuracy"]

    print("\n--- Table II (N-MNIST), this run ---")
    print(f"adaptive threshold (this work):     {100 * adaptive:6.2f} %   "
          f"(paper: 98.40 %)")
    print(f"hard reset (same trained weights):  {100 * hard_reset:6.2f} %   "
          f"(paper HR: 95.31 %)")
    print("\nCompare with examples/shd_classification.py: the hard-reset "
          "drop here is small because N-MNIST is spatially separable.")


if __name__ == "__main__":
    main()
