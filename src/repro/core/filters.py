"""First-order exponential filters — the paper's eq. (5) building blocks.

The paper's central modelling move (Section II) is to express a spiking
neuron as a bank of first-order low-pass filters: a *synapse* filter
``k(t)`` shapes input spikes into post-synaptic potentials, and a *reset*
filter ``h(t)`` shapes output spikes into an adaptive threshold.  In
discrete time (eq. 5):

.. math::

    k[t] = e^{-1/\\tau}   k[t-1] + x[t]        \\qquad (5a)

    h[t] = e^{-1/\\tau_r} h[t-1] + O[t-1]      \\qquad (5b)

This module implements that primitive (:class:`ExponentialFilter`), its
adjoint (needed by exact BPTT), and the double-exponential kernel
``f[t] = e^{-t/\\tau_m} - e^{-t/\\tau_s}`` used by the van Rossum loss
(eq. 15).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError, StateError

__all__ = [
    "decay_from_tau",
    "tau_from_decay",
    "ExponentialFilter",
    "exponential_filter",
    "exponential_filter_adjoint",
    "DoubleExponentialKernel",
]


def decay_from_tau(tau: float) -> float:
    """Per-step decay factor ``alpha = exp(-1/tau)`` for time constant ``tau``.

    ``tau`` is expressed in simulation steps (the paper uses tau = 4 steps,
    i.e. alpha ~= 0.7788).
    """
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    return float(np.exp(-1.0 / tau))


def tau_from_decay(alpha: float) -> float:
    """Inverse of :func:`decay_from_tau`."""
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"decay must be in (0, 1), got {alpha}")
    return float(-1.0 / np.log(alpha))


class ExponentialFilter:
    """Stateful first-order low-pass filter ``y[t] = alpha*y[t-1] + x[t]``.

    This is the digital counterpart of the RC filter in the paper's circuit
    (Section II: ``tau = RC / dt``); the same class implements both the
    synapse kernel ``k`` and the reset kernel ``h``.

    The filter is *never reset by spikes* — that is the point of the paper's
    model — but :meth:`reset_state` reinitialises it between input samples.

    Parameters
    ----------
    tau:
        Time constant in steps.
    shape:
        State shape, typically ``(batch, channels)``.  May be deferred to
        the first :meth:`reset_state` call.
    """

    def __init__(self, tau: float, shape: tuple | None = None):
        self.tau = float(tau)
        self.alpha = decay_from_tau(tau)
        self.state: np.ndarray | None = None
        if shape is not None:
            self.reset_state(shape)

    def reset_state(self, shape: tuple, dtype=np.float64) -> None:
        """Zero the filter state with the given shape."""
        self.state = np.zeros(shape, dtype=dtype)

    def step(self, x: np.ndarray) -> np.ndarray:
        """Advance one step; returns the new state (a copy-free view is kept)."""
        if self.state is None:
            raise StateError("ExponentialFilter.step called before reset_state")
        if self.state.shape != np.shape(x):
            raise ShapeError(
                f"filter state {self.state.shape} vs input {np.shape(x)}"
            )
        self.state = self.alpha * self.state + x
        return self.state

    def run(self, xs: np.ndarray, time_axis: int = 0) -> np.ndarray:
        """Filter a whole sequence; ``xs`` has time along ``time_axis``.

        Does not use or modify the persistent state (starts from zero);
        convenient for whole-trace computations such as loss kernels.
        """
        return exponential_filter(xs, self.alpha, time_axis=time_axis)

    def impulse_response(self, length: int) -> np.ndarray:
        """First ``length`` samples of the impulse response ``alpha**t``."""
        if length < 0:
            raise ValueError("length must be non-negative")
        return self.alpha ** np.arange(length, dtype=np.float64)

    def __repr__(self) -> str:
        return f"ExponentialFilter(tau={self.tau}, alpha={self.alpha:.6f})"


def exponential_filter(xs: np.ndarray, alpha: float, time_axis: int = 0,
                       initial: np.ndarray | None = None) -> np.ndarray:
    """Causal scan ``y[t] = alpha*y[t-1] + x[t]`` along ``time_axis``.

    Parameters
    ----------
    xs:
        Input array with time along ``time_axis``.
    alpha:
        Per-step decay in [0, 1).
    initial:
        Optional ``y[-1]`` state (shape of one time slice).
    """
    data = np.moveaxis(np.asarray(xs, dtype=np.float64), time_axis, 0)
    out = np.empty_like(data)
    carry = np.zeros(data.shape[1:], dtype=np.float64) if initial is None \
        else np.asarray(initial, dtype=np.float64)
    for t in range(data.shape[0]):
        carry = alpha * carry + data[t]
        out[t] = carry
    return np.moveaxis(out, 0, time_axis)


def exponential_filter_adjoint(grad_ys: np.ndarray, alpha: float,
                               time_axis: int = 0) -> np.ndarray:
    """Adjoint (reverse-time) scan of :func:`exponential_filter`.

    If ``y = exponential_filter(x)`` and ``g[t] = dE/dy[t]``, the returned
    array is ``dE/dx[t] = sum_{s>=t} alpha**(s-t) * g[s]``, computed by the
    anti-causal recursion ``a[t] = alpha*a[t+1] + g[t]``.
    """
    data = np.moveaxis(np.asarray(grad_ys, dtype=np.float64), time_axis, 0)
    out = np.empty_like(data)
    carry = np.zeros(data.shape[1:], dtype=np.float64)
    for t in range(data.shape[0] - 1, -1, -1):
        carry = alpha * carry + data[t]
        out[t] = carry
    return np.moveaxis(out, 0, time_axis)


class DoubleExponentialKernel:
    """The loss kernel ``f[t] = e^{-t/tau_m} - e^{-t/tau_s}`` of eq. (15).

    With ``tau_m > tau_s`` this is a causal alpha-like kernel rising from 0
    to a peak and decaying back — the paper uses ``tau_m = 4``,
    ``tau_s = 1`` (Table I).  The convolution ``f * S`` of a spike train is
    computed as the difference of two exponential scans, which is exact and
    O(T).
    """

    def __init__(self, tau_m: float = 4.0, tau_s: float = 1.0):
        if tau_m <= tau_s:
            raise ValueError(
                f"tau_m must exceed tau_s for a biphasic kernel, "
                f"got tau_m={tau_m}, tau_s={tau_s}"
            )
        self.tau_m = float(tau_m)
        self.tau_s = float(tau_s)
        self.alpha_m = decay_from_tau(tau_m)
        self.alpha_s = decay_from_tau(tau_s)

    def kernel(self, length: int) -> np.ndarray:
        """First ``length`` samples of ``f[t]`` (``f[0] == 0``)."""
        t = np.arange(length, dtype=np.float64)
        return np.exp(-t / self.tau_m) - np.exp(-t / self.tau_s)

    def convolve(self, spikes: np.ndarray, time_axis: int = 0) -> np.ndarray:
        """Causal convolution ``(f * S)[t]`` along ``time_axis`` (exact, O(T))."""
        fast = exponential_filter(spikes, self.alpha_s, time_axis=time_axis)
        slow = exponential_filter(spikes, self.alpha_m, time_axis=time_axis)
        return slow - fast

    def adjoint_convolve(self, grad: np.ndarray, time_axis: int = 0) -> np.ndarray:
        """Adjoint of :meth:`convolve` (correlation with ``f``, reverse time)."""
        fast = exponential_filter_adjoint(grad, self.alpha_s, time_axis=time_axis)
        slow = exponential_filter_adjoint(grad, self.alpha_m, time_axis=time_axis)
        return slow - fast

    def __repr__(self) -> str:
        return f"DoubleExponentialKernel(tau_m={self.tau_m}, tau_s={self.tau_s})"
