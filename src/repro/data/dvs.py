"""Dynamic Vision Sensor (DVS) camera simulator and saccade motion.

N-MNIST was recorded by pointing a DVS camera at displayed MNIST digits
while the camera performed three micro-saccades; brightness changes beyond
a threshold trigger ON/OFF events per pixel.  This module simulates that
acquisition pipeline:

* :class:`DVSCamera` — per-pixel log-brightness change detector with a
  stored reference level (the standard DVS pixel model): an event fires
  when ``log(I) - log(I_ref)`` exceeds ``+threshold`` (ON) or falls below
  ``-threshold`` (OFF), after which the reference is updated.
* :func:`saccade_trajectory` — the N-MNIST three-saccade triangular camera
  path (right-down, left-down, up), as sub-pixel (dx, dy) displacements.
* :func:`record_moving_image` — renders a static image through the moving
  camera and returns the dense event tensor (T, H, W, 2).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..common.errors import DatasetError
from ..common.rng import RandomState, as_random_state

__all__ = ["DVSCamera", "saccade_trajectory", "record_moving_image"]

_LOG_EPS = 0.02  # luminance floor; keeps log() finite on black background


class DVSCamera:
    """Per-pixel brightness-change event detector.

    Parameters
    ----------
    threshold:
        Log-intensity contrast threshold for emitting an event (typical
        real-DVS values are 0.1-0.3).
    noise_rate:
        Probability per pixel per frame of a spurious background event
        (shot noise), split evenly between polarities.
    max_events_per_step:
        Refractory cap: at most this many events per pixel per frame per
        polarity (a real pixel cannot re-arm arbitrarily fast).
    rng:
        Randomness for the shot noise.
    """

    def __init__(self, threshold: float = 0.15, noise_rate: float = 0.0,
                 max_events_per_step: int = 3,
                 rng: RandomState | int | None = None):
        if threshold <= 0:
            raise DatasetError(f"threshold must be positive, got {threshold}")
        if not 0.0 <= noise_rate < 1.0:
            raise DatasetError(f"noise_rate must be in [0, 1), got {noise_rate}")
        if max_events_per_step < 1:
            raise DatasetError(
                f"max_events_per_step must be >= 1, got {max_events_per_step}"
            )
        self.threshold = float(threshold)
        self.noise_rate = float(noise_rate)
        self.max_events_per_step = int(max_events_per_step)
        self.rng = as_random_state(rng)
        self._reference: np.ndarray | None = None

    def reset(self, first_frame: np.ndarray) -> None:
        """Latch the reference levels on the first frame (no events)."""
        self._reference = np.log(np.asarray(first_frame, float) + _LOG_EPS)

    def observe(self, frame: np.ndarray) -> np.ndarray:
        """Process one frame; returns (H, W, 2) event counts (ON, OFF).

        Multiple threshold crossings in a single frame emit multiple
        events, as in a real sensor with a fast refractory period.
        """
        if self._reference is None:
            raise DatasetError("DVSCamera.observe called before reset")
        log_frame = np.log(np.asarray(frame, float) + _LOG_EPS)
        delta = log_frame - self._reference
        cap = self.max_events_per_step
        on_counts = np.minimum(np.floor(np.maximum(delta, 0.0) / self.threshold),
                               cap)
        off_counts = np.minimum(np.floor(np.maximum(-delta, 0.0) / self.threshold),
                                cap)
        # Pixels that fired re-arm at the *current* level (the reference
        # latches after the refractory period), so a static scene emits no
        # further events however large the original contrast step was.
        fired = (on_counts + off_counts) > 0
        self._reference = np.where(fired, log_frame, self._reference)
        events = np.stack([on_counts, off_counts], axis=-1)
        if self.noise_rate > 0:
            noise = self.rng.random(events.shape) < (self.noise_rate / 2.0)
            events = events + noise
        return events


def saccade_trajectory(steps: int, amplitude: float = 3.0,
                       rng: RandomState | int | None = None,
                       jitter: float = 0.0) -> np.ndarray:
    """The N-MNIST three-saccade camera path as (steps, 2) displacements.

    The original recording moves the sensor along a triangle: right-down,
    then left-down, then straight up, each leg taking a third of the
    sample.  Returned displacements are in pixels relative to the start.

    Parameters
    ----------
    steps:
        Total number of frames (split into 3 equal legs).
    amplitude:
        Peak displacement in pixels.
    jitter:
        Gaussian noise (pixels) added per step, modelling platform shake.
    """
    if steps < 3:
        raise DatasetError(f"need at least 3 steps for 3 saccades, got {steps}")
    generator = as_random_state(rng)
    corners = np.array([
        [0.0, 0.0],
        [amplitude, amplitude / 2.0],      # leg 1: right and slightly down
        [-amplitude / 2.0, amplitude],     # leg 2: sweep left, further down
        [0.0, 0.0],                        # leg 3: return up to origin
    ])
    leg_lengths = [steps // 3, steps // 3, steps - 2 * (steps // 3)]
    path = []
    for leg in range(3):
        t = np.linspace(0.0, 1.0, leg_lengths[leg], endpoint=False)[:, None]
        path.append(corners[leg] * (1 - t) + corners[leg + 1] * t)
    trajectory = np.concatenate(path, axis=0)
    if jitter > 0:
        trajectory = trajectory + generator.normal(0.0, jitter, trajectory.shape)
    return trajectory


def record_moving_image(image: np.ndarray, steps: int,
                        sensor_size: int = 34,
                        camera: DVSCamera | None = None,
                        amplitude: float = 3.0,
                        rng: RandomState | int | None = None,
                        jitter: float = 0.15) -> np.ndarray:
    """Simulate a DVS recording of a static ``image`` under saccadic motion.

    The image is placed at the centre of a ``sensor_size`` canvas and
    translated (sub-pixel, bilinear) along the saccade path; the camera
    converts frame-to-frame brightness changes into events.

    Returns
    -------
    ndarray
        Dense event tensor of shape (steps, sensor_size, sensor_size, 2).
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise DatasetError(f"image must be 2-D, got shape {image.shape}")
    if image.shape[0] > sensor_size or image.shape[1] > sensor_size:
        raise DatasetError(
            f"image {image.shape} larger than sensor {sensor_size}"
        )
    generator = as_random_state(rng)
    camera = camera or DVSCamera(rng=generator.child("camera"))

    canvas = np.zeros((sensor_size, sensor_size), dtype=np.float64)
    y0 = (sensor_size - image.shape[0]) // 2
    x0 = (sensor_size - image.shape[1]) // 2
    canvas[y0:y0 + image.shape[0], x0:x0 + image.shape[1]] = image

    trajectory = saccade_trajectory(
        steps, amplitude=amplitude, rng=generator.child("saccade"),
        jitter=jitter,
    )
    events = np.zeros((steps, sensor_size, sensor_size, 2), dtype=np.float64)
    first = ndimage.shift(canvas, trajectory[0][::-1], order=1, mode="constant")
    camera.reset(first)
    for t in range(steps):
        # trajectory columns are (dx, dy); ndimage.shift wants (rows, cols).
        frame = ndimage.shift(canvas, trajectory[t][::-1], order=1,
                              mode="constant")
        events[t] = camera.observe(frame)
    return events
