"""SI unit constants and pretty-printing helpers for the hardware modules.

The analog circuit simulator works in plain SI units (volts, amperes, ohms,
farads, seconds).  This module provides the multipliers used when entering
component values (``4.56 * KILO`` ohms, ``10.14 * PICO`` farads, ``10 *
NANO`` seconds) and a formatter that renders a raw SI value with an
engineering prefix (``si_format(3.329e-9, "J") == "3.329 nJ"``).
"""

from __future__ import annotations

__all__ = [
    "FEMTO",
    "PICO",
    "NANO",
    "MICRO",
    "MILLI",
    "KILO",
    "MEGA",
    "GIGA",
    "si_format",
]

FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

_PREFIXES = [
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
]


def si_format(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` with an engineering prefix.

    Parameters
    ----------
    value:
        Raw SI value, e.g. ``3.329e-9``.
    unit:
        Unit suffix, e.g. ``"J"`` or ``"W"``.
    digits:
        Significant digits to keep.

    Examples
    --------
    >>> si_format(3.329e-9, "J")
    '3.329 nJ'
    >>> si_format(0.00111, "W")
    '1.11 mW'
    >>> si_format(0.0, "V")
    '0 V'
    """
    if value == 0:
        return f"0 {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in _PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            text = f"{scaled:.{digits}g}"
            return f"{text} {prefix}{unit}".rstrip()
    # Smaller than a femto-unit: fall back to scientific notation.
    return f"{value:.{digits}g} {unit}".rstrip()
