"""Per-client stream sessions on a served model.

A :class:`Session` is the unit of statefulness in the serving layer: one
client's live spike stream, carried by a batch-1
:class:`~repro.core.engine.StreamState`.  Sessions are created and owned
by a :class:`~repro.serve.server.ModelServer`; the micro-batcher gathers
many sessions' states into one batched state per tick and scatters the
advanced rows back, so a session never notices whose chunks shared its
batch (the gather/scatter is bitwise-transparent for the fused engine —
see ``docs/serving.md``).
"""

from __future__ import annotations

from ..core.engine import StreamState

__all__ = ["Session"]


class Session:
    """One client's resident stream on a served model.

    Attributes
    ----------
    session_id:
        Server-assigned identifier (``"s000001"``-style).
    state:
        The batch-1 :class:`~repro.core.engine.StreamState` carrying the
        stream across chunks (under the server's *primary* weights —
        ideal, or the hardware realization in hardware mode).
    shadow_state:
        A second batch-1 state carried only by shadow-mode servers: the
        same input stream advanced under the hardware realization, so
        every chunk yields an ideal/hardware output pair to diff.
        ``None`` otherwise.
    created_at, last_active:
        Server-clock timestamps of creation and the last completed chunk.
    chunks:
        Number of chunks completed for this session.
    divergence_sum:
        Accumulated per-chunk ideal-vs-hardware output divergence
        (shadow mode only; mean it over ``chunks`` for the session rate).
    """

    __slots__ = ("session_id", "state", "shadow_state", "created_at",
                 "last_active", "chunks", "divergence_sum")

    def __init__(self, session_id: str, state: StreamState, now: float,
                 shadow_state: StreamState | None = None):
        self.session_id = session_id
        self.state = state
        self.shadow_state = shadow_state
        self.created_at = now
        self.last_active = now
        self.chunks = 0
        self.divergence_sum = 0.0

    @property
    def steps(self) -> int:
        """Total time steps this stream has consumed."""
        return int(self.state.steps[0])

    def __repr__(self) -> str:
        return (f"Session({self.session_id}, chunks={self.chunks}, "
                f"steps={self.steps})")
