"""Experiment registry: id -> runner, with the per-experiment paper index.

``EXPERIMENTS`` is the single source of truth mapping each of the paper's
tables/figures to the code that regenerates it; DESIGN.md's per-experiment
index mirrors this table.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..common.errors import ExperimentError
from . import runners

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment", "run_experiment"]


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible artifact of the paper.

    Attributes
    ----------
    experiment_id:
        Stable id used by the CLI and the bench files.
    paper_artifact:
        Which table/figure/section of the paper this regenerates.
    description:
        One-line summary.
    runner:
        Callable ``(profile: str | None) -> ExperimentResult``.
    """

    experiment_id: str
    paper_artifact: str
    description: str
    runner: Callable


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec for spec in [
        ExperimentSpec(
            "table1", "Table I",
            "Hyper-parameters used throughout the paper",
            runners.run_table1),
        ExperimentSpec(
            "table2-nmnist", "Table II (N-MNIST rows)",
            "N-MNIST classification: adaptive threshold vs hard reset",
            runners.run_table2_nmnist),
        ExperimentSpec(
            "table2-shd", "Table II (SHD rows)",
            "SHD classification: adaptive threshold vs hard reset",
            runners.run_table2_shd),
        ExperimentSpec(
            "fig1", "Fig. 1",
            "Synapse PSP and adaptive-threshold dynamics",
            runners.run_fig1),
        ExperimentSpec(
            "fig4", "Fig. 4",
            "Dataset raster samples (synthetic N-MNIST / SHD)",
            runners.run_fig4),
        ExperimentSpec(
            "fig5", "Fig. 5",
            "Spatial-temporal pattern association samples",
            runners.run_fig5),
        ExperimentSpec(
            "fig7", "Fig. 7",
            "Neuron circuit transient (PSP, threshold, spike, feedback)",
            runners.run_fig7),
        ExperimentSpec(
            "fig8", "Fig. 8",
            "Accuracy under 4/5-bit quantization and process variation",
            runners.run_fig8),
        ExperimentSpec(
            "fig8-aware", "Fig. 8 (recovery)",
            "Hardware-aware training vs post-hoc mapping at 4-bit/10% "
            "variation",
            runners.run_fig8_aware),
        ExperimentSpec(
            "power-area", "Section V-C",
            "Power / energy / area of the neuron+synapse circuit",
            runners.run_power_area),
        ExperimentSpec(
            "ablation-surrogate", "(design ablation)",
            "erfc vs sigmoid vs triangle vs rectangular surrogate",
            runners.run_ablation_surrogate),
        ExperimentSpec(
            "ablation-gradient", "(design ablation)",
            "exact filter-adjoint BPTT vs truncated eq. (13)",
            runners.run_ablation_gradient),
        ExperimentSpec(
            "ablation-timing", "(dataset property check)",
            "timing information in synthetic SHD (time-shuffle control)",
            runners.run_ablation_timing),
    ]
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up a spec; raises :class:`ExperimentError` for unknown ids."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(experiment_id: str, profile: str | None = None):
    """Run one experiment and return its :class:`ExperimentResult`."""
    spec = get_experiment(experiment_id)
    return spec.runner(profile)
