"""Unit tests for repro.core.loss."""

import numpy as np
import pytest

from repro.common.errors import ShapeError
from repro.core.loss import CrossEntropyRateLoss, VanRossumLoss, softmax


class TestSoftmax:
    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        p = softmax(rng.normal(size=(4, 7)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

    def test_handles_large_logits(self):
        p = softmax(np.array([[1e4, 0.0]]))
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)


class TestCrossEntropyRateLoss:
    def test_uniform_counts_give_log_classes(self):
        loss = CrossEntropyRateLoss()
        outputs = np.zeros((2, 10, 5))
        value, grad = loss.value_and_grad(outputs, np.array([0, 3]))
        assert value == pytest.approx(np.log(5.0), rel=1e-6)
        assert grad.shape == outputs.shape

    def test_correct_class_spikes_lower_loss(self):
        loss = CrossEntropyRateLoss()
        outputs = np.zeros((1, 10, 3))
        outputs[0, :, 1] = 1.0
        value_right, _ = loss.value_and_grad(outputs, np.array([1]))
        value_wrong, _ = loss.value_and_grad(outputs, np.array([0]))
        assert value_right < value_wrong

    def test_gradient_pushes_correct_class_up(self):
        loss = CrossEntropyRateLoss()
        outputs = np.zeros((1, 10, 3))
        _, grad = loss.value_and_grad(outputs, np.array([2]))
        # Negative gradient on the target class (more spikes -> lower loss).
        assert grad[0, 0, 2] < 0
        assert grad[0, 0, 0] > 0

    def test_gradient_constant_over_time(self):
        loss = CrossEntropyRateLoss()
        rng = np.random.default_rng(1)
        outputs = (rng.random((2, 8, 4)) < 0.3).astype(float)
        _, grad = loss.value_and_grad(outputs, np.array([1, 2]))
        for t in range(1, 8):
            np.testing.assert_allclose(grad[:, t, :], grad[:, 0, :])

    def test_gradient_matches_fd_on_counts(self):
        """The loss is smooth in the output values; FD-check one entry."""
        loss = CrossEntropyRateLoss(count_scale=0.7)
        rng = np.random.default_rng(2)
        outputs = rng.random((2, 6, 4))
        labels = np.array([0, 3])
        _, grad = loss.value_and_grad(outputs, labels)
        eps = 1e-6
        for idx in [(0, 2, 1), (1, 5, 3)]:
            up = outputs.copy()
            up[idx] += eps
            down = outputs.copy()
            down[idx] -= eps
            fd = (loss.value_and_grad(up, labels)[0]
                  - loss.value_and_grad(down, labels)[0]) / (2 * eps)
            assert grad[idx] == pytest.approx(fd, rel=1e-5, abs=1e-9)

    def test_predict_argmax_counts(self):
        loss = CrossEntropyRateLoss()
        outputs = np.zeros((2, 5, 3))
        outputs[0, :, 2] = 1.0
        outputs[1, :2, 0] = 1.0
        np.testing.assert_array_equal(loss.predict(outputs), [2, 0])

    def test_metrics(self):
        loss = CrossEntropyRateLoss()
        outputs = np.zeros((2, 5, 3))
        outputs[0, :, 1] = 1.0
        outputs[1, :, 1] = 1.0
        metrics = loss.metrics(outputs, np.array([1, 0]))
        assert metrics["accuracy"] == 0.5

    def test_label_validation(self):
        loss = CrossEntropyRateLoss()
        outputs = np.zeros((2, 5, 3))
        with pytest.raises(ShapeError):
            loss.value_and_grad(outputs, np.array([0, 5]))
        with pytest.raises(ShapeError):
            loss.value_and_grad(outputs, np.array([0]))
        with pytest.raises(ShapeError):
            loss.value_and_grad(np.zeros((2, 5)), np.array([0, 1]))


class TestVanRossumLoss:
    def test_zero_for_identical_trains(self):
        loss = VanRossumLoss()
        rng = np.random.default_rng(3)
        spikes = (rng.random((2, 20, 4)) < 0.3).astype(float)
        value, grad = loss.value_and_grad(spikes, spikes.copy())
        assert value == 0.0
        np.testing.assert_allclose(grad, 0.0)

    def test_positive_for_different_trains(self):
        loss = VanRossumLoss()
        a = np.zeros((1, 20, 1))
        b = np.zeros((1, 20, 1))
        a[0, 5, 0] = 1.0
        b[0, 15, 0] = 1.0
        value, _ = loss.value_and_grad(a, b)
        assert value > 0.0

    def test_distance_grows_with_time_offset(self):
        """Near-coincident spikes are closer than distant ones — the
        property that makes the kernel loss a *timing* loss."""
        loss = VanRossumLoss()
        reference = np.zeros((1, 60, 1))
        reference[0, 20, 0] = 1.0
        distances = []
        for offset in (1, 3, 6, 12):
            other = np.zeros((1, 60, 1))
            other[0, 20 + offset, 0] = 1.0
            distances.append(loss.distance(reference, other))
        assert distances == sorted(distances)

    def test_gradient_matches_fd(self):
        loss = VanRossumLoss()
        rng = np.random.default_rng(4)
        outputs = rng.random((2, 15, 3))
        targets = (rng.random((2, 15, 3)) < 0.3).astype(float)
        _, grad = loss.value_and_grad(outputs, targets)
        eps = 1e-6
        for idx in [(0, 0, 0), (1, 7, 2), (0, 14, 1)]:
            up = outputs.copy()
            up[idx] += eps
            down = outputs.copy()
            down[idx] -= eps
            fd = (loss.value_and_grad(up, targets)[0]
                  - loss.value_and_grad(down, targets)[0]) / (2 * eps)
            assert grad[idx] == pytest.approx(fd, rel=1e-6, abs=1e-10)

    def test_shape_validation(self):
        loss = VanRossumLoss()
        with pytest.raises(ShapeError):
            loss.value_and_grad(np.zeros((1, 5, 2)), np.zeros((1, 5, 3)))
        with pytest.raises(ShapeError):
            loss.value_and_grad(np.zeros((5, 2)), np.zeros((5, 2)))

    def test_metrics_key(self):
        loss = VanRossumLoss()
        spikes = np.zeros((1, 10, 2))
        assert "van_rossum" in loss.metrics(spikes, spikes)
