"""Micro-batching admission queue: coalesce many streams into fused ticks.

One chunk from one session is tiny work — a ``(1, T, n)`` run wastes the
fused engine on Python overhead.  The :class:`MicroBatcher` holds incoming
chunks briefly and releases them in *ticks* of up to ``max_batch`` chunks,
each tick becoming a single padded fused batch
(:meth:`~repro.serve.server.ModelServer.poll`).  Latency is capped by
``max_wait_ms``: a tick is due as soon as a full batch is waiting **or**
the oldest queued chunk has waited that long.

Scheduling guarantees (property-tested in ``tests/unit/test_serve.py``):

* **FIFO fairness / no starvation** — ticks take eligible chunks strictly
  in arrival order; the oldest queued chunk is always in the next tick.
* **Stream order** — at most one chunk per session per tick (a session's
  second chunk depends on the state its first produces), and a skipped
  chunk keeps its place at the front of the queue.
* **Bounded queue / backpressure** — at most ``queue_limit`` chunks wait;
  further submits raise :class:`~repro.common.errors.CapacityError`
  immediately instead of growing the queue (shed or retry upstream).
"""

from __future__ import annotations

import collections
import math

import numpy as np

from ..common.errors import CapacityError

__all__ = ["Ticket", "StreamRequest", "MicroBatcher"]


class Ticket:
    """Completion handle for one submitted chunk.

    A ticket resolves into exactly one of three terminal states:

    * **completed** (:meth:`complete`) — ``outputs`` holds the
      ``(T_chunk, n_out)`` output spikes for exactly the submitted
      steps;
    * **failed** (:meth:`fail`) — the chunk's computation raised;
      ``error`` carries the message, the session's stream state was
      *not* advanced;
    * **expired** (:meth:`expire`) — the chunk out-waited its
      ``deadline`` in the admission queue and was shed unserved.

    ``done`` is true in any terminal state; ``ok`` only for a completed
    ticket.  On a shadow-mode server ``divergence`` additionally reports
    this chunk's ideal-vs-hardware output disagreement (fraction of
    spike entries that differ); ``degraded`` marks chunks served
    through a fallback (e.g. ideal weights after a hardware read
    failure) and ``retried`` chunks that completed via the per-request
    isolation path after their batched tick failed.
    """

    __slots__ = ("session_id", "arrival", "completed_at", "outputs",
                 "divergence", "deadline", "error", "expired", "degraded",
                 "retried")

    def __init__(self, session_id: str, arrival: float,
                 deadline: float | None = None):
        self.session_id = session_id
        self.arrival = arrival
        self.deadline = deadline
        self.completed_at: float | None = None
        self.outputs: np.ndarray | None = None
        self.divergence: float | None = None
        self.error: str | None = None
        self.expired = False
        self.degraded = False
        self.retried = False

    @property
    def done(self) -> bool:
        """Resolved — completed, failed, or expired."""
        return self.completed_at is not None

    @property
    def ok(self) -> bool:
        """Resolved successfully (outputs are valid)."""
        return (self.completed_at is not None and self.error is None
                and not self.expired)

    @property
    def latency(self) -> float:
        """Seconds from submission to resolution (arrival-to-answer)."""
        if self.completed_at is None:
            raise ValueError("ticket is not completed yet")
        return self.completed_at - self.arrival

    def complete(self, outputs: np.ndarray, now: float) -> None:
        self.outputs = outputs
        self.completed_at = now

    def fail(self, error: str, now: float) -> None:
        self.error = error
        self.completed_at = now

    def expire(self, now: float) -> None:
        self.expired = True
        self.completed_at = now

    def __repr__(self) -> str:
        if not self.done:
            state = "pending"
        elif self.expired:
            state = "expired"
        elif self.error is not None:
            state = "failed"
        else:
            state = f"done, {1e3 * self.latency:.2f} ms"
        return f"Ticket({self.session_id}, {state})"


class StreamRequest:
    """One queued chunk: session + data + arrival + completion ticket."""

    __slots__ = ("seq", "session", "chunk", "ticket")

    def __init__(self, seq: int, session, chunk: np.ndarray, ticket: Ticket):
        self.seq = seq
        self.session = session
        self.chunk = chunk
        self.ticket = ticket

    @property
    def arrival(self) -> float:
        return self.ticket.arrival

    @property
    def steps(self) -> int:
        return self.chunk.shape[0]


class MicroBatcher:
    """FIFO coalescing queue with batch-size and wait-time caps.

    Parameters
    ----------
    max_batch:
        Maximum chunks (— distinct sessions) per tick.
    max_wait_ms:
        Upper bound on how long an admitted chunk may wait before its
        tick is due.  ``0`` means every poll with a non-empty queue runs
        a tick (pure latency, no coalescing beyond what has already
        queued).
    queue_limit:
        Bound on queued chunks; beyond it :meth:`submit` raises
        :class:`~repro.common.errors.CapacityError`.
    """

    def __init__(self, max_batch: int = 8, max_wait_ms: float = 2.0,
                 queue_limit: int = 64):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1e3
        self.queue_limit = int(queue_limit)
        self._queue: collections.deque[StreamRequest] = collections.deque()
        self._per_session = collections.Counter()

    # -- admission -----------------------------------------------------------
    @property
    def pending(self) -> int:
        """Chunks currently queued."""
        return len(self._queue)

    @property
    def sessions_pending(self) -> int:
        """Distinct sessions with at least one queued chunk."""
        return len(self._per_session)

    def session_pending(self, session_id: str) -> int:
        """Chunks queued for one session (0 when none)."""
        return self._per_session.get(session_id, 0)

    def submit(self, request: StreamRequest) -> None:
        """Admit a chunk, or raise :class:`CapacityError` when full."""
        if len(self._queue) >= self.queue_limit:
            raise CapacityError(
                f"serving queue full ({self.queue_limit} chunks pending); "
                f"retry later or raise queue_limit")
        self._queue.append(request)
        self._per_session[request.session.session_id] += 1

    def shed_expired(self, now: float) -> list[StreamRequest]:
        """Remove and return every queued request past its ticket deadline.

        TTL-based load shedding: a request that has already out-waited
        its deadline would be served *late* — past the point its client
        stopped caring — so it is dropped before the next tick instead
        of wasting batch slots.  The caller expires the returned
        tickets.  Requests without a deadline never shed.
        """
        if not self._queue:
            return []
        shed: list[StreamRequest] = []
        kept: collections.deque[StreamRequest] = collections.deque()
        for request in self._queue:
            deadline = request.ticket.deadline
            if deadline is not None and now > deadline:
                shed.append(request)
                sid = request.session.session_id
                self._per_session[sid] -= 1
                if not self._per_session[sid]:
                    del self._per_session[sid]
            else:
                kept.append(request)
        self._queue = kept
        return shed

    # -- scheduling ----------------------------------------------------------
    def oldest_arrival(self) -> float | None:
        return self._queue[0].arrival if self._queue else None

    def next_deadline(self) -> float | None:
        """The time at which the pending work becomes due regardless of
        batch occupancy (oldest arrival + max wait), or ``None`` when
        idle."""
        if not self._queue:
            return None
        return self._queue[0].arrival + self.max_wait

    def ready(self, now: float) -> bool:
        """Whether a tick is due at time ``now``: a full batch of distinct
        sessions is waiting, or the oldest chunk has waited long enough."""
        if not self._queue:
            return False
        if len(self._per_session) >= self.max_batch:
            return True
        return now >= self._queue[0].arrival + self.max_wait

    def collect(self) -> list[StreamRequest]:
        """Dequeue the next tick's chunks: oldest first, at most
        ``max_batch``, at most one per session.

        Chunks skipped because their session already has one in this tick
        keep their queue position, so per-session order is preserved and
        the global order stays FIFO.
        """
        taken: list[StreamRequest] = []
        taken_sessions: set[str] = set()
        skipped: collections.deque[StreamRequest] = collections.deque()
        queue = self._queue
        while queue and len(taken) < self.max_batch:
            request = queue.popleft()
            sid = request.session.session_id
            if sid in taken_sessions:
                skipped.append(request)
                continue
            taken.append(request)
            taken_sessions.add(sid)
            self._per_session[sid] -= 1
            if not self._per_session[sid]:
                del self._per_session[sid]
        skipped.extend(queue)
        self._queue = skipped
        return taken

    def __repr__(self) -> str:
        wait_ms = math.inf if self.max_wait == math.inf else 1e3 * self.max_wait
        return (f"MicroBatcher(pending={len(self._queue)}, "
                f"max_batch={self.max_batch}, max_wait_ms={wait_ms}, "
                f"queue_limit={self.queue_limit})")
