"""Phase 2: the rule registry.

Each rule is a pure function over :class:`~repro.analysis.lint.facts.
ProjectFacts` — it never touches the filesystem, so fixture tests can
run the whole registry over an in-memory tree.  Register a new rule by
appending a :class:`Rule` to :data:`RULES`; the engine, CLI, baseline
and docs pick it up from there (see ``docs/static_analysis.md``).
"""

from __future__ import annotations

import dataclasses
import sys

from .facts import ProjectFacts

__all__ = ["Finding", "RULES", "Rule", "run_rules"]


@dataclasses.dataclass(frozen=True)
class Finding:
    """One located violation."""

    rule: str
    severity: str      # "error" | "warning" (the gate fails on both)
    path: str          # repo-relative posix path
    line: int
    col: int
    message: str
    hint: str

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)

    @property
    def baseline_key(self):
        # Line numbers shift on every edit; baselines match on content.
        return (self.rule, self.path, self.message)


@dataclasses.dataclass(frozen=True)
class Rule:
    id: str
    severity: str
    summary: str       # one-liner for --list-rules and the docs
    hint: str          # generic fix hint attached to every finding
    check: object      # callable(rule, facts) -> iterable of Finding

    def finding(self, path: str, line: int, col: int, message: str,
                hint: str | None = None) -> Finding:
        return Finding(rule=self.id, severity=self.severity, path=path,
                       line=line, col=col, message=message,
                       hint=self.hint if hint is None else hint)

    def run(self, facts: ProjectFacts):
        return list(self.check(self, facts))


# ---------------------------------------------------------------------------
# R1 determinism
# ---------------------------------------------------------------------------

def _check_determinism(rule: Rule, facts: ProjectFacts):
    exempt = set(facts.config.determinism_exempt)
    for mod in facts.src_modules():
        if mod.path in exempt:
            continue
        for ref in mod.clock_calls:
            yield rule.finding(
                mod.path, ref.line, ref.col,
                f"wall-clock read `{ref.name}()` in an engine path",
                hint="accept an injectable `timer=time.perf_counter` "
                     "parameter and call through it (references are "
                     "fine, direct calls are not)")
        for ref in mod.rng_calls:
            yield rule.finding(
                mod.path, ref.line, ref.col,
                f"unseeded random source `{ref.name}`",
                hint="derive a stream from the run seed with "
                     "`RandomState(seed).child(name)` instead of "
                     "ambient randomness")


# ---------------------------------------------------------------------------
# R2 fault-site catalog
# ---------------------------------------------------------------------------

def _check_fault_sites(rule: Rule, facts: ProjectFacts):
    known = set(facts.known_sites)
    if not known:
        return
    for path in sorted(facts.modules):
        mod = facts.modules[path]
        for ref in mod.fault_site_refs:
            if ref.name not in known:
                yield rule.finding(
                    path, ref.line, ref.col,
                    f"fault site '{ref.name}' is not in KNOWN_SITES")
    exercised = set()
    for mod in facts.test_modules():
        exercised |= mod.site_literals
    anchor = facts.config.faults_module
    for site in facts.known_sites:
        if site not in exercised:
            yield rule.finding(
                anchor, 1, 0,
                f"catalog entry '{site}' is never exercised by any test",
                hint="add a test that injects this site (see "
                     "tests/unit/test_faults.py) or retire the entry")


# ---------------------------------------------------------------------------
# R3 instrument catalog
# ---------------------------------------------------------------------------

_METRIC_KINDS = ("counter", "gauge", "histogram")


def _check_instruments(rule: Rule, facts: ProjectFacts):
    catalog = facts.instrument_catalog
    if catalog is None:
        return
    seen_kinds: dict = {}   # exact name -> {metric kind: first Finding site}
    for mod in facts.src_modules():
        for inst in mod.instruments:
            if inst.prefix:
                if not catalog.covers_prefix(inst.name):
                    yield rule.finding(
                        mod.path, inst.line, inst.col,
                        f"dynamic instrument name with prefix "
                        f"'{inst.name}…' matches nothing in the "
                        f"docs/observability.md catalog")
                continue
            if not catalog.covers(inst.name):
                yield rule.finding(
                    mod.path, inst.line, inst.col,
                    f"instrument '{inst.name}' ({inst.kind}) is not in "
                    f"the docs/observability.md catalog")
            if inst.kind in _METRIC_KINDS:
                kinds = seen_kinds.setdefault(inst.name, {})
                kinds.setdefault(inst.kind, (mod.path, inst.line,
                                             inst.col))
    for name in sorted(seen_kinds):
        kinds = seen_kinds[name]
        if len(kinds) > 1:
            ordered = sorted(kinds.items(), key=lambda kv: kv[1])
            first_kind, _ = ordered[0]
            for other_kind, (path, line, col) in ordered[1:]:
                yield rule.finding(
                    path, line, col,
                    f"instrument '{name}' registered as {other_kind} "
                    f"but also as {first_kind} elsewhere",
                    hint="one name, one kind — the MetricsRegistry "
                         "raises on this at run time; rename one side")


# ---------------------------------------------------------------------------
# R4 layer DAG + external dependencies
# ---------------------------------------------------------------------------

def _stdlib_roots() -> frozenset:
    return frozenset(sys.stdlib_module_names)


def _check_layers(rule: Rule, facts: ProjectFacts):
    layers = facts.config.layers
    stdlib = _stdlib_roots()
    allowed = facts.config.external_allowed
    per_pkg = facts.config.external_per_package

    for mod in facts.src_modules():
        if mod.package is None:
            continue  # the root ``repro/__init__`` facade re-exports all
        pkg_layer = layers.get(mod.package)
        pkg_allowed = allowed | per_pkg.get(mod.package, frozenset())
        for imp in mod.imports:
            if imp.root == "repro":
                if not imp.toplevel:
                    continue  # lazy imports are the sanctioned upward edge
                parts = imp.target.split(".")
                if len(parts) > 1:
                    targets = [imp.target]
                else:
                    # ``from repro import serve``: the names are the
                    # subpackages actually imported.
                    targets = [f"repro.{name}" for name in imp.names]
                for target in targets:
                    target_pkg = target.split(".")[1]
                    if target_pkg == mod.package:
                        continue
                    target_layer = layers.get(target_pkg)
                    if target_layer is None or pkg_layer is None:
                        continue
                    if target_layer >= pkg_layer:
                        yield rule.finding(
                            mod.path, imp.line, imp.col,
                            f"layer violation: {mod.package} (layer "
                            f"{pkg_layer}) imports {target} (layer "
                            f"{target_layer}) at module level")
            elif imp.root not in stdlib and imp.root not in pkg_allowed \
                    and imp.toplevel:
                yield rule.finding(
                    mod.path, imp.line, imp.col,
                    f"external dependency '{imp.root}' is not allowed "
                    f"in repro.{mod.package}",
                    hint="src/repro may import only the stdlib + numpy "
                         "(scipy/h5py only where grandfathered); stub "
                         "or gate anything else")

    # Module-level import cycles among repro modules.
    by_name = {m.module: m.path for m in facts.modules.values()
               if m.module}
    graph: dict = {}
    for mod in facts.src_modules():
        if not mod.module:
            continue
        edges = set()
        for imp in mod.imports:
            if imp.root != "repro" or not imp.toplevel:
                continue
            # ``from X import a`` may pull submodule X.a — resolve both.
            candidates = [imp.target] + [f"{imp.target}.{name}"
                                         for name in imp.names]
            for target in candidates:
                while target and target not in by_name:
                    target = target.rpartition(".")[0]
                if target and target != mod.module:
                    edges.add(target)
        graph[mod.module] = sorted(edges)

    state: dict = {}
    stack: list = []

    def visit(name):
        state[name] = "active"
        stack.append(name)
        for nxt in graph.get(name, ()):
            if state.get(nxt) == "active":
                cycle = stack[stack.index(nxt):] + [nxt]
                yield " -> ".join(cycle)
            elif nxt not in state:
                yield from visit(nxt)
        stack.pop()
        state[name] = "done"

    cycles = set()
    for name in sorted(graph):
        if name not in state:
            for cycle in visit(name):
                cycles.add(cycle)
    for cycle in sorted(cycles):
        head = cycle.split(" -> ")[0]
        yield rule.finding(
            by_name[head], 1, 0,
            f"module-level import cycle: {cycle}",
            hint="break the cycle with a function-level import on the "
                 "upward edge")


# ---------------------------------------------------------------------------
# R5 concurrency patterns
# ---------------------------------------------------------------------------

def _check_concurrency(rule: Rule, facts: ProjectFacts):
    for mod in facts.src_modules():
        for ref in mod.bare_acquires:
            yield rule.finding(
                mod.path, ref.line, ref.col,
                f"`{ref.name}.acquire()` without `with` or a "
                f"try/finally release",
                hint="use `with lock:` so the release survives "
                     "exceptions")
        for ref in mod.blocking_recvs:
            yield rule.finding(
                mod.path, ref.line, ref.col,
                f"blocking `{ref.name}.recv()` inside a `while True` "
                f"loop with no timeout path",
                hint="guard the recv with `conn.poll(timeout)` so the "
                     "loop can observe shutdown")
        for mix in mod.mixed_attrs:
            yield rule.finding(
                mod.path, mix.unguarded.line, mix.unguarded.col,
                f"attribute `{mix.cls}.{mix.attr}` is written here "
                f"outside a lock but under one at line "
                f"{mix.guarded.line}",
                hint="pick one discipline: always guard the attribute "
                     "or never share it across threads")


# ---------------------------------------------------------------------------
# R6 run-table schema
# ---------------------------------------------------------------------------

def _check_runtable(rule: Rule, facts: ProjectFacts):
    columns = set(facts.run_table_columns)
    if not columns:
        return
    for path in facts.config.runtable_files:
        mod = facts.modules.get(path)
        if mod is None:
            continue
        for ref in mod.runtable_refs:
            if ref.name not in columns:
                yield rule.finding(
                    path, ref.line, ref.col,
                    f"column '{ref.name}' is not in the fixed run-table "
                    f"schema (repro.common.runtable)")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

RULES = (
    Rule(id="determinism", severity="error",
         summary="no wall-clock reads or unseeded RNG in src/repro; "
                 "injectable timers and child()-derived streams only",
         hint="thread a `timer=` parameter or a seeded RandomState "
              "stream to the call site",
         check=_check_determinism),
    Rule(id="fault-sites", severity="error",
         summary="every fault-site string exists in KNOWN_SITES and "
                 "every catalog entry is exercised by a test",
         hint="add the site to repro.common.faults.KNOWN_SITES (and "
              "docs/robustness.md) or fix the typo",
         check=_check_fault_sites),
    Rule(id="instruments", severity="error",
         summary="every emitted repro.obs name is catalogued in "
                 "docs/observability.md with a single kind",
         hint="add the instrument to the docs/observability.md table "
              "or fix the name",
         check=_check_instruments),
    Rule(id="layer-dag", severity="error",
         summary="module-level imports respect the layer order "
                 "common<-obs<-core<-{autograd,data,hardware,analysis}"
                 "<-runtime<-serve<-experiments, no cycles, stdlib+"
                 "numpy only",
         hint="move the import inside the function that needs it, or "
              "move the code down a layer",
         check=_check_layers),
    Rule(id="concurrency", severity="warning",
         summary="locks acquired structurally, recv loops have a "
                 "timeout path, shared attributes guarded consistently",
         hint="prefer `with lock:` and poll-guarded receive loops",
         check=_check_concurrency),
    Rule(id="runtable-schema", severity="error",
         summary="column names in harness/benchjson match the fixed "
                 "run-table schema",
         hint="use a column from repro.common.runtable.RUN_TABLE_COLUMNS "
              "or extend the schema there first",
         check=_check_runtable),
)


def run_rules(facts: ProjectFacts) -> list:
    """All findings from every registered rule, in stable order."""
    findings: list = []
    for rule in RULES:
        findings.extend(rule.run(facts))
    findings.sort(key=lambda f: f.sort_key)
    return findings
