"""Spike-train metrics, distances, and raster utilities."""

from .metrics import (
    accuracy,
    active_fraction,
    confusion_matrix,
    firing_rate,
    per_class_accuracy,
    spike_count_histogram,
)
from .raster import (
    dense_to_events,
    events_to_dense,
    flatten_dvs,
    raster_summary,
    unflatten_dvs,
)
from .spike_distance import (
    coincidence_factor,
    pairwise_van_rossum,
    trace_correlation,
    van_rossum_distance,
    victor_purpura_distance,
)
from .timing import jitter_time, shuffle_time

__all__ = [
    "accuracy",
    "active_fraction",
    "confusion_matrix",
    "firing_rate",
    "per_class_accuracy",
    "spike_count_histogram",
    "dense_to_events",
    "events_to_dense",
    "flatten_dvs",
    "raster_summary",
    "unflatten_dvs",
    "coincidence_factor",
    "pairwise_van_rossum",
    "trace_correlation",
    "van_rossum_distance",
    "victor_purpura_distance",
    "jitter_time",
    "shuffle_time",
]
