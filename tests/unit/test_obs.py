"""Telemetry-plane unit tests: metrics, tracer, process-global hooks.

The contracts pinned here (see ``docs/observability.md``):

* **Exact instruments** — counters/gauges hold exact values;
  ``Histogram.percentile`` matches ``numpy.percentile``'s linear
  interpolation bit-for-bit, so registry numbers agree with the
  numpy-computed report numbers elsewhere in the repo.
* **Typed registry** — re-registering a name as a different instrument
  kind raises; same (name, labels) returns the same object.
* **Deterministic traces** — sequential ids plus an injected clock make
  two identical recordings export byte-identical JSONL.
* **Bounded buffer** — the tracer ring drops the *oldest* records past
  capacity and counts the drops.
* **Schema round-trip** — ``export_jsonl`` -> ``parse_jsonl`` is
  lossless (NaN/inf/quote/backslash/numpy-scalar attrs included), and
  ``parse_prometheus`` reads back every rendered snapshot.
* **No-op-fast globals** — with no bundle installed, the module hooks
  return immediately (shared ``NULL_SPAN``); ``active()`` restores the
  previously installed bundle on exit.
"""

import json
import math

import numpy as np
import pytest

from repro import obs
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricsRegistry,
    Tracer,
)


class FakeClock:
    """Deterministic monotonic clock: every call advances ``dt``."""

    def __init__(self, dt=1e-3):
        self.now = 0.0
        self.dt = dt

    def __call__(self):
        self.now += self.dt
        return self.now


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
class TestInstruments:
    def test_counter_counts_and_rejects_decrease(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_tracks_running_max(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(4.0)
        gauge.set(1.0)
        assert gauge.value == 1.0
        assert gauge.max == 4.0
        gauge.set_max(0.5)  # keeps the current value, not the candidate
        assert gauge.value == 1.0

    def test_histogram_percentile_matches_numpy(self):
        rng = np.random.default_rng(3)
        samples = rng.exponential(5.0, size=137)
        histogram = MetricsRegistry().histogram("h")
        for sample in samples:
            histogram.observe(sample)
        for p in (0, 25, 50, 90, 95, 99, 100):
            assert histogram.percentile(p) == pytest.approx(
                np.percentile(samples, p), rel=1e-12)
        # The start= window reads only samples added after the snapshot.
        start = histogram.count
        histogram.observe(1e9)
        assert histogram.percentile(50, start=start) == 1e9

    def test_histogram_empty_and_buckets(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        assert histogram.percentile(95) is None
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 1, 1]  # <=1, <=10, +Inf
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(55.5)


class TestRegistry:
    def test_same_key_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("serve.ticks") \
            is registry.counter("serve.ticks")
        assert registry.counter("pool.respawns", worker=1) \
            is not registry.counter("pool.respawns", worker=2)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_value_and_labelled_views(self):
        registry = MetricsRegistry()
        registry.counter("pool.respawns", worker=0).inc(2)
        registry.counter("pool.respawns", worker=1).inc()
        assert registry.value("pool.respawns", worker=0) == 2
        assert registry.value("missing", default=-1.0) == -1.0
        assert len(registry.labelled("pool.respawns")) == 2

    def test_prometheus_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("serve.completed", help="done").inc(7)
        registry.gauge("serve.max_tick_batch").set(3)
        histogram = registry.histogram("serve.queue_wait_ms",
                                       buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.render_prometheus()
        samples = obs.parse_prometheus(text)
        assert samples["repro_serve_completed"] == 7
        assert samples["repro_serve_max_tick_batch"] == 3
        assert samples['repro_serve_queue_wait_ms_bucket{le="1"}'] == 1
        assert samples['repro_serve_queue_wait_ms_bucket{le="+Inf"}'] == 2
        assert samples["repro_serve_queue_wait_ms_count"] == 2
        assert "# TYPE repro_serve_completed counter" in text
        assert "# HELP repro_serve_completed done" in text

    def test_prometheus_parser_rejects_garbage(self):
        with pytest.raises(ValueError, match="not 'name value'"):
            obs.parse_prometheus("just-a-name\n")
        with pytest.raises(ValueError, match="repeats sample"):
            obs.parse_prometheus("repro_x 1\nrepro_x 2\n")

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) \
            == sorted(DEFAULT_LATENCY_BUCKETS_MS)


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_nesting_parents_and_sequential_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            tracer.event("mark")
            with tracer.span("inner"):
                pass
        records = tracer.records
        assert [r["name"] for r in records] == ["mark", "inner", "outer"]
        mark, inner, closed_outer = records
        assert mark["parent"] == outer.span_id
        assert inner["parent"] == outer.span_id
        assert closed_outer["parent"] is None
        assert {r["trace"] for r in records} == {outer.trace_id}
        assert closed_outer["duration"] > 0
        assert mark["duration"] is None

    def test_ring_drops_oldest(self):
        tracer = Tracer(clock=FakeClock(), capacity=3)
        for index in range(5):
            tracer.event(f"e{index}")
        assert [r["name"] for r in tracer.records] == ["e2", "e3", "e4"]
        assert tracer.dropped == 2
        assert len(tracer) == 3

    def test_export_round_trip_with_hostile_attrs(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("nasty", text='say "hi"\\now', nan=float("nan"),
                     inf=float("inf"), neg=-0.0, npf=np.float64(2.5),
                     npi=np.int64(7), arr=np.arange(2), none=None,
                     flag=True)
        exported = tracer.export_jsonl()
        for line in exported.splitlines():
            json.loads(line)  # every line is standalone-valid JSON
        (record,) = obs.parse_jsonl(exported)
        attrs = record["attrs"]
        assert attrs["text"] == 'say "hi"\\now'
        assert math.isnan(attrs["nan"])
        assert attrs["inf"] == float("inf")
        assert attrs["npf"] == 2.5 and isinstance(attrs["npf"], float)
        assert attrs["npi"] == 7 and isinstance(attrs["npi"], int)
        assert attrs["arr"] == "[0 1]"  # arrays stringify, never nest
        assert attrs["none"] is None and attrs["flag"] is True

    def test_exports_are_deterministic_under_fake_clock(self):
        def record(tracer):
            with tracer.span("tick", batch=2):
                tracer.event("ticket.completed", request=0, ok=True)
            return tracer.export_jsonl()

        assert record(Tracer(clock=FakeClock())) \
            == record(Tracer(clock=FakeClock()))

    def test_span_error_exit_is_recorded(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = tracer.records
        assert record["attrs"]["error"] == "RuntimeError"

    def test_validate_record_rejects_schema_drift(self):
        good = obs.parse_jsonl(
            '{"type":"event","trace":"tr0001","span":"sp000001",'
            '"parent":null,"name":"x","start":0.0,"duration":null,'
            '"attrs":{}}\n')[0]
        assert obs.validate_record(good) is good
        for mutation, match in (
                ({"type": "blip"}, "span|event"),
                ({"duration": 1.0}, "duration null"),
                ({"name": ""}, "non-empty"),
                ({"attrs": {"k": [1]}}, "JSON scalar"),
        ):
            with pytest.raises(ValueError, match=match):
                obs.validate_record({**good, **mutation})
        with pytest.raises(ValueError, match="missing fields"):
            obs.validate_record({"type": "event"})

    def test_clear_resets_buffer(self):
        tracer = Tracer(clock=FakeClock(), capacity=1)
        tracer.event("a")
        tracer.event("b")
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)


# ---------------------------------------------------------------------------
# Process-global installation
# ---------------------------------------------------------------------------
class TestGlobals:
    def test_hooks_are_noop_without_bundle(self):
        assert obs.active_telemetry() is None
        assert obs.span("x") is obs.NULL_SPAN
        assert obs.timed_span("x", metric="m") is obs.NULL_SPAN
        obs.event("x")  # must not raise, must not record anywhere

    def test_active_scopes_and_restores(self):
        outer = obs.Telemetry(clock=FakeClock())
        inner = obs.Telemetry(clock=FakeClock())
        with obs.active(outer):
            with obs.active(inner):
                obs.event("seen")
                assert obs.active_telemetry() is inner
            assert obs.active_telemetry() is outer
        assert obs.active_telemetry() is None
        assert [r["name"] for r in inner.tracer.records] == ["seen"]
        assert len(outer.tracer) == 0

    def test_active_none_is_passthrough(self):
        with obs.active(None) as bundle:
            assert bundle is None
            assert obs.active_telemetry() is None

    def test_timed_decorator_records_span_and_histogram(self):
        telemetry = obs.Telemetry(clock=FakeClock(dt=0.5))

        @obs.timed("engine.run", metric="engine.run_ms", engine="fused")
        def work():
            return 42

        assert work() == 42  # no bundle installed: plain call
        with obs.active(telemetry):
            assert work() == 42
        (record,) = telemetry.tracer.records
        assert record["name"] == "engine.run"
        assert record["attrs"]["engine"] == "fused"
        histogram = telemetry.metrics.histogram("engine.run_ms")
        assert histogram.count == 1
        # FakeClock(dt=0.5): one clock tick between enter and exit.
        assert histogram.samples[0] == pytest.approx(500.0)

    def test_timed_span_observes_duration_ms(self):
        telemetry = obs.Telemetry(clock=FakeClock(dt=2.0))
        with telemetry.timed_span("tick", metric="tick_ms", batch=4) as span:
            pass
        assert span.attrs == {"batch": 4}
        assert telemetry.metrics.histogram("tick_ms").samples[0] \
            == pytest.approx(2000.0)
