"""Unit tests for the glyph renderer and DVS camera simulator."""

import numpy as np
import pytest

from repro.common.errors import DatasetError
from repro.data.dvs import DVSCamera, record_moving_image, saccade_trajectory
from repro.data.glyphs import DIGIT_STROKES, render_digit, render_digit_batch


class TestGlyphs:
    def test_all_digits_defined(self):
        assert sorted(DIGIT_STROKES) == list(range(10))

    def test_render_shape_and_range(self):
        image = render_digit(3, size=28, rng=0)
        assert image.shape == (28, 28)
        assert image.min() >= 0.0
        assert image.max() <= 1.0
        assert image.max() > 0.5          # something was drawn

    def test_deterministic_given_rng(self):
        a = render_digit(7, rng=5)
        b = render_digit(7, rng=5)
        np.testing.assert_array_equal(a, b)

    def test_jitter_varies_samples(self):
        a = render_digit(7, rng=1)
        b = render_digit(7, rng=2)
        assert not np.array_equal(a, b)

    def test_no_jitter_is_canonical(self):
        a = render_digit(4, rng=1, jitter=False)
        b = render_digit(4, rng=99, jitter=False)
        np.testing.assert_array_equal(a, b)

    def test_digits_are_distinct(self):
        """Canonical digits must differ pairwise (IoU < 0.8)."""
        images = [render_digit(d, jitter=False) > 0.3 for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                inter = np.logical_and(images[i], images[j]).sum()
                union = np.logical_or(images[i], images[j]).sum()
                assert inter / union < 0.8, f"digits {i} and {j} too similar"

    def test_invalid_digit(self):
        with pytest.raises(DatasetError):
            render_digit(10)

    def test_batch_rendering(self):
        batch = render_digit_batch([0, 1, 2], size=20, rng=0)
        assert batch.shape == (3, 20, 20)

    def test_glyph_occupies_centre(self):
        image = render_digit(8, size=28, rng=0)
        centre = image[7:21, 7:21]
        border = image.copy()
        border[4:24, 4:24] = 0.0
        assert centre.sum() > border.sum()


class TestDVSCamera:
    def test_no_events_for_static_scene(self):
        camera = DVSCamera(threshold=0.15)
        frame = np.random.default_rng(0).random((8, 8))
        camera.reset(frame)
        events = camera.observe(frame)
        assert events.sum() == 0

    def test_on_event_for_brightening(self):
        camera = DVSCamera(threshold=0.1)
        camera.reset(np.zeros((2, 2)))
        events = camera.observe(np.ones((2, 2)))
        assert np.all(events[..., 0] >= 1)    # ON channel
        assert events[..., 1].sum() == 0      # no OFF events

    def test_off_event_for_darkening(self):
        camera = DVSCamera(threshold=0.1)
        camera.reset(np.ones((2, 2)))
        events = camera.observe(np.zeros((2, 2)))
        assert np.all(events[..., 1] >= 1)
        assert events[..., 0].sum() == 0

    def test_reference_update_prevents_repeat_events(self):
        camera = DVSCamera(threshold=0.1)
        camera.reset(np.zeros((1, 1)))
        bright = np.full((1, 1), 0.5)
        first = camera.observe(bright)
        second = camera.observe(bright)     # same level: no new events
        assert first.sum() > 0
        assert second.sum() == 0

    def test_event_cap(self):
        camera = DVSCamera(threshold=0.01, max_events_per_step=3)
        camera.reset(np.zeros((1, 1)))
        events = camera.observe(np.ones((1, 1)))
        assert events.max() <= 3

    def test_observe_before_reset_raises(self):
        with pytest.raises(DatasetError):
            DVSCamera().observe(np.zeros((2, 2)))

    def test_parameter_validation(self):
        with pytest.raises(DatasetError):
            DVSCamera(threshold=0.0)
        with pytest.raises(DatasetError):
            DVSCamera(noise_rate=1.5)
        with pytest.raises(DatasetError):
            DVSCamera(max_events_per_step=0)


class TestSaccades:
    def test_three_legs_return_to_origin(self):
        path = saccade_trajectory(60, amplitude=3.0)
        assert path.shape == (60, 2)
        np.testing.assert_allclose(path[0], 0.0, atol=1e-9)
        # End of leg 3 approaches the origin again.
        assert np.linalg.norm(path[-1]) < 0.5

    def test_amplitude_respected(self):
        path = saccade_trajectory(90, amplitude=5.0)
        assert np.abs(path).max() <= 5.0 + 1e-9
        assert np.abs(path).max() > 2.0

    def test_too_few_steps(self):
        with pytest.raises(DatasetError):
            saccade_trajectory(2)

    def test_jitter_perturbs(self):
        smooth = saccade_trajectory(30, rng=0, jitter=0.0)
        noisy = saccade_trajectory(30, rng=0, jitter=0.3)
        assert not np.allclose(smooth, noisy)


class TestRecording:
    def test_event_tensor_shape(self):
        image = render_digit(5, size=20, rng=0)
        events = record_moving_image(image, steps=30, sensor_size=34, rng=1)
        assert events.shape == (30, 34, 34, 2)
        assert events.sum() > 0

    def test_moving_image_makes_events_each_leg(self):
        image = render_digit(0, size=20, rng=0)
        events = record_moving_image(image, steps=30, sensor_size=34, rng=1)
        thirds = events.reshape(3, 10, -1).sum(axis=(1, 2))
        assert np.all(thirds > 0)

    def test_image_too_large(self):
        with pytest.raises(DatasetError):
            record_moving_image(np.zeros((40, 40)), steps=10, sensor_size=34)

    def test_deterministic(self):
        image = render_digit(2, size=20, rng=0)
        a = record_moving_image(image, steps=12, rng=3)
        b = record_moving_image(image, steps=12, rng=3)
        np.testing.assert_array_equal(a, b)
