"""Unit tests for the autograd engine itself.

The engine is the reference for the manual BPTT, so it must itself be
grounded: every op is checked against central finite differences on fully
smooth graphs, and the smooth-spike network relaxation is FD-checked end
to end.
"""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    add,
    cross_entropy_with_logits,
    exp,
    log,
    matmul,
    mul,
    run_adaptive_reference,
    scale,
    sigmoid,
    smooth_spike,
    spike,
    square,
    sub,
    tmean,
    tsum,
    unbroadcast,
    van_rossum_loss,
)
from repro.core.neurons import NeuronParameters
from repro.core.surrogate import ErfcSurrogate


def finite_difference(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        grad[idx] = (f(xp) - f(xm)) / (2 * eps)
        it.iternext()
    return grad


class TestBasicOps:
    @pytest.mark.parametrize("op,np_op", [
        (add, lambda a, b: a + b),
        (sub, lambda a, b: a - b),
        (mul, lambda a, b: a * b),
    ])
    def test_binary_op_gradients(self, op, np_op):
        rng = np.random.default_rng(0)
        a0 = rng.normal(size=(3, 4))
        b0 = rng.normal(size=(3, 4))

        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        tsum(op(a, b)).backward()
        fd_a = finite_difference(lambda x: np_op(x, b0).sum(), a0)
        fd_b = finite_difference(lambda x: np_op(a0, x).sum(), b0)
        np.testing.assert_allclose(a.grad, fd_a, atol=1e-6)
        np.testing.assert_allclose(b.grad, fd_b, atol=1e-6)

    def test_matmul_gradients(self):
        rng = np.random.default_rng(1)
        a0 = rng.normal(size=(3, 4))
        b0 = rng.normal(size=(4, 2))
        a = Tensor(a0, requires_grad=True)
        b = Tensor(b0, requires_grad=True)
        tsum(matmul(a, b)).backward()
        np.testing.assert_allclose(
            a.grad, finite_difference(lambda x: (x @ b0).sum(), a0), atol=1e-6)
        np.testing.assert_allclose(
            b.grad, finite_difference(lambda x: (a0 @ x).sum(), b0), atol=1e-6)

    @pytest.mark.parametrize("op,np_f", [
        (exp, np.exp),
        (square, lambda x: x ** 2),
        (sigmoid, lambda x: 1 / (1 + np.exp(-x))),
    ])
    def test_unary_op_gradients(self, op, np_f):
        rng = np.random.default_rng(2)
        x0 = rng.normal(size=(5,))
        x = Tensor(x0, requires_grad=True)
        tsum(op(x)).backward()
        np.testing.assert_allclose(
            x.grad, finite_difference(lambda v: np_f(v).sum(), x0), atol=1e-5)

    def test_log_gradient(self):
        x0 = np.array([0.5, 1.0, 3.0])
        x = Tensor(x0, requires_grad=True)
        tsum(log(x)).backward()
        np.testing.assert_allclose(x.grad, 1.0 / x0)

    def test_mean_gradient(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        tmean(x).backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 1.0 / 6.0))

    def test_scale(self):
        x = Tensor(np.ones(3), requires_grad=True)
        tsum(scale(x, 2.5)).backward()
        np.testing.assert_allclose(x.grad, 2.5)

    def test_broadcast_add(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((1, 4)), requires_grad=True)
        tsum(add(a, b)).backward()
        np.testing.assert_allclose(b.grad, np.full((1, 4), 3.0))

    def test_unbroadcast(self):
        grad = np.ones((3, 4))
        np.testing.assert_allclose(unbroadcast(grad, (1, 4)),
                                   np.full((1, 4), 3.0))
        np.testing.assert_allclose(unbroadcast(grad, (4,)),
                                   np.full((4,), 3.0))

    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = add(mul(x, x), x)          # x^2 + x -> dy/dx = 2x + 1 = 5
        y.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [5.0])

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            mul(x, x).backward()

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = mul(x, 2.0).detach()
        assert y.requires_grad is False


class TestLossFunctions:
    def test_cross_entropy_against_fd(self):
        rng = np.random.default_rng(3)
        logits0 = rng.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])

        def f(x):
            shifted = x - x.max(axis=1, keepdims=True)
            p = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
            return -np.mean(np.log(p[np.arange(4), labels]))

        logits = Tensor(logits0, requires_grad=True)
        cross_entropy_with_logits(logits, labels).backward()
        np.testing.assert_allclose(logits.grad,
                                   finite_difference(f, logits0), atol=1e-6)

    def test_van_rossum_matches_core_loss(self):
        from repro.core.loss import VanRossumLoss
        rng = np.random.default_rng(4)
        out0 = (rng.random((2, 12, 3)) < 0.3).astype(float)
        target = (rng.random((2, 12, 3)) < 0.3).astype(float)
        core_value, core_grad = VanRossumLoss().value_and_grad(out0, target)

        steps = [Tensor(out0[:, t, :], requires_grad=True)
                 for t in range(12)]
        loss = van_rossum_loss(steps, target)
        assert float(loss.data) == pytest.approx(core_value, rel=1e-12)
        loss.backward()
        for t, tensor in enumerate(steps):
            np.testing.assert_allclose(tensor.grad, core_grad[:, t, :],
                                       atol=1e-12)


class TestSpikeOps:
    def test_spike_forward_is_heaviside(self):
        v = Tensor(np.array([-1.0, 0.0, 0.5, 2.0]))
        out = spike(v, threshold=0.5, surrogate=ErfcSurrogate())
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 1.0, 1.0])

    def test_spike_backward_is_surrogate(self):
        surrogate = ErfcSurrogate()
        v0 = np.array([0.3, 0.9, 1.4])
        v = Tensor(v0, requires_grad=True)
        tsum(spike(v, threshold=1.0, surrogate=surrogate)).backward()
        np.testing.assert_allclose(v.grad, surrogate.derivative(v0 - 1.0))

    def test_smooth_spike_fd(self):
        surrogate = ErfcSurrogate()
        v0 = np.array([0.7, 1.0, 1.2])
        v = Tensor(v0, requires_grad=True)
        tsum(smooth_spike(v, threshold=1.0, surrogate=surrogate)).backward()
        fd = finite_difference(
            lambda x: surrogate.smooth_step(x - 1.0).sum(), v0)
        np.testing.assert_allclose(v.grad, fd, atol=1e-6)


class TestSmoothNetworkFiniteDifference:
    def test_smooth_relaxed_network_gradcheck(self):
        """End-to-end FD check: with smooth spikes the whole unrolled
        network is differentiable, so autograd must match finite
        differences — this grounds the entire verification chain."""
        rng = np.random.default_rng(5)
        x = (rng.random((2, 6, 4)) < 0.5).astype(float)
        w0 = rng.normal(scale=0.8, size=(4, 3))
        params = NeuronParameters()
        surrogate = ErfcSurrogate()

        def loss_fn(w_flat):
            w = Tensor(w_flat.reshape(4, 3), requires_grad=False)
            outs = run_adaptive_reference([w], x, params=params,
                                          surrogate=surrogate, smooth=True)
            total = None
            for o in outs[-1]:
                term = tsum(square(o))
                total = term if total is None else add(total, term)
            return float(total.data)

        w = Tensor(w0.copy(), requires_grad=True)
        outs = run_adaptive_reference([w], x, params=params,
                                      surrogate=surrogate, smooth=True)
        total = None
        for o in outs[-1]:
            term = tsum(square(o))
            total = term if total is None else add(total, term)
        total.backward()
        fd = finite_difference(lambda v: loss_fn(v), w0.ravel(), eps=1e-6)
        np.testing.assert_allclose(w.grad.ravel(), fd, rtol=1e-4, atol=1e-6)
