"""Circuit primitives for the behavioral analog simulator.

The paper's neuron circuit (Fig. 6) was simulated in Cadence Virtuoso with
a TSMC 65 nm PDK; offline we substitute a compact behavioral simulator
built on modified nodal analysis (:mod:`repro.hardware.spice.mna`).  The
component set is exactly what the circuit needs:

* linear passives — :class:`Resistor`, :class:`Capacitor`;
* independent sources — :class:`VoltageSource` driven by a waveform
  callable;
* :class:`BehavioralSource` — the workhorse for active elements: a voltage
  source whose *target* value is an arbitrary function of other node
  voltages, tracked with a first-order lag (finite bandwidth) and clipped
  to supply rails (saturation) and an optional slew-rate limit.  Op-amps,
  comparators, summing amplifiers and CMOS inverters are all thin wrappers
  over it (see :func:`comparator`, :func:`summing_amp`, :func:`inverter`).

The lag makes the whole system *semi-implicit*: active-element outputs are
advanced explicitly from the previous step's node voltages, so each MNA
solve stays linear — robust and fast for the RC-dominated circuits here,
provided the time step resolves the fastest element lag (asserted by the
solver).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ...common.errors import CircuitError

__all__ = [
    "Component",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "BehavioralSource",
    "comparator",
    "summing_amp",
    "inverter",
    "GROUND",
]

GROUND = "0"


class Component:
    """Base class: every component has a name and a tuple of nodes."""

    def __init__(self, name: str, nodes: Sequence[str]):
        if not name:
            raise CircuitError("component needs a non-empty name")
        self.name = name
        self.nodes = tuple(str(n) for n in nodes)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, nodes={self.nodes})"


class Resistor(Component):
    """Ideal resistor between two nodes."""

    def __init__(self, name: str, node_a: str, node_b: str, resistance: float):
        super().__init__(name, (node_a, node_b))
        if resistance <= 0:
            raise CircuitError(f"{name}: resistance must be positive, "
                               f"got {resistance}")
        self.resistance = float(resistance)

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


class Capacitor(Component):
    """Ideal capacitor between two nodes (backward-Euler companion model)."""

    def __init__(self, name: str, node_a: str, node_b: str, capacitance: float,
                 initial_voltage: float = 0.0):
        super().__init__(name, (node_a, node_b))
        if capacitance <= 0:
            raise CircuitError(f"{name}: capacitance must be positive, "
                               f"got {capacitance}")
        self.capacitance = float(capacitance)
        self.initial_voltage = float(initial_voltage)


class VoltageSource(Component):
    """Independent voltage source; ``waveform`` maps time (s) to volts."""

    def __init__(self, name: str, node_plus: str, node_minus: str,
                 waveform: Callable[[float], float] | float):
        super().__init__(name, (node_plus, node_minus))
        if callable(waveform):
            self.waveform = waveform
        else:
            value = float(waveform)
            self.waveform = lambda t, _v=value: _v

    def value(self, t: float) -> float:
        return float(self.waveform(t))


class BehavioralSource(Component):
    """Voltage source targeting ``func(inputs)`` with lag, rails and slew.

    Parameters
    ----------
    name:
        Component name.
    output:
        Driven node (referenced to ground).
    inputs:
        Node names whose voltages are passed to ``func`` (in order).
    func:
        Target output voltage as a function of the input node voltages.
    tau:
        First-order response time constant (seconds); models the finite
        bandwidth of the amplifier output stage.
    rails:
        (v_low, v_high) output clamp.
    slew_rate:
        Max |dV/dt| in V/s; ``None`` disables.
    initial:
        Initial output voltage.
    """

    def __init__(self, name: str, output: str, inputs: Sequence[str],
                 func: Callable[..., float], tau: float,
                 rails: tuple[float, float] = (0.0, 1.0),
                 slew_rate: float | None = None,
                 initial: float = 0.0):
        super().__init__(name, (output, *inputs))
        if tau <= 0:
            raise CircuitError(f"{name}: tau must be positive, got {tau}")
        v_low, v_high = rails
        if v_low >= v_high:
            raise CircuitError(f"{name}: rails must satisfy low < high")
        self.output = str(output)
        self.inputs = tuple(str(n) for n in inputs)
        self.func = func
        self.tau = float(tau)
        self.rails = (float(v_low), float(v_high))
        self.slew_rate = None if slew_rate is None else float(slew_rate)
        self.initial = float(initial)
        self.state = float(initial)

    def reset(self) -> None:
        self.state = self.initial

    def advance(self, input_voltages: Sequence[float], dt: float) -> float:
        """Step the output lag toward the target; returns the new value."""
        target = float(self.func(*input_voltages))
        target = min(max(target, self.rails[0]), self.rails[1])
        # First-order lag, exact update for constant target over dt.
        decay = np.exp(-dt / self.tau)
        new_state = target + (self.state - target) * decay
        if self.slew_rate is not None:
            max_delta = self.slew_rate * dt
            delta = np.clip(new_state - self.state, -max_delta, max_delta)
            new_state = self.state + delta
        self.state = float(min(max(new_state, self.rails[0]), self.rails[1]))
        return self.state


# -- convenience builders -------------------------------------------------------
def comparator(name: str, in_plus: str, in_minus: str, output: str,
               gain: float = 2000.0, vdd: float = 1.0,
               tau: float = 2e-9, slew_rate: float | None = 2e9
               ) -> BehavioralSource:
    """Open-loop op-amp used as a comparator (paper Fig. 6).

    Output ≈ ``vdd * sigmoid(gain * (v+ - v-))`` with finite bandwidth —
    reproducing the non-ideal (slow-edged) comparator output the paper
    shows in yellow in Fig. 7(b).
    """

    def transfer(v_plus: float, v_minus: float) -> float:
        x = gain * (v_plus - v_minus) / vdd
        return vdd / (1.0 + np.exp(-np.clip(4.0 * x, -60.0, 60.0)))

    return BehavioralSource(name, output, (in_plus, in_minus), transfer,
                            tau=tau, rails=(0.0, vdd), slew_rate=slew_rate)


def summing_amp(name: str, in_node: str, output: str, offset: float,
                gain: float = 1.0, vdd: float = 1.0,
                tau: float = 1e-9) -> BehavioralSource:
    """Unity-gain summing amplifier: ``out = gain*in + offset`` (clipped).

    Implements the paper's bias op-amp that offsets the feedback ``h(t)``
    by the threshold bias ``Vth``.  The output starts at the offset (its
    zero-input operating point).
    """

    def transfer(v_in: float) -> float:
        return gain * v_in + offset

    return BehavioralSource(name, output, (in_node,), transfer,
                            tau=tau, rails=(0.0, vdd), initial=offset)


def inverter(name: str, in_node: str, output: str, vdd: float = 1.0,
             switch_point: float = 0.5, gain: float = 40.0,
             tau: float = 0.6e-9,
             initial: float | None = None) -> BehavioralSource:
    """CMOS inverter (behavioral): sharp inverting transfer around
    ``switch_point`` with a fast output stage — two in series restore the
    comparator output to ideal rail-to-rail spikes (paper Fig. 7(b),
    dashed green).

    ``initial`` sets the output's starting level; default assumes a low
    input at t=0 (output starts at VDD).  Pass 0 for the second inverter
    of a buffer pair.
    """

    def transfer(v_in: float) -> float:
        x = gain * (switch_point - v_in) / vdd
        return vdd / (1.0 + np.exp(-np.clip(4.0 * x, -60.0, 60.0)))

    return BehavioralSource(name, output, (in_node,), transfer,
                            tau=tau, rails=(0.0, vdd),
                            initial=vdd if initial is None else initial)
