"""Command-line entry point: ``repro-exp`` / ``python -m repro.experiments``.

Usage::

    repro-exp list                 # show all experiment ids
    repro-exp run fig7             # run one experiment, print its report
    repro-exp run table2-shd --profile full
    repro-exp run-all              # run everything (CI profile)
    repro-exp harness smoke        # scenario grid -> run_table.csv
    repro-exp harness full --bench-json   # + regenerate BENCH_*.json
"""

from __future__ import annotations

import argparse
import sys
import time

from .harness import PRESETS
from .registry import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Regenerate the tables and figures of 'Neuromorphic "
                    "Algorithm-hardware Codesign for Temporal Pattern "
                    "Learning' (DAC 2021).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    run.add_argument("--profile", choices=["ci", "full"], default=None,
                     help="scale profile (default: REPRO_PROFILE or ci)")

    run_all = sub.add_parser("run-all", help="run every experiment")
    run_all.add_argument("--profile", choices=["ci", "full"], default=None)

    harness = sub.add_parser(
        "harness",
        help="run a declarative scenario preset into one run table")
    harness.add_argument("preset", choices=sorted(PRESETS),
                         help="scenario grid to expand and execute "
                              "(see docs/experiments.md)")
    harness.add_argument("--table", default="run_table.csv",
                         help="run-table CSV output path "
                              "(default: run_table.csv)")
    harness.add_argument("--bench-json", action="store_true",
                         help="also regenerate the BENCH_*.json views "
                              "this table has rows for")
    harness.add_argument("--trace-dir", default=None,
                         help="switch telemetry on and export per-run "
                              "JSONL traces + Prometheus snapshots into "
                              "this directory (see docs/observability.md)")
    return parser


def _stopwatch(timer=time.perf_counter):
    """Elapsed-seconds closure over an injectable timer.

    Operator progress display only — never a measurement; results come
    from the harness's own injectable timers.
    """
    started = timer()
    return lambda: timer() - started


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(i) for i in EXPERIMENTS)
        for spec in EXPERIMENTS.values():
            print(f"{spec.experiment_id:<{width}}  {spec.paper_artifact:<22}"
                  f"  {spec.description}")
        return 0
    if args.command == "run":
        elapsed = _stopwatch()
        result = run_experiment(args.experiment_id, args.profile)
        print(result.render())
        print(f"\n[{args.experiment_id} finished in {elapsed():.1f}s]")
        return 0
    if args.command == "run-all":
        for experiment_id in EXPERIMENTS:
            elapsed = _stopwatch()
            result = run_experiment(experiment_id, args.profile)
            print("=" * 78)
            print(result.render())
            print(f"[{experiment_id}: {elapsed():.1f}s]")
        return 0
    if args.command == "harness":
        from .harness import preset_scenarios, run_scenarios

        elapsed = _stopwatch()
        table = run_scenarios(preset_scenarios(args.preset), log=print,
                              trace_dir=args.trace_dir)
        table.write_csv(args.table)
        print(f"wrote {args.table} ({len(table)} rows, {elapsed():.1f}s)")
        if args.trace_dir:
            print(f"wrote telemetry artifacts to {args.trace_dir}/")
        if args.bench_json:
            from ..common.errors import ExperimentError
            from . import benchjson

            for out_path, convert in (
                    ("BENCH_throughput.json", benchjson.throughput_report),
                    ("BENCH_serving.json", benchjson.serving_report),
                    ("BENCH_aware.json", benchjson.aware_report)):
                try:
                    report = convert(table)
                except ExperimentError as error:
                    print(f"skip {out_path}: {error}")
                    continue
                import json

                with open(out_path, "w") as handle:
                    json.dump(report, handle, indent=2, sort_keys=False)
                    handle.write("\n")
                print(f"wrote {out_path}")
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
