"""Unit tests for repro.analysis (metrics, distances, rasters)."""

import numpy as np
import pytest

from repro.analysis import (
    accuracy,
    active_fraction,
    coincidence_factor,
    confusion_matrix,
    dense_to_events,
    events_to_dense,
    firing_rate,
    flatten_dvs,
    pairwise_van_rossum,
    per_class_accuracy,
    raster_summary,
    spike_count_histogram,
    trace_correlation,
    unflatten_dvs,
    van_rossum_distance,
    victor_purpura_distance,
)
from repro.common.errors import ShapeError


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == \
            pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(ShapeError):
            accuracy(np.array([1]), np.array([1, 2]))
        with pytest.raises(ShapeError):
            accuracy(np.array([]), np.array([]))

    def test_confusion_matrix(self):
        predictions = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(predictions, labels, n_classes=3)
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_per_class_accuracy(self):
        predictions = np.array([0, 1, 0, 2])
        labels = np.array([0, 1, 1, 2])
        per_class = per_class_accuracy(predictions, labels, n_classes=4)
        assert per_class[0] == 1.0
        assert per_class[1] == 0.5
        assert per_class[2] == 1.0
        assert np.isnan(per_class[3])      # class absent

    def test_firing_rate_and_active_fraction(self):
        spikes = np.zeros((2, 10, 4))
        spikes[0, :, 0] = 1.0
        assert firing_rate(spikes) == pytest.approx(10 / 80)
        assert active_fraction(spikes) == pytest.approx(1 / 8)

    def test_spike_count_histogram(self):
        spikes = np.zeros((1, 5, 3))
        spikes[0, :, 1] = 1.0
        counts, edges = spike_count_histogram(spikes, bins=5)
        assert counts.sum() == 3
        assert len(edges) == 6


class TestVanRossumDistance:
    def test_identity(self):
        rng = np.random.default_rng(0)
        a = (rng.random((30, 3)) < 0.2).astype(float)
        assert van_rossum_distance(a, a) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a = (rng.random((25,)) < 0.2).astype(float)
        b = (rng.random((25,)) < 0.2).astype(float)
        assert van_rossum_distance(a, b) == pytest.approx(
            van_rossum_distance(b, a))

    def test_monotone_in_offset(self):
        base = np.zeros(50)
        base[10] = 1.0
        distances = []
        for offset in (2, 5, 10, 20):
            other = np.zeros(50)
            other[10 + offset] = 1.0
            distances.append(van_rossum_distance(base, other))
        assert distances == sorted(distances)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            van_rossum_distance(np.zeros(10), np.zeros(12))

    def test_pairwise_matrix(self):
        rng = np.random.default_rng(2)
        rasters = (rng.random((4, 20, 2)) < 0.2).astype(float)
        matrix = pairwise_van_rossum(rasters)
        assert matrix.shape == (4, 4)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)
        # Off-diagonal entries match the scalar function.
        expected = van_rossum_distance(rasters[0].reshape(20, 2),
                                       rasters[1].reshape(20, 2))
        assert matrix[0, 1] == pytest.approx(expected * 1.0, rel=1e-9)


class TestVictorPurpura:
    def test_identical_is_zero(self):
        train = np.zeros(20)
        train[[3, 8, 15]] = 1.0
        assert victor_purpura_distance(train, train) == 0.0

    def test_insert_delete_cost(self):
        a = np.zeros(20)
        a[5] = 1.0
        b = np.zeros(20)
        assert victor_purpura_distance(a, b) == 1.0     # delete one spike

    def test_shift_cheaper_than_delete_insert(self):
        a = np.zeros(20)
        a[5] = 1.0
        b = np.zeros(20)
        b[6] = 1.0
        # Shift by 1 costs 0.5*1 < 2 (delete + insert).
        assert victor_purpura_distance(a, b, cost=0.5) == pytest.approx(0.5)

    def test_far_shift_capped_by_two(self):
        a = np.zeros(50)
        a[2] = 1.0
        b = np.zeros(50)
        b[48] = 1.0
        assert victor_purpura_distance(a, b, cost=0.5) == pytest.approx(2.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            victor_purpura_distance(np.zeros(5), np.zeros(5), cost=-1.0)


class TestCoincidenceFactor:
    def test_identical_trains(self):
        train = np.zeros(40)
        train[[5, 15, 30]] = 1.0
        assert coincidence_factor(train, train) == pytest.approx(1.0, abs=0.3)

    def test_empty_pair(self):
        assert coincidence_factor(np.zeros(10), np.zeros(10)) == 1.0

    def test_one_empty(self):
        a = np.zeros(10)
        a[3] = 1.0
        assert coincidence_factor(a, np.zeros(10)) == 0.0

    def test_uncorrelated_near_zero(self):
        rng = np.random.default_rng(3)
        gammas = []
        for _ in range(30):
            a = (rng.random(200) < 0.1).astype(float)
            b = (rng.random(200) < 0.1).astype(float)
            gammas.append(coincidence_factor(a, b))
        assert abs(np.mean(gammas)) < 0.2


class TestTraceCorrelation:
    def test_perfect_correlation(self):
        rng = np.random.default_rng(4)
        a = (rng.random((30, 2)) < 0.3).astype(float)
        assert trace_correlation(a, a) == pytest.approx(1.0)

    def test_silent_trace_returns_zero(self):
        a = np.zeros((20, 2))
        b = np.ones((20, 2))
        assert trace_correlation(a, b) == 0.0


class TestRasterConversions:
    def test_events_dense_roundtrip(self):
        events = np.array([[0, 1], [3, 2], [3, 2], [9, 0]])
        dense = events_to_dense(events, steps=10, channels=3)
        assert dense[3, 2] == 2.0
        back = dense_to_events(dense)
        np.testing.assert_array_equal(np.sort(back, axis=0),
                                      np.sort(events, axis=0))

    def test_events_bounds_checked(self):
        with pytest.raises(ShapeError):
            events_to_dense(np.array([[10, 0]]), steps=10, channels=3)
        with pytest.raises(ShapeError):
            events_to_dense(np.array([[0, 5]]), steps=10, channels=3)

    def test_empty_events(self):
        dense = events_to_dense(np.zeros((0, 2)), steps=5, channels=2)
        assert dense.sum() == 0

    def test_raster_summary(self):
        raster = np.zeros((10, 4))
        raster[2, 1] = 1.0
        raster[7, 1] = 1.0
        summary = raster_summary(raster)
        assert summary["total_spikes"] == 2
        assert summary["active_channels"] == 1
        assert summary["first_spike_step"] == 2

    def test_dvs_flatten_roundtrip(self):
        rng = np.random.default_rng(5)
        events = (rng.random((6, 34, 34, 2)) < 0.05).astype(float)
        flat = flatten_dvs(events)
        assert flat.shape == (6, 2312)
        np.testing.assert_array_equal(unflatten_dvs(flat), events)

    def test_dvs_flatten_validates(self):
        with pytest.raises(ShapeError):
            flatten_dvs(np.zeros((6, 20, 34, 2)))
        with pytest.raises(ShapeError):
            unflatten_dvs(np.zeros((6, 100)))


# ---------------------------------------------------------------------------
# Static-analysis engine (repro.analysis.lint) — fixture-driven rule
# tests: one minimal bad/good snippet pair per rule, suppressions,
# baseline round-trip, the JSON schema, and self-hosting over the repo.
# ---------------------------------------------------------------------------

import json
from pathlib import Path

from repro.analysis.lint import (
    RULES,
    LintConfig,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.analysis.lint.engine import render_json, render_text
from repro.analysis.lint.facts import (
    InstrumentCatalog,
    build_facts,
    parse_instrument_catalog,
    parse_string_tuple,
)

REPO = Path(__file__).resolve().parents[2]

CATALOG = InstrumentCatalog(exact=frozenset({"ok.name"}),
                            wildcard_prefixes=frozenset())


def lint(sources, **overrides):
    return run_lint(sources=sources, config=LintConfig(**overrides))


def hits(result, rule_id):
    return [f for f in result.findings if f.rule == rule_id]


class TestLintRules:
    """One bad/good pair per rule, with exact file:line attribution."""

    def test_determinism_flags_wall_clock_and_rng(self):
        bad = ("import time\nimport numpy as np\n\n"
               "def f():\n"
               "    t = time.time()\n"
               "    x = np.random.rand(3)\n"
               "    g = np.random.default_rng()\n"
               "    return t, x, g\n")
        result = lint({"src/repro/core/bad.py": bad})
        found = {(f.line, f.message.split("`")[1])
                 for f in hits(result, "determinism")}
        assert (5, "time.time()") in found
        assert any(line == 6 for line, _ in found)
        assert any(line == 7 for line, _ in found)

    def test_determinism_good_injectable_and_seeded(self):
        good = ("import time\nimport numpy as np\n\n"
                "def f(timer=time.perf_counter, seed=0):\n"
                "    start = timer()\n"
                "    rng = np.random.default_rng(seed)\n"
                "    return timer() - start, rng\n")
        result = lint({"src/repro/core/good.py": good})
        assert hits(result, "determinism") == []

    def test_determinism_ignores_tests_and_monotonic(self):
        src = ("import time\n\ndef f():\n    return time.monotonic()\n")
        result = lint({"src/repro/core/mono.py": src,
                       "tests/unit/test_x.py":
                       "import time\nT = time.time()\n"})
        assert hits(result, "determinism") == []

    def test_fault_sites_unknown_site(self):
        bad = "def f(plan):\n    return plan.hit('no.such.site')\n"
        result = lint({"src/repro/serve/bad.py": bad,
                       "tests/unit/test_ok.py": "S = 'real.site'\n"},
                      known_sites=("real.site",))
        (finding,) = hits(result, "fault-sites")
        assert (finding.path, finding.line) == ("src/repro/serve/bad.py", 2)
        assert "no.such.site" in finding.message

    def test_fault_sites_catalog_entry_needs_a_test(self):
        src = "def f(plan):\n    return plan.should_fire('real.site')\n"
        result = lint({"src/repro/serve/ok.py": src,
                       "tests/unit/test_ok.py": "S = 'real.site'\n"},
                      known_sites=("real.site", "untested.site"))
        (finding,) = hits(result, "fault-sites")
        assert "untested.site" in finding.message
        assert "never exercised" in finding.message

    def test_fault_sites_good(self):
        result = lint(
            {"src/repro/serve/ok.py":
             "def f(plan):\n    return plan.hit('real.site')\n",
             "tests/unit/test_ok.py": "S = 'real.site'\n"},
            known_sites=("real.site",))
        assert hits(result, "fault-sites") == []

    def test_instruments_uncatalogued_name(self):
        bad = "def f(reg):\n    reg.counter('bad.name', 1)\n"
        result = lint({"src/repro/obs/bad.py": bad},
                      instrument_catalog=CATALOG)
        (finding,) = hits(result, "instruments")
        assert (finding.path, finding.line) == ("src/repro/obs/bad.py", 2)
        assert "bad.name" in finding.message

    def test_instruments_kind_conflict(self):
        bad = ("def f(reg):\n"
               "    reg.counter('ok.name', 1)\n"
               "    reg.gauge('ok.name', 2)\n")
        result = lint({"src/repro/obs/bad.py": bad},
                      instrument_catalog=CATALOG)
        (finding,) = hits(result, "instruments")
        assert finding.line == 3
        assert "gauge" in finding.message and "counter" in finding.message

    def test_instruments_good_exact_and_wildcard(self):
        catalog = InstrumentCatalog(
            exact=frozenset({"ok.name"}),
            wildcard_prefixes=frozenset({"serve."}))
        good = ("def f(reg, key):\n"
                "    reg.counter('ok.name', 1)\n"
                "    reg.counter(f'serve.{key}', 1)\n"
                "    reg.histogram('serve.tick_ms', 1.0)\n")
        result = lint({"src/repro/obs/good.py": good},
                      instrument_catalog=catalog)
        assert hits(result, "instruments") == []

    def test_layer_dag_upward_import(self):
        bad = "from repro.serve.server import ModelServer\n"
        result = lint({"src/repro/common/bad.py": bad})
        (finding,) = hits(result, "layer-dag")
        assert (finding.path, finding.line) == ("src/repro/common/bad.py", 1)
        assert "layer violation" in finding.message

    def test_layer_dag_relative_upward_import(self):
        bad = "from ..serve import server\n"
        result = lint({"src/repro/common/bad.py": bad})
        (finding,) = hits(result, "layer-dag")
        assert "repro.serve" in finding.message

    def test_layer_dag_lazy_import_is_sanctioned(self):
        good = ("def f():\n"
                "    from repro.serve.server import ModelServer\n"
                "    return ModelServer\n")
        result = lint({"src/repro/common/good.py": good})
        assert hits(result, "layer-dag") == []

    def test_layer_dag_external_dependency(self):
        result = lint({"src/repro/core/bad.py": "import pandas\n"})
        (finding,) = hits(result, "layer-dag")
        assert "pandas" in finding.message

    def test_layer_dag_numpy_and_stdlib_allowed(self):
        good = "import json\nimport numpy as np\n"
        result = lint({"src/repro/core/good.py": good})
        assert hits(result, "layer-dag") == []

    def test_layer_dag_cycle(self):
        result = lint({
            "src/repro/core/a.py": "from repro.core import b\n",
            "src/repro/core/b.py": "from repro.core import a\n",
            "src/repro/core/__init__.py": "",
        })
        cycles = [f for f in hits(result, "layer-dag")
                  if "cycle" in f.message]
        assert cycles and "repro.core.a" in cycles[0].message

    def test_concurrency_bare_acquire(self):
        bad = ("def f(lock):\n"
               "    lock.acquire()\n"
               "    lock.release()\n")
        result = lint({"src/repro/runtime/bad.py": bad})
        (finding,) = hits(result, "concurrency")
        assert finding.line == 2 and finding.severity == "warning"

    def test_concurrency_good_acquire_try_finally_and_with(self):
        good = ("def f(lock):\n"
                "    lock.acquire()\n"
                "    try:\n"
                "        pass\n"
                "    finally:\n"
                "        lock.release()\n"
                "\n"
                "def g(lock):\n"
                "    with lock:\n"
                "        pass\n")
        result = lint({"src/repro/runtime/good.py": good})
        assert hits(result, "concurrency") == []

    def test_concurrency_blocking_recv(self):
        bad = ("def loop(conn):\n"
               "    while True:\n"
               "        msg = conn.recv()\n")
        result = lint({"src/repro/runtime/bad.py": bad})
        (finding,) = hits(result, "concurrency")
        assert finding.line == 3 and "recv" in finding.message

    def test_concurrency_poll_guarded_recv_good(self):
        good = ("def loop(conn):\n"
                "    while True:\n"
                "        if not conn.poll(0.2):\n"
                "            continue\n"
                "        msg = conn.recv()\n")
        result = lint({"src/repro/runtime/good.py": good})
        assert hits(result, "concurrency") == []

    def test_concurrency_mixed_lock_discipline(self):
        bad = ("import threading\n"
               "class C:\n"
               "    def __init__(self):\n"
               "        self._lock = threading.Lock()\n"
               "        self.n = 0\n"
               "    def guarded(self):\n"
               "        with self._lock:\n"
               "            self.n += 1\n"
               "    def unguarded(self):\n"
               "        self.n += 1\n")
        result = lint({"src/repro/runtime/bad.py": bad})
        (finding,) = hits(result, "concurrency")
        assert finding.line == 10 and "C.n" in finding.message

    def test_runtable_unknown_column(self):
        bad = "def f(row):\n    return row['bogus_col']\n"
        result = lint(
            {"src/repro/experiments/bad.py": bad},
            run_table_columns=("run_id",),
            runtable_files=("src/repro/experiments/bad.py",))
        (finding,) = hits(result, "runtable-schema")
        assert finding.line == 2 and "bogus_col" in finding.message

    def test_runtable_good_and_unlisted_files_ignored(self):
        result = lint(
            {"src/repro/experiments/good.py":
             "def f(row):\n    return row['run_id']\n",
             "src/repro/serve/other.py":
             "def f(row):\n    return row['not_a_column']\n"},
            run_table_columns=("run_id",),
            runtable_files=("src/repro/experiments/good.py",))
        assert hits(result, "runtable-schema") == []

    def test_parse_error_is_reported(self):
        result = lint({"src/repro/core/broken.py": "def f(:\n"})
        (finding,) = [f for f in result.findings
                      if f.rule == "parse-error"]
        assert finding.path == "src/repro/core/broken.py"


class TestLintSuppressions:
    BAD = "import time\n\ndef f():\n    return time.time()\n"

    def test_same_line_suppression(self):
        src = ("import time\n\ndef f():\n"
               "    return time.time()  # repro: disable=determinism\n")
        result = lint({"src/repro/core/x.py": src})
        assert result.findings == [] and len(result.suppressed) == 1

    def test_line_above_suppression(self):
        src = ("import time\n\ndef f():\n"
               "    # repro: disable=determinism\n"
               "    return time.time()\n")
        result = lint({"src/repro/core/x.py": src})
        assert result.findings == []

    def test_file_wide_suppression(self):
        src = ("# repro: disable-file=determinism\n" + self.BAD)
        result = lint({"src/repro/core/x.py": src})
        assert result.findings == []

    def test_wrong_rule_id_does_not_suppress(self):
        src = ("import time\n\ndef f():\n"
               "    return time.time()  # repro: disable=concurrency\n")
        result = lint({"src/repro/core/x.py": src})
        assert len(hits(result, "determinism")) == 1


class TestLintBaseline:
    BAD = {"src/repro/core/x.py":
           "import time\n\ndef f():\n    return time.time()\n"}

    def test_round_trip(self, tmp_path):
        first = lint(self.BAD)
        assert len(first.findings) == 1
        path = tmp_path / "baseline.json"
        assert write_baseline(path, first) == 1

        baseline = load_baseline(path)
        second = run_lint(sources=self.BAD, config=LintConfig(),
                          baseline=baseline)
        assert second.findings == []
        assert len(second.baselined) == 1
        assert second.stale_baseline == []

    def test_stale_entries_surface(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, lint(self.BAD))
        fixed = run_lint(
            sources={"src/repro/core/x.py": "def f():\n    return 0\n"},
            config=LintConfig(), baseline=load_baseline(path))
        assert fixed.findings == []
        assert len(fixed.stale_baseline) == 1
        assert "stale baseline" in render_text(fixed)

    def test_regeneration_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_baseline(a, lint(self.BAD))
        write_baseline(b, lint(self.BAD))
        assert a.read_text() == b.read_text()

    def test_committed_baseline_is_empty_or_valid(self):
        payload = json.loads(
            (REPO / "tools" / "lint_baseline.json").read_text())
        assert payload["version"] == 1
        rule_ids = {rule.id for rule in RULES} | {"parse-error"}
        for entry in payload["findings"]:
            assert entry["rule"] in rule_ids
            assert (REPO / entry["path"]).exists(), entry


class TestLintOutput:
    def test_json_schema(self):
        result = lint({"src/repro/core/x.py":
                       "import time\nT = time.time()\n"})
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["tool"] == "repro.analysis.lint"
        assert payload["rules"] == [rule.id for rule in RULES]
        assert set(payload["counts"]) == {
            "raw", "reported", "suppressed", "baselined",
            "stale_baseline"}
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "severity", "path", "line",
                                "col", "message", "hint"}
        assert payload["counts"]["reported"] == 1

    def test_findings_are_stably_sorted(self):
        sources = {
            "src/repro/core/b.py": "import time\nT = time.time()\n",
            "src/repro/core/a.py": "import time\nT = time.time()\n",
        }
        result = lint(sources)
        assert [f.path for f in result.findings] == sorted(
            f.path for f in result.findings)


class TestLintFacts:
    def test_parse_string_tuple_from_real_catalogs(self):
        sites = parse_string_tuple(
            (REPO / "src/repro/common/faults.py").read_text(),
            "KNOWN_SITES")
        assert "pool.worker.crash" in sites
        columns = parse_string_tuple(
            (REPO / "src/repro/common/runtable.py").read_text(),
            "ID_COLUMNS", "MEASUREMENT_COLUMNS")
        assert columns.index("run_id") == 0 and "min_ms" in columns

    def test_parse_instrument_catalog(self):
        catalog = parse_instrument_catalog(
            "| instrument | kind |\n"
            "|---|---|\n"
            "| `a.b` / `a.c` | counter |\n"
            "| `serve.*{replica=rN}` | (as above) |\n"
            "| `pool.respawns{worker=i}` | counter |\n")
        assert catalog.exact == {"a.b", "a.c", "pool.respawns"}
        assert catalog.covers("serve.anything")
        assert not catalog.covers("fleet.x")


class TestLintSelfHost:
    """The engine's own acceptance gate: the merged tree lints clean."""

    def test_repo_lints_clean_against_committed_baseline(self):
        baseline = load_baseline(
            REPO / "tools" / "lint_baseline.json") or None
        result = run_lint(root=REPO, baseline=baseline)
        assert result.findings == [], render_text(result)
        assert result.stale_baseline == []

    def test_facts_cover_the_real_tree(self):
        facts = build_facts(root=REPO)
        paths = set(facts.modules)
        assert "src/repro/analysis/lint/facts.py" in paths  # self-hosting
        assert "src/repro/serve/server.py" in paths
        assert len(facts.known_sites) >= 9
        assert "run_id" in facts.run_table_columns
        assert facts.instrument_catalog.covers("serve.ticks")
