"""Versioned on-disk model registry the server cold-starts from.

A :class:`ModelRegistry` is a directory of named models, each a sequence
of immutable checkpoint versions written with
:func:`~repro.common.serialization.save_checkpoint`, optionally joined by
immutable **hardware profiles** (``hwNNNN.json``) — the quantization +
device/variation recipes that map the checkpoints onto crossbars
(:class:`~repro.hardware.mapped_network.HardwareProfile`)::

    <root>/
      shd-mlp/
        v0001.npz  v0001.json
        v0002.npz  v0002.json
        hw0001.json
      quickstart/
        v0001.npz  v0001.json

``save`` / ``save_profile`` allocate the next version, ``load`` /
``load_profile`` rebuild the artifact (and return the metadata saved with
it), ``list`` enumerates everything from the JSON sidecars alone (no
array loading).  Checkpoints and profiles version independently: one
trained model may carry many candidate hardware realizations (4-bit vs
5-bit, different variation assumptions), and
:meth:`~repro.serve.server.ModelServer.from_registry` picks one pair to
serve.  The format inherits the serialization module's safety property:
no pickling, no executable content.
"""

from __future__ import annotations

import itertools
import os
import re
import time
import warnings

from ..common.errors import SerializationError
from ..common.serialization import (
    load_checkpoint,
    load_hardware_profile,
    load_json,
    save_checkpoint,
    save_hardware_profile,
)

__all__ = ["ModelRegistry"]

_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION = re.compile(r"^v(\d{4,})$")
_HW_VERSION = re.compile(r"^hw(\d{4,})$")

#: Per-process uniquifier for temp artifact stems (pid alone is not enough
#: when one process saves concurrently from several threads).
_TMP_IDS = itertools.count()


class ModelRegistry:
    """A directory of versioned model checkpoints.

    Parameters
    ----------
    root:
        Registry directory (created on first ``save``).
    """

    def __init__(self, root: str, clock=time.time):
        self.root = os.fspath(root)
        # ``saved_unix`` provenance stamps go through an injectable
        # clock so registry behaviour stays reproducible under test.
        self._clock = clock

    # -- paths ---------------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME.match(name or ""):
            raise SerializationError(
                f"invalid model name {name!r}: use letters, digits, "
                f"'.', '_', '-'")
        return name

    def path(self, name: str, version: str) -> str:
        """The ``.npz`` path of one checkpoint (which need not exist)."""
        self._check_name(name)
        if not _VERSION.match(version):
            raise SerializationError(
                f"invalid version {version!r}: expected 'vNNNN'")
        return os.path.join(self.root, name, version + ".npz")

    def profile_path(self, name: str, profile: str) -> str:
        """The ``.json`` path of one hardware profile (which need not
        exist)."""
        self._check_name(name)
        if not _HW_VERSION.match(profile):
            raise SerializationError(
                f"invalid hardware profile {profile!r}: expected 'hwNNNN'")
        return os.path.join(self.root, name, profile + ".json")

    # -- queries -------------------------------------------------------------
    def models(self) -> list[str]:
        """Model names present in the registry, sorted."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            entry for entry in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, entry))
            and _NAME.match(entry)
        )

    def _scan_versions(self, name: str) -> list[str]:
        """Every ``vNNNN.npz`` stem present, complete or not, oldest first.

        This is the *allocation* view: it includes other savers' in-flight
        ``O_EXCL`` claims (empty files) and crash leftovers, so concurrent
        version allocation always advances past them.  Listings also walk
        it (and warn on the broken entries); :meth:`versions` filters it
        down to loadable artifacts.
        """
        directory = os.path.join(self.root, self._check_name(name))
        if not os.path.isdir(directory):
            return []
        found = []
        for entry in os.listdir(directory):
            stem, ext = os.path.splitext(entry)
            if ext == ".npz" and _VERSION.match(stem):
                found.append(stem)
        return sorted(found, key=lambda v: int(v[1:]))

    def versions(self, name: str) -> list[str]:
        """All *complete* versions of ``name``, oldest first.

        A version counts once its JSON sidecar exists — the sidecar is
        replaced last in :meth:`save`, so its presence implies a complete
        checkpoint.  In-flight claims and crashed saves are excluded,
        which keeps :meth:`latest` (and therefore ``load(name)`` /
        ``from_registry`` with no explicit version) from resolving to an
        artifact that cannot be loaded.
        """
        complete = []
        for version in self._scan_versions(name):
            sidecar = os.path.splitext(self.path(name, version))[0] + ".json"
            if os.path.exists(sidecar):
                complete.append(version)
        return complete

    def latest(self, name: str) -> str | None:
        """The newest version of ``name``, or ``None``."""
        versions = self.versions(name)
        return versions[-1] if versions else None

    def _scan_profiles(self, name: str) -> list[str]:
        """Every ``hwNNNN.json`` stem present, complete or not (the
        allocation/listing view — see :meth:`_scan_versions`)."""
        directory = os.path.join(self.root, self._check_name(name))
        if not os.path.isdir(directory):
            return []
        found = []
        for entry in os.listdir(directory):
            stem, ext = os.path.splitext(entry)
            if ext == ".json" and _HW_VERSION.match(stem):
                found.append(stem)
        return sorted(found, key=lambda v: int(v[2:]))

    def profiles(self, name: str) -> list[str]:
        """All *complete* hardware profiles of ``name``, oldest first.

        A profile artifact is a single JSON landed by an atomic
        ``os.replace``, so the only incomplete state is another saver's
        still-empty claim — excluded here so :meth:`latest_profile` /
        ``load_profile(name)`` never resolve to it.  A file deleted
        between the scan and the size probe (operator cleanup racing a
        reader) counts as absent, not as an error.
        """
        return [profile for profile in self._scan_profiles(name)
                if self._artifact_bytes(
                    self.profile_path(name, profile)) > 0]

    def latest_profile(self, name: str) -> str | None:
        """The newest hardware profile of ``name``, or ``None``."""
        profiles = self.profiles(name)
        return profiles[-1] if profiles else None

    @staticmethod
    def _artifact_bytes(path: str) -> int:
        """Size of an artifact file, ``-1`` if it vanished mid-scan.

        Size 0 identifies another saver's in-flight ``O_EXCL`` claim — a
        healthy transient, not a broken artifact: listings skip it
        *silently* (warning would make normal concurrent saves look like
        corruption, and crash under warnings-as-errors test setups).
        """
        try:
            return os.path.getsize(path)
        except OSError:
            return -1

    @staticmethod
    def _read_sidecar(path: str, what: str) -> dict | None:
        """Load one artifact's JSON, tolerating broken entries.

        A missing or corrupt sidecar (an interrupted save's orphan, a
        truncated file, a concurrent saver's still-empty claim) must not
        take the whole listing down — ``from_registry`` discovery runs
        over listings.  Broken entries are skipped with a warning naming
        the path, so the operator can clean them up.
        """
        try:
            return load_json(path)
        except (SerializationError, ValueError) as exc:
            warnings.warn(
                f"registry: skipping {what} with missing/corrupt sidecar "
                f"{path}: {exc}", RuntimeWarning, stacklevel=3)
            return None

    def list(self, name: str | None = None) -> list[dict]:
        """Describe every checkpoint (of one model, or of all models).

        Reads only the JSON sidecars; each entry carries ``name``,
        ``version``, ``path``, the architecture summary and the user
        metadata saved with the checkpoint.  A checkpoint whose sidecar
        is missing or corrupt is skipped with a ``RuntimeWarning`` (one
        bad artifact cannot break discovery); a concurrent saver's
        still-empty claim is skipped silently (it is not broken — its
        save is in flight).
        """
        names = [self._check_name(name)] if name is not None else self.models()
        entries = []
        for model in names:
            for version in self._scan_versions(model):
                npz = self.path(model, version)
                if self._artifact_bytes(npz) <= 0:
                    continue  # in-flight claim (or vanished): healthy
                sidecar = self._read_sidecar(
                    os.path.splitext(npz)[0] + ".json",
                    f"checkpoint {model}:{version}")
                if sidecar is None:
                    continue
                entries.append({
                    "name": model,
                    "version": version,
                    "path": npz,
                    "network": sidecar.get("network", {}),
                    "meta": sidecar.get("meta", {}),
                })
        return entries

    def list_profiles(self, name: str | None = None) -> list[dict]:
        """Describe every hardware profile (of one model, or of all).

        Each entry carries ``name``, ``profile`` (the ``hwNNNN`` id),
        ``path``, the profile's config dict and the user metadata saved
        with it.  Broken profile files are skipped with a
        ``RuntimeWarning``, like :meth:`list` does for checkpoints;
        in-flight claims (empty files) are skipped silently.
        """
        names = [self._check_name(name)] if name is not None else self.models()
        entries = []
        for model in names:
            for profile in self._scan_profiles(model):
                path = self.profile_path(model, profile)
                if self._artifact_bytes(path) <= 0:
                    continue  # in-flight claim (or vanished): healthy
                payload = self._read_sidecar(
                    path, f"hardware profile {model}:{profile}")
                if payload is None:
                    continue
                entries.append({
                    "name": model,
                    "profile": profile,
                    "path": path,
                    "config": payload.get("profile", {}),
                    "meta": payload.get("meta", {}),
                })
        return entries

    # -- save / load ---------------------------------------------------------
    @staticmethod
    def _claim(path: str) -> bool:
        """Atomically create ``path`` empty (the ``O_EXCL`` version claim).

        Returns False when another saver holds it already.  The claimed
        file is what :meth:`versions` / :meth:`profiles` scan, so a claim
        immediately reserves the id against concurrent allocators.
        """
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def _tmp_stem(self, name: str, kind: str) -> str:
        """A per-call temp stem inside the model directory (same
        filesystem, so ``os.replace`` onto the final name is atomic).
        Invisible to the listings: neither ``vNNNN`` nor ``hwNNNN``
        matches it."""
        return os.path.join(
            self.root, name,
            f".tmp-{kind}-{os.getpid()}-{next(_TMP_IDS)}")

    def save(self, name: str, network, meta: dict | None = None) -> str:
        """Write ``network`` as the next version of ``name``; returns the
        version id (``"v0001"``-style).

        ``meta`` is user metadata stored in the sidecar (the registry adds
        ``saved_unix``).

        Concurrency / crash safety: the artifact pair is first written to
        a temp stem, then a version id is *claimed* by exclusive creation
        of the final ``.npz`` (re-allocating on collision, so two
        interleaved savers get distinct ids instead of overwriting each
        other), and finally the temp files are ``os.replace``\\ d onto the
        claimed names — archive first, sidecar last, so a complete
        sidecar implies a complete checkpoint.  A crash mid-save leaves
        only a temp pair or a sidecar-less claim; :meth:`versions` /
        :meth:`latest` exclude those (so default loads still resolve the
        newest *loadable* version) and :meth:`list` skips them with a
        warning.
        """
        self._check_name(name)
        os.makedirs(os.path.join(self.root, name), exist_ok=True)
        meta = dict(meta or {})
        meta.setdefault("saved_unix", self._clock())
        tmp_npz = save_checkpoint(self._tmp_stem(name, "ckpt"), network,
                                  meta=meta)
        tmp_sidecar = os.path.splitext(tmp_npz)[0] + ".json"
        while True:
            # Allocate past *every* scanned stem — including other
            # savers' in-flight claims, which are not yet in versions().
            scanned = self._scan_versions(name)
            version = f"v{(int(scanned[-1][1:]) if scanned else 0) + 1:04d}"
            final_npz = self.path(name, version)
            if self._claim(final_npz):
                break
        os.replace(tmp_npz, final_npz)
        os.replace(tmp_sidecar, os.path.splitext(final_npz)[0] + ".json")
        return version

    def load(self, name: str, version: str | None = None):
        """Rebuild ``(network, meta)`` from a checkpoint.

        ``version=None`` loads the latest.
        """
        if version is None:
            version = self.latest(name)
            if version is None:
                raise SerializationError(
                    f"registry has no model {name!r} under {self.root} "
                    f"(known: {self.models() or 'none'})")
        return load_checkpoint(self.path(name, version))

    def save_profile(self, name: str, profile,
                     meta: dict | None = None) -> str:
        """Write ``profile`` (a :class:`~repro.hardware.mapped_network.
        HardwareProfile`) as the next hardware profile of ``name``;
        returns the profile id (``"hw0001"``-style).

        Profiles version independently of checkpoints — map the same
        trained weights under several candidate device assumptions and
        pick one at serve time.  Same concurrency contract as
        :meth:`save`: the id is claimed by exclusive creation (retried on
        collision) and the payload lands via an atomic ``os.replace``;
        the empty claim window is tolerated by :meth:`list_profiles`.
        """
        self._check_name(name)
        os.makedirs(os.path.join(self.root, name), exist_ok=True)
        meta = dict(meta or {})
        meta.setdefault("saved_unix", self._clock())
        tmp_json = save_hardware_profile(
            self._tmp_stem(name, "hw") + ".json", profile, meta=meta)
        while True:
            scanned = self._scan_profiles(name)
            version = f"hw{(int(scanned[-1][2:]) if scanned else 0) + 1:04d}"
            final_json = self.profile_path(name, version)
            if self._claim(final_json):
                break
        os.replace(tmp_json, final_json)
        return version

    def save_pair(self, name: str, network, profile,
                  meta: dict | None = None) -> tuple[str, str]:
        """Save a co-trained ``(checkpoint, hardware profile)`` pair.

        The one-call registry write of hardware-aware training: the
        checkpoint and the :class:`~repro.hardware.mapped_network.
        HardwareProfile` it was trained against land together, and the
        profile's metadata records the checkpoint id under
        ``"checkpoint"`` — :meth:`~repro.serve.server.ModelServer.
        from_registry` with ``hardware_profile=True`` then cold-starts
        exactly the pair that was co-trained, not whatever profile
        happens to be newest.  Returns ``(version, profile_id)``.
        """
        meta = dict(meta or {})
        version = self.save(name, network, meta=meta)
        profile_id = self.save_profile(
            name, profile, meta={**meta, "checkpoint": version})
        return version, profile_id

    def load_profile(self, name: str, profile: str | None = None):
        """Rebuild ``(hardware_profile, meta)``.

        ``profile=None`` loads the latest.
        """
        if profile is None:
            profile = self.latest_profile(name)
            if profile is None:
                raise SerializationError(
                    f"registry has no hardware profile for {name!r} under "
                    f"{self.root} (save one with save_profile)")
        return load_hardware_profile(self.profile_path(name, profile))

    def __repr__(self) -> str:
        return f"ModelRegistry({self.root!r}, models={self.models()})"
