"""Table I — hyper-parameters.

Regenerates the paper's parameter table from the frozen config and checks
every value against the published ones.
"""

import numpy as np

from conftest import bench_experiment


def test_table1(benchmark):
    result = bench_experiment(benchmark, "table1")
    assert result.summary["tau"] == 4.0
    assert result.summary["tau_r"] == 4.0
    assert result.summary["batch_size"] == 64
    assert result.summary["sigma"] == np.float64(1.0 / np.sqrt(2 * np.pi))
    for fragment in ("AdamW", "0.0001", "0.001"):
        assert fragment in result.text
