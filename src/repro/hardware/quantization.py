"""Weight quantization and weight-to-conductance mapping.

Trained weights are signed reals; memristor conductances are positive and
bounded.  Following standard crossbar practice (and the paper's Fig. 8
levels), a weight ``w`` maps to a *differential pair* of conductances:

.. math::

    w \\propto g^+ - g^-

with one device per sign: positive weights program ``g+`` above the
midpoint and ``g-`` at minimum, negative weights the mirror.  Each layer
uses a single scale factor chosen so the largest |weight| uses the full
conductance window — that scale is divided back out after the analog dot
product, so quantization error (not gain) is the only distortion.

Two software shortcuts exist, on **different grids**:

* ``quantize_weights`` — the legacy coarse sweep shortcut: a symmetric
  signed grid with ``levels - 1`` steps across ``[-scale, +scale]``
  (``levels`` distinct values).  Kept for quick sweeps and backwards
  compatibility; it is *coarser* than what the differential pair
  realises.
* ``fake_quantize`` — the authoritative map-time grid: weights go through
  the actual conductance mapping and the actual device ladder snap
  (:func:`repro.hardware.devices.quantize_conductances`, the same
  function :class:`~repro.hardware.devices.RRAMCellArray` programs with),
  then back to weights.  Because one device of the pair stays at
  ``g_min``, the realised grid has ``2*levels - 1`` signed values.  This
  is the grid hardware-aware training quantizes with, and it is
  bitwise-identical to a noise-free crossbar mapping by construction
  (pinned in ``tests/unit/test_hw_training.py``).

``sample_programmed_weights`` adds one programming-variation draw on top
of ``fake_quantize`` — the per-step device-noise injection of
hardware-aware training (:class:`repro.core.trainer.TrainerConfig`
``hardware=``), sharing the noise model of
:func:`repro.hardware.devices.program_conductances`.

All per-layer scales come from :func:`resolve_weight_scale`:
``max(|w|)`` with a **unit-scale guard for all-zero layers** (a freshly
initialised output layer or a fully pruned layer previously risked a
0/0 -> NaN that silently poisoned the conductances downstream).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..common.config import BaseConfig
from ..common.rng import RandomState, as_random_state
from .devices import RRAMDeviceConfig, program_conductances

__all__ = [
    "QuantizationConfig",
    "resolve_weight_scale",
    "quantize_weights",
    "fake_quantize",
    "sample_programmed_weights",
    "weights_to_conductances",
    "conductances_to_weights",
]


@dataclasses.dataclass(frozen=True)
class QuantizationConfig(BaseConfig):
    """k-bit weight quantization parameters.

    Attributes
    ----------
    bits:
        Bits per device (Fig. 8: 4 or 5), i.e. ``2**bits`` levels.
    symmetric:
        Use a symmetric grid around zero (required by the differential
        mapping).
    """

    bits: int = 4
    symmetric: bool = True

    def validate(self) -> None:
        self.require(1 <= self.bits <= 16, f"bits must be 1-16, got {self.bits}")

    @property
    def levels(self) -> int:
        return 2 ** self.bits


def resolve_weight_scale(weights: np.ndarray,
                         scale: float | None = None) -> float:
    """The per-tensor full-scale value: ``scale`` or ``max(|weights|)``.

    An all-zero layer (freshly initialised output layer, pruned layer)
    yields a **unit scale** instead of 0: zero weights are realised
    exactly at any scale, and dividing by the naive ``max(|w|) = 0``
    previously produced NaNs that propagated silently into the
    conductances.  Every scale derivation in this module (and therefore
    every crossbar programming) goes through this guard.
    """
    weights = np.asarray(weights)
    if scale is None:
        scale = float(np.max(np.abs(weights))) if weights.size else 0.0
    scale = float(scale)
    if scale == 0.0:
        return 1.0
    return scale


def quantize_weights(weights: np.ndarray, config: QuantizationConfig,
                     scale: float | None = None) -> np.ndarray:
    """Round ``weights`` to a coarse symmetric k-bit grid (legacy shortcut).

    The grid has ``levels - 1`` steps across ``[-scale, +scale]`` —
    *coarser* than the grid the differential conductance pair realises
    (use :func:`fake_quantize` for that one).  Kept for quick software
    sweeps.

    Parameters
    ----------
    scale:
        Full-scale value; defaults to ``max(|weights|)`` (per-tensor),
        with a unit-scale guard for all-zero layers
        (:func:`resolve_weight_scale`).
    """
    weights = np.asarray(weights, dtype=np.float64)
    scale = resolve_weight_scale(weights, scale)
    # Symmetric signed grid with (levels - 1) steps across [-scale, +scale].
    steps = config.levels - 1
    normalized = np.clip(weights / scale, -1.0, 1.0)
    quantized = np.round(normalized * steps / 2.0) * 2.0 / steps
    return quantized * scale


def fake_quantize(weights: np.ndarray, device: RRAMDeviceConfig,
                  scale: float | None = None) -> np.ndarray:
    """Round ``weights`` to exactly the grid a noise-free crossbar realises.

    The weights run through the *actual map-time pipeline* — differential
    conductance targets (:func:`weights_to_conductances`), the device
    ladder snap + window clip
    (:func:`~repro.hardware.devices.program_conductances` with no rng),
    and the inverse mapping (:func:`conductances_to_weights`) — so the
    train-time and map-time grids are identical by construction, not by a
    re-derived formula.  ``fake_quantize(w, device)`` is bitwise-equal to
    ``DifferentialCrossbar(w, device).effective_weights()`` when the
    device has ``variation == read_noise == stuck_at_rate == 0``.

    This is the forward-pass weight transform of hardware-aware training
    (the straight-through estimator treats it as the identity on the
    backward pass).
    """
    g_plus, g_minus, scale = weights_to_conductances(weights, device,
                                                     scale=scale)
    a_plus = program_conductances(g_plus, device)
    a_minus = program_conductances(g_minus, device)
    return conductances_to_weights(a_plus, a_minus, device, scale)


def sample_programmed_weights(weights: np.ndarray,
                              device: RRAMDeviceConfig,
                              rng: RandomState | int | None,
                              scale: float | None = None) -> np.ndarray:
    """One stochastic programming-and-read draw of ``weights`` onto a
    crossbar.

    Quantizes to the :func:`fake_quantize` grid and applies one
    programming-variation (and stuck-at, if configured) realization via
    the shared device noise model
    (:func:`~repro.hardware.devices.program_conductances`), followed by
    one per-read noise draw when ``device.read_noise > 0`` (the
    :meth:`~repro.hardware.devices.RRAMCellArray.read` model).  The
    stream layout matches
    :class:`~repro.hardware.crossbar.DifferentialCrossbar` — the
    positive array draws from ``rng.child("plus")``, the negative from
    ``rng.child("minus")``, programming before read within each stream —
    so with the same root rng this returns bitwise the effective weights
    the crossbar would realise on its first programming (and first read,
    under read noise).

    Hardware-aware training calls this once per optimizer step (fresh
    ``rng`` child each time) to expose the network to the distribution of
    crossbars — and reads — it might be served from.
    """
    root = as_random_state(rng)
    g_plus, g_minus, scale = weights_to_conductances(weights, device,
                                                     scale=scale)
    plus_rng = root.child("plus")
    minus_rng = root.child("minus")
    a_plus = program_conductances(g_plus, device, rng=plus_rng)
    a_minus = program_conductances(g_minus, device, rng=minus_rng)
    if device.read_noise > 0:
        # Same math (and same continued streams) as RRAMCellArray.read.
        a_plus = np.clip(
            a_plus * (1.0 + plus_rng.normal(0.0, device.read_noise,
                                            a_plus.shape)),
            device.g_min, device.g_max)
        a_minus = np.clip(
            a_minus * (1.0 + minus_rng.normal(0.0, device.read_noise,
                                              a_minus.shape)),
            device.g_min, device.g_max)
    return conductances_to_weights(a_plus, a_minus, device, scale)


def weights_to_conductances(weights: np.ndarray,
                            device: RRAMDeviceConfig,
                            scale: float | None = None
                            ) -> tuple[np.ndarray, np.ndarray, float]:
    """Map signed weights to differential conductance targets.

    Returns ``(g_plus, g_minus, weight_scale)`` where the realised weight is
    ``(g_plus - g_minus) * weight_scale / (g_max - g_min)``; both arrays lie
    in the device window and the mapping uses the full dynamic range for
    the largest |weight|.  An all-zero layer maps to ``(g_min, g_min)``
    pairs under a unit scale (:func:`resolve_weight_scale`).
    """
    weights = np.asarray(weights, dtype=np.float64)
    scale = resolve_weight_scale(weights, scale)
    window = device.g_max - device.g_min
    normalized = np.clip(weights / scale, -1.0, 1.0)
    magnitude = np.abs(normalized) * window
    g_plus = np.where(normalized >= 0, device.g_min + magnitude, device.g_min)
    g_minus = np.where(normalized < 0, device.g_min + magnitude, device.g_min)
    return g_plus, g_minus, float(scale)


def conductances_to_weights(g_plus: np.ndarray, g_minus: np.ndarray,
                            device: RRAMDeviceConfig,
                            weight_scale: float) -> np.ndarray:
    """Invert :func:`weights_to_conductances` for achieved conductances."""
    window = device.g_max - device.g_min
    return (np.asarray(g_plus, dtype=np.float64)
            - np.asarray(g_minus, dtype=np.float64)) * weight_scale / window
