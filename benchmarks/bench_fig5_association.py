"""Fig. 5 — spatial-temporal pattern association.

The paper's qualitative figure shows the network drawing the handwritten
digit that matches a spoken digit.  Quantified here: training with the
van Rossum loss (eqs. 15-16) reduces the output-to-target distance
substantially below the untrained level, and each trained output matches
its *own* target better than a shuffled pairing (identity, not just a
generic average glyph).
"""

from conftest import bench_experiment


def test_fig5_association(benchmark):
    result = bench_experiment(benchmark, "fig5")
    summary = result.summary

    # Training cuts the kernel distance (paper trains to visually matching
    # rasters; we require at least a 25 % reduction at CI scale).
    assert summary["distance_after"] < 0.75 * summary["distance_before"]

    # Identity: own-target correlation beats shuffled-target correlation.
    assert summary["correlation_own"] > summary["correlation_cross"]
    assert summary["correlation_own"] > 0.05

    # The rendered report includes all three rasters of the figure.
    for fragment in ("input", "target", "output"):
        assert fragment in result.text
