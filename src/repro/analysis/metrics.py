"""Classification and firing-statistics metrics."""

from __future__ import annotations

import numpy as np

from ..common.errors import ShapeError

__all__ = [
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "firing_rate",
    "active_fraction",
    "spike_count_histogram",
]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of ``predictions == labels``."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ShapeError(
            f"predictions {predictions.shape} vs labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ShapeError("empty prediction array")
    return float(np.mean(predictions == labels))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray,
                     n_classes: int | None = None) -> np.ndarray:
    """Counts matrix ``C[i, j]`` = samples of true class ``i`` predicted ``j``."""
    predictions = np.asarray(predictions, dtype=int)
    labels = np.asarray(labels, dtype=int)
    if predictions.shape != labels.shape:
        raise ShapeError(
            f"predictions {predictions.shape} vs labels {labels.shape}"
        )
    if n_classes is None:
        n_classes = int(max(predictions.max(), labels.max())) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_accuracy(predictions: np.ndarray, labels: np.ndarray,
                       n_classes: int | None = None) -> np.ndarray:
    """Recall per true class; NaN for classes absent from ``labels``."""
    matrix = confusion_matrix(predictions, labels, n_classes)
    totals = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)


def firing_rate(spikes: np.ndarray, time_axis: int = 1) -> float:
    """Mean spike probability per neuron per step."""
    spikes = np.asarray(spikes)
    if spikes.size == 0:
        raise ShapeError("empty spike array")
    return float(np.mean(spikes > 0))


def active_fraction(spikes: np.ndarray, time_axis: int = 1) -> float:
    """Fraction of neurons that spike at least once over the time axis."""
    spikes = np.asarray(spikes)
    any_spike = np.any(spikes > 0, axis=time_axis)
    return float(np.mean(any_spike))


def spike_count_histogram(spikes: np.ndarray, time_axis: int = 1,
                          bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of per-neuron spike counts; returns ``(counts, edges)``."""
    spikes = np.asarray(spikes)
    totals = spikes.sum(axis=time_axis).ravel()
    return np.histogram(totals, bins=bins)
