"""The codesigned neuron circuit (paper Section IV, Figs. 6-7) plus the
Section V-C power / energy / area estimate.

Builds the transistor-level behavioral netlist — synapse RC filter, RRAM
bit-line with sense resistor, comparator op-amp with an RC feedback filter
implementing the adaptive threshold, bias op-amp, two output inverters —
and runs transients showing:

1. a burst of input spikes raising the PSP over the threshold -> exactly
   one output spike;
2. the threshold jumping and decaying (adaptive threshold in silicon);
3. a following input spike being suppressed (refractory behaviour);
4. the paper's power/energy numbers on the 300-step / 14-spike scenario.

Run:  python examples/circuit_demo.py
"""

import numpy as np

from repro.common.asciiplot import line_plot
from repro.common.rng import RandomState
from repro.common.units import si_format
from repro.hardware import (
    NeuronCircuitConfig,
    estimate_area,
    estimate_power,
    simulate_neuron,
)


def main():
    config = NeuronCircuitConfig()
    print(f"component values: R = {si_format(config.r_filter, 'Ohm')}, "
          f"C = {si_format(config.c_filter, 'F')}  ->  "
          f"RC = {si_format(config.tau_seconds, 's')} "
          f"({config.tau_steps:.2f} algorithm steps of {config.step_ns} ns)")
    print(f"threshold bias = {si_format(config.v_bias, 'V')}, "
          f"VDD = {si_format(config.v_dd, 'V')}\n")

    # Fig. 7 scenario: burst then isolated spikes.
    result = simulate_neuron([50, 70, 90, 250, 450], config=config,
                             duration_ns=700)
    stats = result.summary()
    decimate = slice(None, None, 10)
    print(line_plot(
        {"PSP g(t)": result["g"][decimate],
         "threshold": result["threshold"][decimate],
         "filtered input k(t)": result["k"][decimate]},
        height=14, width=84,
        title="Fig. 7(a): bit-line PSP vs adaptive threshold "
              "(burst at 50-90 ns, singles at 250/450 ns)"))
    print(line_plot(
        {"comparator (non-ideal)": result["comparator"][decimate],
         "feedback h(t)": result["feedback"][decimate],
         "buffered output spike": result["spike"][decimate]},
        height=10, width=84,
        title="Fig. 7(b): comparator output, feedback, inverter-restored "
              "spike"))
    print(f"measurements: {stats}")
    assert stats["output_spikes"] == 1, "burst should elicit exactly 1 spike"

    # Section V-C: 300 steps x 10 ns with 14 random input spikes.
    rng = RandomState(0)
    steps = np.sort(rng.choice(np.arange(5, 295), size=14, replace=False))
    power_run = simulate_neuron([float(s) * 10 for s in steps],
                                config=config, duration_ns=3000, dt_ns=0.5)
    report = estimate_power(power_run)
    area = estimate_area(config)

    print("\n--- Section V-C estimates (paper values in parentheses) ---")
    print(f"min power:  {si_format(report.min_power_w, 'W')}   (1.067 mW)")
    print(f"max power:  {si_format(report.max_power_w, 'W')}   (1.965 mW)")
    print(f"avg power:  {si_format(report.avg_power_w, 'W')}   (1.11 mW)")
    print(f"energy:     {si_format(report.energy_j, 'J')}   (3.329 nJ)")
    print(f"area:       {area['total_mm2']:.4f} mm^2   (0.0125 mm^2)")
    print("\narea breakdown (um^2):")
    for key, value in area.items():
        if key.endswith("_um2") and key != "total_um2":
            print(f"  {key.replace('_um2', ''):<18} {value:10.1f}")


if __name__ == "__main__":
    main()
