"""Deterministic data-parallel primitives shared by the serial and pooled paths.

The parallel runtime's equivalence guarantee rests on one rule: **the pooled
execution runs exactly the code the serial execution runs, on exactly the
same shards, and reduces in exactly the same order.**  This module holds
that shared code:

* :func:`shard_slices` — the contiguous batch split (fixed for a given
  ``(n, n_shards)``, independent of how the shards are later executed);
* :func:`shard_grads` — forward + loss + BPTT on one shard (called
  in-process by the serial path and inside each worker by
  :class:`~repro.runtime.pool.WorkerPool`);
* :func:`combine_shard_results` — the fixed-order weighted reduction of
  shard losses/gradients (shard 0 first, then 1, ...), which makes the
  parallel ``train_batch`` bitwise-reproducible and bitwise-equal to a
  serial execution of the same sharded algorithm;
* :func:`data_parallel_grads` — the dispatcher tying the three together,
  with ``pool=None`` meaning "run the shards serially in-process".

Reduction-order note: summing per-shard gradients is *not* the same
floating-point expression as the full-batch contraction (BLAS accumulates
the batch axis in blocked order), so ``n_shards >= 2`` matches the
full-batch gradients only to rounding (~1e-13 relative in float64) — while
being bitwise-identical between pooled and serial execution of the same
shard count.  ``n_shards == 1`` *is* the full-batch computation, so a
one-worker pool is bitwise-equal to the plain serial trainer.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "resolve_workers",
    "shard_slices",
    "shard_grads",
    "combine_shard_results",
    "data_parallel_grads",
    "parallel_map",
]


def resolve_workers(workers: int | None = None) -> int:
    """``workers`` argument > ``REPRO_WORKERS`` env var > 0 (serial).

    0 means "no pool, run in-process"; ``n > 0`` means a pool of ``n``
    worker processes.
    """
    if workers is not None:
        workers = int(workers)
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        return workers
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if not env:
        return 0
    try:
        value = int(env)
    except ValueError:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}")
    return max(value, 0)


def shard_slices(n: int, n_shards: int) -> list[slice]:
    """Contiguous batch shards, sizes differing by at most one.

    Deterministic in ``(n, n_shards)`` — the same split whether the shards
    are then run serially, or on 2 workers, or on 8.  Empty shards (when
    ``n < n_shards``) are dropped.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    base, extra = divmod(int(n), int(n_shards))
    slices = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        if size == 0:
            continue
        slices.append(slice(start, start + size))
        start += size
    return slices


def shard_grads(network, loss, inputs: np.ndarray, targets: np.ndarray,
                mode: str = "exact", engine: str = "fused",
                precision: str | None = None, ws=None, weights=None):
    """Forward + loss + BPTT on one shard.

    Returns ``(loss_value, shard_size, weight_grads)``.  This is the unit
    of work a pool worker executes; the serial path calls it in-process so
    both paths share every arithmetic operation.  When ``ws`` is given the
    recorded traces are recycled into the workspace before returning.

    ``weights`` (optional per-layer overrides) runs the forward **and**
    the backward through substituted weight matrices — the
    straight-through-estimator step of hardware-aware training: the
    returned gradients are with respect to the override values and are
    applied to the master weights unchanged.  Fused engine only.
    """
    from ..core.backprop import backward

    outputs, record = network.run(inputs, record=True, engine=engine,
                                  precision=precision, workspace=ws,
                                  weights=weights)
    loss_value, grad_outputs = loss.value_and_grad(outputs, targets)
    backward_engine = "fused" if engine == "fused" else "reference"
    result = backward(network, record, grad_outputs, mode=mode,
                      engine=backward_engine, precision=precision,
                      workspace=ws, need_input_grad=False, weights=weights)
    if ws is not None:
        for layer_record in record.layers:
            ws.release(layer_record.k, layer_record.v, layer_record.spikes)
    return float(loss_value), int(inputs.shape[0]), result.weight_grads


def combine_shard_results(shard_results, n_total: int):
    """Fixed-order weighted reduction of per-shard ``(loss, n, grads)``.

    Each loss object averages over its batch, so the full-batch quantities
    are the ``n_s / n_total``-weighted sums, accumulated in shard order —
    the "bitwise-deterministic fixed reduction order" of the runtime.
    """
    if not shard_results:
        raise ValueError("no shard results to combine")
    total_loss = 0.0
    total_grads = None
    for loss_value, shard_n, grads in shard_results:
        weight = shard_n / float(n_total)
        total_loss += loss_value * weight
        if total_grads is None:
            total_grads = [g * weight for g in grads]
        else:
            for acc, g in zip(total_grads, grads):
                acc += g * weight
    return total_loss, total_grads


def data_parallel_grads(network, loss, inputs: np.ndarray,
                        targets: np.ndarray, n_shards: int,
                        mode: str = "exact", engine: str = "fused",
                        precision: str | None = None, pool=None, ws=None,
                        weights=None):
    """Mini-batch loss + weight gradients via ``n_shards`` data shards.

    ``pool=None`` executes the shards serially in-process (the reference
    the pooled path is bitwise-tested against); a
    :class:`~repro.runtime.pool.WorkerPool` executes them concurrently.
    Returns ``(loss_value, weight_grads)`` with the same semantics as the
    full-batch ``loss.value_and_grad`` + ``backward`` pair.

    ``weights`` substitutes the per-layer weight matrices of every shard's
    forward/backward (hardware-aware training).  The pooled path stages
    the override into the shared-memory weight block for the dispatch, so
    workers compute exactly the serial override arithmetic.
    """
    n = int(inputs.shape[0])
    slices = shard_slices(n, n_shards)
    if pool is not None:
        shard_results = pool.grad_shards(inputs, targets, slices, mode=mode,
                                         engine=engine, precision=precision,
                                         weights=weights)
    else:
        shard_results = [
            shard_grads(network, loss, inputs[sl], targets[sl], mode=mode,
                        engine=engine, precision=precision, ws=ws,
                        weights=weights)
            for sl in slices
        ]
    return combine_shard_results(shard_results, n)


def parallel_map(fn, items, workers: int | None = None, pool=None):
    """``[fn(item) for item in items]``, optionally over a worker pool.

    ``fn`` and the items must be picklable when a pool is used.  Results
    come back in input order.  With ``workers == 0`` (or one item) this is
    a plain list comprehension — identical results, no processes.
    """
    items = list(items)
    workers = resolve_workers(workers)
    if pool is not None:
        return pool.map(fn, items)
    if workers <= 0 or len(items) <= 1:
        return [fn(item) for item in items]
    from .pool import WorkerPool

    with WorkerPool(workers=min(workers, len(items))) as transient:
        return transient.map(fn, items)
