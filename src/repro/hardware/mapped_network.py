"""Hardware-in-the-loop inference: a trained network on RRAM crossbars.

This implements the evaluation behind the paper's Fig. 8: trained weights
are programmed into differential RRAM crossbars with k-bit quantization
and per-device lognormal process variation; inference then runs the same
adaptive-threshold dynamics using the *achieved* (non-ideal) weights.

Because the neuron dynamics are unchanged — only the weight values move —
mapping reduces to constructing a clone network whose weights are the
crossbars' effective weights.  That clone is a faithful model of the
analog datapath under the paper's own simplifications (sense-resistor
loading neglected via the current-amplifier argument, Section IV).
"""

from __future__ import annotations

import numpy as np

from ..common.rng import RandomState, as_random_state
from ..core.network import SpikingNetwork
from ..core.trainer import run_in_batches
from .crossbar import DifferentialCrossbar
from .devices import RRAMDeviceConfig

__all__ = ["HardwareMappedNetwork", "accuracy_under_variation"]


class HardwareMappedNetwork:
    """A trained :class:`~repro.core.network.SpikingNetwork` on crossbars.

    Parameters
    ----------
    network:
        The trained software model (unmodified).
    device:
        RRAM device model; ``levels = 2**bits`` sets the quantization and
        ``variation`` the programming noise.
    rng:
        Randomness for the device draws (one independent stream per layer
        and polarity).
    """

    def __init__(self, network: SpikingNetwork,
                 device: RRAMDeviceConfig | None = None,
                 rng: RandomState | int | None = None):
        self.software_network = network
        self.device = device or RRAMDeviceConfig()
        root = as_random_state(rng)
        self.crossbars = [
            DifferentialCrossbar(layer.weight, self.device,
                                 rng=root.child(f"crossbar{i}"))
            for i, layer in enumerate(network.layers)
        ]
        self.hardware_network = SpikingNetwork(
            network.sizes, params=network.params,
            neuron_kind=network.neuron_kind, rng=0,
        )
        self.hardware_network.set_weights(
            [xbar.effective_weights() for xbar in self.crossbars]
        )

    def run(self, inputs: np.ndarray, record: bool = False):
        """Inference with the achieved (quantized + noisy) weights."""
        return self.hardware_network.run(inputs, record=record)

    def weight_errors(self) -> list[float]:
        """Per-layer RMS relative weight error vs the software model."""
        errors = []
        for layer, xbar in zip(self.software_network.layers, self.crossbars):
            ideal = layer.weight
            actual = xbar.effective_weights()
            scale = float(np.max(np.abs(ideal))) or 1.0
            errors.append(float(np.sqrt(np.mean((actual - ideal) ** 2)) / scale))
        return errors


def accuracy_under_variation(network: SpikingNetwork, inputs: np.ndarray,
                             labels: np.ndarray, bits: int,
                             variation: float, n_seeds: int = 3,
                             rng: RandomState | int | None = None,
                             batch_size: int = 64) -> tuple[float, float]:
    """Mean/std accuracy over device-noise seeds (one Fig. 8 data point).

    Parameters
    ----------
    network:
        Trained classifier.
    inputs, labels:
        Evaluation set.
    bits:
        Weight precision (Fig. 8: 4 or 5).
    variation:
        Lognormal resistance-deviation sigma (Fig. 8 x-axis, 0 - 0.5).
    n_seeds:
        Independent programming draws to average over.

    Returns
    -------
    (mean_accuracy, std_accuracy)
    """
    root = as_random_state(rng)
    device = RRAMDeviceConfig(levels=2 ** bits, variation=variation)
    accuracies = []
    for seed in range(n_seeds):
        mapped = HardwareMappedNetwork(
            network, device, rng=root.child(f"seed{seed}")
        )
        outputs = run_in_batches(mapped.hardware_network, inputs, batch_size)
        predictions = np.argmax(outputs.sum(axis=1), axis=1)
        accuracies.append(float(np.mean(predictions == labels)))
    return float(np.mean(accuracies)), float(np.std(accuracies))
