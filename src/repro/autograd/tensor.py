"""A minimal reverse-mode automatic-differentiation engine on numpy.

This is a *verification substrate*: the training algorithm of the paper is
hand-derived in :mod:`repro.core.backprop` for speed; this engine provides
an independent implementation of the same computation whose gradients come
from mechanical tape-based differentiation.  Tests build the paper's
network twice (manual and autograd) and require the gradients to agree to
machine precision.

Design: a :class:`Tensor` wraps an ``ndarray``, remembers its parents and a
closure that scatters its output gradient to them; :meth:`Tensor.backward`
runs the closures in reverse topological order.  Broadcasting is supported
by summing gradients back to the parent shape.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "as_tensor", "unbroadcast"]


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (the reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """An array node in the autodiff graph.

    Parameters
    ----------
    data:
        Array (or scalar) value.
    requires_grad:
        Track operations on this tensor and accumulate ``.grad``.
    """

    def __init__(self, data, requires_grad: bool = False, parents=(),
                 backward_fn=None, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._parents = tuple(parents)
        self._backward_fn = backward_fn
        self.name = name

    # -- graph plumbing ----------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def detach(self) -> "Tensor":
        """A new leaf tensor sharing this data, cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor.

        ``grad`` defaults to 1 for scalar tensors (the usual loss case).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        # Topological order via iterative DFS.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    # -- operators (implemented in ops.py, attached there) -------------------
    def __repr__(self) -> str:
        flag = ", grad" if self.requires_grad else ""
        label = f" {self.name!r}" if self.name else ""
        return f"Tensor{label}(shape={self.shape}{flag})"


def as_tensor(value) -> Tensor:
    """Coerce arrays/scalars to a constant :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=False)
